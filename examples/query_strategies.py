"""Advanced querying tour: plans, strategies, ordered trees, attributes.

Shows the query-side features beyond plain evaluation:

- ``engine.explain`` — the NoK decomposition plan;
- ``engine.evaluate`` vs ``engine.evaluate_path`` — NoK+STD vs holistic
  PathStack, same answers, different cost profiles;
- ordered pattern trees (following-sibling constraints);
- attribute predicates.

Run with: python examples/query_strategies.py
"""

import time

from repro import QueryEngine
from repro.acl.synthetic import SyntheticACLConfig, generate_synthetic_acl
from repro.xmark.generator import XMarkConfig, generate_document


def timed(fn, *args, **kwargs):
    started = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, (time.perf_counter() - started) * 1000


def main() -> None:
    doc = generate_document(XMarkConfig(n_items=250, seed=17))
    matrix = generate_synthetic_acl(
        doc, SyntheticACLConfig(accessibility_ratio=0.7, seed=17)
    )
    engine = QueryEngine.build(doc, matrix)
    print(f"document: {len(doc)} nodes\n")

    # 1. Inspect the plan before running.
    query = "//listitem//keyword"
    print(engine.explain(query))

    # 2. Two strategies, identical answers.
    nok, t_nok = timed(engine.evaluate, query, 0)
    holistic, t_ps = timed(engine.evaluate_path, query, 0)
    assert nok.positions == holistic.positions
    print(
        f"\n{query}: {nok.n_answers} secure answers — "
        f"NoK+STD {t_nok:.2f} ms, PathStack {t_ps:.2f} ms"
    )

    # 3. Branching twigs run through the path-merge variant.
    twig = "/site/regions/africa/item[location][name][quantity]"
    a = engine.evaluate(twig)
    b = engine.evaluate_path(twig)
    assert a.positions == b.positions
    print(f"{twig}: {a.n_answers} answers via both strategies")

    # 4. Ordered pattern trees: sibling order matters.
    unordered = engine.evaluate("//item[quantity][location]")
    ordered = engine.evaluate("//item[quantity][location]", ordered=True)
    print(
        f"//item[quantity][location]: unordered {unordered.n_answers}, "
        f"ordered {ordered.n_answers} (location precedes quantity in XMark, "
        f"so the ordered pattern requires the reverse and matches fewer)"
    )

    # 5. Attribute predicates.
    by_id = engine.evaluate('//item[@id = "item42"]')
    featured = engine.evaluate("//incategory[@category]")
    print(
        f'//item[@id = "item42"]: {by_id.n_answers} answer; '
        f"//incategory[@category]: {featured.n_answers} nodes carry the attribute"
    )


if __name__ == "__main__":
    main()
