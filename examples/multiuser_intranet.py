"""Multi-user compression on an intranet-scale workload.

Recreates the paper's Section 5 story on the LiveLink-like surrogate: a
collaboration hierarchy with groups and users whose rights are strongly
correlated. Shows how the DOL codebook and transition list grow as
subjects are added, and compares total storage against per-user CAMs.

Run with: python examples/multiuser_intranet.py
"""

import random

from repro.acl.surrogates import generate_livelink
from repro.bench.reporting import format_table
from repro.cam.cam import total_cam_labels
from repro.dol.labeling import DOL


def main() -> None:
    dataset = generate_livelink(n_items=1500, n_groups=10, n_users=50, seed=12)
    doc, matrix = dataset.doc, dataset.matrix
    print(
        f"intranet tree: {len(doc)} items, max depth {max(doc.depth)}, "
        f"{dataset.n_subjects} subjects, {len(matrix.modes)} permission levels"
    )

    # Growth of the DOL as subjects are added (Figures 5/6 methodology).
    rng = random.Random(3)
    rows = []
    for k in (1, 5, 15, 30, dataset.n_subjects):
        subjects = rng.sample(range(dataset.n_subjects), k)
        projected = matrix.restrict_to_subjects(subjects, "see")
        dol = DOL.from_matrix(projected, "see")
        rows.append((k, dol.n_transitions, len(dol.codebook), dol.size_bytes()))
    print(format_table(
        "DOL growth with subject count ('see' mode)",
        ["subjects", "transitions", "codebook", "bytes"],
        rows,
    ))

    # Multi-user storage: one DOL vs per-user CAMs.
    dol = DOL.from_matrix(matrix, "see")
    cam_labels = total_cam_labels(doc, matrix, mode="see")
    print(format_table(
        "one multi-user DOL vs per-user CAMs ('see' mode)",
        ["structure", "labels", "bytes"],
        [
            ("DOL (codebook + codes)", dol.n_transitions, dol.size_bytes()),
            ("per-user CAMs (4B ptrs)", cam_labels, (cam_labels * 34 + 7) // 8),
        ],
    ))

    # A user's effective rights: own subject + groups (Section 4 footnote).
    registry = dataset.registry
    user = registry.id_of("user0")
    effective = registry.effective_subjects(user)
    view = matrix.user_mask_view(effective, "see")
    own = matrix.subject_vector(user, "see")
    print(
        f"\nuser0 belongs to {len(effective) - 1} group(s); "
        f"own grants cover {sum(own)} nodes, effective rights {sum(view)}"
    )

    # Adding a new hire who starts with the rights of an existing user
    # touches only the in-memory codebook (Section 3.4).
    before = list(dol.positions)
    new_id = dol.codebook.add_subject(initially_like=user)
    assert dol.positions == before
    print(
        f"added subject {new_id} cloned from user0 — embedded transition "
        f"nodes untouched, codebook now {dol.codebook.n_subjects} columns"
    )


if __name__ == "__main__":
    main()
