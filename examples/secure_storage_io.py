"""Block storage, I/O accounting, and the page-skip optimization.

Builds the NoK block store (4 KB pages, embedded DOL codes, in-memory
header table) over an XMark document and demonstrates, with real page-read
counters, the three physical claims of Section 3:

1. accessibility checks cost no extra I/O,
2. pages wholly inaccessible to a subject are skipped without reading,
3. a subtree accessibility update rewrites only ~N/B pages.

Run with: python examples/secure_storage_io.py
"""

from repro.acl.synthetic import SyntheticACLConfig, single_subject_labels
from repro.dol.labeling import DOL
from repro.nok.engine import QueryEngine
from repro.storage.nokstore import NoKStore
from repro.xmark.generator import XMarkConfig, generate_document


def main() -> None:
    doc = generate_document(XMarkConfig(n_items=300, seed=99))
    # subject 0 sees only ~5% of the document
    vector = single_subject_labels(
        doc, SyntheticACLConfig(propagation_ratio=0.1, accessibility_ratio=0.05, seed=2)
    )
    dol = DOL.from_masks([int(v) for v in vector], 1)
    store = NoKStore(doc, dol, page_size=1024, buffer_capacity=1024)
    engine = QueryEngine(doc, dol=dol, store=store)

    print(
        f"store: {store.n_nodes} nodes on {store.n_pages} pages "
        f"({store.entries_per_page} node entries per page); "
        f"header table {store.headers.size_bytes()} bytes in memory"
    )

    query = "//item//emph"

    store.drop_caches()
    plain = engine.evaluate(query)
    plain_reads = plain.stats.physical_page_reads

    store.drop_caches()
    secure = engine.evaluate(query, subject=0)
    print(
        f"\n{query}: non-secure read {plain_reads} pages for "
        f"{plain.n_answers} answers; secure read "
        f"{secure.stats.physical_page_reads} pages for {secure.n_answers} "
        f"answers ({secure.stats.candidates_skipped_by_header} candidates "
        f"skipped via in-memory page headers)"
    )

    # Claim 1: with a warm cache, the access checks themselves are free.
    warm_plain = engine.evaluate(query)
    warm_secure = engine.evaluate(query, subject=0)
    print(
        f"warm cache: plain {warm_plain.stats.physical_page_reads} physical "
        f"reads, secure {warm_secure.stats.physical_page_reads} "
        f"({warm_secure.stats.access_checks} access checks performed)"
    )

    # Claim 3: update locality.
    regions = doc.positions_with_tag("regions")[0]
    end = doc.subtree_end(regions)
    cost = store.update_subject_range(regions, end, 0, True)
    n = end - regions
    print(
        f"\ngranting subject 0 a {n}-node subtree rewrote "
        f"{cost.pages_rewritten} pages (ceil(N/B) = {-(-n // store.entries_per_page)}), "
        f"transition delta {cost.transition_delta:+d}"
    )

    after = engine.evaluate(query, subject=0)
    print(f"after the grant the same query returns {after.n_answers} answers")


if __name__ == "__main__":
    main()
