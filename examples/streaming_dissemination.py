"""Secure streaming dissemination: one pass in, per-subscriber XML out.

The paper's conclusion observes that because DOL is keyed on document
order, it embeds naturally into streaming XML and "many one-pass
algorithms on streaming XML data can be made secure". This example plays
publisher: one XMark document is filtered for several subscribers in a
single pass each, under both filtering policies (view-style pruning and
Cho-style hoisting), and the DOL itself is built in one streaming pass
over the raw text.

Run with: python examples/streaming_dissemination.py
"""

from repro import MultiModeDOL, parse, serialize
from repro.acl.model import AccessMatrix
from repro.acl.synthetic import SyntheticACLConfig, generate_correlated_acl
from repro.dol.labeling import DOL
from repro.dol.stream import build_dol_streaming
from repro.secure.dissemination import HOIST, PRUNE, filter_xml
from repro.xmark.generator import XMarkConfig, generate_document
from repro.xmltree.document import Document


def main() -> None:
    doc = generate_document(XMarkConfig(n_items=80, seed=5))
    xml = serialize(doc.to_tree())
    print(f"publisher document: {len(doc)} nodes, {len(xml)} bytes of XML")

    # Three subscriber profiles with correlated rights.
    matrix = generate_correlated_acl(
        doc,
        n_subjects=3,
        n_profiles=2,
        mutation_rate=0.01,
        config=SyntheticACLConfig(accessibility_ratio=0.7, seed=9),
    )
    dol = DOL.from_matrix(matrix)
    print(
        f"subscription DOL: {dol.n_transitions} transitions, "
        f"{len(dol.codebook)} codebook entries"
    )

    for subject in range(3):
        pruned = filter_xml(xml, dol, subject, PRUNE)
        hoisted = filter_xml(xml, dol, subject, HOIST)
        kept_prune = len(parse(pruned).find_all("item")) if pruned else 0
        print(
            f"subscriber {subject}: pruned feed {len(pruned):>7} bytes "
            f"({kept_prune} items), hoisted feed {len(hoisted):>7} bytes"
        )

    # The DOL itself can be produced in the same single pass over the raw
    # text — here labeling every <mailbox> subtree as private.
    private = {"mailbox"}

    def label(pos, tag, path):
        on_private_path = tag in private or any(t in private for t in path)
        return 0b0 if on_private_path else 0b1

    streamed = build_dol_streaming(xml, 1, label)
    public = filter_xml(xml, streamed, 0, PRUNE)
    kept = Document.from_tree(parse(public))
    print(
        f"\nstreaming build: mailboxes redacted on the fly — "
        f"{streamed.n_transitions} transitions; "
        f"{len(kept)} of {len(doc)} nodes disseminated, "
        f"{len(kept.positions_with_tag('mailbox'))} mailboxes remain"
    )


if __name__ == "__main__":
    main()
