"""Quickstart: fine-grained XML access control with DOL in five minutes.

Run with: python examples/quickstart.py
"""

from repro import DOL, Policy, QueryEngine, parse
from repro.xmltree.document import Document

CATALOG = """
<library>
  <section name="public">
    <book><title>XML Querying</title><price>30</price></book>
    <book><title>Storage Systems</title><price>45</price></book>
  </section>
  <section name="restricted">
    <book><title>Internal Roadmap</title><price>0</price></book>
    <report><title>Acquisition Plan</title></report>
  </section>
</library>
"""

ALICE, BOB = 0, 1  # subject ids


def main() -> None:
    # 1. Parse the XML and flatten it into document-order form.
    doc = Document.from_tree(parse(CATALOG))
    print(f"parsed {len(doc)} element nodes")

    # 2. Specify access rules; compile them (with Most-Specific-Override
    #    propagation) into a per-node accessibility matrix.
    policy = Policy(doc, n_subjects=2)
    policy.grant(ALICE, "/library")              # alice: everything...
    policy.deny(ALICE, "//report")               # ...except reports
    policy.grant(BOB, "/library/section")        # bob: sections, but the
    restricted = doc.positions_with_tag("section")[1]
    policy.deny(BOB, restricted)                 # ...the restricted one is pruned
    matrix = policy.compile()

    # 3. Compress the accessibility map into a DOL: only nodes whose
    #    access control list differs from their document-order predecessor
    #    are recorded, and each distinct list is stored once.
    dol = DOL.from_matrix(matrix)
    print(
        f"DOL: {dol.n_transitions} transition nodes (of {len(doc)} nodes), "
        f"{len(dol.codebook)} codebook entries"
    )

    # 4. Evaluate twig queries securely.
    engine = QueryEngine.build(doc, matrix)
    for subject, name in ((ALICE, "alice"), (BOB, "bob")):
        result = engine.evaluate("//book/title", subject=subject)
        titles = [doc.text(pos) for pos in result.positions]
        print(f"{name} sees book titles: {titles}")

    # Non-secure evaluation for comparison.
    every_title = engine.evaluate("//title")
    print(f"all titles in the document: {every_title.n_answers}")


if __name__ == "__main__":
    main()
