"""Secure querying of hospital records — the classic fine-grained ACL story.

A patient-records document where different roles see different parts:

- doctors read everything clinical;
- nurses read observations but not psychiatric notes;
- billing reads invoices and demographics, nothing clinical.

Demonstrates rule-based specification, both secure-evaluation semantics
(Cho pattern-matching vs Gabillon–Bruno views), and DOL compression of the
resulting multi-subject accessibility map.

Run with: python examples/hospital_records.py
"""

import random

from repro import CHO, DOL, VIEW, Policy, QueryEngine
from repro.xmltree.document import Document
from repro.xmltree.node import Node

DOCTOR, NURSE, BILLING = 0, 1, 2
ROLES = {DOCTOR: "doctor", NURSE: "nurse", BILLING: "billing"}


def build_records(n_patients: int = 50, seed: int = 4) -> Document:
    """Generate a synthetic patient-records document."""
    rng = random.Random(seed)
    root = Node("hospital")
    for pid in range(n_patients):
        patient = root.append(Node("patient", attrs={"id": f"p{pid}"}))
        demographics = patient.append(Node("demographics"))
        demographics.append(Node("name", f"Patient {pid}"))
        demographics.append(Node("dob", f"19{rng.randint(40, 99)}"))
        clinical = patient.append(Node("clinical"))
        for _ in range(rng.randint(1, 3)):
            visit = clinical.append(Node("visit"))
            visit.append(Node("observation", rng.choice(
                ("stable", "improving", "deteriorating")
            )))
            if rng.random() < 0.3:
                note = visit.append(Node("psychnote"))
                note.append(Node("text", "confidential"))
        billing = patient.append(Node("billing"))
        billing.append(Node("invoice", f"{rng.randint(100, 2000)}"))
    return Document.from_tree(root)


def main() -> None:
    doc = build_records()
    print(f"records document: {len(doc)} nodes")

    policy = Policy(doc, n_subjects=3)
    policy.grant(DOCTOR, "/hospital")
    policy.grant(NURSE, "/hospital")
    policy.deny(NURSE, "//psychnote")
    policy.deny(NURSE, "//billing")
    policy.grant(BILLING, "/hospital")
    policy.deny(BILLING, "//clinical")
    # ...but billing may audit bare observations (not the visit context):
    policy.grant(BILLING, "//observation")
    matrix = policy.compile()

    dol = DOL.from_matrix(matrix)
    print(
        f"DOL: {dol.n_transitions} transitions "
        f"({dol.transition_density():.1%} of nodes), "
        f"{len(dol.codebook)} distinct access control lists"
    )

    engine = QueryEngine.build(doc, matrix)
    queries = {
        "observations": "//visit/observation",
        "psych notes": "//psychnote/text",
        "invoices": "//billing/invoice",
    }
    header = f"{'query':>14} | " + " | ".join(f"{r:>7}" for r in ROLES.values())
    print("\nanswers per role (Cho pattern-matching semantics)")
    print(header)
    for label, query in queries.items():
        counts = [
            engine.evaluate(query, subject=s).n_answers for s in ROLES
        ]
        print(f"{label:>14} | " + " | ".join(f"{c:>7}" for c in counts))

    # The two secure semantics disagree exactly here: billing may read
    # <observation> nodes, but their ancestors (<clinical>, <visit>) are
    # denied. Cho semantics returns them (//observation binds only the
    # observation); Gabillon-Bruno view semantics prunes the whole denied
    # subtree.
    cho = engine.evaluate("//observation", subject=BILLING, semantics=CHO)
    view = engine.evaluate("//observation", subject=BILLING, semantics=VIEW)
    print(
        f"\nbilling + //observation: Cho={cho.n_answers} answers, "
        f"view={view.n_answers} (denied <clinical> subtrees pruned)"
    )

    # Revoke a nurse's access to one patient's whole record and re-query.
    patient0 = doc.positions_with_tag("patient")[0]
    from repro.dol.updates import DOLUpdater

    updater = DOLUpdater(dol)
    delta = updater.set_subject_accessibility(
        patient0, doc.subtree_end(patient0), NURSE, False
    )
    print(
        f"\nrevoked nurse on patient 0: transition delta {delta:+d} "
        f"(Proposition 1 guarantees <= +2)"
    )
    engine2 = QueryEngine(doc, dol=dol)
    before = engine.evaluate("//visit/observation", subject=NURSE).n_answers
    after = engine2.evaluate("//visit/observation", subject=NURSE).n_answers
    print(f"nurse observations before={before} after={after}")


if __name__ == "__main__":
    main()
