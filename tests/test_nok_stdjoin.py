"""Unit tests for Stack-Tree-Desc and the path accessibility index."""

import random

import pytest

from repro.dol.labeling import DOL
from repro.nok.stdjoin import PathAccessIndex, secure_stack_tree_desc, stack_tree_desc
from repro.xmltree.document import NO_NODE


def brute_force_pairs(doc, ancestors, descendants):
    return [
        (a, d)
        for d in descendants
        for a in ancestors
        if doc.is_ancestor(a, d)
    ]


class TestStackTreeDesc:
    def test_basic_join(self, paper_doc):
        # e (4) is an ancestor of i..l (8..11); h (7) of i..l as well.
        pairs = stack_tree_desc([4, 7], [8, 9], paper_doc.subtree_end)
        assert sorted(pairs) == [(4, 8), (4, 9), (7, 8), (7, 9)]

    def test_non_ancestors_excluded(self, paper_doc):
        pairs = stack_tree_desc([1, 2], [3, 8], paper_doc.subtree_end)
        assert pairs == []

    def test_equal_position_not_proper_ancestor(self, paper_doc):
        pairs = stack_tree_desc([4], [4], paper_doc.subtree_end)
        assert pairs == []

    def test_nested_ancestors_all_reported(self, paper_doc):
        # 0 (a), 4 (e), 7 (h) all contain 8 (i).
        pairs = stack_tree_desc([0, 4, 7], [8], paper_doc.subtree_end)
        assert sorted(pairs) == [(0, 8), (4, 8), (7, 8)]

    def test_matches_brute_force_random(self, paper_doc):
        rng = random.Random(3)
        for _ in range(50):
            ancestors = sorted(rng.sample(range(12), rng.randint(0, 6)))
            descendants = sorted(rng.sample(range(12), rng.randint(0, 6)))
            got = sorted(stack_tree_desc(ancestors, descendants, paper_doc.subtree_end))
            want = sorted(brute_force_pairs(paper_doc, ancestors, descendants))
            assert got == want

    def test_matches_brute_force_xmark(self, xmark_doc):
        rng = random.Random(4)
        n = len(xmark_doc)
        ancestors = sorted(rng.sample(range(n), 80))
        descendants = sorted(rng.sample(range(n), 80))
        got = sorted(stack_tree_desc(ancestors, descendants, xmark_doc.subtree_end))
        want = sorted(brute_force_pairs(xmark_doc, ancestors, descendants))
        assert got == want

    def test_pair_filter_applied(self, paper_doc):
        pairs = stack_tree_desc(
            [0], [1, 2, 3], paper_doc.subtree_end, pair_filter=lambda a, d: d != 2
        )
        assert sorted(pairs) == [(0, 1), (0, 3)]


class TestPathAccessIndex:
    def make_index(self, doc, vector, subject=0):
        dol = DOL.from_masks([int(v) for v in vector], 1)
        return PathAccessIndex(doc, dol, subject)

    def test_all_accessible(self, paper_doc):
        index = self.make_index(paper_doc, [True] * 12)
        assert all(index.deepest_blocked[pos] == NO_NODE for pos in range(12))
        assert index.path_accessible(0, 11)

    def test_blocked_node_recorded(self, paper_doc):
        vector = [True] * 12
        vector[7] = False  # h blocked
        index = self.make_index(paper_doc, vector)
        assert index.deepest_blocked[7] == 7
        assert index.deepest_blocked[8] == 7  # i inherits the block
        assert index.deepest_blocked[4] == NO_NODE

    def test_node_accessible(self, paper_doc):
        vector = [True] * 12
        vector[7] = False
        index = self.make_index(paper_doc, vector)
        assert not index.node_accessible(7)
        assert index.node_accessible(8)

    def test_path_blocked_in_middle(self, paper_doc):
        vector = [True] * 12
        vector[4] = False  # e blocked: a -> e -> h path is broken
        index = self.make_index(paper_doc, vector)
        assert not index.path_accessible(0, 7)
        assert not index.path_accessible(4, 7)  # e itself is blocked
        # but within e's subtree, h -> i is fine
        assert index.path_accessible(7, 8)

    def test_block_above_ancestor_ignored(self, paper_doc):
        vector = [True] * 12
        vector[0] = False  # the root itself
        index = self.make_index(paper_doc, vector)
        # path from e (4) down to i (8) doesn't include the root
        assert index.path_accessible(4, 8)

    def test_deeper_block_overrides(self, paper_doc):
        vector = [True] * 12
        vector[4] = False
        vector[7] = False
        index = self.make_index(paper_doc, vector)
        assert index.deepest_blocked[8] == 7


class TestSecureJoin:
    def test_blocked_paths_pruned(self, paper_doc):
        vector = [True] * 12
        vector[7] = False  # h blocked
        dol = DOL.from_masks([int(v) for v in vector], 1)
        index = PathAccessIndex(paper_doc, dol, 0)
        # join e (4) with descendants {5, 8}: 8 is below blocked h
        pairs = secure_stack_tree_desc([4], [5, 8], paper_doc.subtree_end, index)
        assert pairs == [(4, 5)]

    def test_unblocked_equals_plain_join(self, paper_doc):
        dol = DOL.from_masks([1] * 12, 1)
        index = PathAccessIndex(paper_doc, dol, 0)
        plain = stack_tree_desc([0, 4], [8, 9], paper_doc.subtree_end)
        secure = secure_stack_tree_desc([0, 4], [8, 9], paper_doc.subtree_end, index)
        assert plain == secure
