"""Unit tests for the LRU buffer pool."""

import pytest

from repro.errors import StorageError
from repro.storage.buffer import BufferPool, BufferStats
from repro.storage.pager import CHECKSUM_SIZE, Pager

USABLE = 128 - CHECKSUM_SIZE


def payload(fill: bytes) -> bytes:
    """A 128-byte page image: ``fill`` bytes plus a zeroed trailer."""
    return fill * USABLE + bytes(CHECKSUM_SIZE)


@pytest.fixture
def pager():
    p = Pager(page_size=128)
    for index in range(8):
        page_id = p.allocate()
        p.write_page(page_id, payload(bytes([index])))
    p.stats.reset()
    return p


class TestCaching:
    def test_hit_avoids_physical_read(self, pager):
        pool = BufferPool(pager, capacity=4)
        pool.get(0)
        pool.get(0)
        assert pager.stats.reads == 1
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1
        assert pool.stats.logical_reads == 2

    def test_contents_correct(self, pager):
        pool = BufferPool(pager, capacity=2)
        assert pool.get(3)[:USABLE] == bytes([3]) * USABLE
        assert pool.get(3)[:USABLE] == bytes([3]) * USABLE

    def test_capacity_bound(self, pager):
        pool = BufferPool(pager, capacity=2)
        for page_id in range(5):
            pool.get(page_id)
        assert len(pool) <= 2

    def test_lru_eviction_order(self, pager):
        pool = BufferPool(pager, capacity=2)
        pool.get(0)
        pool.get(1)
        pool.get(0)  # refresh page 0
        pool.get(2)  # evicts page 1, not 0
        assert pool.resident(0)
        assert not pool.resident(1)

    def test_hit_ratio(self, pager):
        pool = BufferPool(pager, capacity=4)
        pool.get(0)
        pool.get(0)
        pool.get(0)
        pool.get(1)
        assert pool.stats.hit_ratio == pytest.approx(0.5)

    def test_capacity_must_be_positive(self, pager):
        with pytest.raises(StorageError):
            BufferPool(pager, capacity=0)


class TestTouchAndFetch:
    def test_touch_counts_without_copying(self, pager):
        pool = BufferPool(pager, capacity=4)
        assert not pool.touch(0)  # miss recorded
        pool.fetch(0)  # physical read, no extra logical count
        assert pool.touch(0)  # now a hit
        assert pool.stats.logical_reads == 2
        assert pager.stats.reads == 1

    def test_fetch_of_resident_page_is_free(self, pager):
        pool = BufferPool(pager, capacity=4)
        pool.get(2)
        pager.stats.reset()
        assert pool.fetch(2)[:USABLE] == bytes([2]) * USABLE
        assert pager.stats.reads == 0


class TestWriteBack:
    def test_put_and_flush(self, pager):
        pool = BufferPool(pager, capacity=4)
        pool.put(1, payload(b"x"))
        assert pager.read_page(1)[:USABLE] == bytes([1]) * USABLE  # not yet flushed
        pool.flush(1)
        assert pager.read_page(1)[:USABLE] == b"x" * USABLE
        assert pool.stats.dirty_writes == 1

    def test_eviction_writes_dirty_page(self, pager):
        pool = BufferPool(pager, capacity=1)
        pool.put(0, payload(b"d"))
        pool.get(1)  # evicts dirty page 0
        assert pager.read_page(0)[:USABLE] == b"d" * USABLE

    def test_flush_all(self, pager):
        pool = BufferPool(pager, capacity=4)
        pool.put(0, payload(b"a"))
        pool.put(1, payload(b"b"))
        pool.flush_all()
        assert pager.read_page(0)[:USABLE] == b"a" * USABLE
        assert pager.read_page(1)[:USABLE] == b"b" * USABLE

    def test_clear_flushes_and_empties(self, pager):
        pool = BufferPool(pager, capacity=4)
        pool.put(0, payload(b"c"))
        pool.clear()
        assert len(pool) == 0
        assert pager.read_page(0)[:USABLE] == b"c" * USABLE

    def test_put_wrong_size_rejected(self, pager):
        pool = BufferPool(pager, capacity=4)
        with pytest.raises(StorageError):
            pool.put(0, b"short")


class TestEvictionCallback:
    def test_on_evict_called(self, pager):
        evicted = []
        pool = BufferPool(pager, capacity=1, on_evict=evicted.append)
        pool.get(0)
        pool.get(1)
        assert evicted == [0]

    def test_clear_notifies(self, pager):
        evicted = []
        pool = BufferPool(pager, capacity=4, on_evict=evicted.append)
        pool.get(0)
        pool.get(1)
        pool.clear()
        assert sorted(evicted) == [0, 1]

    def test_write_back_precedes_on_evict(self, pager):
        """The callback must observe the victim already persisted."""
        observed = []

        def on_evict(page_id):
            observed.append((page_id, pager.read_page(page_id)))

        pool = BufferPool(pager, capacity=1, on_evict=on_evict)
        pool.put(0, payload(b"w"))
        pool.get(1)  # evicts dirty page 0
        assert [(pid, data[:USABLE]) for pid, data in observed] == [
            (0, b"w" * USABLE)
        ]
        assert pool.stats.dirty_writes == 1

    def test_touch_hit_refreshes_recency_for_eviction(self, pager):
        evicted = []
        pool = BufferPool(pager, capacity=2, on_evict=evicted.append)
        pool.get(0)
        pool.get(1)
        assert pool.touch(0)  # page 1 becomes least recently used
        pool.get(2)
        assert evicted == [1]

    def test_clean_eviction_skips_write_back(self, pager):
        pool = BufferPool(pager, capacity=1)
        pool.get(0)
        pool.get(1)
        assert pool.stats.evictions == 1
        assert pool.stats.dirty_writes == 0
        assert pager.stats.writes == 0


class TestBufferStats:
    def test_hit_ratio_with_zero_reads(self):
        assert BufferStats().hit_ratio == 0.0

    def test_reset_zeroes_all_counters(self, pager):
        pool = BufferPool(pager, capacity=1)
        pool.put(0, payload(b"r"))
        pool.get(1)  # dirty eviction: every counter is nonzero
        stats = pool.stats
        assert stats.logical_reads and stats.evictions and stats.dirty_writes
        stats.reset()
        assert (
            stats.logical_reads,
            stats.hits,
            stats.misses,
            stats.evictions,
            stats.dirty_writes,
        ) == (0, 0, 0, 0, 0)
        assert stats.hit_ratio == 0.0
