"""Unit tests for the page store."""

import os

import pytest

from repro.errors import StorageError
from repro.storage.pager import Pager


@pytest.fixture(params=["memory", "file"])
def pager(request, tmp_path):
    if request.param == "memory":
        with Pager(page_size=256) as p:
            yield p
    else:
        path = str(tmp_path / "pages.db")
        with Pager(path, page_size=256) as p:
            yield p


class TestAllocation:
    def test_ids_are_sequential(self, pager):
        assert [pager.allocate() for _ in range(3)] == [0, 1, 2]
        assert pager.n_pages == 3

    def test_new_pages_are_zeroed(self, pager):
        page_id = pager.allocate()
        assert pager.read_page(page_id) == bytes(256)


class TestReadWrite:
    def test_roundtrip(self, pager):
        page_id = pager.allocate()
        data = bytes(range(256))
        pager.write_page(page_id, data)
        assert pager.read_page(page_id) == data

    def test_pages_are_independent(self, pager):
        a, b = pager.allocate(), pager.allocate()
        pager.write_page(a, b"a" * 256)
        pager.write_page(b, b"b" * 256)
        assert pager.read_page(a) == b"a" * 256
        assert pager.read_page(b) == b"b" * 256

    def test_wrong_size_rejected(self, pager):
        page_id = pager.allocate()
        with pytest.raises(StorageError):
            pager.write_page(page_id, b"short")

    def test_unknown_page_rejected(self, pager):
        with pytest.raises(StorageError):
            pager.read_page(0)
        with pytest.raises(StorageError):
            pager.write_page(5, bytes(256))


class TestStats:
    def test_counters(self, pager):
        page_id = pager.allocate()
        pager.write_page(page_id, bytes(256))
        pager.read_page(page_id)
        pager.read_page(page_id)
        assert pager.stats.allocations == 1
        assert pager.stats.writes == 1
        assert pager.stats.reads == 2
        pager.stats.reset()
        assert pager.stats.reads == 0


class TestFileBacking:
    def test_data_lands_in_file(self, tmp_path):
        path = str(tmp_path / "x.db")
        with Pager(path, page_size=128) as pager:
            page_id = pager.allocate()
            pager.write_page(page_id, b"z" * 128)
            pager.sync()
            assert os.path.getsize(path) == 128

    def test_tiny_page_size_rejected(self):
        with pytest.raises(StorageError):
            Pager(page_size=16)
