"""Unit tests for the page store."""

import os

import pytest

from repro.errors import PageCorruptionError, StorageError
from repro.storage.pager import (
    CHECKSUM_SIZE,
    Pager,
    page_checksum,
    stamp_page,
    verify_page_bytes,
)

PAGE = 256
USABLE = PAGE - CHECKSUM_SIZE


def payload(fill: bytes, page_size: int = PAGE) -> bytes:
    """A full page whose usable bytes are ``fill`` and trailer is zero."""
    usable = page_size - CHECKSUM_SIZE
    body = (fill * usable)[:usable]
    return body + bytes(CHECKSUM_SIZE)


@pytest.fixture(params=["memory", "file"])
def pager(request, tmp_path):
    if request.param == "memory":
        with Pager(page_size=PAGE) as p:
            yield p
    else:
        path = str(tmp_path / "pages.db")
        with Pager(path, page_size=PAGE) as p:
            yield p


class TestAllocation:
    def test_ids_are_sequential(self, pager):
        assert [pager.allocate() for _ in range(3)] == [0, 1, 2]
        assert pager.n_pages == 3

    def test_new_pages_are_zeroed(self, pager):
        page_id = pager.allocate()
        assert pager.read_page(page_id) == bytes(PAGE)


class TestReadWrite:
    def test_roundtrip(self, pager):
        page_id = pager.allocate()
        data = bytes(range(USABLE)) + bytes(CHECKSUM_SIZE)
        pager.write_page(page_id, data)
        assert pager.read_page(page_id)[:USABLE] == data[:USABLE]

    def test_pages_are_independent(self, pager):
        a, b = pager.allocate(), pager.allocate()
        pager.write_page(a, payload(b"a"))
        pager.write_page(b, payload(b"b"))
        assert pager.read_page(a)[:USABLE] == b"a" * USABLE
        assert pager.read_page(b)[:USABLE] == b"b" * USABLE

    def test_wrong_size_rejected(self, pager):
        page_id = pager.allocate()
        with pytest.raises(StorageError):
            pager.write_page(page_id, b"short")

    def test_unknown_page_rejected(self, pager):
        with pytest.raises(StorageError):
            pager.read_page(0)
        with pytest.raises(StorageError):
            pager.write_page(5, bytes(PAGE))

    def test_nonzero_trailer_rejected(self, pager):
        """Data in the reserved trailer means the caller miscounted."""
        page_id = pager.allocate()
        with pytest.raises(StorageError):
            pager.write_page(page_id, bytes(range(PAGE)))


class TestChecksums:
    def test_usable_size(self, pager):
        assert pager.usable_size == USABLE

    def test_read_verifies_stamp(self, pager):
        page_id = pager.allocate()
        pager.write_page(page_id, payload(b"q"))
        stored = pager.read_page(page_id)
        assert stored[-CHECKSUM_SIZE:] != bytes(CHECKSUM_SIZE)
        verify_page_bytes(stored, page_id)  # must not raise

    def test_bit_flip_detected(self, pager):
        page_id = pager.allocate()
        pager.write_page(page_id, payload(b"q"))
        smashed = bytearray(pager.read_page(page_id))
        smashed[7] ^= 0x10
        pager.write_page_raw(page_id, bytes(smashed))
        with pytest.raises(PageCorruptionError) as excinfo:
            pager.read_page(page_id)
        assert excinfo.value.page_id == page_id
        assert excinfo.value.expected != excinfo.value.actual

    def test_raw_read_skips_verification(self, pager):
        page_id = pager.allocate()
        pager.write_page(page_id, payload(b"q"))
        smashed = bytearray(pager.read_page(page_id))
        smashed[7] ^= 0x10
        pager.write_page_raw(page_id, bytes(smashed))
        assert pager.read_page_raw(page_id) == bytes(smashed)

    def test_stamp_and_checksum_agree(self):
        data = payload(b"s")
        stamped = stamp_page(data)
        assert stamped[:USABLE] == data[:USABLE]
        verify_page_bytes(stamped, 0)
        assert page_checksum(stamped[:USABLE]) == int.from_bytes(
            stamped[-CHECKSUM_SIZE:], "little"
        )


class TestStats:
    def test_counters(self, pager):
        page_id = pager.allocate()
        pager.write_page(page_id, bytes(PAGE))
        pager.read_page(page_id)
        pager.read_page(page_id)
        assert pager.stats.allocations == 1
        assert pager.stats.writes == 1
        assert pager.stats.reads == 2
        pager.stats.reset()
        assert pager.stats.reads == 0


class TestFileBacking:
    def test_data_lands_in_file(self, tmp_path):
        path = str(tmp_path / "x.db")
        with Pager(path, page_size=128) as pager:
            page_id = pager.allocate()
            pager.write_page(page_id, payload(b"z", 128))
            pager.sync()
            assert os.path.getsize(path) == 128

    def test_tiny_page_size_rejected(self):
        with pytest.raises(StorageError):
            Pager(page_size=16)

    def test_open_existing_rejects_ragged_file(self, tmp_path):
        path = str(tmp_path / "ragged.db")
        with open(path, "wb") as handle:
            handle.write(bytes(100))  # not a multiple of 128
        with pytest.raises(StorageError):
            Pager.open_existing(path, page_size=128)

    def test_open_existing_failure_releases_handle(self, tmp_path):
        """The pager must not leak its file handle when validation fails."""
        path = str(tmp_path / "ragged.db")
        with open(path, "wb") as handle:
            handle.write(bytes(100))
        with pytest.raises(StorageError):
            Pager.open_existing(path, page_size=128)
        os.replace(path, path + ".moved")  # fails on Windows if still open

    def test_closed_property(self, tmp_path):
        path = str(tmp_path / "c.db")
        pager = Pager(path, page_size=128)
        assert not pager.closed
        pager.close()
        assert pager.closed
