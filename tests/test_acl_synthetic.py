"""Unit tests for the Section 5 synthetic ACL generator."""

import pytest

from repro.acl.synthetic import (
    SyntheticACLConfig,
    generate_correlated_acl,
    generate_synthetic_acl,
    single_subject_labels,
)
from repro.dol.labeling import DOL
from repro.errors import AccessControlError


class TestConfig:
    def test_defaults_valid(self):
        SyntheticACLConfig()

    def test_bad_ratios_rejected(self):
        with pytest.raises(AccessControlError):
            SyntheticACLConfig(propagation_ratio=0.0)
        with pytest.raises(AccessControlError):
            SyntheticACLConfig(propagation_ratio=1.5)
        with pytest.raises(AccessControlError):
            SyntheticACLConfig(accessibility_ratio=-0.1)


class TestSingleSubject:
    def test_deterministic(self, xmark_doc):
        config = SyntheticACLConfig(seed=12)
        assert single_subject_labels(xmark_doc, config) == single_subject_labels(
            xmark_doc, config
        )

    def test_every_node_labeled(self, xmark_doc):
        vector = single_subject_labels(xmark_doc, SyntheticACLConfig(seed=1))
        assert len(vector) == len(xmark_doc)

    def test_accessibility_ratio_tracks_parameter(self, xmark_doc):
        for target in (0.2, 0.5, 0.8):
            config = SyntheticACLConfig(
                accessibility_ratio=target, propagation_ratio=0.3, seed=3
            )
            vector = single_subject_labels(xmark_doc, config)
            observed = sum(vector) / len(vector)
            assert abs(observed - target) < 0.2

    def test_extreme_ratios(self, xmark_doc):
        all_no = single_subject_labels(
            xmark_doc, SyntheticACLConfig(accessibility_ratio=0.0, seed=1)
        )
        assert not any(all_no)
        all_yes = single_subject_labels(
            xmark_doc, SyntheticACLConfig(accessibility_ratio=1.0, seed=1)
        )
        assert all(all_yes)

    def test_structural_locality_reduces_transitions(self, xmark_doc):
        """More seeds (higher propagation ratio) => more transitions."""
        def transitions(propagation):
            config = SyntheticACLConfig(
                propagation_ratio=propagation, accessibility_ratio=0.5, seed=7
            )
            vector = single_subject_labels(xmark_doc, config)
            return DOL.from_vector(vector).n_transitions

        assert transitions(0.05) < transitions(0.5)


class TestMultiSubject:
    def test_matrix_shape(self, xmark_doc):
        matrix = generate_synthetic_acl(xmark_doc, n_subjects=4)
        assert matrix.n_subjects == 4
        assert matrix.n_nodes == len(xmark_doc)

    def test_subjects_differ(self, xmark_doc):
        matrix = generate_synthetic_acl(xmark_doc, n_subjects=2)
        assert matrix.subject_vector(0) != matrix.subject_vector(1)


class TestCorrelated:
    def test_zero_mutation_copies_profiles(self, xmark_doc):
        matrix = generate_correlated_acl(
            xmark_doc, n_subjects=10, n_profiles=2, mutation_rate=0.0
        )
        distinct = {tuple(matrix.subject_vector(s)) for s in range(10)}
        assert len(distinct) <= 2

    def test_correlation_shrinks_codebook(self, xmark_doc):
        correlated = generate_correlated_acl(
            xmark_doc, n_subjects=8, n_profiles=2, mutation_rate=0.01
        )
        independent = generate_synthetic_acl(xmark_doc, n_subjects=8)
        dol_c = DOL.from_matrix(correlated)
        dol_i = DOL.from_matrix(independent)
        assert len(dol_c.codebook) < len(dol_i.codebook)
        assert dol_c.n_transitions < dol_i.n_transitions

    def test_bad_parameters_rejected(self, xmark_doc):
        with pytest.raises(AccessControlError):
            generate_correlated_acl(xmark_doc, 2, n_profiles=0)
        with pytest.raises(AccessControlError):
            generate_correlated_acl(xmark_doc, 2, mutation_rate=2.0)
