"""Tests for QueryEngine.explain plan descriptions."""

from repro.bench.queries import QUERIES
from repro.nok.engine import QueryEngine


class TestExplain:
    def test_single_subtree_plan(self, xmark_doc):
        engine = QueryEngine.build(xmark_doc)
        plan = engine.explain(QUERIES["Q1"])
        assert "NoK subtrees: 1" in plan
        assert "AD joins: 0" in plan
        assert "<site>" in plan
        assert "(query root)" in plan

    def test_join_plan(self, xmark_doc):
        engine = QueryEngine.build(xmark_doc)
        plan = engine.explain(QUERIES["Q4"])
        assert "NoK subtrees: 2" in plan
        assert "AD joins: 1" in plan
        assert "join order (bottom-up): 1 -> 0" in plan

    def test_candidate_counts_match_index(self, xmark_doc):
        engine = QueryEngine.build(xmark_doc)
        plan = engine.explain("//keyword")
        n = engine.index.count("keyword")
        assert f"{n} index candidates" in plan

    def test_returning_marker(self, xmark_doc):
        engine = QueryEngine.build(xmark_doc)
        plan = engine.explain("//listitem//keyword")
        lines = [l for l in plan.splitlines() if "[returning]" in l]
        assert len(lines) == 1
        assert "<keyword>" in lines[0]

    def test_every_table1_query_explains(self, xmark_doc):
        engine = QueryEngine.build(xmark_doc)
        for qid, query in QUERIES.items():
            plan = engine.explain(query)
            assert plan.startswith("query: /"), qid
