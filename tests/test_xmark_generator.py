"""Unit tests for the XMark-like generator."""

import pytest

from repro.errors import ReproError
from repro.xmark.generator import XMarkConfig, generate, generate_document


class TestDeterminism:
    def test_same_seed_same_document(self):
        a = generate(XMarkConfig(n_items=20, seed=9))
        b = generate(XMarkConfig(n_items=20, seed=9))
        assert a.structurally_equal(b)

    def test_different_seed_different_document(self):
        a = generate(XMarkConfig(n_items=20, seed=1))
        b = generate(XMarkConfig(n_items=20, seed=2))
        assert not a.structurally_equal(b)


class TestStructure:
    @pytest.fixture(scope="class")
    def doc(self):
        return generate_document(XMarkConfig(n_items=60, seed=4))

    def test_top_level_sections(self, doc):
        root = doc.to_tree()
        assert root.tag == "site"
        assert [c.tag for c in root.children] == [
            "regions",
            "categories",
            "people",
            "open_auctions",
        ]

    def test_item_count(self, doc):
        assert len(doc.positions_with_tag("item")) == 60

    def test_items_have_q1_children(self, doc):
        root = doc.to_tree()
        for region in root.child("regions").children:
            for item in region.children:
                child_tags = {c.tag for c in item.children}
                assert {"location", "name", "quantity"} <= child_tags

    def test_q4_nested_parlists_exist(self, doc):
        # //parlist//parlist must have matches for the join benchmarks.
        parlists = doc.positions_with_tag("parlist")
        assert parlists
        nested = [
            d
            for p in parlists
            for d in doc.descendants(p)
            if doc.tag_name(d) == "parlist"
        ]
        assert nested, "generator must produce recursive parlists"

    def test_q5_listitem_keywords_exist(self, doc):
        listitems = doc.positions_with_tag("listitem")
        assert listitems
        assert any(
            doc.tag_name(d) == "keyword"
            for p in listitems
            for d in doc.descendants(p)
        )

    def test_q6_item_emphs_exist(self, doc):
        assert any(
            doc.tag_name(d) == "emph"
            for p in doc.positions_with_tag("item")
            for d in doc.descendants(p)
        )

    def test_category_descriptions_with_bold(self, doc):
        # Q2/Q3 need category/description/text/bold paths.
        root = doc.to_tree()
        found = False
        for category in root.child("categories").children:
            for description in category.children:
                if description.tag != "description":
                    continue
                for text in description.children:
                    if text.tag == "text" and any(
                        c.tag == "bold" for c in text.children
                    ):
                        found = True
        assert found

    def test_parlist_depth_bounded(self, doc):
        config = XMarkConfig(n_items=60, seed=4)
        parlists = doc.positions_with_tag("parlist")
        for p in parlists:
            nesting = sum(
                1 for a in doc.ancestors(p) if doc.tag_name(a) == "parlist"
            )
            assert nesting < config.max_parlist_depth


class TestScaling:
    def test_size_grows_with_items(self):
        small = generate_document(XMarkConfig(n_items=10, seed=0))
        large = generate_document(XMarkConfig(n_items=100, seed=0))
        # fixed sections (people, auctions) give the small doc a floor,
        # so growth is sublinear at the low end
        assert len(large) > 2 * len(small)

    def test_roughly_twenty_nodes_per_item(self):
        doc = generate_document(XMarkConfig(n_items=200, seed=0))
        assert 10 * 200 < len(doc) < 40 * 200


class TestValidation:
    def test_generated_document_is_consistent(self):
        generate_document(XMarkConfig(n_items=30, seed=3)).validate()

    def test_bad_config_rejected(self):
        with pytest.raises(ReproError):
            XMarkConfig(n_items=0)
        with pytest.raises(ReproError):
            XMarkConfig(parlist_probability=1.5)
        with pytest.raises(ReproError):
            XMarkConfig(parlist_decay=1.0)
