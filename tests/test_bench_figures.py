"""Tests for ASCII figure rendering."""

from repro.bench.figures import print_bars, render_bars, render_series


class TestRenderBars:
    def test_scaled_to_peak(self):
        out = render_bars("chart", [("a", 10.0), ("b", 5.0)], width=10)
        lines = out.splitlines()
        assert lines[0] == "chart"
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 5

    def test_labels_aligned(self):
        out = render_bars("c", [("short", 1.0), ("much-longer", 2.0)])
        lines = out.splitlines()[1:]
        assert lines[0].index("|") == lines[1].index("|")

    def test_values_shown(self):
        out = render_bars("c", [("x", 3.25)])
        assert "3.25" in out

    def test_unit_suffix(self):
        out = render_bars("c", [("x", 2.0)], unit="ms")
        assert "2ms" in out

    def test_empty(self):
        assert "(no data)" in render_bars("c", [])

    def test_zero_values(self):
        out = render_bars("c", [("a", 0.0), ("b", 0.0)])
        assert "#" not in out


class TestRenderSeries:
    def test_grouped_output(self):
        out = render_series(
            "fig",
            ["10%", "20%"],
            [("cam", [1.0, 2.0]), ("dol", [2.0, 4.0])],
        )
        assert out.count("cam") == 2
        assert out.count("10%:") == 1

    def test_global_scaling(self):
        out = render_series("f", ["x"], [("a", [1.0]), ("b", [2.0])], width=10)
        lines = [l for l in out.splitlines() if "|" in l]
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10


class TestPrint:
    def test_print_bars(self, capsys):
        print_bars("cap", [("a", 1.0)])
        assert "cap" in capsys.readouterr().out


class TestStoreVerify:
    def test_clean_store_verifies(self, paper_doc):
        from repro.dol.labeling import DOL
        from repro.storage.nokstore import NoKStore

        store = NoKStore(paper_doc, DOL.from_masks([1] * 12, 1), page_size=96)
        store.verify()

    def test_verify_after_updates(self, paper_doc):
        from repro.dol.labeling import DOL
        from repro.storage.nokstore import NoKStore

        store = NoKStore(paper_doc, DOL.from_masks([0b11] * 12, 2), page_size=96)
        store.update_subject_range(3, 9, 0, False)
        store.verify()

    def test_corruption_detected(self, paper_doc):
        import pytest

        from repro.dol.labeling import DOL
        from repro.errors import StorageError
        from repro.storage.nokstore import NoKStore

        store = NoKStore(paper_doc, DOL.from_masks([1] * 12, 1), page_size=96)
        # smash a page behind the store's back (zeroing the checksum
        # trailer so write_page re-stamps it — a "valid" but wrong page)
        from repro.storage.pager import CHECKSUM_SIZE

        data = bytearray(store.pager.read_page(0))
        data[20] ^= 0xFF
        data[-CHECKSUM_SIZE:] = bytes(CHECKSUM_SIZE)
        store.pager.write_page(0, bytes(data))
        with pytest.raises(StorageError):
            store.verify()
