"""Unit tests for page headers and the in-memory header table."""

import pytest

from repro.dol.codebook import Codebook
from repro.errors import StorageError
from repro.storage.headers import HEADER_SIZE, PageHeader, PageHeaderTable


class TestPageHeader:
    def test_pack_unpack(self):
        header = PageHeader(first_code=9, change_bit=True, n_entries=340)
        again = PageHeader.unpack(header.pack())
        assert (again.first_code, again.change_bit, again.n_entries) == (9, True, 340)

    def test_size(self):
        assert len(PageHeader(0, False, 0).pack()) == HEADER_SIZE


class TestHeaderTable:
    @pytest.fixture
    def table(self):
        table = PageHeaderTable()
        table.append(PageHeader(first_code=0, change_bit=False, n_entries=10))
        table.append(PageHeader(first_code=1, change_bit=True, n_entries=10))
        return table

    @pytest.fixture
    def codebook(self):
        book = Codebook(2)
        book.encode(0b00)  # code 0: nobody
        book.encode(0b01)  # code 1: subject 0 only
        return book

    def test_get_set(self, table):
        assert table.get(0).first_code == 0
        table.set(0, PageHeader(5, True, 3))
        assert table.get(0).first_code == 5
        assert len(table) == 2

    def test_bounds(self, table):
        with pytest.raises(StorageError):
            table.get(2)
        with pytest.raises(StorageError):
            table.set(9, PageHeader(0, False, 0))

    def test_page_skip_when_denied_and_unchanged(self, table, codebook):
        # page 0: first code denies everyone, change bit clear -> skippable
        assert table.page_fully_inaccessible(0, 0, codebook)
        assert table.page_fully_inaccessible(0, 1, codebook)

    def test_no_skip_when_change_bit_set(self, table, codebook):
        # page 1 has other transitions; cannot conclude anything
        assert not table.page_fully_inaccessible(1, 1, codebook)

    def test_no_skip_when_first_code_grants(self, codebook):
        table = PageHeaderTable()
        table.append(PageHeader(first_code=1, change_bit=False, n_entries=5))
        assert not table.page_fully_inaccessible(0, 0, codebook)
        # ...but a different subject is still denied on the whole page
        assert table.page_fully_inaccessible(0, 1, codebook)

    def test_size_accounting(self, table):
        assert table.size_bytes() == 2 * HEADER_SIZE
