"""File-descriptor hygiene of store open/attach failure paths.

Every way :func:`~repro.storage.persist.open_store` or the
:class:`~repro.storage.nokstore.NoKStore` constructor can fail after a
file was opened must close that file again — a long-lived serving
process reopening stores on demand would otherwise bleed descriptors.
The tests monkeypatch the opener classes to capture every instance
created during one induced failure, then assert each is closed.
"""

import json

import pytest

from repro.acl.model import AccessMatrix
from repro.dol.labeling import DOL
from repro.errors import ReproError, StorageError
from repro.storage import persist
from repro.storage.nokstore import NoKStore, wal_path_for
from repro.storage.pager import Pager
from repro.storage.persist import catalog_path_for, open_store, save_store
from repro.storage.wal import WriteAheadLog


@pytest.fixture
def saved_store(tmp_path, paper_doc):
    """A valid on-disk store to corrupt per test."""
    path = str(tmp_path / "doc.pages")
    masks = [0b01] * len(paper_doc)
    dol = DOL.from_masks(masks, 2)
    with NoKStore(paper_doc, dol, path=path, page_size=96) as store:
        save_store(store)
    return path


class _Tracker:
    """Record every pager/WAL opened during one call, for leak checks."""

    def __init__(self, monkeypatch):
        self.pagers = []
        self.wals = []
        tracker = self

        real_open_existing = Pager.open_existing.__func__

        def tracked_open_existing(cls, *args, **kwargs):
            pager = real_open_existing(cls, *args, **kwargs)
            tracker.pagers.append(pager)
            return pager

        real_wal_init = WriteAheadLog.__init__

        def tracked_wal_init(wal_self, *args, **kwargs):
            real_wal_init(wal_self, *args, **kwargs)
            tracker.wals.append(wal_self)

        monkeypatch.setattr(
            Pager, "open_existing", classmethod(tracked_open_existing)
        )
        monkeypatch.setattr(WriteAheadLog, "__init__", tracked_wal_init)

    def assert_all_closed(self):
        assert self.pagers or self.wals, "failure path opened no files?"
        for pager in self.pagers:
            assert pager.closed, f"pager {pager.path} leaked its descriptor"
        for wal in self.wals:
            assert wal._file is None, f"WAL {wal.path} leaked its descriptor"


def edit_catalog(path, **changes):
    catalog_path = catalog_path_for(path)
    with open(catalog_path) as handle:
        catalog = json.load(handle)
    catalog.update(changes)
    with open(catalog_path, "w") as handle:
        json.dump(catalog, handle)


class TestOpenStoreFailureBranches:
    def test_page_rebuild_failure_closes_pager(
        self, saved_store, monkeypatch
    ):
        # Catalog claims more nodes than the pages hold: the rebuild loop
        # completes and the count check raises before the WAL is opened.
        tracker = _Tracker(monkeypatch)
        edit_catalog(saved_store, n_nodes=999, texts=[""] * 999)
        with pytest.raises(StorageError):
            open_store(saved_store)
        tracker.assert_all_closed()

    def test_catalog_codebook_failure_closes_pager(
        self, saved_store, monkeypatch
    ):
        tracker = _Tracker(monkeypatch)
        edit_catalog(saved_store, codebook=["zz-not-hex"])
        with pytest.raises((ValueError, ReproError)):
            open_store(saved_store)
        tracker.assert_all_closed()

    def test_attach_failure_closes_pager_and_wal(
        self, saved_store, monkeypatch
    ):
        # Force the very last step to fail: everything (pager AND wal) is
        # open by then, and both must be closed on the way out.
        tracker = _Tracker(monkeypatch)

        def exploding_attach(*args, **kwargs):
            raise StorageError("injected attach failure")

        monkeypatch.setattr(NoKStore, "attach", classmethod(
            lambda cls, *a, **k: exploding_attach()
        ))
        with pytest.raises(StorageError, match="injected attach failure"):
            open_store(saved_store)
        tracker.assert_all_closed()

    def test_wal_open_failure_closes_pager(self, saved_store, monkeypatch):
        tracker = _Tracker(monkeypatch)

        def exploding_wal_init(wal_self, *args, **kwargs):
            raise StorageError("injected wal failure")

        monkeypatch.setattr(WriteAheadLog, "__init__", exploding_wal_init)
        with pytest.raises(StorageError, match="injected wal failure"):
            open_store(saved_store)
        for pager in tracker.pagers:
            assert pager.closed

    def test_successful_open_keeps_files_open_until_close(self, saved_store):
        store = open_store(saved_store)
        assert not store.pager.closed
        assert store.wal._file is not None
        store.close()
        assert store.pager.closed
        assert store.wal._file is None


class TestConstructorFailureBranches:
    def test_build_failure_closes_pager_and_wal(
        self, tmp_path, paper_doc, monkeypatch
    ):
        path = str(tmp_path / "doc.pages")
        dol = DOL.from_masks([0b01] * len(paper_doc), 2)

        def exploding_build(self):
            raise StorageError("injected build failure")

        monkeypatch.setattr(NoKStore, "_build", exploding_build)
        with pytest.raises(StorageError, match="injected build failure"):
            NoKStore(paper_doc, dol, path=path, page_size=96)
        # No handle survived: the page file and WAL can be replaced freely
        # (on POSIX this is weak evidence, so check the WAL registry too).
        import os

        assert os.path.exists(wal_path_for(path))

    def test_build_failure_closes_tracked_wal(
        self, tmp_path, paper_doc, monkeypatch
    ):
        created = []
        real_wal_init = WriteAheadLog.__init__

        def tracked(wal_self, *args, **kwargs):
            real_wal_init(wal_self, *args, **kwargs)
            created.append(wal_self)

        monkeypatch.setattr(WriteAheadLog, "__init__", tracked)
        monkeypatch.setattr(
            NoKStore,
            "_build",
            lambda self: (_ for _ in ()).throw(StorageError("boom")),
        )
        path = str(tmp_path / "doc.pages")
        dol = DOL.from_masks([0b01] * len(paper_doc), 2)
        with pytest.raises(StorageError):
            NoKStore(paper_doc, dol, path=path, page_size=96)
        assert created and all(wal._file is None for wal in created)

    def test_valuestore_failure_closes_everything(
        self, tmp_path, paper_doc, monkeypatch
    ):
        from repro.storage import valuestore

        created = []
        real_wal_init = WriteAheadLog.__init__

        def tracked(wal_self, *args, **kwargs):
            real_wal_init(wal_self, *args, **kwargs)
            created.append(wal_self)

        monkeypatch.setattr(WriteAheadLog, "__init__", tracked)

        def exploding_valuestore(*args, **kwargs):
            raise StorageError("injected valuestore failure")

        monkeypatch.setattr(
            valuestore, "ValueStore", exploding_valuestore
        )
        path = str(tmp_path / "doc.pages")
        dol = DOL.from_masks([0b01] * len(paper_doc), 2)
        with pytest.raises(StorageError, match="injected valuestore"):
            NoKStore(
                paper_doc, dol, path=path, page_size=96, paged_values=True
            )
        assert created and all(wal._file is None for wal in created)
