"""Tests for evaluation statistics and result metadata."""

import pytest

from repro.acl.model import AccessMatrix
from repro.nok.engine import EvalStats, QueryEngine, QueryResult
from repro.xmltree.builder import tree
from repro.xmltree.document import Document


@pytest.fixture
def engine():
    doc = Document.from_tree(
        tree(("r", ("a", ("b",)), ("a", ("b",)), ("a",)))
    )
    matrix = AccessMatrix(len(doc), 1)
    matrix.grant_range(0, 0, len(doc))
    return QueryEngine.build(doc, matrix, use_store=True, page_size=128)


class TestEvalStats:
    def test_wall_time_recorded(self, engine):
        result = engine.evaluate("//a")
        assert result.stats.wall_time > 0

    def test_candidates_counted(self, engine):
        result = engine.evaluate("//a")
        assert result.stats.candidates == 3

    def test_no_access_checks_when_non_secure(self, engine):
        result = engine.evaluate("//a/b")
        assert result.stats.access_checks == 0

    def test_fully_granted_subject_resolved_statically(self, engine):
        # subject 0 is granted everywhere, so the static pre-pass proves
        # the access class fully accessible and drops the per-node
        # filters: the correct answer with zero runtime access checks
        result = engine.evaluate("//a/b", subject=0)
        assert result.stats.static_allow == 1
        assert result.stats.access_checks == 0
        assert result.n_answers == 2

    def test_access_checks_when_partially_granted(self, engine):
        # revoke one node: the class is neither fully allowed nor fully
        # denied, so the filters stay and every candidate is checked
        engine.store.update_subject_range(3, 4, 0, False)
        result = engine.evaluate("//a/b", subject=0)
        assert result.stats.static_allow == 0
        assert result.stats.static_deny == 0
        assert result.stats.access_checks > 0

    def test_as_dict(self):
        stats = EvalStats(wall_time=1.5, access_checks=3)
        d = stats.as_dict()
        assert d["wall_time"] == 1.5
        assert d["access_checks"] == 3
        assert "candidates" in d

    def test_page_reads_per_query_isolated(self, engine):
        first = engine.evaluate("//a")
        engine.store.drop_caches()
        second = engine.evaluate("//a")
        # counters are per-evaluation deltas, not cumulative
        assert second.stats.physical_page_reads <= first.stats.physical_page_reads + 2


class TestQueryResult:
    def test_n_answers_is_distinct_positions(self):
        result = QueryResult(positions=[1, 4, 9], n_bindings=7)
        assert result.n_answers == 3
        assert result.n_bindings == 7

    def test_empty_result(self):
        result = QueryResult()
        assert result.n_answers == 0
        assert result.positions == []

    def test_bindings_at_least_answers(self, engine):
        result = engine.evaluate("//a/b")
        assert result.n_bindings >= result.n_answers


class TestStreamHelpers:
    def test_masks_in_document_order(self):
        from repro.dol.stream import masks_in_document_order
        from repro.xmltree import parser

        events = parser.iterparse("<a><b/><c><d/></c></a>")
        masks = list(
            masks_in_document_order(events, lambda pos, tag, path: pos * 10)
        )
        assert masks == [0, 10, 20, 30]
