"""Property-based tests (hypothesis) for the bulk ``access_runs`` API.

The contract every backend must honor (DESIGN.md §11): for any subject
set and any window ``[lo, hi)``, ``access_runs`` yields maximal runs that
tile the window exactly — no gaps, no overlaps, no two adjacent runs with
the same flag — and each run's flag equals the per-node ``accessible``
answer for every position it covers. The DOL decodes runs natively from
transition codes and the CAM from entry walks, so these properties are
the proof that the fast paths agree with the probe interface bit for bit.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acl.model import AccessMatrix
from repro.labeling.registry import available_backends, build_labeling
from repro.labeling.runs import RunList, union_runs
from tests.conftest import random_document

N_SUBJECTS = 3


@st.composite
def labeled_document(draw):
    """A random document plus a random per-node / per-subject ACL grid."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=1, max_value=60))
    doc = random_document(random.Random(seed), n)
    masks = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << N_SUBJECTS) - 1),
            min_size=n,
            max_size=n,
        )
    )
    matrix = AccessMatrix(n, N_SUBJECTS)
    for pos, mask in enumerate(masks):
        for subject in range(N_SUBJECTS):
            if mask >> subject & 1:
                matrix.set_accessible(subject, pos, True)
    return doc, matrix


def _window(draw, n):
    lo = draw(st.integers(min_value=0, max_value=n - 1))
    hi = draw(st.integers(min_value=lo + 1, max_value=n))
    return lo, hi


@st.composite
def labeled_document_and_window(draw):
    doc, matrix = draw(labeled_document())
    lo, hi = _window(draw, len(doc))
    return doc, matrix, lo, hi


def _check_tiling(runs, lo, hi):
    """Runs tile [lo, hi) contiguously and are maximal."""
    assert runs, "empty run sequence for a non-empty window"
    assert runs[0][0] == lo
    assert runs[-1][1] == hi
    for (s1, e1, f1), (s2, e2, f2) in zip(runs, runs[1:]):
        assert e1 == s2, "gap or overlap between runs"
        assert f1 != f2, "adjacent runs with equal flags are not maximal"
    for start, end, _flag in runs:
        assert start < end


@settings(max_examples=60)
@given(labeled_document_and_window(), st.integers(min_value=0, max_value=N_SUBJECTS - 1))
def test_access_runs_reconstructs_accessible(case, subject):
    doc, matrix, lo, hi = case
    for backend in available_backends():
        labeling = build_labeling(backend, doc, matrix)
        runs = list(labeling.access_runs(subject, lo, hi))
        _check_tiling(runs, lo, hi)
        for start, end, flag in runs:
            for pos in range(start, end):
                assert flag == labeling.accessible(subject, pos), (
                    backend, subject, pos,
                )


@settings(max_examples=40)
@given(labeled_document_and_window())
def test_access_runs_any_reconstructs_union(case):
    doc, matrix, lo, hi = case
    subjects = (0, 2)
    for backend in available_backends():
        labeling = build_labeling(backend, doc, matrix)
        runs = list(labeling.access_runs_any(subjects, lo, hi))
        _check_tiling(runs, lo, hi)
        for start, end, flag in runs:
            for pos in range(start, end):
                assert flag == labeling.accessible_any(subjects, pos), (
                    backend, pos,
                )


@settings(max_examples=40)
@given(labeled_document())
def test_backends_produce_identical_runs(case):
    """All backends decode the same maximal run sequence."""
    doc, matrix = case
    per_backend = {
        backend: list(
            build_labeling(backend, doc, matrix).access_runs(1, 0, len(doc))
        )
        for backend in available_backends()
    }
    assert len(set(map(tuple, per_backend.values()))) == 1, per_backend


@settings(max_examples=40)
@given(labeled_document_and_window(), st.integers(min_value=0, max_value=N_SUBJECTS - 1))
def test_filter_positions_equals_per_node_filter(case, subject):
    doc, matrix, lo, hi = case
    labeling = build_labeling("dol", doc, matrix)
    run_list = RunList.from_runs(labeling.access_runs(subject, lo, hi), lo, hi)
    positions = list(range(lo, hi))
    expected = [p for p in positions if labeling.accessible(subject, p)]
    assert list(run_list.filter_positions(positions)) == expected
    assert run_list.count_accessible() == len(expected)
    for pos in positions:
        assert run_list.is_accessible(pos) == labeling.accessible(subject, pos)


@settings(max_examples=40)
@given(labeled_document())
def test_union_runs_matches_any_predicate(case):
    doc, matrix = case
    labeling = build_labeling("dol", doc, matrix)
    n = len(doc)
    subjects = (0, 1, 2)
    unioned = list(
        union_runs(
            [labeling.access_runs(s, 0, n) for s in subjects], 0, n
        )
    )
    _check_tiling(unioned, 0, n)
    for start, end, flag in unioned:
        for pos in range(start, end):
            assert flag == labeling.accessible_any(subjects, pos)
