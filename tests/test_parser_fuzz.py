"""Robustness fuzzing: the parser must reject garbage cleanly.

Whatever bytes arrive, :func:`repro.xmltree.parser.parse` must either
return a tree or raise :class:`~repro.errors.XMLParseError` — never an
IndexError, RecursionError on reasonable inputs, or a hang.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import XMLParseError
from repro.xmltree.parser import parse
from repro.xmltree.serializer import serialize
from repro.xmltree.builder import tree


@given(st.text(max_size=200))
@settings(max_examples=300)
def test_arbitrary_text_never_crashes(text):
    try:
        parse(text)
    except XMLParseError:
        pass
    except (ValueError, OverflowError) as err:
        # numeric character references can overflow chr(); that surfaces
        # as a clean ValueError from int/chr — acceptable, not a crash
        assert "&#" in text, err


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=20))
@settings(max_examples=150)
def test_mutated_valid_documents(seed, n_mutations):
    """Take a valid document, flip bytes, expect parse-or-clean-error."""
    rng = random.Random(seed)
    root = tree(("a", ("b", "text & more"), ("c", ("d",), ("e", "x < y"))))
    text = list(serialize(root))
    for _ in range(n_mutations):
        index = rng.randrange(len(text))
        action = rng.random()
        if action < 0.4:
            text[index] = rng.choice('<>&"=/abc ')
        elif action < 0.7:
            del text[index]
        else:
            text.insert(index, rng.choice("<>/&;!?xyz"))
    mutated = "".join(text)
    try:
        parse(mutated)
    except XMLParseError:
        pass
    except (ValueError, OverflowError):
        assert "&#" in mutated


def test_deeply_nested_document():
    """1000 levels of nesting parse without hitting recursion limits in
    iterparse (the parser is iterative); building the Node tree is also
    iteration-free on append."""
    depth = 1000
    text = "".join(f"<n{i}>" for i in range(depth)) + "".join(
        f"</n{i}>" for i in reversed(range(depth))
    )
    root = parse(text)
    count = sum(1 for _ in root.iter_preorder())
    assert count == depth


def test_wide_document():
    text = "<r>" + "<c/>" * 5000 + "</r>"
    root = parse(text)
    assert len(root.children) == 5000
