"""Unit tests for the multi-mode DOL generalization."""

import pytest

from repro.acl.model import AccessMatrix
from repro.dol.codebook import Codebook
from repro.dol.labeling import DOL
from repro.dol.multimode import MultiModeDOL
from repro.errors import AccessControlError


@pytest.fixture
def matrix():
    m = AccessMatrix(6, 2, modes=["read", "write"])
    m.grant_range(0, 0, 6, "read")
    m.grant_range(1, 2, 5, "read")
    m.grant_range(0, 2, 4, "write")
    return m


class TestConstruction:
    def test_roundtrip(self, matrix):
        combined = MultiModeDOL.from_matrix(matrix)
        assert combined.to_matrix() == matrix

    def test_accessible_matches_matrix(self, matrix):
        combined = MultiModeDOL.from_matrix(matrix)
        for mode in matrix.modes:
            for subject in range(2):
                for pos in range(6):
                    assert combined.accessible(subject, pos, mode) == (
                        matrix.accessible(subject, pos, mode)
                    ), (mode, subject, pos)

    def test_column_layout(self, matrix):
        combined = MultiModeDOL.from_matrix(matrix)
        assert combined.column(0, "read") == 0
        assert combined.column(1, "read") == 1
        assert combined.column(0, "write") == 2
        assert combined.column(1, "write") == 3

    def test_unknown_mode_rejected(self, matrix):
        combined = MultiModeDOL.from_matrix(matrix)
        with pytest.raises(AccessControlError):
            combined.accessible(0, 0, "execute")
        with pytest.raises(AccessControlError):
            combined.column(5, "read")

    def test_width_validated(self, matrix):
        dol = DOL.from_masks([0] * 6, 3)
        with pytest.raises(AccessControlError):
            MultiModeDOL(dol, ["read", "write"], 2)

    def test_shared_codebook(self, matrix):
        book = Codebook(4)
        combined = MultiModeDOL.from_matrix(matrix, codebook=book)
        assert combined.dol.codebook is book


class TestCompression:
    def test_single_mode_degenerates_to_dol(self):
        matrix = AccessMatrix(5, 2)
        matrix.grant_range(0, 1, 4)
        combined = MultiModeDOL.from_matrix(matrix)
        plain = DOL.from_matrix(matrix)
        assert combined.n_transitions == plain.n_transitions

    def test_correlated_modes_share_transitions(self):
        """When the write set is nested in the read set and changes at the
        same boundaries, the combined DOL needs no extra transitions."""
        matrix = AccessMatrix(8, 1, modes=["read", "write"])
        matrix.grant_range(0, 2, 6, "read")
        matrix.grant_range(0, 2, 6, "write")
        combined = MultiModeDOL.from_matrix(matrix)
        assert combined.n_transitions == DOL.from_matrix(matrix, "read").n_transitions

    def test_combined_never_worse_than_sum(self, matrix):
        combined = MultiModeDOL.from_matrix(matrix)
        per_mode = sum(
            DOL.from_matrix(matrix, mode).n_transitions for mode in matrix.modes
        )
        assert combined.n_transitions <= per_mode

    def test_livelink_cross_mode_compression(self):
        """Nested LiveLink modes: one combined DOL is much smaller than
        ten per-mode DOLs."""
        from repro.acl.surrogates import generate_livelink

        dataset = generate_livelink(n_items=300, n_groups=4, n_users=10, seed=3)
        combined = MultiModeDOL.from_matrix(dataset.matrix)
        per_mode_transitions = sum(
            DOL.from_matrix(dataset.matrix, mode).n_transitions
            for mode in dataset.matrix.modes
        )
        assert combined.n_transitions < per_mode_transitions
        assert combined.to_matrix() == dataset.matrix

    def test_per_mode_total_bytes_helper(self, matrix):
        total = MultiModeDOL.per_mode_total_bytes(matrix)
        assert total == sum(
            DOL.from_matrix(matrix, mode).size_bytes() for mode in matrix.modes
        )


class TestModeRoundTrips:
    """Each action mode must survive the combine/expand cycle intact."""

    def test_per_mode_masks_roundtrip(self, matrix):
        expanded = MultiModeDOL.from_matrix(matrix).to_matrix()
        for mode in matrix.modes:
            assert expanded.masks(mode) == matrix.masks(mode), mode

    def test_roundtrip_is_idempotent(self, matrix):
        once = MultiModeDOL.from_matrix(matrix)
        twice = MultiModeDOL.from_matrix(once.to_matrix())
        assert twice.to_matrix() == matrix
        assert twice.n_transitions == once.n_transitions

    def test_three_mode_roundtrip(self):
        matrix = AccessMatrix(10, 3, modes=["see", "read", "write"])
        matrix.grant_range(0, 0, 10, "see")
        matrix.grant_range(1, 3, 8, "see")
        matrix.grant_range(1, 3, 8, "read")
        matrix.grant_range(2, 5, 6, "write")
        combined = MultiModeDOL.from_matrix(matrix)
        assert combined.to_matrix() == matrix
        for mode in matrix.modes:
            for subject in range(3):
                for pos in range(10):
                    assert combined.accessible(subject, pos, mode) == (
                        matrix.accessible(subject, pos, mode)
                    ), (mode, subject, pos)

    def test_mode_order_preserved(self, matrix):
        expanded = MultiModeDOL.from_matrix(matrix).to_matrix()
        assert list(expanded.modes) == list(matrix.modes)


class TestSingleModeAgreement:
    """The combined DOL answers every probe exactly as an independent
    single-mode DOL built from the same matrix column would."""

    def test_agreement_with_single_mode_dols(self, matrix):
        combined = MultiModeDOL.from_matrix(matrix)
        for mode in matrix.modes:
            single = DOL.from_matrix(matrix, mode)
            for subject in range(matrix.n_subjects):
                for pos in range(matrix.n_nodes):
                    assert combined.accessible(subject, pos, mode) == (
                        single.accessible(subject, pos)
                    ), (mode, subject, pos)

    def test_agreement_on_livelink_surrogate(self):
        from repro.acl.surrogates import generate_livelink

        dataset = generate_livelink(n_items=120, n_groups=3, n_users=6, seed=8)
        matrix = dataset.matrix
        combined = MultiModeDOL.from_matrix(matrix)
        for mode in matrix.modes:
            single = DOL.from_matrix(matrix, mode)
            assert [
                [combined.accessible(s, p, mode) for p in range(matrix.n_nodes)]
                for s in range(matrix.n_subjects)
            ] == [
                [single.accessible(s, p) for p in range(matrix.n_nodes)]
                for s in range(matrix.n_subjects)
            ], mode

    def test_column_projection_matches_single_mode_masks(self, matrix):
        combined = MultiModeDOL.from_matrix(matrix)
        subject_mask = (1 << matrix.n_subjects) - 1
        for mode_index, mode in enumerate(matrix.modes):
            projected = [
                mask >> (mode_index * matrix.n_subjects) & subject_mask
                for mask in combined.dol.to_masks()
            ]
            assert projected == DOL.from_matrix(matrix, mode).to_masks(), mode
