"""Seeded concurrency stress: readers vs. an update stream, per backend.

The serving guarantee under test: with 8 reader threads evaluating
secure queries (both Cho and view semantics) while a writer commits a
seeded stream of Section 3.4 accessibility updates, every reader's
answer is *exactly* what a single-threaded evaluation at that reader's
snapshot epoch produces — no torn update is ever observed, for any
labeling backend (dol / cam / naive).

The oracle is independent of the store: for each epoch a reader touched,
a fresh in-memory engine over that epoch's snapshot document + labeling
clone recomputes the answers without any pages, buffer pool or
snapshot machinery in the loop. Proposition 1 (each accessibility update
changes the transition count by at most 2) is asserted after every
commit on the DOL backend.

A short "race smoke" hammer at the end runs the same machinery with no
assertions beyond not crashing; CI runs this module under
``PYTHONDEVMODE=1`` in its own job to surface unraised exceptions and
thread teardown issues.
"""

import faulthandler
import random
import threading
import time

import pytest

from repro.acl.synthetic import SyntheticACLConfig, generate_synthetic_acl
from repro.labeling.registry import build_labeling
from repro.nok.engine import QueryEngine
from repro.storage.nokstore import NoKStore
from repro.xmark.generator import XMarkConfig, generate_document

N_READERS = 8
N_UPDATES = 20
READS_PER_READER = 4
QUERIES = {
    "q_name": "//item/name",
    "q_twig": "//item[.//name]//price",
}
SUBJECT = 1
WRITE_SUBJECTS = (0, 2, 3)


@pytest.fixture(scope="module")
def stress_doc():
    return generate_document(XMarkConfig(n_items=40, seed=23))


@pytest.fixture(scope="module")
def stress_matrix(stress_doc):
    config = SyntheticACLConfig(
        propagation_ratio=0.5, accessibility_ratio=0.6, seed=23
    )
    return generate_synthetic_acl(stress_doc, config, n_subjects=4)


def run_stress(doc, matrix, backend, semantics, seed):
    """Drive readers + writer; returns (observations, snapshots, deltas).

    observations: list of (epoch, qid, sorted positions) per reader call;
    snapshots: {epoch: StoreSnapshot} retained for oracle replay;
    deltas: transition deltas per commit (Proposition 1 evidence).
    """
    labeling = build_labeling(backend, doc, matrix)
    store = NoKStore(doc, labeling, page_size=512, buffer_capacity=8)
    engine = QueryEngine(doc, labeling=labeling, store=store)
    rng = random.Random(seed)
    n_nodes = len(doc)

    snapshots = {0: store.snapshot()}
    observations = []
    obs_lock = threading.Lock()
    deltas = []
    failures = []
    start_gate = threading.Event()
    writer_done = threading.Event()
    faulthandler.dump_traceback_later(120, exit=True)
    try:

        def writer():
            start_gate.wait()
            try:
                _run_updates()
            except BaseException as exc:  # pragma: no cover - failure path
                failures.append(exc)
            finally:
                writer_done.set()

        def _run_updates():
            for _ in range(N_UPDATES):
                start = rng.randrange(1, n_nodes - 2)
                span = rng.randrange(1, max(n_nodes // 8, 2))
                end = min(start + span, n_nodes)
                subject = rng.choice(WRITE_SUBJECTS)
                value = rng.random() < 0.5
                cost = store.update_subject_range(
                    start, end, subject, value
                )
                deltas.append(cost.transition_delta)
                # retain the snapshot this commit published, keyed by
                # its epoch, for post-run oracle replay
                snapshots[store.epoch] = store.snapshot()
                # pace the stream so it overlaps the reader phase even
                # for hint-free backends whose commits are near-instant
                time.sleep(0.005)

        def reader():
            start_gate.wait()
            try:
                # Keep reading until the writer's stream has finished (with
                # READS_PER_READER as the floor): cached run lists make
                # repeat reads near-instant, so a fixed read count could
                # drain before the first commit and never span two epochs.
                reads = 0
                while reads < READS_PER_READER or not writer_done.is_set():
                    snap = store.snapshot()
                    for qid, query in QUERIES.items():
                        result = engine.evaluate(
                            query,
                            subject=SUBJECT,
                            semantics=semantics,
                            snapshot=snap,
                        )
                        with obs_lock:
                            observations.append(
                                (snap.epoch, qid, tuple(sorted(result.positions)))
                            )
                    reads += 1
                    # yield the GIL so the paced writer actually progresses
                    # (8 busy-looping readers would starve it)
                    time.sleep(0.001)
            except BaseException as exc:  # pragma: no cover - failure path
                failures.append(exc)

        threads = [threading.Thread(target=writer)]
        threads += [threading.Thread(target=reader) for _ in range(N_READERS)]
        for thread in threads:
            thread.start()
        start_gate.set()
        for thread in threads:
            thread.join()
    finally:
        faulthandler.cancel_dump_traceback_later()
        store.close()

    assert not failures, failures
    return observations, snapshots, deltas


def oracle_answers(snapshots, epoch, query, semantics):
    """Single-threaded, storeless evaluation at one retained epoch."""
    snap = snapshots[epoch]
    oracle_engine = QueryEngine(snap.doc, labeling=snap.labeling)
    result = oracle_engine.evaluate(query, subject=SUBJECT, semantics=semantics)
    return tuple(sorted(result.positions))


@pytest.mark.parametrize("backend", ["dol", "cam", "naive"])
@pytest.mark.parametrize("semantics", ["cho", "view"])
def test_readers_match_oracle_under_update_stream(
    stress_doc, stress_matrix, backend, semantics
):
    observations, snapshots, deltas = run_stress(
        stress_doc, stress_matrix, backend, semantics, seed=77
    )
    assert len(deltas) == N_UPDATES
    # readers take at least READS_PER_READER passes, plus as many more as
    # it takes to outlive the writer's update stream
    assert len(observations) >= N_READERS * READS_PER_READER * len(QUERIES)

    if backend == "dol":
        # Proposition 1, checked after every commit: one accessibility
        # update adds at most two transitions (and removes boundedly too
        # — each operation splices one contiguous segment).
        assert all(delta <= 2 for delta in deltas), deltas

    # Every reader observation must equal the single-threaded oracle at
    # the epoch its snapshot pinned — regardless of what the writer was
    # doing to later epochs at the time.
    oracle_cache = {}
    epochs_seen = set()
    for epoch, qid, positions in observations:
        epochs_seen.add(epoch)
        key = (epoch, qid)
        if key not in oracle_cache:
            oracle_cache[key] = oracle_answers(
                snapshots, epoch, QUERIES[qid], semantics
            )
        assert positions == oracle_cache[key], (
            f"backend={backend} semantics={semantics} epoch={epoch} "
            f"query={qid}: concurrent answer diverged from oracle"
        )

    # the run genuinely interleaved: readers saw more than one epoch
    assert len(epochs_seen) > 1, "stress run never overlapped an update"


def test_labeling_valid_after_stress(stress_doc, stress_matrix):
    _, snapshots, _ = run_stress(stress_doc, stress_matrix, "dol", "cho", seed=99)
    final = snapshots[max(snapshots)]
    final.labeling.validate()


def test_race_smoke(stress_doc, stress_matrix):
    """No-assertion hammer for the PYTHONDEVMODE=1 CI job."""
    run_stress(stress_doc, stress_matrix, "dol", "cho", seed=5)
