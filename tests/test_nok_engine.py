"""Unit and oracle tests for the end-to-end query engine."""

import pytest

from repro.acl.model import AccessMatrix
from repro.bench.queries import QUERIES
from repro.errors import ReproError
from repro.nok.engine import QueryEngine
from repro.nok.pattern import parse_query
from repro.nok.reference import evaluate_reference
from repro.secure.semantics import CHO, VIEW
from repro.xmltree.builder import tree
from repro.xmltree.document import Document


@pytest.fixture
def doc():
    return Document.from_tree(
        tree(
            (
                "site",
                ("region", ("item", ("name", "anvil")), ("item", ("name", "rope"))),
                ("region", ("item", ("name", "anvil"), ("note",))),
            )
        )
    )


class TestNonSecure:
    def test_child_path(self, doc):
        result = QueryEngine.build(doc).evaluate("/site/region/item")
        assert result.positions == [2, 4, 7]

    def test_predicate(self, doc):
        result = QueryEngine.build(doc).evaluate("/site/region/item[note]")
        assert result.positions == [7]

    def test_value_predicate(self, doc):
        result = QueryEngine.build(doc).evaluate('/site/region/item[name = "anvil"]')
        assert result.positions == [2, 7]

    def test_descendant_root(self, doc):
        result = QueryEngine.build(doc).evaluate("//item")
        assert result.positions == [2, 4, 7]

    def test_descendant_join(self, doc):
        result = QueryEngine.build(doc).evaluate("//region//name")
        assert result.positions == [3, 5, 8]

    def test_root_mismatch_returns_nothing(self, doc):
        assert QueryEngine.build(doc).evaluate("/other/x").positions == []

    def test_answers_count(self, doc):
        result = QueryEngine.build(doc).evaluate("//item")
        assert result.n_answers == 3
        assert result.n_bindings >= 3


class TestSecure:
    @pytest.fixture
    def engine(self, doc):
        matrix = AccessMatrix(len(doc), 2)
        matrix.grant_range(0, 0, len(doc))  # subject 0 sees everything
        # subject 1: everything except the first region's subtree
        matrix.grant_range(1, 0, 1)
        matrix.grant_range(1, 6, len(doc))
        return QueryEngine.build(doc, matrix)

    def test_full_access_equals_non_secure(self, doc, engine):
        plain = QueryEngine.build(doc).evaluate("/site/region/item")
        secure = engine.evaluate("/site/region/item", subject=0)
        assert plain.positions == secure.positions

    def test_partial_access_filters(self, engine):
        result = engine.evaluate("/site/region/item", subject=1)
        assert result.positions == [7]

    def test_inaccessible_root_kills_query(self, doc):
        matrix = AccessMatrix(len(doc), 1)  # nothing accessible
        engine = QueryEngine.build(doc, matrix)
        assert engine.evaluate("/site/region", subject=0).positions == []

    def test_secure_without_dol_rejected(self, doc):
        with pytest.raises(ReproError):
            QueryEngine.build(doc).evaluate("/site", subject=0)

    def test_unknown_semantics_rejected(self, engine):
        with pytest.raises(ReproError):
            engine.evaluate("/site", subject=0, semantics="bogus")

    def test_access_checks_counted(self, engine):
        result = engine.evaluate("/site/region/item", subject=1)
        assert result.stats.access_checks > 0


class TestChoVsViewSemantics:
    """The paper's Section 4.2 example: answers from inside an inaccessible
    subtree are allowed under Cho semantics but not under view semantics."""

    @pytest.fixture
    def setup(self, doc):
        matrix = AccessMatrix(len(doc), 1)
        matrix.grant_range(0, 0, len(doc))
        matrix.set_accessible(0, 1, False)  # first region inaccessible
        return QueryEngine.build(doc, matrix)

    def test_cho_allows_descendants_of_blocked_nodes(self, setup):
        # //item does not bind the region, so items below it survive.
        result = setup.evaluate("//item", subject=0, semantics=CHO)
        assert result.positions == [2, 4, 7]

    def test_view_prunes_blocked_subtrees(self, setup):
        result = setup.evaluate("//item", subject=0, semantics=VIEW)
        assert result.positions == [7]

    def test_cho_still_blocks_bound_nodes(self, setup):
        # /site/region binds the region itself -> only the accessible one.
        result = setup.evaluate("/site/region", subject=0, semantics=CHO)
        assert result.positions == [6]


class TestOracleAgreement:
    """Engine answers must equal the brute-force reference on XMark."""

    @pytest.mark.parametrize("qid", list(QUERIES))
    def test_non_secure(self, xmark_doc, qid):
        engine = QueryEngine.build(xmark_doc)
        got = set(engine.evaluate(QUERIES[qid]).positions)
        want = evaluate_reference(xmark_doc, parse_query(QUERIES[qid]))
        assert got == want

    @pytest.mark.parametrize("qid", list(QUERIES))
    @pytest.mark.parametrize("semantics", [CHO, VIEW])
    def test_secure(self, xmark_doc, xmark_acl, qid, semantics):
        engine = QueryEngine.build(xmark_doc, xmark_acl)
        for subject in range(xmark_acl.n_subjects):
            got = set(
                engine.evaluate(QUERIES[qid], subject=subject, semantics=semantics).positions
            )
            want = evaluate_reference(
                xmark_doc, parse_query(QUERIES[qid]), xmark_acl.masks(), subject, semantics
            )
            assert got == want, (qid, subject, semantics)

    @pytest.mark.parametrize("qid", list(QUERIES))
    def test_store_backed_secure(self, xmark_doc, xmark_acl, qid):
        engine = QueryEngine.build(
            xmark_doc, xmark_acl, use_store=True, page_size=512, buffer_capacity=16
        )
        got = set(engine.evaluate(QUERIES[qid], subject=2).positions)
        want = evaluate_reference(
            xmark_doc, parse_query(QUERIES[qid]), xmark_acl.masks(), 2, CHO
        )
        assert got == want

    def test_view_subset_of_cho(self, xmark_doc, xmark_acl):
        engine = QueryEngine.build(xmark_doc, xmark_acl)
        for qid in QUERIES:
            cho = set(engine.evaluate(QUERIES[qid], subject=0, semantics=CHO).positions)
            view = set(engine.evaluate(QUERIES[qid], subject=0, semantics=VIEW).positions)
            assert view <= cho, qid


class TestStoreStatistics:
    def test_io_counted_with_store(self, xmark_doc, xmark_acl):
        engine = QueryEngine.build(
            xmark_doc, xmark_acl, use_store=True, page_size=512, buffer_capacity=8
        )
        result = engine.evaluate(QUERIES["Q6"], subject=0)
        assert result.stats.logical_page_reads > 0
        assert result.stats.physical_page_reads > 0

    def test_static_deny_answers_without_store_reads(self, xmark_doc):
        matrix = AccessMatrix(len(xmark_doc), 1)  # all denied
        engine = QueryEngine.build(xmark_doc, matrix, use_store=True, page_size=512)
        result = engine.evaluate("//item", subject=0)
        assert result.positions == []
        # the static pre-pass proves the class fully denied before any
        # operator is built: no candidates, no page reads at all
        assert result.stats.static_deny == 1
        assert result.stats.candidates == 0
        assert result.stats.logical_page_reads == 0
        assert result.stats.physical_page_reads == 0

    def test_page_skip_counted_when_partially_denied(self, xmark_doc):
        # deny everything except one early subtree: entire later pages
        # are inaccessible and the header check prunes their candidates
        matrix = AccessMatrix(len(xmark_doc), 1)
        matrix.grant_range(0, 0, 40)
        engine = QueryEngine.build(xmark_doc, matrix, use_store=True, page_size=512)
        result = engine.evaluate("//item", subject=0)
        assert result.stats.static_deny == 0
        assert (
            result.stats.candidates_skipped_by_header
            + result.stats.candidates_skipped_by_runs
        ) > 0
