"""Differential suite: batch execution is indistinguishable from tuple.

The vectorized operators of :mod:`repro.exec.batch` are a pure
performance change — same answers, same pruning decisions, same access
accounting — across every combination of secure semantics (cho / view),
labeling backend (dol / cam / naive), ordered and unordered matching,
in-memory and store-backed execution, and across accessibility updates
(a commit must invalidate the decoded run lists, not serve stale ones).
"""

import pytest

from repro.acl.synthetic import SyntheticACLConfig, generate_synthetic_acl
from repro.labeling.registry import build_labeling
from repro.nok.engine import QueryEngine
from repro.secure.semantics import CHO, VIEW
from repro.xmark.generator import XMarkConfig, generate_document

BACKENDS = ("dol", "cam", "naive")

QUERY_SET = (
    "//item",
    "/site/regions",
    "//item[name]/quantity",
    "//listitem//keyword",
    "//parlist//parlist",
)

#: Stats that must agree exactly between the modes: same candidates
#: considered, same page-level and run-level pruning, same ACCESS calls.
PARITY_FIELDS = (
    "candidates",
    "candidates_skipped_by_header",
    "candidates_skipped_by_runs",
    "access_checks",
)


@pytest.fixture(scope="module")
def doc():
    return generate_document(XMarkConfig(n_items=24, seed=17))


@pytest.fixture(scope="module")
def matrix(doc):
    return generate_synthetic_acl(
        doc,
        SyntheticACLConfig(
            accessibility_ratio=0.6, propagation_ratio=0.3, seed=5
        ),
        n_subjects=3,
    )


def _assert_modes_agree(engine, query, subject, semantics, ordered=False):
    batch = engine.evaluate(
        query, subject=subject, semantics=semantics, ordered=ordered,
        exec_mode="batch",
    )
    tuple_ = engine.evaluate(
        query, subject=subject, semantics=semantics, ordered=ordered,
        exec_mode="tuple",
    )
    assert batch.positions == tuple_.positions
    for field in PARITY_FIELDS:
        assert getattr(batch.stats, field) == getattr(tuple_.stats, field), field
    return batch, tuple_


@pytest.mark.parametrize("ordered", (False, True))
@pytest.mark.parametrize("semantics", (CHO, VIEW))
@pytest.mark.parametrize("backend", BACKENDS)
def test_batch_matches_tuple_in_memory(doc, matrix, backend, semantics, ordered):
    engine = QueryEngine.build(doc, matrix, labeling=backend)
    for query in QUERY_SET:
        for subject in range(matrix.n_subjects):
            _assert_modes_agree(engine, query, subject, semantics, ordered)


@pytest.mark.parametrize("semantics", (CHO, VIEW))
@pytest.mark.parametrize("backend", BACKENDS)
def test_batch_matches_tuple_store_backed(doc, matrix, backend, semantics):
    engine = QueryEngine.build(
        doc, matrix, use_store=True, page_size=256, labeling=backend
    )
    for query in QUERY_SET:
        _assert_modes_agree(engine, query, 1, semantics)


@pytest.mark.parametrize("backend", BACKENDS)
def test_batch_matches_tuple_user_level(doc, matrix, backend):
    """Multi-subject evaluation: run lists union the subjects' rights."""
    engine = QueryEngine.build(doc, matrix, labeling=backend)
    for query in QUERY_SET:
        _assert_modes_agree(engine, query, (0, 2), CHO)


def test_non_secure_plans_agree(doc):
    engine = QueryEngine.build(doc)
    for query in QUERY_SET:
        batch = engine.evaluate(query, exec_mode="batch")
        tuple_ = engine.evaluate(query, exec_mode="tuple")
        assert batch.positions == tuple_.positions
        assert batch.stats.candidates == tuple_.stats.candidates


def test_run_cache_serves_repeats_and_invalidates_on_store_commit(doc, matrix):
    engine = QueryEngine.build(doc, matrix, use_store=True, page_size=256)
    first = engine.evaluate("//item", subject=0)
    assert first.stats.run_cache_misses == 1

    again = engine.evaluate("//item", subject=0)
    assert again.stats.run_cache_hits == 1
    assert again.stats.run_cache_misses == 0
    assert again.positions == first.positions

    # Revoke subject 0 everywhere: the commit bumps the store epoch, so
    # the next query keys a fresh run list and sees the new policy.
    engine.store.update_subject_range(0, len(doc), 0, False)
    after = engine.evaluate("//item", subject=0)
    assert after.stats.run_cache_misses == 1
    assert after.positions == []
    assert engine.evaluate("//item", subject=0, exec_mode="tuple").positions == []


@pytest.mark.parametrize("backend", BACKENDS)
def test_run_cache_invalidates_on_in_memory_update(doc, matrix, backend):
    labeling = build_labeling(backend, doc, matrix)
    engine = QueryEngine(doc, labeling=labeling)
    before = engine.evaluate("//item", subject=1)
    epoch = labeling.runs_epoch

    labeling.set_subject_accessibility(0, len(doc), 1, True)
    assert labeling.runs_epoch > epoch

    after = engine.evaluate("//item", subject=1)
    assert after.stats.run_cache_misses == 1
    assert len(after.positions) >= len(before.positions)
    # With the subject granted everywhere, cho answers = non-secure answers.
    assert after.positions == engine.evaluate("//item").positions
    _assert_modes_agree(engine, "//item", 1, CHO)


def test_probes_saved_parity_and_positivity(doc, matrix):
    engine = QueryEngine.build(doc, matrix)
    batch, tuple_ = _assert_modes_agree(engine, "//item", 0, CHO)
    assert batch.stats.probes_saved == tuple_.stats.probes_saved
    assert batch.stats.probes_saved > 0


def test_limit_streams_in_batch_mode(doc, matrix):
    engine = QueryEngine.build(doc, matrix)
    full = engine.evaluate("//item", subject=0, exec_mode="batch")
    assert full.n_answers > 2
    limited = engine.evaluate("//item", subject=0, limit=2, exec_mode="batch")
    assert limited.n_answers == 2
    assert set(limited.positions) <= set(full.positions)


def test_explain_analyze_reports_batches(doc, matrix):
    engine = QueryEngine.build(doc, matrix)
    result, text = engine.explain_analyze("//item", subject=0)
    assert result.n_answers > 0
    assert "[batch]" in text
    assert "batches=" in text
    assert "rows/batch=" in text

    _, tuple_text = engine.explain_analyze(
        "//item", subject=0, exec_mode="tuple"
    )
    assert "[batch]" not in tuple_text


def test_plan_shape_identical_across_modes(doc, matrix):
    engine = QueryEngine.build(doc, matrix, use_store=True, page_size=256)
    batch_ops = [
        op.name for op in engine.compile("//listitem//keyword", subject=0).operators()
    ]
    tuple_ops = [
        op.name
        for op in engine.compile(
            "//listitem//keyword", subject=0, exec_mode="tuple"
        ).operators()
    ]
    assert batch_ops == tuple_ops


def test_unknown_exec_mode_rejected(doc, matrix):
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        QueryEngine.build(doc, matrix, exec_mode="columnar")
    engine = QueryEngine.build(doc, matrix)
    with pytest.raises(ReproError):
        engine.evaluate("//item", subject=0, exec_mode="vector")
