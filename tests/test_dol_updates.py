"""Unit tests for DOL update operations and Proposition 1."""

import pytest

from repro.dol.labeling import DOL
from repro.dol.updates import DOLUpdater
from repro.errors import UpdateError


def make(masks, n_subjects=2):
    dol = DOL.from_masks(masks, n_subjects)
    return dol, DOLUpdater(dol)


class TestNodeUpdates:
    def test_set_node_mask_in_middle(self):
        dol, up = make([1, 1, 1, 1])
        delta = up.set_node_mask(2, 2)
        assert dol.to_masks() == [1, 1, 2, 1]
        assert delta == 2  # new transition at 2 and restore at 3

    def test_set_node_mask_at_boundary_merges(self):
        dol, up = make([1, 1, 2, 2])
        delta = up.set_node_mask(1, 2)
        assert dol.to_masks() == [1, 2, 2, 2]
        assert delta == 0

    def test_noop_update(self):
        dol, up = make([1, 2, 1])
        delta = up.set_node_mask(1, 2)
        assert dol.to_masks() == [1, 2, 1]
        assert delta == 0

    def test_update_can_remove_transitions(self):
        dol, up = make([1, 2, 1])
        delta = up.set_node_mask(1, 1)
        assert dol.to_masks() == [1, 1, 1]
        assert delta == -2

    def test_paper_procedure_single_node_grant(self):
        """Section 3.4: grant a subject on one node inside a denied run."""
        dol, up = make([0, 0, 0, 0], n_subjects=1)
        delta = up.set_node_accessibility(2, 0, True)
        assert dol.to_masks() == [0, 0, 1, 0]
        assert delta == 2
        # Granting again is a no-op (the preceding transition already grants).
        assert up.set_node_accessibility(2, 0, True) == 0


class TestSubtreeUpdates:
    def test_range_mask(self):
        dol, up = make([1, 1, 1, 1, 1, 1])
        delta = up.set_range_mask(1, 4, 3)
        assert dol.to_masks() == [1, 3, 3, 3, 1, 1]
        assert delta == 2

    def test_range_spanning_transitions(self):
        dol, up = make([1, 2, 1, 2, 1, 2])
        delta = up.set_range_mask(1, 5, 3)
        assert dol.to_masks() == [1, 3, 3, 3, 3, 2]
        assert delta <= 2

    def test_subject_grant_preserves_other_bits(self):
        dol, up = make([0b01, 0b10, 0b00, 0b01])
        up.set_subject_accessibility(0, 4, 1, True)
        assert dol.to_masks() == [0b11, 0b10, 0b10, 0b11]

    def test_subject_revoke(self):
        dol, up = make([0b11, 0b11, 0b01])
        up.set_subject_accessibility(0, 2, 0, False)
        assert dol.to_masks() == [0b10, 0b10, 0b01]

    def test_whole_document_update(self):
        dol, up = make([1, 2, 3, 1])
        delta = up.set_range_mask(0, 4, 0)
        assert dol.to_masks() == [0, 0, 0, 0]
        assert dol.n_transitions == 1
        assert delta == -3

    def test_invalid_range_rejected(self):
        dol, up = make([1, 2])
        with pytest.raises(UpdateError):
            up.set_range_mask(1, 1, 0)
        with pytest.raises(UpdateError):
            up.set_range_mask(0, 3, 0)


class TestUpdateLocality:
    def test_transitions_outside_range_untouched(self):
        masks = [1, 2, 1, 2, 1, 2, 1, 2]
        dol, up = make(masks)
        before_head = [(p, c) for p, c in zip(dol.positions, dol.codes) if p < 3]
        up.set_range_mask(4, 6, 3)
        after_head = [(p, c) for p, c in zip(dol.positions, dol.codes) if p < 3]
        assert before_head == after_head


class TestStructuralUpdates:
    def test_insert_middle(self):
        dol, up = make([1, 1, 1])
        extra = up.insert_range(1, [2, 2])
        assert dol.to_masks() == [1, 2, 2, 1, 1]
        assert dol.n_nodes == 5
        assert extra <= 2

    def test_insert_matching_neighbourhood_adds_nothing(self):
        dol, up = make([1, 1, 1])
        extra = up.insert_range(1, [1, 1])
        assert dol.to_masks() == [1] * 5
        # The inserted data's own transition merges with the surrounding
        # run, so the Proposition 1 quantity can even be negative.
        assert extra <= 0
        assert dol.n_transitions == 1

    def test_insert_at_start_and_end(self):
        dol, up = make([1, 1])
        up.insert_range(0, [2])
        assert dol.to_masks() == [2, 1, 1]
        up.insert_range(3, [3])
        assert dol.to_masks() == [2, 1, 1, 3]

    def test_insert_labeled_subtree_counts_own_transitions(self):
        dol, up = make([1, 1])
        extra = up.insert_range(1, [2, 3, 2])  # 3 own transitions
        assert dol.to_masks() == [1, 2, 3, 2, 1]
        assert extra <= 2  # beyond the inserted data's own transitions

    def test_insert_empty_rejected(self):
        dol, up = make([1])
        with pytest.raises(UpdateError):
            up.insert_range(0, [])

    def test_delete_middle(self):
        dol, up = make([1, 2, 2, 1])
        delta = up.delete_range(1, 3)
        assert dol.to_masks() == [1, 1]
        assert dol.n_nodes == 2
        assert delta <= 2

    def test_delete_merges_neighbours(self):
        dol, up = make([1, 2, 1])
        up.delete_range(1, 2)
        assert dol.to_masks() == [1, 1]
        assert dol.n_transitions == 1

    def test_delete_suffix(self):
        dol, up = make([1, 2, 3])
        up.delete_range(1, 3)
        assert dol.to_masks() == [1]

    def test_delete_everything_rejected(self):
        dol, up = make([1, 2])
        with pytest.raises(UpdateError):
            up.delete_range(0, 2)

    def test_move(self):
        dol, up = make([1, 2, 2, 3])
        up.move_range(1, 3, 2)  # move the [2,2] block after 3
        assert dol.to_masks() == [1, 3, 2, 2]

    def test_move_to_front(self):
        dol, up = make([1, 1, 3])
        up.move_range(2, 3, 0)
        assert dol.to_masks() == [3, 1, 1]


class TestProposition1:
    def test_check_passes_small_deltas(self):
        for delta in (-5, 0, 1, 2):
            DOLUpdater.check_proposition1(delta)

    def test_check_rejects_violation(self):
        with pytest.raises(UpdateError):
            DOLUpdater.check_proposition1(3, "insert")


class TestJournal:
    """The journal callback feeds WAL commit records (logical logging)."""

    def test_accessibility_update_journaled(self):
        from repro.dol.labeling import DOL
        from repro.dol.updates import DOLUpdater

        dol = DOL.from_masks([0b11] * 8, 2)
        ops = []
        delta = DOLUpdater(dol, journal=ops.append).set_subject_accessibility(
            2, 6, 0, False
        )
        assert len(ops) == 1
        assert ops[0]["op"] == "transform_range"
        assert (ops[0]["start"], ops[0]["end"]) == (2, 6)
        assert ops[0]["delta"] == delta

    def test_structural_updates_journaled(self):
        from repro.dol.labeling import DOL
        from repro.dol.updates import DOLUpdater

        dol = DOL.from_masks([0b1] * 6, 1)
        ops = []
        updater = DOLUpdater(dol, journal=ops.append)
        updater.insert_range(3, [0b1, 0b1])
        updater.delete_range(0, 2)
        assert [entry["op"] for entry in ops] == ["insert_range", "delete_range"]
        assert ops[0]["at"] == 3 and ops[0]["n_nodes"] == 2
        assert (ops[1]["start"], ops[1]["end"]) == (0, 2)

    def test_no_journal_is_silent(self):
        from repro.dol.labeling import DOL
        from repro.dol.updates import DOLUpdater

        dol = DOL.from_masks([0b1] * 4, 1)
        DOLUpdater(dol).set_range_mask(1, 3, 0b1)  # must not raise
