"""Unit tests for the succinct structure encoding and node entries."""

import pytest

from repro.errors import PageFormatError, StorageError
from repro.storage.encoding import (
    ENTRY_SIZE,
    NodeEntry,
    parse_structure_string,
    to_structure_string,
)
from repro.xmltree.builder import tree
from repro.xmltree.document import Document


class TestStructureString:
    def test_paper_example(self, paper_doc):
        """Section 3.1's example string for the Figure 2 data tree."""
        expected = "(a(b)(c)(d)(e(f)(g)(h(i)(j)(k)(l))))"
        assert to_structure_string(paper_doc) == expected

    def test_compact_form_drops_open_parens(self, paper_doc):
        compact = to_structure_string(paper_doc, compact=True)
        assert "(" not in compact
        assert compact.count(")") == 12

    def test_roundtrip(self, paper_doc):
        rebuilt = parse_structure_string(to_structure_string(paper_doc))
        assert rebuilt.tags == paper_doc.tags
        assert rebuilt.parent == paper_doc.parent
        assert rebuilt.subtree == paper_doc.subtree
        assert rebuilt.depth == paper_doc.depth

    def test_roundtrip_xmark(self, xmark_doc):
        rebuilt = parse_structure_string(to_structure_string(xmark_doc))
        assert rebuilt.subtree == xmark_doc.subtree

    def test_single_node(self):
        doc = Document.from_tree(tree(("only",)))
        assert to_structure_string(doc) == "(only)"
        assert parse_structure_string("(only)").tag_name(0) == "only"

    @pytest.mark.parametrize(
        "bad", ["", "(a", "a)", "(a))", "((a)", "(a)(b)", "()", "(a(b)"]
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(StorageError):
            parse_structure_string(bad)


class TestNodeEntry:
    def test_pack_unpack_roundtrip(self):
        entry = NodeEntry(tag_id=7, depth=3, subtree=1000, code=42, is_transition=True)
        assert NodeEntry.unpack(entry.pack()) == entry

    def test_entry_size_fixed(self):
        assert len(NodeEntry(0, 0, 1, 0, False).pack()) == ENTRY_SIZE

    def test_flag_encoding(self):
        plain = NodeEntry(1, 1, 1, 0, False)
        marked = NodeEntry(1, 1, 1, 0, True)
        assert plain.pack() != marked.pack()
        assert not NodeEntry.unpack(plain.pack()).is_transition
        assert NodeEntry.unpack(marked.pack()).is_transition

    def test_offset_unpack(self):
        a = NodeEntry(1, 0, 5, 0, True).pack()
        b = NodeEntry(2, 1, 1, 3, False).pack()
        buf = a + b
        assert NodeEntry.unpack(buf, ENTRY_SIZE).tag_id == 2

    def test_field_overflow_rejected(self):
        with pytest.raises(PageFormatError):
            NodeEntry(tag_id=70000, depth=0, subtree=1, code=0, is_transition=False).pack()

    def test_truncated_rejected(self):
        with pytest.raises(PageFormatError):
            NodeEntry.unpack(b"\x00\x01")

    def test_large_subtree_supported(self):
        entry = NodeEntry(0, 0, 2**31, 0, False)
        assert NodeEntry.unpack(entry.pack()).subtree == 2**31
