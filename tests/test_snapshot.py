"""Snapshot isolation of the block store (``NoKStore.snapshot``).

The contract under test (DESIGN.md §10): a snapshot is an immutable view
of one epoch — committed updates bump the store's epoch and publish a
successor, while any snapshot taken earlier keeps answering exactly as
the store did at its epoch, for navigation, accessibility probes, and
the page-skip test alike.
"""

import pytest

from repro.acl.model import AccessMatrix
from repro.dol.labeling import DOL
from repro.errors import StorageError
from repro.labeling.registry import build_labeling
from repro.nok.engine import QueryEngine
from repro.storage.nokstore import NoKStore
from repro.storage.snapshot import StoreSnapshot

MASKS = [0b11, 0b11, 0b01, 0b01, 0b01, 0b11, 0b11, 0b00, 0b00, 0b10, 0b10, 0b11]


@pytest.fixture
def store(paper_doc):
    dol = DOL.from_masks(MASKS, 2)
    with NoKStore(paper_doc, dol, page_size=96, buffer_capacity=4) as store:
        yield store


def masks_via(view) -> list:
    """Per-position accessibility bitmask as the view answers it."""
    return [
        (1 if view.accessible(0, pos) else 0)
        | (2 if view.accessible(1, pos) else 0)
        for pos in range(view.n_nodes)
    ]


class TestLifecycle:
    def test_snapshot_is_lazy_and_shared(self, store):
        assert store._snapshot is None  # nothing until first demand
        snap = store.snapshot()
        assert snap is store.snapshot()
        assert snap.epoch == 0
        assert snap.is_current

    def test_update_without_snapshot_still_bumps_epoch(self, store):
        store.update_subject_range(2, 5, 0, False)
        assert store.epoch == 1
        assert store._snapshot is None  # still lazy: no reader ever asked

    def test_commit_publishes_successor(self, store):
        old = store.snapshot()
        store.update_subject_range(2, 5, 0, False)
        new = store.snapshot()
        assert new is not old
        assert (old.epoch, new.epoch) == (0, 1)
        assert not old.is_current
        assert new.is_current
        assert old._next is new

    def test_repr_names_epoch(self, store):
        assert "epoch=0" in repr(store.snapshot())


class TestIsolation:
    def test_old_snapshot_unaffected_by_accessibility_update(self, store):
        snap = store.snapshot()
        before = masks_via(snap)
        assert before == MASKS
        store.update_subject_range(0, store.n_nodes, 0, False)
        assert masks_via(snap) == MASKS  # frozen at epoch 0
        assert masks_via(store.snapshot()) == [m & 0b10 for m in MASKS]
        assert masks_via(store) == [m & 0b10 for m in MASKS]

    def test_overlay_holds_preimages_of_rewritten_pages(self, store):
        snap = store.snapshot()
        cost = store.update_subject_range(0, store.n_nodes, 0, False)
        assert cost.pages_rewritten == store.n_pages
        assert snap.frozen_page_count() == store.n_pages
        # pre-image codes still decode through the snapshot's own codebook
        for pos in range(snap.n_nodes):
            assert snap.access_code_at(pos) == snap.labeling.code_at(pos)

    def test_chain_walk_across_multiple_commits(self, store):
        epoch0 = store.snapshot()
        store.update_subject_range(2, 5, 0, False)
        epoch1 = store.snapshot()
        store.update_subject_range(5, 9, 1, True)
        store.update_range_mask(0, 3, 0b01)
        assert store.epoch == 3
        assert masks_via(epoch0) == MASKS
        expected1 = list(MASKS)
        for pos in range(2, 5):
            expected1[pos] &= 0b10
        assert masks_via(epoch1) == expected1

    def test_snapshot_headers_keep_old_skip_test(self, store):
        snap = store.snapshot()
        skippable_before = [
            snap.page_fully_inaccessible(page_id, 0)
            for page_id in range(snap.n_pages)
        ]
        store.update_subject_range(0, store.n_nodes, 0, True)
        assert [
            snap.page_fully_inaccessible(page_id, 0)
            for page_id in range(snap.n_pages)
        ] == skippable_before

    def test_navigation_matches_document(self, store, paper_doc):
        snap = store.snapshot()
        store.update_subject_range(0, 4, 1, False)
        for pos in range(snap.n_nodes):
            assert snap.tag_id(pos) == paper_doc.tags[pos]
            assert snap.first_child(pos) == store.first_child(pos)
            assert snap.following_sibling(pos) == store.following_sibling(pos)
            assert snap.subtree_end(pos) == paper_doc.subtree_end(pos)

    def test_out_of_range_rejected(self, store):
        snap = store.snapshot()
        with pytest.raises(StorageError):
            snap.entry(store.n_nodes)
        with pytest.raises(StorageError):
            snap.accessible(0, -1)


class TestHintFreeBackends:
    @pytest.mark.parametrize("backend", ["cam", "naive"])
    def test_snapshot_isolated_from_in_memory_update(self, paper_doc, backend):
        matrix = AccessMatrix.from_masks(MASKS, 2)
        labeling = build_labeling(backend, paper_doc, matrix)
        with NoKStore(paper_doc, labeling, page_size=96) as store:
            snap = store.snapshot()
            cost = store.update_subject_range(0, store.n_nodes, 0, False)
            assert cost.pages_rewritten == 0  # no embedded codes
            assert store.epoch == 1
            assert masks_via(snap) == MASKS
            assert masks_via(store.snapshot()) == [m & 0b10 for m in MASKS]


class TestEngineBinding:
    def test_pinned_snapshot_evaluates_old_epoch(self, small_doc):
        masks = [0b1] * len(small_doc)
        matrix = AccessMatrix.from_masks(masks, 1)
        engine = QueryEngine.build(small_doc, matrix, use_store=True, page_size=128)
        store = engine.store
        try:
            pinned = store.snapshot()
            before = engine.evaluate("//item/name", subject=0)
            store.update_subject_range(0, len(small_doc), 0, False)
            after = engine.evaluate("//item/name", subject=0)
            again = engine.evaluate("//item/name", subject=0, snapshot=pinned)
            assert after.positions == []
            assert again.positions == before.positions
        finally:
            store.close()

    def test_default_binding_is_current_snapshot(self, small_doc):
        masks = [0b1] * len(small_doc)
        matrix = AccessMatrix.from_masks(masks, 1)
        engine = QueryEngine.build(small_doc, matrix, use_store=True, page_size=128)
        try:
            plan = engine.compile("//item")
            assert isinstance(plan.ctx.store, StoreSnapshot)
            assert plan.ctx.store.epoch == engine.store.epoch
        finally:
            engine.store.close()


class TestQuarantineSharing:
    def test_quarantine_is_physical_and_shared(self, store):
        snap = store.snapshot()
        store.quarantine(0)
        from repro.errors import PageCorruptionError

        with pytest.raises(PageCorruptionError):
            snap.entry(0)
        assert 0 in snap.quarantined
