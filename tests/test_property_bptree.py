"""Property-based tests for the B+-tree against a dict reference model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.bptree import BPlusTree

operations = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete"]),
        st.integers(min_value=0, max_value=30),  # key
        st.integers(min_value=0, max_value=100),  # posting
    ),
    max_size=300,
)


@given(operations, st.integers(min_value=3, max_value=16))
@settings(max_examples=150)
def test_matches_reference_model(ops, order):
    tree = BPlusTree(order=order)
    reference = {}
    for op, key, posting in ops:
        if op == "insert":
            tree.insert(key, posting)
            reference.setdefault(key, []).append(posting)
            reference[key].sort()
        else:
            removed = tree.delete(key, posting)
            expected = key in reference and posting in reference[key]
            assert removed == expected
            if expected:
                reference[key].remove(posting)
                if not reference[key]:
                    del reference[key]
    assert sorted(tree.keys()) == sorted(reference)
    for key, postings in reference.items():
        assert tree.search(key) == postings
    tree.validate()


@given(operations)
def test_iteration_sorted(ops):
    tree = BPlusTree(order=4)
    for op, key, posting in ops:
        if op == "insert":
            tree.insert(key, posting)
    keys = [k for k, _ in tree.items()]
    assert keys == sorted(keys)


@given(
    st.lists(st.integers(min_value=0, max_value=100), max_size=200),
    st.integers(min_value=0, max_value=100),
    st.integers(min_value=0, max_value=100),
)
def test_range_query(keys, lo, hi):
    tree = BPlusTree(order=5)
    for key in keys:
        tree.insert(key, key)
    got = [k for k, _ in tree.range(min(lo, hi), max(lo, hi))]
    want = sorted({k for k in keys if min(lo, hi) <= k <= max(lo, hi)})
    assert got == want
