"""Unit tests for the paged value store."""

import pytest

from repro.errors import StorageError
from repro.storage.valuestore import ValueStore


class TestBasics:
    def test_roundtrip(self):
        texts = ["hello", "", "world", "x" * 50, ""]
        store = ValueStore(texts, page_size=64)
        assert [store.text(i) for i in range(5)] == texts

    def test_unicode(self):
        store = ValueStore(["héllo", "世界"], page_size=64)
        assert store.text(0) == "héllo"
        assert store.text(1) == "世界"

    def test_empty_values_cost_nothing(self):
        store = ValueStore(["", "", ""], page_size=64)
        store.reset_io_stats()
        assert store.text(1) == ""
        assert store.buffer.stats.logical_reads == 0

    def test_out_of_range(self):
        store = ValueStore(["a"], page_size=64)
        with pytest.raises(StorageError):
            store.text(5)

    def test_value_too_large_rejected(self):
        with pytest.raises(StorageError):
            ValueStore(["y" * 100], page_size=64)


class TestPaging:
    def test_records_never_split_across_pages(self):
        # 40-byte records on 64-byte pages: one record per page.
        texts = ["a" * 40, "b" * 40, "c" * 40]
        store = ValueStore(texts, page_size=64)
        assert store.n_pages == 3
        assert [store.text(i) for i in range(3)] == texts

    def test_small_records_share_pages(self):
        texts = ["ab"] * 20
        store = ValueStore(texts, page_size=64)
        assert store.n_pages == 1

    def test_io_accounted(self):
        texts = [f"value-{i}" * 3 for i in range(50)]
        store = ValueStore(texts, page_size=64, buffer_capacity=2)
        store.buffer.clear()
        store.reset_io_stats()
        for pos in range(50):
            store.text(pos)
        assert store.pager.stats.reads >= store.n_pages - 1
        # document-order locality: far fewer reads than accesses
        assert store.pager.stats.reads < 50

    def test_slot_table_footprint(self):
        store = ValueStore(["x"] * 100, page_size=64)
        assert store.slot_table_bytes() == 1200

    def test_file_backed(self, tmp_path):
        path = str(tmp_path / "values.db")
        with ValueStore(["persist me"], path=path, page_size=64) as store:
            assert store.text(0) == "persist me"


class TestNoKStoreIntegration:
    def test_paged_values_in_store(self, small_doc):
        from repro.dol.labeling import DOL
        from repro.storage.nokstore import NoKStore

        dol = DOL.from_masks([1] * len(small_doc), 1)
        store = NoKStore(small_doc, dol, page_size=96, paged_values=True)
        assert store.text(2) == "anvil"
        assert store.text(5) == "hammer"
        assert store.values is not None
        assert store.values.buffer.stats.logical_reads > 0

    def test_query_through_paged_values(self, small_doc):
        from repro.acl.model import AccessMatrix
        from repro.dol.labeling import DOL
        from repro.nok.engine import QueryEngine
        from repro.storage.nokstore import NoKStore

        matrix = AccessMatrix(len(small_doc), 1)
        matrix.grant_range(0, 0, len(small_doc))
        dol = DOL.from_matrix(matrix)
        store = NoKStore(small_doc, dol, page_size=96, paged_values=True)
        engine = QueryEngine(small_doc, dol=dol, store=store)
        result = engine.evaluate('/site/item[name = "anvil"]', subject=0)
        assert result.n_answers == 1
