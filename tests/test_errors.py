"""The exception hierarchy: everything derives from ReproError."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.XMLParseError,
    errors.TreeError,
    errors.QueryParseError,
    errors.AccessControlError,
    errors.UnknownSubjectError,
    errors.CodebookError,
    errors.StorageError,
    errors.PageFormatError,
    errors.IndexError_,
    errors.UpdateError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_derives_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)


def test_specializations():
    assert issubclass(errors.UnknownSubjectError, errors.AccessControlError)
    assert issubclass(errors.PageFormatError, errors.StorageError)


def test_parse_error_position_formatting():
    err = errors.XMLParseError("boom", position=17)
    assert "position 17" in str(err)
    assert err.position == 17


def test_parse_error_without_position():
    err = errors.XMLParseError("boom")
    assert "position" not in str(err)
    assert err.position == -1


def test_one_except_clause_catches_all():
    """Library failures are catchable with a single handler."""
    from repro import parse

    try:
        parse("<not valid")
    except errors.ReproError:
        caught = True
    assert caught
