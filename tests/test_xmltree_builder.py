"""Unit tests for the nested-tuple tree builder."""

import pytest

from repro.errors import TreeError
from repro.xmltree.builder import tree
from repro.xmltree.node import Node


def test_single_node():
    assert tree(("a",)).tag == "a"


def test_nested_children():
    root = tree(("a", ("b",), ("c", ("d",))))
    assert [c.tag for c in root.children] == ["b", "c"]
    assert root.children[1].children[0].tag == "d"


def test_string_child_becomes_text():
    assert tree(("a", "hello")).text == "hello"


def test_multiple_strings_concatenate():
    assert tree(("a", "one", "two")).text == "one two"


def test_node_child_passed_through():
    existing = Node("x")
    root = tree(("a", existing))
    assert root.children[0] is existing


def test_string_root_rejected():
    with pytest.raises(TreeError):
        tree("just-a-string")


def test_tuple_without_tag_rejected():
    with pytest.raises(TreeError):
        tree((123, "x"))


def test_empty_tuple_rejected():
    with pytest.raises(TreeError):
        tree(())
