"""Unit tests for the write-ahead log: format, scan, redo/undo."""

import os

import pytest

from repro.errors import WALError
from repro.storage.wal import MAGIC, WALBatch, WriteAheadLog

PAGE = 64


def image(fill: int) -> bytes:
    return bytes([fill]) * PAGE


@pytest.fixture
def wal_path(tmp_path):
    return str(tmp_path / "store.db.wal")


class TestBatchProtocol:
    def test_fresh_log_has_magic(self, wal_path):
        with WriteAheadLog(wal_path):
            pass
        with open(wal_path, "rb") as handle:
            assert handle.read() == MAGIC

    def test_page_outside_batch_rejected(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            with pytest.raises(WALError):
                wal.log_page_write(0, image(1), image(2))

    def test_commit_outside_batch_rejected(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            with pytest.raises(WALError):
                wal.commit({})

    def test_nested_begin_rejected(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wal.begin()
            with pytest.raises(WALError):
                wal.begin()

    def test_mismatched_images_rejected(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wal.begin()
            with pytest.raises(WALError):
                wal.log_page_write(0, image(1), image(2) + b"x")


class TestScan:
    def test_committed_batch_roundtrip(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wal.begin()
            wal.log_page_write(3, image(1), image(2))
            wal.log_page_write(4, image(3), image(4))
            wal.commit({"n_nodes": 7}, ops=[{"op": "test"}])
        batches = WriteAheadLog.scan(wal_path)
        assert len(batches) == 1
        batch = batches[0]
        assert batch.committed
        assert batch.pages == [(3, image(1), image(2)), (4, image(3), image(4))]
        assert batch.catalog_patch == {"n_nodes": 7}
        assert batch.ops == [{"op": "test"}]

    def test_uncommitted_tail_is_parsed(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wal.begin()
            wal.log_page_write(0, image(5), image(6))
            wal.abort()
        batches = WriteAheadLog.scan(wal_path)
        assert len(batches) == 1
        assert not batches[0].committed
        assert batches[0].pages == [(0, image(5), image(6))]

    def test_torn_tail_discarded(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wal.begin()
            wal.log_page_write(0, image(1), image(2))
            wal.commit({})
        # chop bytes off the commit record: its CRC must fail
        size = os.path.getsize(wal_path)
        with open(wal_path, "r+b") as handle:
            handle.truncate(size - 3)
        batches = WriteAheadLog.scan(wal_path)
        assert len(batches) == 1
        assert not batches[0].committed  # commit no longer counts

    def test_corrupt_record_ends_scan(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wal.begin()
            wal.log_page_write(0, image(1), image(2))
            wal.commit({})
            wal.begin()
            wal.log_page_write(1, image(3), image(4))
            wal.commit({})
        # flip one byte inside the second batch's page record
        with open(wal_path, "r+b") as handle:
            data = bytearray(handle.read())
            data[-PAGE - 20] ^= 0xFF
            handle.seek(0)
            handle.write(data)
        batches = WriteAheadLog.scan(wal_path)
        assert len(batches) >= 1
        assert batches[0].committed  # first batch unaffected

    def test_bad_magic_rejected(self, wal_path):
        with open(wal_path, "wb") as handle:
            handle.write(b"NOTAWAL!")
        with pytest.raises(WALError):
            WriteAheadLog.scan(wal_path)


class TestRecover:
    def _page_file(self, tmp_path, n_pages=4):
        path = str(tmp_path / "store.db")
        with open(path, "wb") as handle:
            for fill in range(n_pages):
                handle.write(image(10 + fill))
        return path

    def test_committed_batch_is_redone(self, tmp_path, wal_path):
        page_path = self._page_file(tmp_path)
        with WriteAheadLog(wal_path) as wal:
            wal.begin()
            wal.log_page_write(1, image(11), image(99))
            wal.commit({"n_nodes": 42})
        result = WriteAheadLog.recover(wal_path, page_path)
        assert result.batches_replayed == 1
        assert result.pages_replayed == 1
        assert result.catalog_patch == {"n_nodes": 42}
        with open(page_path, "rb") as handle:
            data = handle.read()
        assert data[PAGE : 2 * PAGE] == image(99)

    def test_uncommitted_tail_is_rolled_back(self, tmp_path, wal_path):
        page_path = self._page_file(tmp_path)
        # simulate: page 2 was overwritten, then the process died pre-commit
        with WriteAheadLog(wal_path) as wal:
            wal.begin()
            wal.log_page_write(2, image(12), image(77))
            wal.abort()
        with open(page_path, "r+b") as handle:
            handle.seek(2 * PAGE)
            handle.write(image(77))
        result = WriteAheadLog.recover(wal_path, page_path)
        assert result.batches_rolled_back == 1
        assert result.pages_rolled_back == 1
        assert result.catalog_patch is None
        with open(page_path, "rb") as handle:
            data = handle.read()
        assert data[2 * PAGE : 3 * PAGE] == image(12)  # before-image restored

    def test_recovery_is_idempotent(self, tmp_path, wal_path):
        page_path = self._page_file(tmp_path)
        with WriteAheadLog(wal_path) as wal:
            wal.begin()
            wal.log_page_write(0, image(10), image(55))
            wal.commit({})
        WriteAheadLog.recover(wal_path, page_path)
        WriteAheadLog.recover(wal_path, page_path)  # running twice is safe
        with open(page_path, "rb") as handle:
            assert handle.read(PAGE) == image(55)

    def test_no_wal_is_a_noop(self, tmp_path):
        page_path = self._page_file(tmp_path)
        result = WriteAheadLog.recover(str(tmp_path / "absent.wal"), page_path)
        assert not result.acted

    def test_truncate_resets_to_magic(self, tmp_path, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wal.begin()
            wal.log_page_write(0, image(1), image(2))
            wal.commit({})
            wal.truncate()
            assert os.path.getsize(wal_path) == len(MAGIC)
            # the log is still usable after the checkpoint
            wal.begin()
            wal.log_page_write(1, image(3), image(4))
            wal.commit({})
        assert len(WriteAheadLog.scan(wal_path)) == 1


class TestBatchDataclass:
    def test_committed_property(self):
        assert not WALBatch().committed
        assert WALBatch(catalog_patch={}).committed
