"""Shared fixtures: small hand-built documents and XMark instances."""

from __future__ import annotations

import random

import pytest

from repro.acl.model import AccessMatrix
from repro.acl.synthetic import SyntheticACLConfig, generate_synthetic_acl
from repro.dol.labeling import DOL
from repro.xmark.generator import XMarkConfig, generate_document
from repro.xmltree.builder import tree
from repro.xmltree.document import Document


@pytest.fixture
def paper_tree():
    """The data tree of the paper's Figure 2:

    a(b, c, d, e(f, g, h(i, j, k, l))) — 12 nodes, document order a..l.
    """
    return tree(
        (
            "a",
            ("b",),
            ("c",),
            ("d",),
            ("e", ("f",), ("g",), ("h", ("i",), ("j",), ("k",), ("l",))),
        )
    )


@pytest.fixture
def paper_doc(paper_tree):
    return Document.from_tree(paper_tree)


@pytest.fixture
def small_doc():
    """A 7-node document with text values for predicate tests."""
    return Document.from_tree(
        tree(
            (
                "site",
                ("item", ("name", "anvil"), ("price", "10")),
                ("item", ("name", "hammer"), ("price", "10")),
            )
        )
    )


@pytest.fixture(scope="session")
def xmark_doc():
    """A shared mid-size XMark instance (~3k nodes)."""
    return generate_document(XMarkConfig(n_items=100, seed=11))


@pytest.fixture(scope="session")
def xmark_acl(xmark_doc):
    """Three-subject synthetic ACL over the shared XMark instance."""
    config = SyntheticACLConfig(
        propagation_ratio=0.3, accessibility_ratio=0.6, seed=5
    )
    return generate_synthetic_acl(xmark_doc, config, n_subjects=3)


@pytest.fixture(scope="session")
def xmark_dol(xmark_acl):
    return DOL.from_matrix(xmark_acl)


def random_masks(rng: random.Random, n_nodes: int, n_subjects: int):
    """Uniform random per-node ACL bitmasks (worst case for compression)."""
    limit = 1 << n_subjects
    return [rng.randrange(limit) for _ in range(n_nodes)]


def random_document(rng: random.Random, n_nodes: int) -> Document:
    """A random tree flattened to a document (random parent links)."""
    from repro.xmltree.node import Node

    root = Node("n0")
    nodes = [root]
    for index in range(1, n_nodes):
        parent = nodes[rng.randrange(len(nodes))]
        child = Node(f"n{rng.randrange(5)}")
        parent.append(child)
        nodes.append(child)
    return Document.from_tree(root)
