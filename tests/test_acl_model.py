"""Unit tests for subjects, modes, and the accessibility matrix."""

import pytest

from repro.acl.model import READ, AccessMatrix, SubjectRegistry
from repro.errors import AccessControlError, UnknownSubjectError


class TestSubjectRegistry:
    def test_dense_ids(self):
        reg = SubjectRegistry()
        assert reg.add("alice") == 0
        assert reg.add("bob") == 1
        assert reg.id_of("bob") == 1
        assert reg.name_of(0) == "alice"

    def test_duplicate_name_rejected(self):
        reg = SubjectRegistry()
        reg.add("alice")
        with pytest.raises(AccessControlError):
            reg.add("alice")

    def test_unknown_lookups(self):
        reg = SubjectRegistry()
        with pytest.raises(UnknownSubjectError):
            reg.id_of("ghost")
        with pytest.raises(UnknownSubjectError):
            reg.name_of(3)

    def test_groups_and_enrollment(self):
        reg = SubjectRegistry()
        staff = reg.add("staff", is_group=True)
        alice = reg.add("alice")
        reg.enroll(alice, staff)
        assert reg.groups_of(alice) == [staff]
        assert reg.is_group(staff)
        assert not reg.is_group(alice)

    def test_enroll_in_non_group_rejected(self):
        reg = SubjectRegistry()
        alice = reg.add("alice")
        bob = reg.add("bob")
        with pytest.raises(AccessControlError):
            reg.enroll(alice, bob)

    def test_effective_subjects_transitive(self):
        reg = SubjectRegistry()
        org = reg.add("org", is_group=True)
        dept = reg.add("dept", is_group=True)
        user = reg.add("user")
        reg.enroll(dept, org)
        reg.enroll(user, dept)
        assert reg.effective_subjects(user) == [org, dept, user]


class TestAccessMatrix:
    def test_default_denies_everything(self):
        matrix = AccessMatrix(4, 2)
        assert not any(
            matrix.accessible(s, p) for s in range(2) for p in range(4)
        )

    def test_set_and_get(self):
        matrix = AccessMatrix(4, 2)
        matrix.set_accessible(1, 2, True)
        assert matrix.accessible(1, 2)
        assert not matrix.accessible(0, 2)
        matrix.set_accessible(1, 2, False)
        assert not matrix.accessible(1, 2)

    def test_masks(self):
        matrix = AccessMatrix(3, 3)
        matrix.set_mask(1, 0b101)
        assert matrix.mask(1) == 0b101
        assert matrix.accessible(0, 1)
        assert not matrix.accessible(1, 1)
        assert matrix.accessible(2, 1)

    def test_mask_out_of_range_rejected(self):
        matrix = AccessMatrix(3, 2)
        with pytest.raises(AccessControlError):
            matrix.set_mask(0, 0b100)

    def test_grant_range(self):
        matrix = AccessMatrix(6, 1)
        matrix.grant_range(0, 2, 5)
        assert matrix.subject_vector(0) == [False, False, True, True, True, False]

    def test_grant_range_invalid(self):
        matrix = AccessMatrix(4, 1)
        with pytest.raises(AccessControlError):
            matrix.grant_range(0, 3, 2)
        with pytest.raises(AccessControlError):
            matrix.grant_range(0, 1, 9)

    def test_copy_where(self):
        matrix = AccessMatrix(4, 3)
        matrix.set_accessible(0, 1, True)
        matrix.set_accessible(1, 3, True)
        matrix.copy_where(2, 0b011)
        assert matrix.accessible(2, 1)
        assert matrix.accessible(2, 3)
        assert not matrix.accessible(2, 0)

    def test_fill_subject(self):
        matrix = AccessMatrix(3, 2)
        matrix.fill_subject(0, True)
        assert matrix.subject_vector(0) == [True] * 3
        matrix.fill_subject(0, False)
        assert matrix.subject_vector(0) == [False] * 3

    def test_multiple_modes_independent(self):
        matrix = AccessMatrix(2, 1, modes=["read", "write"])
        matrix.set_accessible(0, 0, True, "read")
        assert matrix.accessible(0, 0, "read")
        assert not matrix.accessible(0, 0, "write")

    def test_unknown_mode_rejected(self):
        matrix = AccessMatrix(2, 1)
        with pytest.raises(AccessControlError):
            matrix.accessible(0, 0, "write")

    def test_duplicate_modes_rejected(self):
        with pytest.raises(AccessControlError):
            AccessMatrix(2, 1, modes=["read", "read"])

    def test_from_function(self):
        matrix = AccessMatrix.from_function(4, 2, lambda s, p: (s + p) % 2 == 0)
        assert matrix.accessible(0, 0)
        assert not matrix.accessible(0, 1)
        assert matrix.accessible(1, 1)

    def test_from_masks_roundtrip(self):
        masks = [0b01, 0b11, 0b00, 0b10]
        matrix = AccessMatrix.from_masks(masks, 2)
        assert matrix.masks() == masks

    def test_accessible_count(self):
        matrix = AccessMatrix.from_masks([0b11, 0b01, 0], 2)
        assert matrix.accessible_count() == 3

    def test_user_mask_view_unions_groups(self):
        matrix = AccessMatrix(3, 3)
        matrix.set_accessible(0, 0, True)  # user's own right
        matrix.set_accessible(2, 2, True)  # group right
        view = matrix.user_mask_view([0, 2])
        assert view == [True, False, True]

    def test_restrict_to_subjects(self):
        matrix = AccessMatrix.from_masks([0b101, 0b010, 0b111], 3)
        projected = matrix.restrict_to_subjects([2, 0])
        # new subject 0 = old 2, new subject 1 = old 0
        assert projected.masks() == [0b011 & 0b11, 0b01 & 0b10, 0b11]
        assert projected.n_subjects == 2

    def test_equality(self):
        a = AccessMatrix.from_masks([1, 0], 1)
        b = AccessMatrix.from_masks([1, 0], 1)
        c = AccessMatrix.from_masks([0, 0], 1)
        assert a == b
        assert a != c

    def test_bounds_checks(self):
        matrix = AccessMatrix(2, 2)
        with pytest.raises(UnknownSubjectError):
            matrix.accessible(5, 0)
        with pytest.raises(AccessControlError):
            matrix.accessible(0, 5)
        with pytest.raises(AccessControlError):
            AccessMatrix(0, 1)
        with pytest.raises(AccessControlError):
            AccessMatrix(1, 0)
