"""Attribute predicates: [@name] existence and [@name = "value"] equality."""

import pytest

from repro.acl.model import AccessMatrix
from repro.errors import QueryParseError
from repro.nok.engine import QueryEngine
from repro.nok.pattern import parse_query
from repro.nok.reference import evaluate_reference
from repro.xmltree.document import Document
from repro.xmltree.node import Node
from repro.xmltree.parser import parse


@pytest.fixture
def doc():
    return Document.from_tree(
        parse(
            '<site>'
            '<item id="i1" featured="yes"><name>anvil</name></item>'
            '<item id="i2"><name>rope</name></item>'
            '<item id="i3" featured="no"><name>hammer</name></item>'
            '</site>'
        )
    )


class TestDocumentAttrs:
    def test_attrs_flattened(self, doc):
        assert doc.attrs_of(1) == {"id": "i1", "featured": "yes"}
        assert doc.attrs_of(3) == {"id": "i2"}
        assert doc.attrs_of(0) == {}

    def test_attrs_roundtrip_through_tree(self, doc):
        again = Document.from_tree(doc.to_tree())
        assert again.attrs == doc.attrs

    def test_attrs_survive_flatten_serialize_parse(self, doc):
        from repro.xmltree.serializer import serialize

        text = serialize(doc.to_tree())
        again = Document.from_tree(parse(text))
        assert again.attrs == doc.attrs


class TestParsing:
    def test_existence_test(self):
        tree = parse_query("//item[@featured]")
        assert tree.root.attr_tests == {"featured": None}

    def test_value_test(self):
        tree = parse_query('//item[@id = "i2"]')
        assert tree.root.attr_tests == {"id": "i2"}

    def test_mixed_predicates(self):
        tree = parse_query('//item[@featured = "yes"][name]')
        assert tree.root.attr_tests == {"featured": "yes"}
        assert tree.root.children[0].tag == "name"

    def test_to_string_roundtrip(self):
        tree = parse_query('//item[@id = "i1"][@featured]')
        again = parse_query(tree.to_string())
        assert again.root.attr_tests == tree.root.attr_tests

    def test_bad_attr_syntax(self):
        with pytest.raises(QueryParseError):
            parse_query("//item[@]")


class TestEvaluation:
    def test_existence(self, doc):
        engine = QueryEngine.build(doc)
        result = engine.evaluate("//item[@featured]")
        assert result.positions == [1, 5]

    def test_value_equality(self, doc):
        engine = QueryEngine.build(doc)
        result = engine.evaluate('//item[@featured = "yes"]')
        assert result.positions == [1]

    def test_attr_on_inner_step(self, doc):
        engine = QueryEngine.build(doc)
        result = engine.evaluate('/site/item[@id = "i2"]/name')
        assert [doc.text(p) for p in result.positions] == ["rope"]

    def test_missing_attr_matches_nothing(self, doc):
        engine = QueryEngine.build(doc)
        assert engine.evaluate("//item[@nonexistent]").positions == []

    def test_matches_reference(self, doc):
        engine = QueryEngine.build(doc)
        for query in (
            "//item[@featured]",
            '//item[@id = "i3"]',
            '/site/item[@featured = "no"]/name',
        ):
            got = set(engine.evaluate(query).positions)
            want = evaluate_reference(doc, parse_query(query))
            assert got == want, query

    def test_secure_attr_query(self, doc):
        matrix = AccessMatrix(len(doc), 1)
        matrix.grant_range(0, 0, len(doc))
        matrix.set_accessible(0, 1, False)  # first item denied
        engine = QueryEngine.build(doc, matrix)
        result = engine.evaluate("//item[@featured]", subject=0)
        assert result.positions == [5]

    def test_store_backed_attr_query(self, doc):
        matrix = AccessMatrix(len(doc), 1)
        matrix.grant_range(0, 0, len(doc))
        engine = QueryEngine.build(doc, matrix, use_store=True, page_size=128)
        result = engine.evaluate('//item[@id = "i1"]', subject=0)
        assert result.positions == [1]

    def test_xmark_item_ids(self, xmark_doc):
        engine = QueryEngine.build(xmark_doc)
        result = engine.evaluate('//item[@id = "item3"]')
        assert result.n_answers == 1
