"""Unit tests for secure one-pass XML dissemination."""

import pytest

from repro.acl.synthetic import SyntheticACLConfig, generate_synthetic_acl
from repro.dol.labeling import DOL
from repro.errors import AccessControlError
from repro.secure.dissemination import (
    HOIST,
    PRUNE,
    filter_xml,
    hoisted_positions,
    visible_positions,
)
from repro.xmltree.builder import tree
from repro.xmltree.document import Document
from repro.xmltree.parser import parse
from repro.xmltree.serializer import serialize

XML = "<a><b><c>secret</c></b><d>open</d></a>"
# positions: a=0 b=1 c=2 d=3


def dol_for(masks):
    return DOL.from_masks(masks, 1)


class TestPrune:
    def test_full_access_is_identity(self):
        out = filter_xml(XML, dol_for([1, 1, 1, 1]), 0)
        assert parse(out).structurally_equal(parse(XML))

    def test_denied_subtree_removed(self):
        out = filter_xml(XML, dol_for([1, 0, 1, 1]), 0, PRUNE)
        assert out == "<a><d>open</d></a>"

    def test_denied_root_yields_nothing(self):
        assert filter_xml(XML, dol_for([0, 1, 1, 1]), 0, PRUNE) == ""

    def test_accessible_node_under_denied_parent_pruned(self):
        # c accessible but b denied: view semantics prunes c anyway.
        out = filter_xml(XML, dol_for([1, 0, 1, 1]), 0, PRUNE)
        assert "secret" not in out

    def test_text_of_kept_nodes_preserved(self):
        out = filter_xml(XML, dol_for([1, 1, 1, 0]), 0, PRUNE)
        assert out == "<a><b><c>secret</c></b></a>"


class TestHoist:
    def test_accessible_descendants_surface(self):
        out = filter_xml(XML, dol_for([1, 0, 1, 1]), 0, HOIST)
        assert out == "<a><c>secret</c><d>open</d></a>"

    def test_denied_root_leaves_forest(self):
        out = filter_xml(XML, dol_for([0, 1, 1, 1]), 0, HOIST)
        assert out == "<b><c>secret</c></b><d>open</d>"
        # well-formed as a fragment
        parse(f"<wrap>{out}</wrap>")

    def test_nothing_accessible(self):
        assert filter_xml(XML, dol_for([0, 0, 0, 0]), 0, HOIST) == ""


class TestMultiSubject:
    def test_per_subject_filtering(self):
        # subject 0 sees everything; subject 1 only a and d
        masks = [0b11, 0b01, 0b01, 0b11]
        dol = DOL.from_masks(masks, 2)
        assert "secret" in filter_xml(XML, dol, 0)
        out1 = filter_xml(XML, dol, 1)
        assert "secret" not in out1
        assert "<d>" in out1


class TestValidation:
    def test_unknown_policy(self):
        with pytest.raises(AccessControlError):
            filter_xml(XML, dol_for([1, 1, 1, 1]), 0, "shred")

    def test_dol_too_small(self):
        with pytest.raises(AccessControlError):
            filter_xml(XML, dol_for([1, 1]), 0)

    def test_attributes_preserved(self):
        xml = '<a id="1"><b name="x &amp; y"/></a>'
        out = filter_xml(xml, dol_for([1, 1]), 0)
        again = parse(out)
        assert again.attrs == {"id": "1"}
        assert again.children[0].attrs == {"name": "x & y"}


class TestAgainstReferenceSets:
    def test_prune_matches_visible_positions(self, xmark_doc):
        matrix = generate_synthetic_acl(
            xmark_doc, SyntheticACLConfig(accessibility_ratio=0.8, seed=6)
        )
        dol = DOL.from_matrix(matrix)
        xml = serialize(xmark_doc.to_tree())
        out = filter_xml(xml, dol, 0, PRUNE)
        expected = visible_positions(dol, 0, xmark_doc)
        if not expected:
            assert out == ""
            return
        filtered = Document.from_tree(parse(out))
        expected_tags = [xmark_doc.tag_name(p) for p in expected]
        got_tags = [filtered.tag_name(i) for i in range(len(filtered))]
        assert got_tags == expected_tags

    def test_hoist_matches_accessible_positions(self, xmark_doc):
        matrix = generate_synthetic_acl(
            xmark_doc, SyntheticACLConfig(accessibility_ratio=0.6, seed=7)
        )
        dol = DOL.from_matrix(matrix)
        xml = serialize(xmark_doc.to_tree())
        out = filter_xml(xml, dol, 0, HOIST)
        expected = hoisted_positions(dol, 0)
        wrapped = Document.from_tree(parse(f"<wrap>{out}</wrap>"))
        got_tags = [wrapped.tag_name(i) for i in range(1, len(wrapped))]
        assert got_tags == [xmark_doc.tag_name(p) for p in expected]

    def test_prune_output_reparses_and_revalidates(self, xmark_doc):
        matrix = generate_synthetic_acl(
            xmark_doc, SyntheticACLConfig(accessibility_ratio=0.9, seed=8)
        )
        dol = DOL.from_matrix(matrix)
        xml = serialize(xmark_doc.to_tree())
        out = filter_xml(xml, dol, 0, PRUNE)
        if out:
            Document.from_tree(parse(out)).validate()
