"""Property tests with value predicates: all strategies must agree.

Random documents with random short texts, queries mixing tag, value, and
wildcard tests — NoK evaluation, the PathStack strategies, and the
brute-force oracle must return identical answers.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acl.model import AccessMatrix
from repro.nok.engine import QueryEngine
from repro.nok.pattern import parse_query
from repro.nok.reference import evaluate_reference
from repro.xmltree.document import Document
from repro.xmltree.node import Node

TEXTS = ["", "x", "y", "zz"]


def random_document_with_texts(rng: random.Random, n: int) -> Document:
    root = Node("n0", text=rng.choice(TEXTS))
    nodes = [root]
    for _ in range(1, n):
        parent = nodes[rng.randrange(len(nodes))]
        child = Node(f"n{rng.randrange(4)}", text=rng.choice(TEXTS))
        parent.append(child)
        nodes.append(child)
    return Document.from_tree(root)


QUERIES = [
    '//n0 = "x"',
    '//n1[n0 = "y"]',
    '//n0/n1 = "zz"',
    '//*[n2]/n0 = "x"',
    '//n2 = "x"//n1',
    '/n0//n3 = "y"',
    '//n1[n0 = "x"][n2]',
]


@st.composite
def cases(draw):
    seed = draw(st.integers(min_value=0, max_value=99_999))
    rng = random.Random(seed)
    doc = random_document_with_texts(rng, draw(st.integers(min_value=1, max_value=35)))
    query = draw(st.sampled_from(QUERIES))
    masks = [rng.randrange(2) for _ in range(len(doc))]
    return doc, query, masks


@given(cases())
@settings(max_examples=150, deadline=None)
def test_nok_with_values_matches_oracle(case):
    doc, query, _masks = case
    pattern = parse_query(query)
    engine = QueryEngine.build(doc)
    got = set(engine.evaluate(pattern).positions)
    want = evaluate_reference(doc, pattern)
    assert got == want, query


@given(cases())
@settings(max_examples=120, deadline=None)
def test_pathstack_with_values_matches_oracle(case):
    doc, query, _masks = case
    pattern = parse_query(query)
    engine = QueryEngine.build(doc)
    got = set(engine.evaluate_path(pattern).positions)
    want = evaluate_reference(doc, pattern)
    assert got == want, query


@given(cases())
@settings(max_examples=100, deadline=None)
def test_secure_strategies_agree_with_values(case):
    doc, query, masks = case
    pattern = parse_query(query)
    matrix = AccessMatrix.from_masks(masks, 1)
    engine = QueryEngine.build(doc, matrix)
    nok = set(engine.evaluate(pattern, subject=0).positions)
    holistic = set(engine.evaluate_path(pattern, subject=0).positions)
    oracle = evaluate_reference(doc, pattern, masks, 0)
    assert nok == holistic == oracle, query
