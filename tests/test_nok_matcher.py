"""Unit tests for NPM pattern matching (Algorithm 1) and binding enumeration."""

import pytest

from repro.nok.decompose import decompose
from repro.nok.matcher import match_nok_subtree, npm
from repro.nok.pattern import parse_query
from repro.xmltree.builder import tree
from repro.xmltree.document import Document


@pytest.fixture
def doc():
    #            a0
    #      b1         b4        e7
    #    c2  d3     c5  d6      c8
    return Document.from_tree(
        tree(
            (
                "a",
                ("b", ("c",), ("d",)),
                ("b", ("c",), ("d",)),
                ("e", ("c",)),
            )
        )
    )


def pattern_root(query):
    return parse_query(query).root


class TestNPM:
    def test_simple_match(self, doc):
        result = []
        assert npm(doc, pattern_root("/a/b"), 0, result)
        assert result == [1, 4]

    def test_no_match_leaves_result_empty(self, doc):
        result = []
        assert not npm(doc, pattern_root("/a/zzz"), 0, result)
        assert result == []

    def test_branching_pattern(self, doc):
        result = []
        assert npm(doc, pattern_root("/a/b[c][d]"), 0, result)
        assert result == [1, 4]

    def test_partial_failure_rolls_back_bindings(self, doc):
        # e has a c child but no d; only the two bs qualify.
        result = []
        assert npm(doc, pattern_root("/a/*[c][d]"), 0, result)
        assert result == [1, 4]

    def test_returning_node_deep(self, doc):
        result = []
        assert npm(doc, pattern_root("/a/b/c"), 0, result)
        assert result == [2, 5]

    def test_secure_skips_inaccessible_children(self, doc):
        blocked = {1}  # first b inaccessible
        result = []
        assert npm(doc, pattern_root("/a/b"), 0, result, access=lambda p: p not in blocked)
        assert result == [4]

    def test_secure_failure_when_all_blocked(self, doc):
        result = []
        ok = npm(doc, pattern_root("/a/b"), 0, result, access=lambda p: p not in {1, 4})
        assert not ok
        assert result == []

    def test_value_constraints(self, small_doc):
        result = []
        ok = npm(small_doc, parse_query('/site/item/name = "anvil"').root, 0, result)
        assert ok
        assert result == [2]


class TestBindingEnumeration:
    def _match(self, doc, query, pos=0, access=None):
        dec = decompose(parse_query(query))
        return match_nok_subtree(doc, dec.subtrees[0], pos, access)

    def test_root_binding_always_present(self, doc):
        bindings = self._match(doc, "/a/b")
        dec_root = parse_query("/a/b")
        assert bindings  # a matched
        for binding in bindings:
            assert 0 in binding.values()

    def test_returning_bindings_enumerated(self, doc):
        query = parse_query("/a/b")
        dec = decompose(query)
        bindings = match_nok_subtree(doc, dec.subtrees[0], 0)
        ret = id(query.returning_node)
        assert sorted(b[ret] for b in bindings) == [1, 4]

    def test_existential_branches_not_enumerated(self, doc):
        # c and d are pure predicates -> not output nodes -> single binding
        query = parse_query("/a[b]")
        dec = decompose(query)
        bindings = match_nok_subtree(doc, dec.subtrees[0], 0)
        assert len(bindings) == 1

    def test_no_match_returns_empty(self, doc):
        assert self._match(doc, "/a/zzz") == []

    def test_connection_point_bindings(self, doc):
        # b is an AD-edge source; its bindings must be enumerated.
        query = parse_query("/a/b//x")
        dec = decompose(query)
        bindings = match_nok_subtree(doc, dec.subtrees[0], 0)
        b_node = dec.edges[0].parent_node
        assert sorted(m[id(b_node)] for m in bindings) == [1, 4]

    def test_secure_enumeration(self, doc):
        bindings = self._match(doc, "/a/b", access=lambda p: p != 1)
        query = parse_query("/a/b")
        assert len(bindings) == 1

    def test_duplicate_bindings_deduped(self, doc):
        # Multiple ways to satisfy [c] must not duplicate b bindings.
        bindings = self._match(doc, "/a/b[c][d]")
        keys = [frozenset(b.items()) for b in bindings]
        assert len(keys) == len(set(keys))
