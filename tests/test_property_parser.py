"""Property-based tests: XML serialize/parse round trips, document flattening."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.encoding import parse_structure_string, to_structure_string
from repro.xmltree.document import Document
from repro.xmltree.node import Node
from repro.xmltree.parser import parse
from repro.xmltree.serializer import serialize
from tests.conftest import random_document

tag_names = st.sampled_from(["a", "b", "item", "name", "x1", "ns:tag", "_private"])
texts = st.text(
    alphabet=st.characters(
        codec="utf-8",
        exclude_categories=("Cs", "Cc"),
    ),
    max_size=20,
).map(str.strip)


@st.composite
def xml_trees(draw, max_depth=4):
    node = Node(draw(tag_names), text=draw(texts))
    n_attrs = draw(st.integers(min_value=0, max_value=2))
    for index in range(n_attrs):
        node.attrs[f"a{index}"] = draw(texts)
    if max_depth > 0:
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            node.append(draw(xml_trees(max_depth=max_depth - 1)))
    return node


@given(xml_trees())
@settings(max_examples=150)
def test_serialize_parse_roundtrip(root):
    assert parse(serialize(root)).structurally_equal(root)


@given(xml_trees())
@settings(max_examples=60)
def test_pretty_serialize_roundtrip_structure(root):
    """Indented output preserves tags/attrs/children (whitespace-only text
    may be normalized away, so compare a text-stripped skeleton)."""

    def skeleton(node):
        return (node.tag, tuple(sorted(node.attrs.items())),
                tuple(skeleton(c) for c in node.children))

    again = parse(serialize(root, indent=2))
    assert skeleton(again) == skeleton(root)


@given(st.integers(min_value=0, max_value=9999), st.integers(min_value=1, max_value=120))
def test_document_flatten_roundtrip(seed, n):
    doc = random_document(random.Random(seed), n)
    doc.validate()
    again = Document.from_tree(doc.to_tree())
    assert again.tags == doc.tags
    assert again.parent == doc.parent
    assert again.subtree == doc.subtree
    assert again.depth == doc.depth


@given(st.integers(min_value=0, max_value=9999), st.integers(min_value=1, max_value=120))
def test_structure_string_roundtrip(seed, n):
    doc = random_document(random.Random(seed), n)
    rebuilt = parse_structure_string(to_structure_string(doc))
    assert rebuilt.parent == doc.parent
    assert rebuilt.subtree == doc.subtree


@given(st.integers(min_value=0, max_value=9999), st.integers(min_value=1, max_value=80))
def test_navigation_consistency(seed, n):
    """first_child/following_sibling traversal visits children() exactly."""
    doc = random_document(random.Random(seed), n)
    for pos in range(len(doc)):
        via_nok = []
        child = doc.first_child(pos)
        while child != -1:
            via_nok.append(child)
            child = doc.following_sibling(child)
        assert via_nok == list(doc.children(pos))
