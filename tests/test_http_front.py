"""The HTTP/JSON front end riding on the asyncio serving stack.

Drives the front end with the stdlib ``http.client`` so header
parsing, status mapping, chunked streaming, and connection teardown
are exercised against a real HTTP implementation rather than a
hand-rolled peer.
"""

import json
from http.client import HTTPConnection

import pytest

from repro.acl.model import AccessMatrix
from repro.errors import (
    AccessControlError,
    BadRequest,
    QueryParseError,
    ServiceError,
    ServiceOverloaded,
    ServiceTimeout,
    ServiceUnavailable,
)
from repro.nok.engine import QueryEngine
from repro.server.aserver import serve_async
from repro.server.http import status_for, status_for_name
from repro.server.service import QueryService, ServiceConfig


@pytest.fixture
def engine(small_doc):
    masks = [0b11] * len(small_doc)
    masks[5] = 0b01
    matrix = AccessMatrix.from_masks(masks, 2)
    engine = QueryEngine.build(small_doc, matrix, use_store=True, page_size=128)
    yield engine
    engine.store.close()


@pytest.fixture
def running(engine):
    service = QueryService(engine, ServiceConfig(workers=2, queue_depth=4))
    server = serve_async(service, host="127.0.0.1", port=0, http_port=0)
    yield server
    server.shutdown()
    service.close()


def http(server):
    host, port = server.http_address
    return HTTPConnection(host, port, timeout=10)


def post_query(server, payload):
    conn = http(server)
    try:
        body = json.dumps(payload)
        conn.request(
            "POST", "/query", body=body,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestRoutes:
    def test_health(self, running):
        conn = http(running)
        try:
            conn.request("GET", "/health")
            response = conn.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["state"] == "healthy"
        finally:
            conn.close()

    def test_metrics(self, running):
        post_query(running, {"query": "//item/name", "subject": 0})
        conn = http(running)
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            assert response.status == 200
            metrics = json.loads(response.read())
            assert metrics["completed"] >= 1
            assert "streams" in metrics
        finally:
            conn.close()

    def test_unknown_route_404(self, running):
        conn = http(running)
        try:
            conn.request("GET", "/nope")
            assert conn.getresponse().status == 404
        finally:
            conn.close()

    def test_query_requires_post(self, running):
        conn = http(running)
        try:
            conn.request("GET", "/query")
            assert conn.getresponse().status == 405
        finally:
            conn.close()


class TestQuery:
    def test_drained_query(self, running):
        status, body = post_query(
            running, {"query": "//item/name", "subject": 0}
        )
        assert status == 200
        assert body["ok"] and body["n_answers"] == 2

    def test_buffered_fragments_body(self, running):
        status, body = post_query(
            running,
            {"query": "//item/name", "subject": 1, "fragments": True},
        )
        assert status == 200
        assert len(body["fragments"]) == 1  # subject 1 lost a name

    def test_bad_json_body_is_400(self, running):
        conn = http(running)
        try:
            conn.request(
                "POST", "/query", body="{not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 400
            assert json.loads(response.read())["error"] == "BadRequest"
        finally:
            conn.close()

    def test_parse_error_maps_to_400(self, running):
        status, body = post_query(running, {"query": "//item[", "subject": 0})
        assert status == 400
        assert body["error"] == "QueryParseError"
        assert body["retriable"] is False

    def test_oversized_body_is_413(self, engine):
        service = QueryService(
            engine, ServiceConfig(workers=1, max_request_bytes=256)
        )
        server = serve_async(service, host="127.0.0.1", port=0, http_port=0)
        try:
            conn = http(server)
            try:
                conn.request(
                    "POST", "/query", body="x" * 500,
                    headers={"Content-Type": "application/json"},
                )
                assert conn.getresponse().status == 413
            finally:
                conn.close()
        finally:
            server.shutdown()
            service.close()


class TestStreaming:
    def test_chunked_ndjson_stream(self, running):
        conn = http(running)
        try:
            conn.request(
                "POST", "/query",
                body=json.dumps({
                    "query": "//item/name", "subject": 0, "stream": True,
                    "ordered": True,
                }),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == "application/x-ndjson"
            frames = [
                json.loads(line)
                for line in response.read().decode().splitlines()
            ]
        finally:
            conn.close()
        assert [f["frame"] for f in frames] == \
            ["begin", "fragment", "fragment", "end"]
        assert frames[-1]["n_fragments"] == 2

    def test_eager_validation_error_is_a_status(self, running):
        conn = http(running)
        try:
            conn.request(
                "POST", "/query",
                body=json.dumps({"query": "//item", "stream": True}),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            # no subject: rejected before the stream opens, so the
            # failure still has a status line
            assert response.status == 400
            assert json.loads(response.read())["error"] == "BadRequest"
        finally:
            conn.close()

    def test_lazy_error_is_a_terminal_frame(self, running):
        conn = http(running)
        try:
            conn.request(
                "POST", "/query",
                body=json.dumps({"query": "//item[", "subject": 0,
                                 "stream": True}),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            # compilation happens at first pull — after the 200 head —
            # so the parse error arrives as the terminal typed frame,
            # exactly like protocol v2
            assert response.status == 200
            frames = [
                json.loads(line)
                for line in response.read().decode().splitlines()
            ]
        finally:
            conn.close()
        assert [f["frame"] for f in frames] == ["error"]
        assert frames[0]["error"] == "QueryParseError"

    def test_stream_matches_buffered_fragments(self, running):
        _, body = post_query(
            running,
            {"query": "//item/name", "subject": 0, "fragments": True},
        )
        conn = http(running)
        try:
            conn.request(
                "POST", "/query",
                body=json.dumps({"query": "//item/name", "subject": 0,
                                 "stream": True}),
                headers={"Content-Type": "application/json"},
            )
            frames = [
                json.loads(line)
                for line in conn.getresponse().read().decode().splitlines()
            ]
        finally:
            conn.close()
        streamed = [
            [f["position"], f["xml"]]
            for f in frames if f["frame"] == "fragment"
        ]
        assert streamed == body["fragments"]


class TestStatusMapping:
    @pytest.mark.parametrize("exc,status", [
        (ServiceOverloaded(4, 4), 503),
        (ServiceUnavailable("closed"), 503),
        (ServiceTimeout(1.0), 504),
        (AccessControlError("denied"), 403),
        (BadRequest("nope"), 400),
        (QueryParseError("bad query"), 400),
        (ServiceError("other"), 500),
    ])
    def test_status_for(self, exc, status):
        assert status_for(exc) == status
        assert status_for_name(type(exc).__name__) == status

    def test_unknown_names_are_500(self):
        assert status_for_name("NotAnError") == 500
