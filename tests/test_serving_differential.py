"""Transport differential: every path serves the *same* fragments.

One service, three transports — the in-process
``stream_answer_fragments`` iterator, the v1 buffered ``fragments``
body over the threaded NDJSON server, and the v2 framed stream over
the asyncio server. For healthy, degraded, and typed-error runs alike,
all three must agree byte for byte: same positions, same XML
fragments, same epoch/strict/degraded accounting, same error types.
"""

import time

import pytest

from repro.errors import (
    BadRequest,
    PageCorruptionError,
    QueryParseError,
)
from repro.nok.engine import QueryEngine
from repro.secure.dissemination import stream_answer_fragments
from repro.server.aserver import serve_async
from repro.server.chaos import ChaosPlan, ChaosSpec
from repro.server.client import ResilientClient, RetryPolicy
from repro.server.health import HealthConfig
from repro.server.netserver import serve
from repro.server.service import QueryService, ServiceConfig

QUERY = "//item/name"
ONE_SHOT = RetryPolicy(
    max_attempts=1, base_delay_s=0.005, max_delay_s=0.01, deadline_s=10.0
)


@pytest.fixture(scope="module")
def engine(xmark_doc, xmark_acl):
    engine = QueryEngine.build(
        xmark_doc, xmark_acl, use_store=True, page_size=512
    )
    yield engine
    engine.store.close()


@pytest.fixture
def stack(engine):
    """The full differential stack: one service, both wire servers."""
    service = QueryService(
        engine,
        ServiceConfig(workers=2, queue_depth=4),
        # cache opt-ins shed: every transport must actually read pages,
        # so quarantine effects are identical across runs
        chaos=ChaosPlan(ChaosSpec(seed=0, disable_caches=True)),
        health_config=HealthConfig(corruption_trip=1, probe_interval_s=60.0),
    )
    service._last_quarantine_probe = time.monotonic()
    v1 = serve(service, host="127.0.0.1", port=0, background=True)
    v2 = serve_async(service, host="127.0.0.1", port=0)
    try:
        yield service, v1.address, v2.address
    finally:
        v2.shutdown()
        v1.shutdown()
        v1.server_close()
        service.close()
        engine.store.clear_quarantine()


def inprocess_fragments(engine, subject, strict=True, **kwargs):
    stream = stream_answer_fragments(
        engine, QUERY, subject, strict=strict, use_run_cache=False, **kwargs
    )
    try:
        return [[pos, xml] for pos, xml in stream]
    finally:
        stream.close()


def v1_fragments_body(address, subject):
    with ResilientClient(*address, policy=ONE_SHOT) as client:
        return client.request(
            {"op": "query", "query": QUERY, "subject": subject,
             "fragments": True}
        )


def v2_stream_frames(address, subject, policy=ONE_SHOT):
    with ResilientClient(*address, policy=policy) as client:
        return list(client.stream(QUERY, subject=subject))


def split_frames(frames):
    begin, end = frames[0], frames[-1]
    assert begin["frame"] == "begin"
    assert end["frame"] == "end"
    body = [[f["position"], f["xml"]] for f in frames[1:-1]]
    assert [f["seq"] for f in frames[1:-1]] == list(range(len(body)))
    return begin, body, end


class TestHealthyDifferential:
    def test_three_transports_agree_byte_for_byte(self, stack):
        service, v1_addr, v2_addr = stack
        reference = inprocess_fragments(service.engine, 0)
        assert reference  # non-vacuous

        body = v1_fragments_body(v1_addr, 0)
        assert body["ok"] and body["strict"] and not body["degraded"]
        assert body["fragments"] == reference

        begin, streamed, end = split_frames(v2_stream_frames(v2_addr, 0))
        assert streamed == reference
        assert begin["strict"] is True
        assert begin["epoch"] == body["epoch"]
        assert end["degraded"] is False
        assert end["n_fragments"] == body["n_fragments"] == len(reference)
        assert end["policy"] == body["policy"]

    def test_agreement_holds_per_subject(self, stack):
        service, v1_addr, v2_addr = stack
        for subject in (1, 2):
            reference = inprocess_fragments(service.engine, subject)
            assert v1_fragments_body(v1_addr, subject)["fragments"] == reference
            _, streamed, _ = split_frames(v2_stream_frames(v2_addr, subject))
            assert streamed == reference


class TestDegradedDifferential:
    def test_degraded_runs_agree_and_are_subsets(self, stack):
        service, v1_addr, v2_addr = stack
        engine = service.engine
        full = inprocess_fragments(engine, 0)
        engine.store.quarantined.update(range(0, 4096, 3))
        try:
            # one drained request trips the breaker (corruption_trip=1):
            # everything after runs degraded around the quarantine
            first = service.evaluate(QUERY, subject=0)
            assert first["degraded"] is True
            assert service.health.breaker.state == "open"

            reference = inprocess_fragments(engine, 0, strict=False)
            assert set(map(tuple, reference)) < set(map(tuple, full))

            body = v1_fragments_body(v1_addr, 0)
            assert body["degraded"] is True and body["strict"] is False
            assert body["fragments"] == reference

            begin, streamed, end = split_frames(v2_stream_frames(v2_addr, 0))
            assert begin["strict"] is False
            assert end["degraded"] is True
            assert streamed == reference
        finally:
            engine.store.clear_quarantine()


class TestTypedErrorDifferential:
    def test_parse_error_is_identical_across_transports(self, stack):
        service, v1_addr, v2_addr = stack
        bad = "//item["  # unterminated predicate
        with pytest.raises(QueryParseError):
            list(stream_answer_fragments(service.engine, bad, 0))
        with ResilientClient(*v1_addr, policy=ONE_SHOT) as client:
            with pytest.raises(QueryParseError):
                client.request(
                    {"op": "query", "query": bad, "subject": 0,
                     "fragments": True}
                )
        with ResilientClient(*v2_addr, policy=ONE_SHOT) as client:
            with pytest.raises(QueryParseError):
                list(client.stream(bad, subject=0))

    def test_missing_subject_rejected_identically(self, stack):
        _, v1_addr, v2_addr = stack
        with ResilientClient(*v1_addr, policy=ONE_SHOT) as client:
            with pytest.raises(BadRequest):
                client.request(
                    {"op": "query", "query": QUERY, "fragments": True}
                )
        with ResilientClient(*v2_addr, policy=ONE_SHOT) as client:
            with pytest.raises(BadRequest):
                list(client.stream(QUERY))

    def test_strict_corruption_is_a_typed_error_on_every_path(self, stack):
        service, v1_addr, v2_addr = stack
        engine = service.engine
        engine.store.quarantined.update(range(4096))
        try:
            # the breaker starts closed: both strict runs fail typed
            # (the degraded differential covers the open-breaker path)
            with pytest.raises(PageCorruptionError):
                inprocess_fragments(engine, 0)
            with ResilientClient(*v2_addr, policy=ONE_SHOT) as client:
                with pytest.raises(PageCorruptionError):
                    list(client.stream(QUERY, subject=0))
        finally:
            engine.store.clear_quarantine()
