"""Unit tests for the integrated NoK + DOL block store."""

import pytest

from repro.acl.model import AccessMatrix
from repro.dol.labeling import DOL
from repro.errors import StorageError
from repro.storage.headers import HEADER_SIZE
from repro.storage.nokstore import NoKStore
from repro.xmltree.document import NO_NODE


def make_store(doc, masks, n_subjects=2, page_size=96, buffer_capacity=4):
    dol = DOL.from_masks(masks, n_subjects)
    return NoKStore(doc, dol, page_size=page_size, buffer_capacity=buffer_capacity)


@pytest.fixture
def store(paper_doc):
    # 12 nodes, tiny pages so the document spans several blocks.
    masks = [0b11, 0b11, 0b01, 0b01, 0b01, 0b11, 0b11, 0b00, 0b00, 0b10, 0b10, 0b11]
    return make_store(paper_doc, masks)


class TestLayout:
    def test_multiple_pages(self, store):
        assert store.n_pages > 1
        assert store.n_pages == -(-store.n_nodes // store.entries_per_page)

    def test_page_of(self, store):
        assert store.page_of(0) == 0
        assert store.page_of(store.entries_per_page) == 1

    def test_entries_round_trip_structure(self, store, paper_doc):
        for pos in range(store.n_nodes):
            entry = store.entry(pos)
            assert entry.tag_id == paper_doc.tags[pos]
            assert entry.depth == paper_doc.depth[pos]
            assert entry.subtree == paper_doc.subtree[pos]

    def test_first_entry_of_each_page_is_transition(self, store):
        for page_id in range(store.n_pages):
            first = page_id * store.entries_per_page
            assert store.entry(first).is_transition

    def test_headers_match_pages(self, store):
        for page_id in range(store.n_pages):
            first = page_id * store.entries_per_page
            header = store.headers.get(page_id)
            assert header.first_code == store.dol.code_at(first)

    def test_dol_document_mismatch_rejected(self, paper_doc):
        dol = DOL.from_masks([1, 0], 1)
        with pytest.raises(StorageError):
            NoKStore(paper_doc, dol)


class TestNavigation:
    def test_matches_document(self, store, paper_doc):
        for pos in range(store.n_nodes):
            assert store.first_child(pos) == paper_doc.first_child(pos)
            assert store.following_sibling(pos) == paper_doc.following_sibling(pos)
            assert store.tag_name(pos) == paper_doc.tag_name(pos)

    def test_last_node(self, store):
        assert store.first_child(11) == NO_NODE
        assert store.following_sibling(11) == NO_NODE

    def test_texts_served(self, small_doc):
        store = make_store(small_doc, [1] * len(small_doc), n_subjects=1)
        assert store.text(2) == "anvil"


class TestAccessChecks:
    def test_accessibility_matches_dol(self, store):
        for pos in range(store.n_nodes):
            for subject in (0, 1):
                assert store.accessible(subject, pos) == store.dol.accessible(
                    subject, pos
                )

    def test_check_costs_no_extra_io(self, store):
        store.drop_caches()
        store.reset_io_stats()
        store.entry(5)  # load the page by navigation
        reads_before = store.pager.stats.reads
        store.accessible(0, 5)
        store.accessible(1, 5)
        assert store.pager.stats.reads == reads_before

    def test_page_skip_detection(self, paper_doc):
        # All nodes denied for subject 1 -> every page skippable for it.
        store = make_store(paper_doc, [0b01] * 12)
        for page_id in range(store.n_pages):
            assert store.page_fully_inaccessible(page_id, 1)
            assert not store.page_fully_inaccessible(page_id, 0)

    def test_subtree_skip(self, paper_doc):
        store = make_store(paper_doc, [0b01] * 12)
        assert store.subtree_fully_inaccessible(0, 1)
        assert not store.subtree_fully_inaccessible(0, 0)


class TestUpdates:
    def test_update_reflects_in_checks(self, store):
        cost = store.update_subject_range(2, 7, 1, True)
        for pos in range(2, 7):
            assert store.accessible(1, pos)
        assert cost.transition_delta <= 2

    def test_update_rewrites_only_touched_pages(self, store):
        epp = store.entries_per_page
        cost = store.update_subject_range(0, epp, 0, False)
        # range plus its boundary position -> at most 2 pages
        assert cost.pages_rewritten <= 2

    def test_update_range_mask(self, store):
        store.update_range_mask(3, 6, 0b10)
        assert not store.accessible(0, 4)
        assert store.accessible(1, 4)

    def test_update_persists_through_cache_drop(self, store):
        store.update_range_mask(0, 12, 0b00)
        store.drop_caches()
        assert not store.accessible(0, 6)

    def test_headers_updated(self, paper_doc):
        store = make_store(paper_doc, [0b11] * 12)
        store.update_range_mask(0, 12, 0b00)
        for page_id in range(store.n_pages):
            assert store.page_fully_inaccessible(page_id, 0)


class TestIOAccounting:
    def test_reads_counted(self, store):
        store.drop_caches()
        store.reset_io_stats()
        store.entry(0)
        assert store.buffer.stats.logical_reads == 1
        assert store.pager.stats.reads == 1
        store.entry(1)  # same page
        assert store.pager.stats.reads == 1
        assert store.buffer.stats.logical_reads == 2

    def test_scan_with_tiny_buffer_evicts(self, paper_doc):
        store = make_store(paper_doc, [1] * 12, n_subjects=1, buffer_capacity=1)
        store.drop_caches()
        store.reset_io_stats()
        for pos in range(store.n_nodes):
            store.entry(pos)
        assert store.pager.stats.reads == store.n_pages

    def test_context_manager_closes(self, paper_doc, tmp_path):
        dol = DOL.from_masks([1] * 12, 1)
        path = str(tmp_path / "store.db")
        with NoKStore(paper_doc, dol, path=path, page_size=256) as store:
            store.entry(3)
