"""Unit tests for the DOL codebook."""

import pytest

from repro.dol.codebook import Codebook
from repro.errors import CodebookError


class TestEncodeDecode:
    def test_codes_are_dense(self):
        book = Codebook(3)
        assert book.encode(0b101) == 0
        assert book.encode(0b010) == 1
        assert book.encode(0b101) == 0  # reused, not duplicated
        assert len(book) == 2

    def test_decode_roundtrip(self):
        book = Codebook(4)
        for mask in (0, 0b1111, 0b0101):
            assert book.decode(book.encode(mask)) == mask

    def test_unknown_code_rejected(self):
        book = Codebook(2)
        with pytest.raises(CodebookError):
            book.decode(0)

    def test_mask_out_of_width_rejected(self):
        book = Codebook(2)
        with pytest.raises(CodebookError):
            book.encode(0b100)
        with pytest.raises(CodebookError):
            book.encode(-1)

    def test_accessible_bit_lookup(self):
        book = Codebook(3)
        code = book.encode(0b101)
        assert book.accessible(code, 0)
        assert not book.accessible(code, 1)
        assert book.accessible(code, 2)
        with pytest.raises(CodebookError):
            book.accessible(code, 3)

    def test_contains_and_entries(self):
        book = Codebook(2)
        book.encode(0b01)
        assert 0b01 in book
        assert 0b10 not in book
        assert list(book.entries()) == [(0, 0b01)]


class TestSubjectMaintenance:
    def test_add_subject_with_no_rights(self):
        book = Codebook(2)
        code = book.encode(0b11)
        new = book.add_subject()
        assert new == 2
        assert book.n_subjects == 3
        assert not book.accessible(code, new)

    def test_add_subject_copying_existing(self):
        book = Codebook(2)
        a = book.encode(0b01)
        b = book.encode(0b10)
        new = book.add_subject(initially_like=0)
        assert book.accessible(a, new)  # subject 0 had access in entry a
        assert not book.accessible(b, new)

    def test_add_subject_bad_template_rejected(self):
        book = Codebook(1)
        with pytest.raises(CodebookError):
            book.add_subject(initially_like=5)

    def test_remove_subject_clears_column(self):
        book = Codebook(3)
        code = book.encode(0b111)
        book.remove_subject(1)
        assert book.decode(code) == 0b101

    def test_remove_creates_lazy_duplicates(self):
        book = Codebook(2)
        book.encode(0b01)
        book.encode(0b11)
        assert book.duplicate_entry_count() == 0
        book.remove_subject(1)
        assert book.duplicate_entry_count() == 1

    def test_compact_merges_duplicates(self):
        book = Codebook(2)
        a = book.encode(0b01)
        b = book.encode(0b11)
        book.remove_subject(1)
        remap = book.compact()
        assert remap == {a: 0, b: 0}
        assert len(book) == 1
        assert book.duplicate_entry_count() == 0

    def test_remove_out_of_range(self):
        with pytest.raises(CodebookError):
            Codebook(2).remove_subject(2)


class TestSizeModel:
    def test_entry_bytes_byte_aligned(self):
        assert Codebook(1).entry_bytes() == 1
        assert Codebook(8).entry_bytes() == 1
        assert Codebook(9).entry_bytes() == 2
        assert Codebook(8639).entry_bytes() == 1080  # the LiveLink figure

    def test_code_bytes_grows_with_entries(self):
        book = Codebook(4)
        assert book.code_bytes() == 1
        for mask in range(16):
            book.encode(mask)
        assert book.code_bytes() == 1
        big = Codebook(16)
        for mask in range(300):
            big.encode(mask)
        assert big.code_bytes() == 2

    def test_size_bytes(self):
        book = Codebook(16)
        book.encode(0)
        book.encode(1)
        assert book.size_bytes() == 2 * 2

    def test_zero_subjects_rejected(self):
        with pytest.raises(CodebookError):
            Codebook(0)
