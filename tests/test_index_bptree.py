"""Unit tests for the B+-tree."""

import random

import pytest

from repro.errors import IndexError_
from repro.index.bptree import BPlusTree


class TestBasics:
    def test_empty(self):
        tree = BPlusTree()
        assert tree.search("x") == []
        assert "x" not in tree
        assert len(tree) == 0

    def test_insert_search(self):
        tree = BPlusTree()
        tree.insert("b", 2)
        tree.insert("a", 1)
        tree.insert("b", 5)
        assert tree.search("a") == [1]
        assert tree.search("b") == [2, 5]
        assert len(tree) == 2
        assert tree.n_postings == 3

    def test_postings_sorted(self):
        tree = BPlusTree()
        for posting in (9, 1, 5, 3):
            tree.insert("k", posting)
        assert tree.search("k") == [1, 3, 5, 9]

    def test_order_validation(self):
        with pytest.raises(IndexError_):
            BPlusTree(order=2)


class TestSplitting:
    def test_many_keys_stay_sorted(self):
        tree = BPlusTree(order=4)
        keys = [f"k{i:03d}" for i in range(200)]
        shuffled = list(keys)
        random.Random(0).shuffle(shuffled)
        for index, key in enumerate(shuffled):
            tree.insert(key, index)
        assert tree.keys() == keys
        tree.validate()

    def test_lookup_after_splits(self):
        tree = BPlusTree(order=3)
        for i in range(100):
            tree.insert(i % 17, i)
        for key in range(17):
            expected = sorted(i for i in range(100) if i % 17 == key)
            assert tree.search(key) == expected

    def test_matches_dict_reference(self):
        rng = random.Random(42)
        tree = BPlusTree(order=5)
        reference = {}
        for _ in range(500):
            key = rng.randrange(60)
            posting = rng.randrange(10000)
            tree.insert(key, posting)
            reference.setdefault(key, []).append(posting)
        for key, postings in reference.items():
            assert tree.search(key) == sorted(postings)
        tree.validate()


class TestRange:
    @pytest.fixture
    def tree(self):
        tree = BPlusTree(order=4)
        for i in range(0, 100, 2):  # even keys only
            tree.insert(i, i * 10)
        return tree

    def test_inclusive_range(self, tree):
        keys = [k for k, _ in tree.range(10, 20)]
        assert keys == [10, 12, 14, 16, 18, 20]

    def test_range_with_absent_bounds(self, tree):
        keys = [k for k, _ in tree.range(11, 19)]
        assert keys == [12, 14, 16, 18]

    def test_empty_range(self, tree):
        assert list(tree.range(200, 300)) == []

    def test_items_in_order(self, tree):
        assert [k for k, _ in tree.items()] == list(range(0, 100, 2))


class TestDelete:
    def test_delete_posting(self):
        tree = BPlusTree()
        tree.insert("k", 1)
        tree.insert("k", 2)
        assert tree.delete("k", 1)
        assert tree.search("k") == [2]
        assert tree.n_postings == 1

    def test_key_removed_when_empty(self):
        tree = BPlusTree()
        tree.insert("k", 1)
        assert tree.delete("k", 1)
        assert "k" not in tree
        assert len(tree) == 0

    def test_delete_missing(self):
        tree = BPlusTree()
        tree.insert("k", 1)
        assert not tree.delete("k", 9)
        assert not tree.delete("nope", 1)

    def test_delete_after_splits(self):
        tree = BPlusTree(order=3)
        for i in range(50):
            tree.insert(i, i)
        for i in range(0, 50, 2):
            assert tree.delete(i, i)
        assert tree.keys() == list(range(1, 50, 2))
        tree.validate()


class TestRebalancing:
    def test_drain_to_empty(self):
        tree = BPlusTree(order=3)
        for i in range(100):
            tree.insert(i, i)
        for i in range(100):
            assert tree.delete(i, i)
            tree.validate()
        assert len(tree) == 0
        assert tree.keys() == []

    def test_root_collapses(self):
        tree = BPlusTree(order=3)
        for i in range(50):
            tree.insert(i, i)
        for i in range(49):
            tree.delete(i, i)
        tree.validate()
        assert tree.search(49) == [49]

    def test_borrow_from_left_sibling(self):
        tree = BPlusTree(order=4)
        for i in range(20):
            tree.insert(i, i)
        # delete from the right edge to force borrows
        for i in range(19, 10, -1):
            tree.delete(i, i)
            tree.validate()
        assert tree.keys() == list(range(11))

    def test_merge_preserves_leaf_chain(self):
        tree = BPlusTree(order=3)
        for i in range(60):
            tree.insert(i, i)
        for i in range(0, 60, 2):
            tree.delete(i, i)
        remaining = [k for k, _ in tree.items()]
        assert remaining == list(range(1, 60, 2))
        tree.validate()

    def test_interleaved_random_fuzz(self):
        import random

        rng = random.Random(99)
        tree = BPlusTree(order=4)
        reference = {}
        for _ in range(3000):
            key = rng.randrange(25)
            posting = rng.randrange(30)
            if rng.random() < 0.5:
                tree.insert(key, posting)
                reference.setdefault(key, []).append(posting)
                reference[key].sort()
            else:
                removed = tree.delete(key, posting)
                present = key in reference and posting in reference[key]
                assert removed == present
                if present:
                    reference[key].remove(posting)
                    if not reference[key]:
                        del reference[key]
        tree.validate()
        for key, postings in reference.items():
            assert tree.search(key) == postings


class TestValidate:
    def test_detects_corruption(self):
        tree = BPlusTree(order=3)
        for i in range(30):
            tree.insert(i, i)
        leaf = tree._leftmost_leaf()
        leaf.keys.reverse()
        with pytest.raises(IndexError_):
            tree.validate()
