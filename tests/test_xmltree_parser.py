"""Unit tests for the from-scratch XML parser."""

import pytest

from repro.errors import XMLParseError
from repro.xmltree.parser import END, START, TEXT, iterparse, parse


class TestBasicParsing:
    def test_single_element(self):
        root = parse("<a/>")
        assert root.tag == "a"
        assert root.children == []

    def test_nested_elements(self):
        root = parse("<a><b><c/></b><d/></a>")
        assert [c.tag for c in root.children] == ["b", "d"]
        assert root.children[0].children[0].tag == "c"

    def test_text_content(self):
        root = parse("<a>hello world</a>")
        assert root.text == "hello world"

    def test_mixed_text_concatenated(self):
        root = parse("<a>one<b/>two</a>")
        assert root.text == "one two"

    def test_attributes(self):
        root = parse('<a id="1" name="x"/>')
        assert root.attrs == {"id": "1", "name": "x"}

    def test_single_quoted_attributes(self):
        root = parse("<a id='1'/>")
        assert root.attrs == {"id": "1"}

    def test_whitespace_in_tags(self):
        root = parse("<a  id = '1' ><b /></a >")
        assert root.attrs == {"id": "1"}
        assert root.children[0].tag == "b"

    def test_whitespace_only_text_ignored(self):
        root = parse("<a>\n  <b/>\n</a>")
        assert root.text == ""


class TestEntitiesAndSpecials:
    def test_predefined_entities(self):
        root = parse("<a>&lt;x&gt; &amp; &quot;y&quot; &apos;z&apos;</a>")
        assert root.text == "<x> & \"y\" 'z'"

    def test_numeric_entities(self):
        assert parse("<a>&#65;&#x42;</a>").text == "AB"

    def test_entities_in_attributes(self):
        assert parse('<a v="&amp;&lt;"/>').attrs["v"] == "&<"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLParseError):
            parse("<a>&nosuch;</a>")

    def test_comments_skipped(self):
        root = parse("<a><!-- hi --><b/><!-- bye --></a>")
        assert [c.tag for c in root.children] == ["b"]

    def test_cdata(self):
        root = parse("<a><![CDATA[<not-a-tag> & raw]]></a>")
        assert root.text == "<not-a-tag> & raw"

    def test_declaration_and_doctype(self):
        root = parse('<?xml version="1.0"?><!DOCTYPE a><a/>')
        assert root.tag == "a"

    def test_processing_instruction_skipped(self):
        assert parse("<a><?php echo ?><b/></a>").children[0].tag == "b"


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "just text",
            "<a>",
            "<a></b>",
            "</a>",
            "<a><b></a></b>",
            "<a/><b/>",
            "<a attr=unquoted/>",
            "<a>&unterminated",
            "<1bad/>",
            "text<a/>",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(XMLParseError):
            parse(bad)

    def test_error_carries_position(self):
        with pytest.raises(XMLParseError) as err:
            parse("<a>&nosuch;</a>")
        assert err.value.position >= 0


class TestIterparse:
    def test_event_stream(self):
        events = list(iterparse("<a><b>t</b></a>"))
        assert events == [
            (START, ("a", {})),
            (START, ("b", {})),
            (TEXT, "t"),
            (END, "b"),
            (END, "a"),
        ]

    def test_self_closing_emits_both_events(self):
        events = list(iterparse("<a/>"))
        assert events == [(START, ("a", {})), (END, "a")]

    def test_document_order_matches_preorder(self, paper_tree):
        from repro.xmltree.serializer import serialize

        starts = [
            payload[0]
            for kind, payload in iterparse(serialize(paper_tree))
            if kind == START
        ]
        assert starts == [n.tag for n in paper_tree.iter_preorder()]
