"""Corruption paths: detection on reopen, fsck findings, degraded queries."""

import json
import os

import pytest

from repro.acl.synthetic import SyntheticACLConfig, generate_synthetic_acl
from repro.dol.labeling import DOL
from repro.errors import PageCorruptionError, StorageError
from repro.nok.engine import QueryEngine
from repro.storage.faults import FaultPlan
from repro.storage.headers import HEADER_STRUCT
from repro.storage.nokstore import NoKStore
from repro.storage.persist import (
    catalog_path_for,
    fsck_store,
    open_store,
    save_store,
)
from repro.xmark.generator import XMarkConfig, generate_document

PAGE_SIZE = 512


@pytest.fixture
def saved(tmp_path):
    doc = generate_document(XMarkConfig(n_items=30, seed=7))
    matrix = generate_synthetic_acl(
        doc, SyntheticACLConfig(accessibility_ratio=0.7, seed=3), n_subjects=2
    )
    dol = DOL.from_matrix(matrix)
    path = str(tmp_path / "store.db")
    store = NoKStore(doc, dol, path=path, page_size=PAGE_SIZE)
    save_store(store)
    store.close()
    return path


def flip_byte(path: str, offset: int) -> None:
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))


class TestDetectionOnOpen:
    def test_bit_flipped_body_raises(self, saved):
        flip_byte(saved, 2 * PAGE_SIZE + 40)  # inside page 2's entries
        with pytest.raises(PageCorruptionError) as excinfo:
            open_store(saved)
        assert excinfo.value.page_id == 2

    def test_stale_header_detected(self, saved):
        """A header rewritten without its entries must fail the reopen.

        The trailer is re-stamped so the page *checksums* correctly —
        this is the header/entry agreement check, not the CRC.
        """
        with open(saved, "r+b") as handle:
            page = bytearray(handle.read(PAGE_SIZE))
            first_code, change, n_entries = HEADER_STRUCT.unpack_from(page, 0)
            HEADER_STRUCT.pack_into(page, 0, first_code ^ 1, change, n_entries)
            from repro.storage.pager import stamp_page

            handle.seek(0)
            handle.write(stamp_page(bytes(page)))
        with pytest.raises(StorageError) as excinfo:
            open_store(saved)
        assert "header" in str(excinfo.value)

    def test_truncated_page_file(self, saved):
        with open(saved, "r+b") as handle:
            handle.truncate(PAGE_SIZE)
        with pytest.raises(StorageError):
            open_store(saved)

    def test_ragged_page_file(self, saved):
        with open(saved, "r+b") as handle:
            handle.truncate(PAGE_SIZE + 100)
        with pytest.raises(StorageError):
            open_store(saved)

    def test_catalog_page_file_disagreement(self, saved):
        catalog_file = catalog_path_for(saved)
        with open(catalog_file) as handle:
            catalog = json.load(handle)
        catalog["n_pages"] = catalog["n_pages"] + 5
        with open(catalog_file, "w") as handle:
            json.dump(catalog, handle)
        with pytest.raises(StorageError) as excinfo:
            open_store(saved)
        assert "page" in str(excinfo.value)

    def test_garbled_catalog_json(self, saved):
        with open(catalog_path_for(saved), "w") as handle:
            handle.write("{not json")
        with pytest.raises(StorageError):
            open_store(saved)

    def test_bit_flip_on_read_path(self, saved):
        """A read-side flip (bad cable, bad RAM) is caught by the CRC."""
        plan = FaultPlan(flip_bit_at_read=2, seed=11)
        with pytest.raises(PageCorruptionError):
            open_store(saved, fault_plan=plan)


class TestFsck:
    def test_clean_store(self, saved):
        assert fsck_store(saved) == []

    def test_bit_flip_reported(self, saved):
        flip_byte(saved, PAGE_SIZE + 30)
        findings = fsck_store(saved)
        assert len(findings) == 1
        assert "page 1" in findings[0]

    def test_fsck_reports_every_bad_page(self, saved):
        flip_byte(saved, 0 * PAGE_SIZE + 30)
        flip_byte(saved, 3 * PAGE_SIZE + 30)
        findings = fsck_store(saved)
        assert len(findings) == 2

    def test_missing_catalog(self, saved):
        os.remove(catalog_path_for(saved))
        findings = fsck_store(saved)
        assert findings and "catalog" in findings[0]

    def test_pending_wal_reported(self, saved):
        from repro.storage.nokstore import wal_path_for
        from repro.storage.wal import WriteAheadLog

        with WriteAheadLog(wal_path_for(saved)) as wal:
            wal.begin()
            page = open(saved, "rb").read(PAGE_SIZE)
            wal.log_page_write(0, page, page)
            wal.commit({})
        findings = fsck_store(saved)
        assert any("WAL" in finding for finding in findings)


class TestDegradedQueries:
    """Corruption discovered *mid-query*: the disk rots under an open store.

    ``open_store`` reads every page up front, so the scenario is staged
    by opening the store while clean, flipping a byte in the page file
    behind its back, and dropping the caches — the next page read hits
    the corrupted bytes.
    """

    def _open_with_rot(self, path):
        store = open_store(path)
        engine = QueryEngine(store.doc, dol=store.dol, store=store)
        # Pick the page of an answer subject 0 can actually see, so the
        # corruption provably removes results.
        clean = QueryEngine(store.doc, dol=store.dol).evaluate(
            "//item", subject=0
        )
        page_id = store.page_of(clean.positions[0])
        flip_byte(path, page_id * PAGE_SIZE + 40)
        store.drop_caches()
        return store, engine, page_id, clean

    def test_strict_query_raises(self, saved):
        store, engine, _page_id, _clean = self._open_with_rot(saved)
        with pytest.raises(PageCorruptionError):
            engine.evaluate("//item", subject=0)
        store.close()

    def test_lenient_query_skips_and_reports(self, saved):
        store, engine, page_id, clean = self._open_with_rot(saved)
        result = engine.evaluate("//item", subject=0, strict=False)
        assert page_id in result.stats.corrupted_pages
        assert result.stats.candidates_skipped_corrupt >= 1
        assert page_id in store.quarantined
        # the readable remainder is still answered
        lost = {
            pos for pos in clean.positions if store.page_of(pos) == page_id
        }
        assert lost  # the corrupt page did hold answers
        assert set(result.positions) == set(clean.positions) - lost
        store.close()

    def test_stats_dict_reports_corruption(self, saved):
        store, engine, page_id, _clean = self._open_with_rot(saved)
        result = engine.evaluate("//item", subject=0, strict=False)
        report = result.stats.as_dict()
        assert report["corrupted_pages"] == [page_id]
        assert report["candidates_skipped_corrupt"] >= 1
        store.close()

    def test_quarantined_page_skipped_without_reread(self, saved):
        store, engine, page_id, _clean = self._open_with_rot(saved)
        engine.evaluate("//item", subject=0, strict=False)
        assert page_id in store.quarantined
        store.pager.stats.reset()
        result = engine.evaluate("//item", subject=0, strict=False)
        # second run: the quarantine set short-circuits at the page-skip
        # scan, before any physical read of the bad page
        assert result.stats.candidates_skipped_corrupt >= 1
        store.close()


class TestCorruptionError:
    def test_carries_digests(self):
        exc = PageCorruptionError(5, expected=0x1234, actual=0x5678)
        assert exc.page_id == 5
        assert "0x00001234" in str(exc)
        assert "0x00005678" in str(exc)

    def test_is_storage_error(self):
        assert issubclass(PageCorruptionError, StorageError)
