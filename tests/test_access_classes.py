"""Access-class canonicalization: the equivalence relation and its caches.

The contract (DESIGN.md §12): two subject sets resolve to the same
access class iff their union accessibility is node-for-node identical —
in which case every downstream artifact (run list, plan, answer) is
shared, under both secure semantics and every labeling backend. An
accessibility update bumps ``runs_epoch``, which re-partitions the
directory; duplicate or unsorted subject inputs normalize to one
canonical form and therefore one cache entry.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acl.model import AccessMatrix
from repro.errors import AccessControlError
from repro.labeling import ClassDirectory, normalize_subjects
from repro.labeling.registry import available_backends, build_labeling
from repro.nok.engine import QueryEngine
from repro.secure.semantics import CHO, VIEW
from tests.conftest import random_document

N_SUBJECTS = 3


@st.composite
def labeled_document(draw):
    """A random document plus a random per-node / per-subject ACL grid."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=1, max_value=60))
    doc = random_document(random.Random(seed), n)
    masks = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << N_SUBJECTS) - 1),
            min_size=n,
            max_size=n,
        )
    )
    matrix = AccessMatrix(n, N_SUBJECTS)
    for pos, mask in enumerate(masks):
        for subject in range(N_SUBJECTS):
            if mask >> subject & 1:
                matrix.set_accessible(subject, pos, True)
    return doc, matrix


def _all_subject_sets():
    singles = [(s,) for s in range(N_SUBJECTS)]
    pairs = [
        (a, b) for a in range(N_SUBJECTS) for b in range(a + 1, N_SUBJECTS)
    ]
    return singles + pairs + [tuple(range(N_SUBJECTS))]


class TestNormalizeSubjects:
    def test_none_passes_through(self):
        assert normalize_subjects(None) is None

    def test_single_id_becomes_tuple(self):
        assert normalize_subjects(7) == (7,)

    def test_duplicates_and_order_collapse(self):
        assert normalize_subjects([2, 1, 2]) == (1, 2)
        assert normalize_subjects((1, 2)) == (1, 2)
        assert normalize_subjects({3, 0}) == (0, 3)

    def test_empty_set_rejected(self):
        with pytest.raises(AccessControlError):
            normalize_subjects([])

    def test_non_int_rejected(self):
        with pytest.raises(AccessControlError):
            normalize_subjects(["a"])


@settings(max_examples=40)
@given(labeled_document())
def test_equal_class_iff_equal_accessibility(case):
    """Signature equality is exactly union-accessibility equality."""
    doc, matrix = case
    n = len(doc)
    for backend in available_backends():
        labeling = build_labeling(backend, doc, matrix)
        sets = _all_subject_sets()
        vectors = {
            subjects: tuple(
                labeling.accessible_any(subjects, pos) for pos in range(n)
            )
            for subjects in sets
        }
        signatures = {
            subjects: labeling.access_class(subjects) for subjects in sets
        }
        for a in sets:
            for b in sets:
                assert (signatures[a] == signatures[b]) == (
                    vectors[a] == vectors[b]
                ), (backend, a, b)


@settings(max_examples=15, deadline=None)
@given(labeled_document())
def test_same_class_same_answers_all_backends_and_semantics(case):
    """Class-equal subject sets get identical secure answers everywhere."""
    doc, matrix = case
    query = "//n0"
    for backend in available_backends():
        engine = QueryEngine.build(doc, matrix, labeling=backend)
        by_class = {}
        for subjects in _all_subject_sets():
            class_id = engine.access_class_of(subjects)
            for semantics in (CHO, VIEW):
                answer = tuple(
                    engine.evaluate(
                        query, subject=subjects, semantics=semantics
                    ).positions
                )
                key = (class_id, semantics)
                assert by_class.setdefault(key, answer) == answer, (
                    backend, subjects, semantics,
                )


class TestDirectory:
    def _labeling(self, n=20):
        doc = random_document(random.Random(3), n)
        matrix = AccessMatrix(len(doc), N_SUBJECTS)
        matrix.grant_range(0, 0, len(doc))
        matrix.grant_range(1, 0, len(doc))
        matrix.grant_range(2, 0, len(doc) // 2)
        return doc, matrix, build_labeling("dol", doc, matrix)

    def test_duplicate_and_unsorted_inputs_share_memo_entry(self):
        _doc, _matrix, labeling = self._labeling()
        directory = ClassDirectory()
        key = ("mem", id(labeling), labeling.runs_epoch)
        first = directory.class_of(labeling, key, [2, 0, 2])
        second = directory.class_of(labeling, key, (0, 2))
        third = directory.class_of(labeling, key, [0, 0, 2])
        assert first == second == third
        stats = directory.stats()
        assert stats["subject_sets"] == 1
        assert stats["memo_hits"] == 2

    def test_identical_accessibility_collapses_subjects(self):
        _doc, _matrix, labeling = self._labeling()
        directory = ClassDirectory()
        key = ("mem", id(labeling), labeling.runs_epoch)
        assert directory.class_of(labeling, key, 0) == directory.class_of(
            labeling, key, 1
        )
        assert directory.class_of(labeling, key, 2) != directory.class_of(
            labeling, key, 0
        )
        assert directory.n_classes(key) == 2

    def test_update_splitting_a_class_bumps_epoch_and_repartitions(self):
        _doc, _matrix, labeling = self._labeling()
        directory = ClassDirectory()
        key = ("mem", id(labeling), labeling.runs_epoch)
        before = directory.class_of(labeling, key, 0)
        assert before == directory.class_of(labeling, key, 1)
        epoch_before = labeling.runs_epoch

        labeling.set_node_accessibility(5, 1, False)  # 0 and 1 now differ
        assert labeling.runs_epoch > epoch_before

        key_after = ("mem", id(labeling), labeling.runs_epoch)
        a, b = (
            directory.class_of(labeling, key_after, 0),
            directory.class_of(labeling, key_after, 1),
        )
        assert a != b
        # ids are globally unique: the new partition never reuses the old
        # partition's id for a different behavior
        assert directory.stats()["repartitions"] == 2
        assert len({before, a, b}) == 3 or a == before

    def test_class_ids_never_reused_across_partitions(self):
        _doc, _matrix, labeling = self._labeling()
        directory = ClassDirectory(max_partitions=1)
        id_by_epoch = []
        for epoch in range(4):
            key = ("mem", epoch)
            id_by_epoch.append(directory.class_of(labeling, key, 2))
        # each epoch flip evicted and rebuilt the partition; the counter
        # is monotone so no id ever collides with an earlier epoch's
        assert len(set(id_by_epoch)) == len(id_by_epoch)

    def test_rejects_empty_subject(self):
        _doc, _matrix, labeling = self._labeling()
        directory = ClassDirectory()
        with pytest.raises(AccessControlError):
            directory.class_of(labeling, ("mem", 0), None)


class TestEngineIntegration:
    @pytest.fixture
    def engine(self):
        doc = random_document(random.Random(11), 40)
        matrix = AccessMatrix(len(doc), 3)
        matrix.grant_range(0, 0, len(doc))        # fully allowed
        matrix.grant_range(2, 0, len(doc) // 2)   # partial
        # subject 1: nothing — fully denied
        return QueryEngine.build(doc, matrix, use_store=True, page_size=256)

    def test_fully_denied_class_reads_no_pages(self, engine):
        result = engine.evaluate("//n0", subject=1)
        assert result.positions == []
        assert result.stats.static_deny == 1
        assert result.stats.logical_page_reads == 0
        assert result.stats.physical_page_reads == 0

    def test_fully_allowed_class_drops_access_filters(self, engine):
        from repro.exec.operators import AccessFilter

        plan = engine.compile("//n0", subject=0)
        assert plan.prepass == "allow"
        assert not [
            op for op in plan.operators() if isinstance(op, AccessFilter)
        ]
        assert "fully accessible" in plan.explain()
        result = engine.evaluate("//n0", subject=0)
        assert result.stats.static_allow == 1
        assert result.stats.access_checks == 0

    def test_partial_class_keeps_filters(self, engine):
        from repro.exec.operators import AccessFilter

        plan = engine.compile("//n0", subject=2)
        assert plan.prepass is None
        assert [op for op in plan.operators() if isinstance(op, AccessFilter)]

    def test_equivalent_subject_sets_share_plan_cache_entry(self, engine):
        engine.evaluate("//n0", subject=[2, 0, 2])
        hits_before = engine.plan_cache.stats()["hits"]
        engine.evaluate("//n0", subject=(0, 2))
        assert engine.plan_cache.stats()["hits"] == hits_before + 1

    def test_result_cache_shared_across_equivalent_users(self, engine):
        first = engine.evaluate("//n0", subject=(0, 2), use_result_cache=True)
        assert first.stats.result_cache_hits == 0
        second = engine.evaluate(
            "//n0", subject=[2, 0], use_result_cache=True
        )
        assert second.stats.result_cache_hits == 1
        assert second.positions == first.positions

    def test_commit_invalidates_result_cache(self, engine):
        engine.evaluate("//n0", subject=(0, 2), use_result_cache=True)
        engine.store.update_subject_range(0, len(engine.doc), 0, False)
        after = engine.evaluate(
            "//n0", subject=(0, 2), use_result_cache=True
        )
        # new epoch, new key: the stale answer cannot be served
        assert after.stats.result_cache_hits == 0

    def test_access_class_in_stats(self, engine):
        result = engine.evaluate("//n0", subject=2)
        assert result.stats.access_class is not None
        assert result.stats.access_class == engine.access_class_of(2)
