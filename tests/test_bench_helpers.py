"""Tests for the benchmark harness helpers."""

from repro.bench.queries import JOIN_QUERIES, NOK_ONLY, QUERIES, QUERY_IDS
from repro.bench.reporting import format_table, print_table
from repro.bench.workloads import (
    livelink_dataset,
    secured_xmark,
    synthetic_vector,
    unix_dataset,
    xmark_document,
)
from repro.nok.decompose import decompose
from repro.nok.pattern import parse_query


class TestQueries:
    def test_all_six_queries_present(self):
        assert QUERY_IDS == ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6")

    def test_partition_into_classes(self):
        assert set(NOK_ONLY) | set(JOIN_QUERIES) == set(QUERY_IDS)
        assert not set(NOK_ONLY) & set(JOIN_QUERIES)

    def test_nok_only_queries_have_no_joins(self):
        for qid in NOK_ONLY:
            assert len(decompose(parse_query(QUERIES[qid])).edges) == 0, qid

    def test_join_queries_have_joins(self):
        for qid in JOIN_QUERIES:
            assert len(decompose(parse_query(QUERIES[qid])).edges) >= 1, qid


class TestReporting:
    def test_format_basic(self):
        out = format_table("caption", ["a", "bb"], [(1, 2), (30, 4.5)])
        lines = out.splitlines()
        assert lines[0] == "caption"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "---" in lines[2]
        assert len(lines) == 5

    def test_columns_aligned(self):
        out = format_table("t", ["col"], [(1,), (1000,)])
        lines = out.splitlines()
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_float_formatting(self):
        out = format_table("t", ["x"], [(0.123456789,)])
        assert "0.1235" in out

    def test_print_table(self, capsys):
        print_table("cap", ["x"], [(1,)])
        assert "cap" in capsys.readouterr().out


class TestWorkloads:
    def test_xmark_document_cached(self):
        assert xmark_document(50) is xmark_document(50)

    def test_synthetic_vector_shape(self):
        doc = xmark_document(50)
        vector = synthetic_vector(doc, accessibility_ratio=0.5)
        assert len(vector) == len(doc)

    def test_secured_xmark_bundle(self):
        doc, matrix, dol = secured_xmark(n_items=50)
        assert matrix.n_nodes == len(doc)
        assert dol.to_masks() == matrix.masks()

    def test_surrogate_factories(self):
        livelink = livelink_dataset(n_items=100, n_groups=3, n_users=5)
        assert livelink.n_subjects == 8
        unix = unix_dataset(n_nodes=300, n_users=8, n_groups=3)
        assert unix.n_subjects == 11


class TestStorageBenchmark:
    def test_report_shape_and_gate(self):
        from repro.bench.exec import gate_storage_report, run_storage_benchmark

        report = run_storage_benchmark(
            n_items=12, codec="structure-delta", repeats=1
        )
        assert set(report["variants"]) == {"plain", "compressed"}
        plain = report["variants"]["plain"]
        compressed = report["variants"]["compressed"]
        assert compressed["store_bytes"] < plain["store_bytes"]
        assert compressed["entries_per_page"] > plain["entries_per_page"]
        assert report["bytes_ratio"] == (
            compressed["store_bytes"] / plain["store_bytes"]
        )
        # the acceptance ratios hold even at this tiny size
        assert gate_storage_report(
            report, max_bytes_ratio=0.75, max_latency_ratio=100.0
        ) == []

    def test_gate_flags_violations(self):
        from repro.bench.exec import gate_storage_report

        fat_and_slow = {
            "codec": "zlib", "bytes_ratio": 0.9, "latency_ratio": 2.0,
        }
        violations = gate_storage_report(fat_and_slow)
        assert len(violations) == 2
        assert any("0.90x the plain size" in v for v in violations)
        assert any("batch latency" in v for v in violations)
