"""Unit tests for one-pass streaming DOL construction."""

import pytest

from repro.acl.synthetic import SyntheticACLConfig, single_subject_labels
from repro.dol.labeling import DOL
from repro.dol.stream import StreamingDOLBuilder, build_dol_streaming
from repro.errors import AccessControlError
from repro.xmltree.serializer import serialize


class TestBuilder:
    def test_feed_and_finish(self):
        builder = StreamingDOLBuilder(2)
        for mask in (3, 3, 1, 2, 2):
            builder.feed(mask)
        dol = builder.finish()
        assert dol.to_masks() == [3, 3, 1, 2, 2]
        assert dol.n_transitions == 3

    def test_empty_rejected(self):
        with pytest.raises(AccessControlError):
            StreamingDOLBuilder(1).finish()

    def test_matches_batch_construction(self):
        masks = [1, 0, 0, 1, 1, 1, 0]
        builder = StreamingDOLBuilder(1)
        for mask in masks:
            builder.feed(mask)
        assert builder.finish() == DOL.from_masks(masks, 1)


class TestStreamingFromXML:
    def test_label_by_tag(self, paper_tree):
        xml = serialize(paper_tree)
        dol = build_dol_streaming(
            xml, 1, lambda pos, tag, path: 1 if tag in "aeh" else 0
        )
        # document order a b c d e f g h i j k l
        assert dol.to_masks() == [1, 0, 0, 0, 1, 0, 0, 1, 0, 0, 0, 0]

    def test_label_fn_sees_ancestor_path(self, paper_tree):
        xml = serialize(paper_tree)
        seen = {}

        def label(pos, tag, path):
            seen[tag] = path
            return 0

        build_dol_streaming(xml, 1, label)
        assert seen["a"] == ()
        assert seen["f"] == ("a", "e")
        assert seen["l"] == ("a", "e", "h")

    def test_positions_are_document_order(self, paper_tree):
        xml = serialize(paper_tree)
        positions = []
        build_dol_streaming(
            xml, 1, lambda pos, tag, path: positions.append(pos) or 0
        )
        assert positions == list(range(12))

    def test_streaming_equals_batch_on_xmark(self, xmark_doc):
        """The motivating claim: one pass over the XML text produces the
        same DOL as flatten-then-label."""
        config = SyntheticACLConfig(accessibility_ratio=0.5, seed=9)
        vector = single_subject_labels(xmark_doc, config)
        batch = DOL.from_masks([int(v) for v in vector], 1)

        xml = serialize(xmark_doc.to_tree())
        streamed = build_dol_streaming(
            xml, 1, lambda pos, tag, path: int(vector[pos])
        )
        assert streamed == batch
