"""Property-based tests for DOL updates: correctness + Proposition 1."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dol.labeling import DOL, transitions_from_masks
from repro.dol.updates import DOLUpdater

masks_lists = st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=80)


def span(draw, n):
    start = draw(st.integers(min_value=0, max_value=n - 1))
    end = draw(st.integers(min_value=start + 1, max_value=n))
    return start, end


@st.composite
def masks_and_range(draw):
    masks = draw(masks_lists)
    start, end = span(draw, len(masks))
    return masks, start, end


@given(masks_and_range(), st.integers(min_value=0, max_value=15))
def test_range_mask_update(case, new_mask):
    masks, start, end = case
    dol = DOL.from_masks(masks, 4)
    delta = DOLUpdater(dol).set_range_mask(start, end, new_mask)
    expected = list(masks)
    expected[start:end] = [new_mask] * (end - start)
    assert dol.to_masks() == expected
    assert delta <= 2  # Proposition 1
    dol.validate()


@given(masks_and_range(), st.integers(min_value=0, max_value=3), st.booleans())
def test_subject_range_update(case, subject, value):
    masks, start, end = case
    dol = DOL.from_masks(masks, 4)
    delta = DOLUpdater(dol).set_subject_accessibility(start, end, subject, value)
    bit = 1 << subject
    expected = [
        (m | bit if value else m & ~bit) if start <= i < end else m
        for i, m in enumerate(masks)
    ]
    assert dol.to_masks() == expected
    assert delta <= 2
    dol.validate()


@st.composite
def masks_and_insert(draw):
    masks = draw(masks_lists)
    at = draw(st.integers(min_value=0, max_value=len(masks)))
    inserted = draw(
        st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=20)
    )
    return masks, at, inserted


@given(masks_and_insert())
def test_insert_subtree(case):
    masks, at, inserted = case
    dol = DOL.from_masks(masks, 4)
    extra = DOLUpdater(dol).insert_range(at, inserted)
    expected = masks[:at] + inserted + masks[at:]
    assert dol.to_masks() == expected
    # Proposition 1: at most 2 beyond the inserted data's own transitions.
    assert extra <= 2
    dol.validate()


@given(masks_and_range())
def test_delete_subtree(case):
    masks, start, end = case
    if end - start == len(masks):
        return  # deleting the whole document is rejected, tested elsewhere
    dol = DOL.from_masks(masks, 4)
    delta = DOLUpdater(dol).delete_range(start, end)
    assert dol.to_masks() == masks[:start] + masks[end:]
    assert delta <= 2
    dol.validate()


@st.composite
def masks_and_move(draw):
    masks = draw(st.lists(st.integers(min_value=0, max_value=15), min_size=2, max_size=60))
    start, end = span(draw, len(masks))
    if end - start == len(masks):
        end -= 1
        if end <= start:
            start, end = 0, 1
    to = draw(st.integers(min_value=0, max_value=len(masks) - (end - start)))
    return masks, start, end, to


@given(masks_and_move())
@settings(max_examples=200)
def test_move_subtree(case):
    masks, start, end, to = case
    dol = DOL.from_masks(masks, 4)
    delta = DOLUpdater(dol).move_range(start, end, to)
    segment = masks[start:end]
    rest = masks[:start] + masks[end:]
    assert dol.to_masks() == rest[:to] + segment + rest[to:]
    # move = delete + insert: at most 2 transitions per constituent op
    assert delta <= 4
    dol.validate()


@given(masks_lists, st.data())
def test_update_locality(masks, data):
    """Transitions strictly before the updated range never change."""
    start, end = span(data.draw, len(masks))
    dol = DOL.from_masks(masks, 4)
    head_before = [
        (p, dol.codebook.decode(c))
        for p, c in zip(dol.positions, dol.codes)
        if p < start
    ]
    DOLUpdater(dol).set_range_mask(start, end, 7)
    head_after = [
        (p, dol.codebook.decode(c))
        for p, c in zip(dol.positions, dol.codes)
        if p < start
    ]
    assert head_before == head_after
