"""End-to-end multi-mode scenario on the LiveLink surrogate.

One document, ten permission levels, dozens of subjects: query under
different action modes, confirm nesting, and run everything off a single
combined multi-mode DOL.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acl.model import AccessMatrix
from repro.acl.surrogates import generate_livelink
from repro.dol.multimode import MultiModeDOL
from repro.nok.engine import QueryEngine


@pytest.fixture(scope="module")
def dataset():
    return generate_livelink(n_items=400, n_groups=5, n_users=12, seed=21)


class TestPerModeQuerying:
    def test_deeper_modes_return_fewer_answers(self, dataset):
        """Permission nesting: delete answers ⊆ see answers, per subject."""
        see = QueryEngine.build(dataset.doc, dataset.matrix, mode="see")
        delete = QueryEngine.build(dataset.doc, dataset.matrix, mode="delete")
        for subject in range(0, dataset.n_subjects, 4):
            see_items = set(see.evaluate("//item", subject=subject).positions)
            delete_items = set(delete.evaluate("//item", subject=subject).positions)
            assert delete_items <= see_items, subject

    def test_combined_dol_answers_equal_per_mode(self, dataset):
        """A combined multi-mode DOL answers exactly like per-mode DOLs."""
        combined = MultiModeDOL.from_matrix(dataset.matrix)
        for mode in ("see", "modify"):
            per_mode_engine = QueryEngine.build(dataset.doc, dataset.matrix, mode=mode)
            for subject in (0, 7):
                per_mode = set(
                    per_mode_engine.evaluate("//item", subject=subject).positions
                )
                # Evaluate via the combined DOL's column for (subject, mode).
                column = combined.column(subject, mode)
                column_engine = QueryEngine(dataset.doc, dol=combined.dol)
                via_combined = set(
                    column_engine.evaluate("//item", subject=column).positions
                )
                assert via_combined == per_mode, (mode, subject)


class TestMultiModeProperties:
    @given(
        st.integers(min_value=0, max_value=999),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_random(self, seed, n_modes, n_subjects, n_nodes):
        import random

        rng = random.Random(seed)
        modes = [f"m{i}" for i in range(n_modes)]
        matrix = AccessMatrix(n_nodes, n_subjects, modes=modes)
        limit = 1 << n_subjects
        for mode in modes:
            for pos in range(n_nodes):
                matrix.set_mask(pos, rng.randrange(limit), mode)
        combined = MultiModeDOL.from_matrix(matrix)
        assert combined.to_matrix() == matrix
        for mode in modes:
            for subject in range(n_subjects):
                for pos in range(n_nodes):
                    assert combined.accessible(subject, pos, mode) == (
                        matrix.accessible(subject, pos, mode)
                    )
