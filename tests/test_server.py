"""The serving layer: QueryService semantics and the NDJSON TCP server.

Service tests run without sockets (``handle`` takes protocol dicts
directly); one test binds a real server on an ephemeral port and runs
the full wire round-trip.
"""

import json
import socket
import threading
import time

import pytest

from repro.acl.model import AccessMatrix
from repro.errors import (
    ServiceError,
    ServiceOverloaded,
    ServiceTimeout,
)
from repro.nok.engine import QueryEngine
from repro.server.chaos import ChaosPlan, ChaosSpec
from repro.server.health import HealthConfig
from repro.server.netserver import serve
from repro.server.protocol import (
    MAX_REQUEST_BYTES,
    decode_request,
    encode_response,
)
from repro.server.service import QueryService, ServiceConfig


@pytest.fixture
def engine(small_doc):
    masks = [0b11] * len(small_doc)
    masks[5] = 0b01  # second subject loses the second <name> node
    matrix = AccessMatrix.from_masks(masks, 2)
    engine = QueryEngine.build(small_doc, matrix, use_store=True, page_size=128)
    yield engine
    engine.store.close()


@pytest.fixture
def service(engine):
    with QueryService(engine, ServiceConfig(workers=2, queue_depth=2)) as svc:
        yield svc


class TestService:
    def test_query_round_trip(self, service):
        body = service.evaluate("//item/name", subject=0)
        assert body["n_answers"] == 2
        assert body["epoch"] == 0
        # subject 0 is granted everywhere: the class resolves statically
        assert body["stats"]["static_allow"] == 1
        assert body["stats"]["access_class"] is not None
        # subject 1 lost a node, so its class needs runtime checks
        partial = service.evaluate("//item/name", subject=1)
        assert partial["n_answers"] == 1
        assert partial["stats"]["access_checks"] > 0
        assert partial["stats"]["access_class"] != body["stats"]["access_class"]

    def test_update_bumps_epoch_and_changes_answers(self, service, engine):
        before = service.evaluate("//item/name", subject=0)
        body = service.update(
            "subject_range", 0, len(engine.doc), subject=0, value=False
        )
        assert body["epoch"] == 1
        after = service.evaluate("//item/name", subject=0)
        assert before["n_answers"] == 2
        assert after["n_answers"] == 0
        assert after["epoch"] == 1

    def test_unknown_semantics_rejected(self, service):
        with pytest.raises(ServiceError):
            service.evaluate("//item", semantics="nope")

    def test_unknown_update_kind_rejected(self, service):
        with pytest.raises(ServiceError):
            service.update("rename", 0, 1)

    def test_overload_sheds_fast(self, engine):
        svc = QueryService(engine, ServiceConfig(workers=1, queue_depth=0))
        release = threading.Event()
        started = threading.Event()

        def stall():
            started.set()
            release.wait(timeout=10)
            return {}

        blocker = threading.Thread(
            target=lambda: svc._submit(stall, timeout=10)
        )
        blocker.start()
        try:
            assert started.wait(timeout=5)
            with pytest.raises(ServiceOverloaded) as info:
                svc.evaluate("//item")
            assert info.value.limit == 1
            assert svc.metrics()["shed"] == 1
        finally:
            release.set()
            blocker.join()
            svc.close()

    def test_timeout_raises_and_counts(self, engine):
        svc = QueryService(engine, ServiceConfig(workers=1, timeout=0.05))
        release = threading.Event()
        try:
            with pytest.raises(ServiceTimeout):
                svc._submit(lambda: release.wait(timeout=10), timeout=0.05)
            release.set()
            metrics = svc.metrics()
            assert metrics["timeouts"] == 1
            assert metrics["failed"] == 1
        finally:
            release.set()
            svc.close()

    def test_metrics_cover_the_stack(self, service):
        service.evaluate("//item/name", subject=0)
        service.evaluate("//item/name", subject=0)
        metrics = service.metrics()
        assert metrics["completed"] == 2
        assert metrics["inflight"] == 0
        assert metrics["latency_mean"] > 0
        assert metrics["plan_cache"]["hits"] >= 1
        assert "latch_contention" in metrics["buffer"]
        assert metrics["epoch"] == 0

    def test_closed_service_rejects_work(self, engine):
        svc = QueryService(engine)
        svc.close()
        with pytest.raises(ServiceError):
            svc.evaluate("//item")


class TestHandleDispatch:
    def test_ping(self, service):
        assert service.handle({"op": "ping"}) == {"ok": True, "pong": True}

    def test_query_op(self, service):
        response = service.handle(
            {"op": "query", "query": "//item/name", "subject": 1}
        )
        assert response["ok"]
        assert response["n_answers"] == 1  # subject 1 lost one name

    def test_errors_are_in_band(self, service):
        assert service.handle({"op": "query"})["error"] == "BadRequest"
        assert service.handle({"op": "wat"})["error"] == "BadRequest"
        assert service.handle([])["error"] == "BadRequest"
        response = service.handle(
            {"op": "update", "kind": "range_mask", "start": 0, "end": 1}
        )
        assert response["error"] == "ServiceError"
        # every in-band error advertises its retry class
        assert response["retriable"] is False

    def test_metrics_op(self, service):
        response = service.handle({"op": "metrics"})
        assert response["ok"] and "requests" in response["metrics"]

    def test_health_op(self, service):
        response = service.handle({"op": "health"})
        assert response["ok"]
        assert response["health"]["state"] == "healthy"
        assert response["health"]["breaker"]["state"] == "closed"


class TestQueueWaitDeadline:
    def test_deadline_burned_in_queue_never_runs(self, engine):
        """A request that spends its whole deadline waiting for a worker
        raises ServiceTimeout without executing, and the wait shows up
        in metrics."""
        svc = QueryService(engine, ServiceConfig(workers=1, queue_depth=2))
        release = threading.Event()
        started = threading.Event()
        ran = threading.Event()

        def stall():
            started.set()
            release.wait(timeout=10)
            return {}

        blocker = threading.Thread(target=lambda: svc._submit(stall, timeout=10))
        blocker.start()
        try:
            assert started.wait(timeout=5)
            with pytest.raises(ServiceTimeout):
                svc._submit(lambda: ran.set() or {}, timeout=0.15)
        finally:
            release.set()
            blocker.join()
        # let the pool drain the queued entry: it must decline to run it
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if svc.metrics()["timeouts_in_queue"] == 1:
                break
            time.sleep(0.01)
        metrics = svc.metrics()
        svc.close()
        assert not ran.is_set()
        assert metrics["timeouts_in_queue"] == 1
        assert metrics["timeouts"] == 1
        assert metrics["queue_wait_max"] >= 0.15

    def test_fast_path_records_negligible_queue_wait(self, service):
        service.evaluate("//item/name", subject=0)
        metrics = service.metrics()
        assert metrics["queue_wait_mean"] < 1.0
        assert metrics["timeouts_in_queue"] == 0


class TestResilientServing:
    def _service(self, engine, **health_kwargs):
        config = HealthConfig(**health_kwargs)
        # cache opt-ins shed: every evaluation must actually read pages,
        # so quarantine effects are visible to each request
        chaos = ChaosPlan(ChaosSpec(seed=0, disable_caches=True))
        svc = QueryService(
            engine, ServiceConfig(workers=1), chaos=chaos,
            health_config=config,
        )
        return svc

    def test_degraded_answer_on_quarantined_pages(self, engine):
        svc = self._service(engine, corruption_trip=10, probe_interval_s=60.0)
        # rate-limit the closed-state reverify so the quarantine sticks
        svc._last_quarantine_probe = time.monotonic()
        try:
            full = svc.evaluate("//item/name", subject=0)
            assert full["degraded"] is False
            engine.store.quarantined.update(range(1024))
            body = svc.evaluate("//item/name", subject=0)
            assert body["degraded"] is True
            # degraded answers are subsets of the accessible nodes
            assert set(body["positions"]) <= set(full["positions"])
            assert svc.health_report()["state"] == "degraded"
            assert svc.metrics()["degraded_served"] == 1
        finally:
            engine.store.clear_quarantine()
            svc.close()

    def test_breaker_trips_then_probe_heals(self, engine):
        svc = self._service(engine, corruption_trip=1, probe_interval_s=0.05)
        svc._last_quarantine_probe = time.monotonic()
        try:
            engine.store.quarantined.update(range(1024))
            first = svc.evaluate("//item/name", subject=0)
            assert first["degraded"] is True
            assert svc.health.breaker.state == "open"
            # still inside the probe interval: served degraded, no probe
            second = svc.evaluate("//item/name", subject=0)
            assert second["degraded"] is True
            # past the interval the next request probes: the quarantine
            # was transient (the disk is actually fine), so it heals
            time.sleep(0.06)
            third = svc.evaluate("//item/name", subject=0)
            assert third["degraded"] is False
            assert svc.health.breaker.state == "closed"
            assert svc.health_report()["state"] == "healthy"
            assert len(engine.store.quarantined) == 0
        finally:
            svc.close()


class TestServiceStreaming:
    def test_stream_frames_and_metrics(self, service):
        frames = list(
            service.stream("//item/name", subject=0, ordered=True)
        )
        assert [f["frame"] for f in frames] == \
            ["begin", "fragment", "fragment", "end"]
        assert frames[-1]["n_fragments"] == 2
        streams = service.metrics()["streams"]
        assert streams["started"] == streams["completed"] == 1
        assert streams["fragments"] == 2
        assert 0 < streams["ttff_mean"] <= streams["ttff_max"]

    def test_handle_stream_requires_a_query_op(self, service):
        with pytest.raises(ServiceError):
            service.handle_stream({"op": "metrics"})
        with pytest.raises(ServiceError):
            service.handle_stream([])

    def test_eager_validation_raises_before_iteration(self, service):
        with pytest.raises(ServiceError):
            service.stream("//item", subject=0, semantics="nope")
        with pytest.raises(ServiceError):
            service.stream("//item")  # no subject
        # nothing was admitted
        assert service.metrics()["streams"]["started"] == 0

    def test_abandoned_stream_is_counted_separately(self, service):
        frames = service.stream("//item", subject=0)
        assert next(frames)["frame"] == "begin"
        frames.close()
        streams = service.metrics()["streams"]
        assert streams["abandoned"] == 1
        assert streams["failed"] == 0
        assert service.metrics()["inflight"] == 0
        # abandonment is not a service failure: health stays clean
        assert service.health_report()["state"] == "healthy"

    def test_streams_share_the_admission_limit(self, engine):
        svc = QueryService(engine, ServiceConfig(workers=1, queue_depth=0))
        first = svc.stream("//item/name", subject=0)
        try:
            next(first)  # occupies the only slot
            second = svc.stream("//item/name", subject=0)
            with pytest.raises(ServiceOverloaded):
                next(second)
            assert svc.metrics()["shed"] == 1
        finally:
            first.close()
            svc.close()

    def test_zero_deadline_times_out_in_queue(self, service):
        frames = service.stream("//item/name", subject=0, timeout=0.0)
        with pytest.raises(ServiceTimeout):
            next(frames)
        metrics = service.metrics()
        assert metrics["timeouts_in_queue"] == 1
        assert metrics["streams"]["failed"] == 1


class TestDeterministicShutdown:
    def test_server_context_manager_closes_service_and_store(
        self, engine, monkeypatch
    ):
        closed = []
        store_close = engine.store.close
        monkeypatch.setattr(
            engine.store, "close",
            lambda: (closed.append(True), store_close())[1],
        )
        service = QueryService(engine, ServiceConfig(workers=1))
        with serve(service, host="127.0.0.1", port=0, background=True) as server:
            host, port = server.address
            with socket.create_connection((host, port), timeout=5) as conn:
                conn.sendall(encode_response({"op": "ping"}))
                assert json.loads(conn.makefile("rb").readline())["pong"]
        # the exit closed the whole chain: service rejects further work,
        # and the store got its clean shutdown
        with pytest.raises(ServiceError):
            service.evaluate("//item", subject=0)
        assert closed

    def test_close_all_is_idempotent(self, engine):
        service = QueryService(engine, ServiceConfig(workers=1))
        server = serve(service, host="127.0.0.1", port=0, background=True)
        server.close_all()
        server.close_all()  # every link tolerates a second call


class TestProtocol:
    def test_decode_rejects_non_objects(self):
        with pytest.raises(ServiceError):
            decode_request("[1, 2]")
        with pytest.raises(ServiceError):
            decode_request("not json")
        with pytest.raises(ServiceError):
            decode_request(b"\xff\xfe")

    def test_encode_round_trip(self):
        line = encode_response({"ok": True, "positions": [1, 2]})
        assert line.endswith(b"\n")
        assert json.loads(line) == {"ok": True, "positions": [1, 2]}


class TestWireServer:
    def test_tcp_round_trip(self, service):
        server = serve(service, host="127.0.0.1", port=0, background=True)
        host, port = server.address
        try:
            with socket.create_connection((host, port), timeout=5) as conn:
                reader = conn.makefile("rb")
                for request, check in [
                    ({"op": "ping"}, lambda r: r["pong"]),
                    (
                        {"op": "query", "query": "//item/name", "subject": 0},
                        lambda r: r["n_answers"] == 2,
                    ),
                    (
                        {
                            "op": "update",
                            "kind": "subject_range",
                            "start": 0,
                            "end": 7,
                            "subject": 0,
                            "value": False,
                        },
                        lambda r: r["epoch"] == 1,
                    ),
                    (
                        {"op": "query", "query": "//item/name", "subject": 0},
                        lambda r: r["n_answers"] == 0,
                    ),
                    ({"op": "metrics"}, lambda r: r["metrics"]["epoch"] == 1),
                ]:
                    conn.sendall(encode_response(request))
                    response = json.loads(reader.readline())
                    assert response["ok"], response
                    assert check(response)
                # malformed line: answered in-band, connection survives
                conn.sendall(b"this is not json\n")
                response = json.loads(reader.readline())
                assert response["ok"] is False
                conn.sendall(encode_response({"op": "ping"}))
                assert json.loads(reader.readline())["pong"]
        finally:
            server.shutdown()
            server.server_close()

    def test_oversized_frame_answered_in_band(self, service):
        server = serve(service, host="127.0.0.1", port=0, background=True)
        host, port = server.address
        try:
            with socket.create_connection((host, port), timeout=10) as conn:
                reader = conn.makefile("rb")
                huge = (
                    b'{"op":"query","query":"'
                    + b"a" * MAX_REQUEST_BYTES
                    + b'"}\n'
                )
                conn.sendall(huge)
                response = json.loads(reader.readline())
                assert response["ok"] is False
                assert response["error"] == "BadRequest"
                assert "exceeds" in response["message"]
                # the connection survives the abuse
                conn.sendall(encode_response({"op": "ping"}))
                assert json.loads(reader.readline())["pong"]
        finally:
            server.shutdown()
            server.server_close()
