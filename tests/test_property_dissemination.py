"""Property tests for one-pass secure dissemination on random documents."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dol.labeling import DOL
from repro.secure.dissemination import (
    HOIST,
    PRUNE,
    filter_xml,
    hoisted_positions,
    visible_positions,
)
from repro.xmltree.document import Document
from repro.xmltree.parser import parse
from repro.xmltree.serializer import serialize
from tests.conftest import random_document


@st.composite
def cases(draw):
    seed = draw(st.integers(min_value=0, max_value=99_999))
    n = draw(st.integers(min_value=1, max_value=50))
    rng = random.Random(seed)
    doc = random_document(rng, n)
    vector = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    return doc, vector


@given(cases())
@settings(max_examples=120, deadline=None)
def test_prune_output_equals_visible_set(case):
    doc, vector = case
    dol = DOL.from_masks([int(v) for v in vector], 1)
    xml = serialize(doc.to_tree())
    out = filter_xml(xml, dol, 0, PRUNE)
    expected = visible_positions(dol, 0, doc)
    if not expected:
        assert out == ""
        return
    filtered = Document.from_tree(parse(out))
    filtered.validate()
    assert [filtered.tag_name(i) for i in range(len(filtered))] == [
        doc.tag_name(p) for p in expected
    ]


@given(cases())
@settings(max_examples=120, deadline=None)
def test_hoist_output_equals_accessible_set(case):
    doc, vector = case
    dol = DOL.from_masks([int(v) for v in vector], 1)
    xml = serialize(doc.to_tree())
    out = filter_xml(xml, dol, 0, HOIST)
    expected = hoisted_positions(dol, 0)
    if not expected:
        assert out == ""
        return
    wrapped = Document.from_tree(parse(f"<wrap>{out}</wrap>"))
    assert [wrapped.tag_name(i) for i in range(1, len(wrapped))] == [
        doc.tag_name(p) for p in expected
    ]


@given(cases())
@settings(max_examples=80, deadline=None)
def test_prune_subset_of_hoist(case):
    """Everything visible under PRUNE is also kept by HOIST."""
    doc, vector = case
    dol = DOL.from_masks([int(v) for v in vector], 1)
    assert set(visible_positions(dol, 0, doc)) <= set(hoisted_positions(dol, 0))


@given(cases())
@settings(max_examples=60, deadline=None)
def test_full_access_is_identity(case):
    doc, _vector = case
    dol = DOL.from_masks([1] * len(doc), 1)
    xml = serialize(doc.to_tree())
    assert parse(filter_xml(xml, dol, 0, PRUNE)).structurally_equal(parse(xml))
