"""The chaos matrix: seeded faults at every layer, no wrong answers ever.

Each scenario stands up the full stack (store → service → TCP server →
≥4 concurrent retrying clients) with a :class:`ChaosPlan` injecting
storage, service, and network faults from one seed, then asserts the
two resilience invariants:

1. no client ever accepts a wrong answer — every response is a correct
   Proposition-1 answer for its epoch, an explicitly-degraded *subset*
   of it, or a structured error;
2. the service reports ``healthy`` again after the faults stop.

A failure message always carries the scenario's seed: rerun the single
test id (or ``run_scenario`` with that seed) to reproduce the same
fault distribution. Set ``CHAOS_REPORT_OUT=/path.json`` to dump every
scenario's outcome report (CI uploads it as an artifact).
"""

import json
import os

import pytest

from repro.bench.chaos import ChaosScenario, run_scenario, scenario_matrix
from repro.server.chaos import ChaosPlan, ChaosSpec

SCENARIOS = scenario_matrix()

_REPORTS = []


@pytest.fixture(scope="module", autouse=True)
def chaos_report_artifact():
    """Dump per-scenario outcomes where CI can pick them up."""
    yield
    out = os.environ.get("CHAOS_REPORT_OUT")
    if out and _REPORTS:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "scenarios": len(_REPORTS),
                    "reports": _REPORTS,
                },
                handle,
                indent=1,
                default=str,
            )


def test_matrix_is_large_enough():
    assert len(SCENARIOS) >= 25
    assert all(s.n_clients >= 4 or s.with_updates for s in SCENARIOS)
    layers = set()
    for s in SCENARIOS:
        if any(k == "read_flip_rate" for k in s.faults):
            layers.add("storage")
        if any(
            k in ("latency_rate", "overload_rate", "snapshot_fail_rate",
                  "disable_caches")
            for k in s.faults
        ):
            layers.add("service")
        if any(
            k in ("drop_rate", "tear_rate", "slow_write_rate")
            for k in s.faults
        ):
            layers.add("network")
        if s.with_updates:
            layers.add("updates")
    assert layers == {"storage", "service", "network", "updates"}


@pytest.mark.parametrize("server", ["thread", "async"])
@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
def test_chaos_scenario(scenario, server, tmp_path):
    report = run_scenario(scenario, str(tmp_path), server=server)
    _REPORTS.append(report)
    repro_hint = (
        f"[reproduce: scenario {scenario.name!r}, seed {scenario.seed}, "
        f"server {server!r}]"
    )
    assert report["violations"] == [], (
        f"wrong answers under chaos {repro_hint}: {report['violations']}"
    )
    assert report["recovered"], (
        f"service did not heal after faults stopped {repro_hint}: "
        f"health={report['health']}"
    )
    total = sum(report["outcomes"].values())
    assert total > 0, f"no request ever succeeded {repro_hint}: {report}"


def test_no_chaos_baseline(tmp_path):
    """The harness itself passes with every fault rate at zero."""
    scenario = ChaosScenario(name="baseline", seed=1, faults={})
    report = run_scenario(scenario, str(tmp_path))
    assert report["violations"] == []
    assert report["errors"] == {}
    assert report["outcomes"].get("degraded", 0) == 0
    assert report["recovered"]


def test_chaos_plan_is_seed_deterministic():
    """Two plans from one seed make identical fault decisions."""
    spec = ChaosSpec(
        seed=42, latency_rate=0.3, overload_rate=0.2,
        snapshot_fail_rate=0.1, drop_rate=0.2, tear_rate=0.1,
        slow_write_rate=0.2, read_flip_rate=0.05,
    )
    a, b = ChaosPlan(spec), ChaosPlan(spec)
    trace_a = [
        (a.service_latency(), a.should_overload(), a.should_fail_snapshot(),
         a.net_action())
        for _ in range(200)
    ]
    trace_b = [
        (b.service_latency(), b.should_overload(), b.should_fail_snapshot(),
         b.net_action())
        for _ in range(200)
    ]
    assert trace_a == trace_b
    assert a.stats() == b.stats()


def test_chaos_plan_disable_stops_everything():
    spec = ChaosSpec(seed=7, latency_rate=1.0, overload_rate=1.0,
                     drop_rate=1.0, disable_caches=True)
    plan = ChaosPlan(spec)
    assert plan.should_overload()
    plan.disable()
    assert not plan.should_overload()
    assert plan.service_latency() == 0.0
    assert plan.net_action() == "ok"
    assert not plan.caches_disabled()
    assert not plan.storage.enabled
    plan.enable()
    assert plan.should_overload()
