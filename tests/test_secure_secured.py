"""Unit tests for SecuredDocument — coordinated document + DOL updates."""

import pytest

from repro.acl.model import AccessMatrix
from repro.dol.labeling import DOL
from repro.errors import AccessControlError
from repro.secure.secured import SecuredDocument
from repro.storage.nokstore import NoKStore
from repro.xmltree.builder import tree
from repro.xmltree.document import Document


def make(masks=None, with_store=False, page_size=96):
    doc = Document.from_tree(
        tree(("a", ("b", ("c",)), ("d",), ("e", ("f",), ("g",))))
    )
    masks = masks if masks is not None else [0b11, 0b01, 0b01, 0b11, 0b10, 0b10, 0b10]
    dol = DOL.from_masks(masks, 2)
    store = NoKStore(doc, dol, page_size=page_size) if with_store else None
    return SecuredDocument(doc, dol, store)


class TestAccessibilityUpdates:
    def test_subtree_grant(self):
        sd = make()
        report = sd.set_subtree_accessibility(4, 0, True)  # e's subtree for s0
        assert sd.masks()[4:7] == [0b11, 0b11, 0b11]
        assert report.transition_delta <= 2
        sd.validate()

    def test_node_mask(self):
        sd = make()
        sd.set_node_mask(3, 0b00)
        assert sd.masks()[3] == 0
        assert not sd.accessible(0, 3)


class TestStructuralUpdates:
    def test_insert_labeled_subtree(self):
        sd = make()
        report = sd.insert_subtree(0, 1, tree(("x", ("y",))), masks=[0b10, 0b10])
        assert report.position == 3
        assert report.size == 2
        names = [sd.doc.tag_name(i) for i in range(len(sd.doc))]
        assert names == ["a", "b", "c", "x", "y", "d", "e", "f", "g"]
        assert sd.masks() == [0b11, 0b01, 0b01, 0b10, 0b10, 0b11, 0b10, 0b10, 0b10]
        assert report.transition_delta <= 2
        sd.validate()

    def test_insert_wrong_mask_count_rejected(self):
        sd = make()
        with pytest.raises(AccessControlError):
            sd.insert_subtree(0, 0, tree(("x", ("y",))), masks=[1])

    def test_delete_subtree(self):
        sd = make()
        sd.delete_subtree(1)  # remove b(c)
        assert [sd.doc.tag_name(i) for i in range(len(sd.doc))] == [
            "a", "d", "e", "f", "g",
        ]
        assert sd.masks() == [0b11, 0b11, 0b10, 0b10, 0b10]
        sd.validate()

    def test_move_subtree(self):
        sd = make()
        report = sd.move_subtree(1, 4)  # b(c) appended under e
        assert [sd.doc.tag_name(i) for i in range(len(sd.doc))] == [
            "a", "d", "e", "f", "g", "b", "c",
        ]
        # the moved nodes carry their ACLs along
        assert sd.masks() == [0b11, 0b11, 0b10, 0b10, 0b10, 0b01, 0b01]
        assert report.position == 5
        sd.validate()

    def test_updates_compose(self):
        sd = make()
        sd.insert_subtree(3, 0, tree(("k",)), masks=[0b11])
        sd.set_subtree_accessibility(0, 1, False)
        sd.delete_subtree(1)
        sd.validate()
        assert sd.dol.n_nodes == len(sd.doc)


class TestStoreBackedEdits:
    def test_insert_updates_store(self):
        sd = make(with_store=True)
        report = sd.insert_subtree(0, 3, tree(("x",)), masks=[0b01])
        assert report.pages_rewritten >= 1
        store = sd.store
        assert store.n_nodes == 8
        assert store.tag_name(7) == "x"
        assert store.accessible(0, 7)
        assert not store.accessible(1, 7)

    def test_delete_shrinks_store(self):
        sd = make(with_store=True)
        pages_before = sd.store.n_pages
        sd.delete_subtree(4)  # drop e's 3-node subtree
        assert sd.store.n_nodes == 4
        assert sd.store.n_pages <= pages_before
        # navigation still consistent with the edited document
        for pos in range(sd.store.n_nodes):
            assert sd.store.tag_name(pos) == sd.doc.tag_name(pos)
            assert sd.store.first_child(pos) == sd.doc.first_child(pos)

    def test_store_access_matches_dol_after_move(self):
        sd = make(with_store=True)
        sd.move_subtree(1, 4)
        for pos in range(sd.store.n_nodes):
            for subject in (0, 1):
                assert sd.store.accessible(subject, pos) == sd.dol.accessible(
                    subject, pos
                )

    def test_store_queryable_after_edits(self):
        from repro.nok.engine import QueryEngine

        sd = make(with_store=True)
        sd.insert_subtree(3, 0, tree(("q", ("r",))), masks=[0b11, 0b11])
        engine = QueryEngine(sd.doc, dol=sd.dol, store=sd.store)
        result = engine.evaluate("//q/r", subject=0)
        assert result.n_answers == 1

    def test_paged_values_rebuilt_after_structural_edit(self):
        from repro.secure.secured import SecuredDocument
        from repro.xmltree.builder import tree as build

        doc = Document.from_tree(
            build(("site", ("item", ("name", "anvil")), ("item", ("name", "rope"))))
        )
        dol = DOL.from_masks([1] * len(doc), 1)
        store = NoKStore(doc, dol, page_size=96, paged_values=True)
        sd = SecuredDocument(doc, dol, store)
        sd.delete_subtree(1)  # remove the first item
        assert store.text(2) == "rope"  # served from the rebuilt value heap
        assert store.n_nodes == 3

    def test_mismatched_store_rejected(self):
        doc = Document.from_tree(tree(("a", ("b",))))
        dol = DOL.from_masks([1, 1], 1)
        other_dol = DOL.from_masks([1, 1], 1)
        store = NoKStore(doc, other_dol, page_size=96)
        with pytest.raises(AccessControlError):
            SecuredDocument(doc, dol, store)
