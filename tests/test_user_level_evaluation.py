"""User-level secure evaluation: rights = union over subject + groups.

Section 4, footnote 4: "a user's access rights may include her own plus
those [of] any groups of which she is a member." The engine accepts a
sequence of subject ids and evaluates against their union.
"""

import pytest

from repro.acl.model import AccessMatrix
from repro.acl.surrogates import generate_livelink
from repro.dol.labeling import DOL
from repro.errors import ReproError
from repro.nok.engine import QueryEngine
from repro.nok.reference import evaluate_reference
from repro.nok.pattern import parse_query
from repro.secure.semantics import CHO, VIEW
from repro.xmltree.builder import tree
from repro.xmltree.document import Document


@pytest.fixture
def setting():
    doc = Document.from_tree(
        tree(("root", ("a", ("x",)), ("b", ("x",)), ("c", ("x",))))
    )
    # subject 0 (user): root + subtree a; subject 1 (group): root + subtree b
    matrix = AccessMatrix(len(doc), 2)
    matrix.grant_range(0, 0, 1)
    matrix.grant_range(1, 0, 1)
    matrix.grant_range(0, 1, 3)
    matrix.grant_range(1, 3, 5)
    return doc, matrix


class TestUnionSemantics:
    def test_union_combines_rights(self, setting):
        doc, matrix = setting
        engine = QueryEngine.build(doc, matrix)
        own = engine.evaluate("//x", subject=0)
        group = engine.evaluate("//x", subject=1)
        union = engine.evaluate("//x", subject=[0, 1])
        assert set(union.positions) == set(own.positions) | set(group.positions)

    def test_singleton_sequence_equals_int(self, setting):
        doc, matrix = setting
        engine = QueryEngine.build(doc, matrix)
        assert (
            engine.evaluate("//x", subject=[0]).positions
            == engine.evaluate("//x", subject=0).positions
        )

    def test_union_matches_reference_on_merged_subject(self, setting):
        doc, matrix = setting
        engine = QueryEngine.build(doc, matrix)
        # Build a reference matrix with a merged pseudo-subject.
        merged = [
            int(bool(matrix.mask(pos) & 0b11)) for pos in range(len(doc))
        ]
        for semantics in (CHO, VIEW):
            got = set(
                engine.evaluate("//x", subject=[0, 1], semantics=semantics).positions
            )
            want = evaluate_reference(
                doc, parse_query("//x"), merged, 0, semantics
            )
            assert got == want, semantics

    def test_empty_subject_list_rejected(self, setting):
        doc, matrix = setting
        engine = QueryEngine.build(doc, matrix)
        with pytest.raises(ReproError):
            engine.evaluate("//x", subject=[])


class TestStoreBackedUserEvaluation:
    def test_union_through_block_store(self, setting):
        doc, matrix = setting
        engine = QueryEngine.build(doc, matrix, use_store=True, page_size=128)
        union = engine.evaluate("//x", subject=[0, 1])
        in_memory = QueryEngine.build(doc, matrix).evaluate("//x", subject=[0, 1])
        assert union.positions == in_memory.positions

    def test_page_skip_requires_all_subjects_denied(self, setting):
        doc, matrix = setting
        engine = QueryEngine.build(doc, matrix, use_store=True, page_size=128)
        # one page likely; skipping must not trigger when any subject sees it
        result = engine.evaluate("//x", subject=[0, 1])
        assert result.n_answers == 2


class TestLiveLinkUsers:
    def test_effective_rights_on_surrogate(self):
        dataset = generate_livelink(n_items=300, n_groups=5, n_users=10, seed=4)
        engine = QueryEngine.build(dataset.doc, dataset.matrix, mode="see")
        registry = dataset.registry
        user = registry.id_of("user0")
        effective = registry.effective_subjects(user)
        own = engine.evaluate("//item", subject=user)
        combined = engine.evaluate("//item", subject=effective)
        assert set(own.positions) <= set(combined.positions)

    def test_dol_accessible_any(self):
        dol = DOL.from_masks([0b01, 0b10, 0b00], 2)
        assert dol.accessible_any([0, 1], 0)
        assert dol.accessible_any([0, 1], 1)
        assert not dol.accessible_any([0, 1], 2)
        assert not dol.accessible_any([0], 1)
