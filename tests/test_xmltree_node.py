"""Unit tests for the mutable Node tree."""

import pytest

from repro.errors import TreeError
from repro.xmltree.builder import tree
from repro.xmltree.node import Node


class TestConstruction:
    def test_basic_fields(self):
        node = Node("item", text="hello", attrs={"id": "i1"})
        assert node.tag == "item"
        assert node.text == "hello"
        assert node.attrs == {"id": "i1"}
        assert node.children == []
        assert node.parent is None

    def test_empty_tag_rejected(self):
        with pytest.raises(TreeError):
            Node("")

    def test_append_sets_parent(self):
        parent = Node("a")
        child = parent.append(Node("b"))
        assert child.parent is parent
        assert parent.children == [child]

    def test_append_attached_node_rejected(self):
        a, b = Node("a"), Node("b")
        child = Node("c")
        a.append(child)
        with pytest.raises(TreeError):
            b.append(child)

    def test_append_self_rejected(self):
        node = Node("a")
        with pytest.raises(TreeError):
            node.append(node)

    def test_append_ancestor_rejected(self):
        root = Node("a")
        child = root.append(Node("b"))
        with pytest.raises(TreeError):
            child.append(root)

    def test_insert_positions_child(self):
        root = Node("a")
        root.append(Node("b"))
        root.append(Node("d"))
        root.insert(1, Node("c"))
        assert [c.tag for c in root.children] == ["b", "c", "d"]


class TestNavigation:
    def test_preorder_is_document_order(self, paper_tree):
        tags = [node.tag for node in paper_tree.iter_preorder()]
        assert tags == list("abcdefghijkl")

    def test_size_and_depth(self, paper_tree):
        assert paper_tree.size() == 12
        h = paper_tree.children[3].children[2]
        assert h.tag == "h"
        assert h.depth() == 2
        assert h.size() == 5

    def test_child_lookup(self, paper_tree):
        assert paper_tree.child("e").tag == "e"
        with pytest.raises(TreeError):
            paper_tree.child("zzz")

    def test_find_all(self, paper_tree):
        assert [n.tag for n in paper_tree.find_all("h")] == ["h"]
        assert paper_tree.find_all("nope") == []

    def test_path(self, paper_tree):
        h = paper_tree.child("e").child("h")
        assert h.path() == "/a/e/h"

    def test_is_ancestor_of(self, paper_tree):
        e = paper_tree.child("e")
        h = e.child("h")
        assert paper_tree.is_ancestor_of(h)
        assert e.is_ancestor_of(h)
        assert not h.is_ancestor_of(e)
        assert not h.is_ancestor_of(h)


class TestMutation:
    def test_detach(self, paper_tree):
        e = paper_tree.child("e")
        e.detach()
        assert e.parent is None
        assert paper_tree.size() == 4

    def test_detach_root_rejected(self, paper_tree):
        with pytest.raises(TreeError):
            paper_tree.detach()

    def test_copy_is_deep_and_detached(self, paper_tree):
        e = paper_tree.child("e")
        clone = e.copy()
        assert clone.parent is None
        assert clone.structurally_equal(e)
        clone.children[0].tag = "changed"
        assert e.children[0].tag == "f"


class TestEquality:
    def test_structurally_equal(self):
        a = tree(("x", ("y", "txt"), ("z",)))
        b = tree(("x", ("y", "txt"), ("z",)))
        assert a.structurally_equal(b)

    def test_text_difference_detected(self):
        a = tree(("x", ("y", "one")))
        b = tree(("x", ("y", "two")))
        assert not a.structurally_equal(b)

    def test_child_order_matters(self):
        a = tree(("x", ("y",), ("z",)))
        b = tree(("x", ("z",), ("y",)))
        assert not a.structurally_equal(b)
