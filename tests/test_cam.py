"""Unit tests for the CAM baselines (positive-cover and override variants)."""

import pytest

from repro.acl.model import AccessMatrix
from repro.cam.cam import CAM, CAMEntry, OverrideCAM, total_cam_labels
from repro.errors import AccessControlError
from repro.xmltree.builder import tree
from repro.xmltree.document import Document


class TestPositiveCoverLookup:
    def test_uniform_accessible_needs_one_entry(self, paper_doc):
        cam = CAM.from_vector(paper_doc, [True] * 12)
        assert cam.n_labels == 1
        assert all(cam.accessible(i) for i in range(12))

    def test_all_denied_needs_no_entries(self, paper_doc):
        cam = CAM.from_vector(paper_doc, [False] * 12)
        assert cam.n_labels == 0
        assert not any(cam.accessible(i) for i in range(12))

    def test_accessible_island(self, paper_doc):
        # Only the subtree rooted at h (pos 7..11) accessible.
        vector = [False] * 12
        for pos in range(7, 12):
            vector[pos] = True
        cam = CAM.from_vector(paper_doc, vector)
        assert cam.to_vector() == vector
        assert cam.n_labels == 1
        assert cam.entries[7] == CAMEntry(7, True, True)

    def test_descendants_of_denied_node_grantable(self):
        # a(-) with accessible children: one (self=0, desc=1) entry at a.
        doc = Document.from_tree(tree(("a", ("b",), ("c",))))
        cam = CAM.from_vector(doc, [False, True, True])
        assert cam.n_labels == 1
        assert cam.entries[0] == CAMEntry(0, False, True)
        assert cam.to_vector() == [False, True, True]

    def test_hole_fragments_cover(self, paper_doc):
        # Everything accessible except h's subtree: holes make the
        # positive cover expensive (the paper's asymmetry).
        vector = [True] * 12
        for pos in range(7, 12):
            vector[pos] = False
        cam = CAM.from_vector(paper_doc, vector)
        assert cam.to_vector() == vector
        # a(1,0), b, c, d (leaf grants), e(1,0), f, g -> 7 entries
        assert cam.n_labels == 7

    def test_out_of_range_lookup(self, paper_doc):
        cam = CAM.from_vector(paper_doc, [True] * 12)
        with pytest.raises(AccessControlError):
            cam.accessible(99)

    def test_vector_length_checked(self, paper_doc):
        with pytest.raises(AccessControlError):
            CAM.from_vector(paper_doc, [True])

    def test_asymmetry_under_complement(self, paper_doc):
        """Few accessible nodes: cheap. Few holes: expensive."""
        sparse = [False] * 12
        sparse[7] = sparse[8] = sparse[9] = sparse[10] = sparse[11] = True
        dense = [not v for v in sparse]
        assert (
            CAM.from_vector(paper_doc, sparse).n_labels
            < CAM.from_vector(paper_doc, dense).n_labels
        )


class TestOverrideCAM:
    def test_uniform_tree_needs_one_entry(self, paper_doc):
        cam = OverrideCAM.from_vector(paper_doc, [True] * 12)
        assert cam.n_labels == 1
        assert all(cam.accessible(i) for i in range(12))

    def test_all_denied_needs_one_entry(self, paper_doc):
        cam = OverrideCAM.from_vector(paper_doc, [False] * 12)
        assert cam.n_labels == 1

    def test_subtree_exception_is_one_extra_entry(self, paper_doc):
        vector = [True] * 12
        for pos in range(7, 12):
            vector[pos] = False
        cam = OverrideCAM.from_vector(paper_doc, vector)
        assert cam.to_vector() == vector
        assert cam.n_labels == 2  # override handles the hole in one entry

    def test_self_differs_from_descendants(self, paper_doc):
        vector = [True] * 12
        vector[4] = False
        cam = OverrideCAM.from_vector(paper_doc, vector)
        assert cam.to_vector() == vector
        assert cam.n_labels == 2

    def test_alternating_path(self):
        doc = Document.from_tree(tree(("a", ("b", ("c", ("d",))))))
        vector = [True, False, True, False]
        cam = OverrideCAM.from_vector(doc, vector)
        assert cam.to_vector() == vector
        assert cam.n_labels == 2  # (a: +,-) and (c: +,-)

    def test_root_entry_required(self, paper_doc):
        with pytest.raises(AccessControlError):
            OverrideCAM(paper_doc, {})

    def test_never_larger_than_positive_cover(self, paper_doc):
        for bits in range(0, 4096, 37):
            vector = [bool(bits >> i & 1) for i in range(12)]
            positive = CAM.from_vector(paper_doc, vector)
            override = OverrideCAM.from_vector(paper_doc, vector)
            # +1 because the override variant always labels the root
            assert override.n_labels <= positive.n_labels + 1


class TestFromMatrix:
    def test_per_subject(self, paper_doc):
        matrix = AccessMatrix(12, 2)
        matrix.grant_range(0, 0, 12)
        matrix.grant_range(1, 4, 12)
        cam0 = CAM.from_matrix(paper_doc, matrix, 0)
        cam1 = CAM.from_matrix(paper_doc, matrix, 1)
        assert cam0.n_labels == 1
        assert cam1.to_vector() == matrix.subject_vector(1)

    def test_total_cam_labels_sums_subjects(self, paper_doc):
        matrix = AccessMatrix(12, 3)
        matrix.grant_range(0, 0, 12)
        total = total_cam_labels(paper_doc, matrix)
        per_subject = [
            CAM.from_matrix(paper_doc, matrix, s).n_labels for s in range(3)
        ]
        assert total == sum(per_subject)

    def test_total_with_subject_subset(self, paper_doc):
        matrix = AccessMatrix(12, 3)
        matrix.grant_range(1, 0, 12)
        assert total_cam_labels(paper_doc, matrix, subjects=[1]) == 1
        assert total_cam_labels(paper_doc, matrix, subjects=[0]) == 0


class TestSizeModel:
    def test_size_bytes(self, paper_doc):
        cam = CAM.from_vector(paper_doc, [True] * 12)
        # 1 label x (32-bit pointer + 2 bits) = 34 bits -> 5 bytes
        assert cam.size_bytes() == 5
        # the paper's "unrealistic" 1-byte-pointer accounting
        assert cam.size_bytes(pointer_bytes=1) == 2

    def test_override_size_model_same_form(self, paper_doc):
        cam = OverrideCAM.from_vector(paper_doc, [True] * 12)
        assert cam.size_bytes() == 5
