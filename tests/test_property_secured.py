"""Property tests: random edit sequences keep document and DOL in sync."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dol.labeling import DOL, transitions_from_masks
from repro.secure.secured import SecuredDocument
from repro.xmltree.builder import tree as build_tree
from repro.xmltree.node import Node
from tests.conftest import random_document


def _reference_masks_after(op, masks, doc_before, args):
    """Apply the edit to a plain mask list (the reference model)."""
    if op == "grant":
        pos, subject, value = args
        end = doc_before.subtree_end(pos)
        bit = 1 << subject
        return [
            (m | bit if value else m & ~bit) if pos <= i < end else m
            for i, m in enumerate(masks)
        ]
    if op == "insert":
        position, new_masks = args
        return masks[:position] + new_masks + masks[position:]
    if op == "delete":
        start, end = args
        return masks[:start] + masks[end:]
    raise AssertionError(op)


@st.composite
def edit_scripts(draw):
    seed = draw(st.integers(min_value=0, max_value=9999))
    n = draw(st.integers(min_value=2, max_value=25))
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["grant", "insert", "delete", "move"]),
                st.integers(min_value=0, max_value=10_000),
            ),
            max_size=8,
        )
    )
    return seed, n, ops


@given(edit_scripts())
@settings(max_examples=120, deadline=None)
def test_random_edit_sequences_stay_consistent(script):
    seed, n, ops = script
    rng = random.Random(seed)
    doc = random_document(rng, n)
    masks = [rng.randrange(4) for _ in range(n)]
    sd = SecuredDocument(doc, DOL.from_masks(masks, 2))

    for op, randomness in ops:
        op_rng = random.Random(randomness)
        size = len(sd.doc)
        if op == "grant":
            pos = op_rng.randrange(size)
            subject = op_rng.randrange(2)
            value = op_rng.random() < 0.5
            args = (pos, subject, value)
            expected = _reference_masks_after("grant", masks, sd.doc, args)
            report = sd.set_subtree_accessibility(pos, subject, value)
            assert report.transition_delta <= 2
        elif op == "insert":
            parent = op_rng.randrange(size)
            child_index = op_rng.randint(
                0, len(list(sd.doc.children(parent)))
            )
            k = op_rng.randint(1, 3)
            subtree = Node("x")
            for _ in range(k - 1):
                subtree.append(Node("y"))
            new_masks = [op_rng.randrange(4) for _ in range(k)]
            from repro.xmltree.edit import insert_position

            position = insert_position(sd.doc, parent, child_index)
            expected = _reference_masks_after(
                "insert", masks, sd.doc, (position, new_masks)
            )
            report = sd.insert_subtree(parent, child_index, subtree, new_masks)
            assert report.transition_delta <= 2
        elif op == "delete":
            if size < 2:
                continue
            pos = op_rng.randrange(1, size)
            end = sd.doc.subtree_end(pos)
            expected = _reference_masks_after("delete", masks, sd.doc, (pos, end))
            sd.delete_subtree(pos)
        else:  # move
            if size < 3:
                continue
            pos = op_rng.randrange(1, size)
            end = sd.doc.subtree_end(pos)
            candidates = [
                p for p in range(size) if not pos <= p < end
            ]
            new_parent = op_rng.choice(candidates)
            segment = masks[pos:end]
            rest = masks[:pos] + masks[end:]
            result_preview = None
            from repro.xmltree.edit import move_subtree

            result_preview = move_subtree(sd.doc, pos, new_parent)
            expected = (
                rest[: result_preview.destination]
                + segment
                + rest[result_preview.destination :]
            )
            sd.move_subtree(pos, new_parent)

        masks = expected
        assert sd.masks() == masks
        sd.validate()
        assert sd.dol.n_transitions == len(transitions_from_masks(masks))
