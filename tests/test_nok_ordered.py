"""Ordered pattern trees: following-sibling (next-of-kin) constraints.

The paper presents unordered matching "for ease of presentation only,
though we use ordered pattern tree in real experiments" (Section 4.1).
With ``ordered=True``, a pattern node's child-axis children must bind to
data siblings in pattern order.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acl.model import AccessMatrix
from repro.nok.engine import QueryEngine
from repro.nok.pattern import parse_query
from repro.nok.reference import evaluate_reference
from repro.secure.semantics import CHO
from repro.xmltree.builder import tree
from repro.xmltree.document import Document
from tests.conftest import random_document


@pytest.fixture
def doc():
    # r -> a(b, c), a(c, b): sibling order differs between the two a's.
    return Document.from_tree(
        tree(("r", ("a", ("b",), ("c",)), ("a", ("c",), ("b",))))
    )


class TestOrderedSemantics:
    def test_unordered_matches_both(self, doc):
        engine = QueryEngine.build(doc)
        result = engine.evaluate("/r/a[b][c]")
        assert result.positions == [1, 4]

    def test_ordered_respects_sibling_order(self, doc):
        engine = QueryEngine.build(doc)
        # [b][c] in pattern order: only the first a has b before c.
        assert engine.evaluate("/r/a[b][c]", ordered=True).positions == [1]
        # [c][b]: only the second a.
        assert engine.evaluate("/r/a[c][b]", ordered=True).positions == [4]

    def test_ordered_subset_of_unordered(self, doc):
        engine = QueryEngine.build(doc)
        for query in ("/r/a[b][c]", "/r/a[c]/b", "//a[b]"):
            ordered = set(engine.evaluate(query, ordered=True).positions)
            unordered = set(engine.evaluate(query).positions)
            assert ordered <= unordered, query

    def test_same_data_node_cannot_serve_twice(self):
        # a has a single b child; pattern needs two b's in order.
        doc = Document.from_tree(tree(("r", ("a", ("b",)))))
        engine = QueryEngine.build(doc)
        assert engine.evaluate("/r/a[b][b]", ordered=True).positions == []
        # unordered Algorithm-1 semantics lets one child satisfy both.
        assert engine.evaluate("/r/a[b][b]").positions == [1]

    def test_ordered_with_returning_in_branch(self, doc):
        engine = QueryEngine.build(doc)
        # return c where a has pattern (b, c) in order
        result = engine.evaluate("/r/a[b]/c", ordered=True)
        assert result.positions == [3]

    def test_secure_ordered(self, doc):
        matrix = AccessMatrix(len(doc), 1)
        matrix.grant_range(0, 0, len(doc))
        matrix.set_accessible(0, 2, False)  # first a's b inaccessible
        engine = QueryEngine.build(doc, matrix)
        result = engine.evaluate("/r/a[b][c]", subject=0, ordered=True)
        assert result.positions == []


class TestOrderedOracle:
    @st.composite
    def cases(draw):
        seed = draw(st.integers(min_value=0, max_value=9999))
        rng = random.Random(seed)
        doc = random_document(rng, draw(st.integers(min_value=1, max_value=30)))
        query = draw(
            st.sampled_from(
                [
                    "//n0[n1][n2]",
                    "//n1[n0][n0]",
                    "/n0/n1[n2]/n3",
                    "//n2[n1]/n0",
                    "//n0[n1/n2][n3]",
                ]
            )
        )
        masks = [rng.randrange(2) for _ in range(len(doc))]
        return doc, query, masks

    @given(cases())
    @settings(max_examples=120, deadline=None)
    def test_engine_matches_reference(self, case):
        doc, query, masks = case
        pattern = parse_query(query)
        engine = QueryEngine.build(doc)
        got = set(engine.evaluate(pattern, ordered=True).positions)
        want = evaluate_reference(doc, pattern, ordered=True)
        assert got == want

    @given(cases())
    @settings(max_examples=80, deadline=None)
    def test_secure_ordered_matches_reference(self, case):
        doc, query, masks = case
        pattern = parse_query(query)
        matrix = AccessMatrix.from_masks(masks, 1)
        engine = QueryEngine.build(doc, matrix)
        got = set(engine.evaluate(pattern, subject=0, ordered=True).positions)
        want = evaluate_reference(doc, pattern, masks, 0, CHO, ordered=True)
        assert got == want
