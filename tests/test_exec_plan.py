"""Tests for the physical plan compiler: structure, rewrites, correctness.

The planner must (a) emit the right operator tree for each query shape,
(b) apply the secure-semantics rewrites as plan transformations, and
(c) produce answers identical to the legacy evaluation semantics — for
every benchmark query, under both Cho and view semantics, over both the
in-memory document and the block store.
"""

import pytest

from repro.acl.model import AccessMatrix
from repro.acl.synthetic import SyntheticACLConfig, generate_synthetic_acl
from repro.bench.queries import QUERIES
from repro.bench.reporting import format_plan_table
from repro.exec import (
    AccessFilter,
    Limit,
    NPMMatch,
    PageSkipScan,
    PathCheck,
    Project,
    RootVerify,
    STDJoin,
    TagIndexScan,
)
from repro.nok.engine import QueryEngine
from repro.nok.reference import evaluate_reference
from repro.secure.semantics import CHO, VIEW
from repro.xmark.generator import XMarkConfig, generate_document


@pytest.fixture(scope="module")
def xdoc():
    return generate_document(XMarkConfig(n_items=40, seed=7))


@pytest.fixture(scope="module")
def matrix(xdoc):
    config = SyntheticACLConfig(accessibility_ratio=0.7, seed=11)
    return generate_synthetic_acl(xdoc, config, n_subjects=2)


def _ops(plan, kind):
    return [op for op in plan.operators() if isinstance(op, kind)]


@pytest.fixture(scope="module")
def partial_matrix(xdoc):
    # Subject 0's root path is accessible but one subtree is revoked, so
    # path accessibility is partial and the static pre-pass cannot
    # resolve the class — the view rewrite must actually appear.
    matrix = AccessMatrix(len(xdoc), 2)
    matrix.grant_range(0, 0, len(xdoc))
    for pos in range(100, 200):
        matrix.set_accessible(0, pos, False)
    return matrix


class TestPlanShape:
    def test_single_subtree_plan(self, xdoc):
        engine = QueryEngine.build(xdoc)
        plan = engine.compile(QUERIES["Q1"])
        assert isinstance(plan.root, Project)
        assert len(_ops(plan, NPMMatch)) == 1
        assert len(_ops(plan, STDJoin)) == 0
        assert len(_ops(plan, TagIndexScan)) == 1
        # Non-secure plans carry no access machinery at all.
        assert len(_ops(plan, AccessFilter)) == 0
        assert len(_ops(plan, PageSkipScan)) == 0

    def test_join_plan_has_one_std_join(self, xdoc):
        engine = QueryEngine.build(xdoc)
        plan = engine.compile(QUERIES["Q5"])  # //listitem//keyword
        assert len(_ops(plan, STDJoin)) == 1
        assert len(_ops(plan, NPMMatch)) == 2

    def test_anchored_scan_for_child_root_axis(self, xdoc):
        engine = QueryEngine.build(xdoc)
        plan = engine.compile("/site/regions")
        scans = _ops(plan, TagIndexScan)
        assert len(scans) == 1 and scans[0].anchored

    def test_limit_caps_plan(self, xdoc):
        engine = QueryEngine.build(xdoc)
        plan = engine.compile("//item", limit=3)
        assert isinstance(plan.root, Limit)
        assert plan.run().n_answers == 3

    def test_cho_rewrite_adds_access_filters(self, xdoc, matrix):
        engine = QueryEngine.build(xdoc, matrix)
        plan = engine.compile(QUERIES["Q5"], subject=0, semantics=CHO)
        # one AccessFilter per NoK subtree, directly above its RootVerify
        filters = _ops(plan, AccessFilter)
        assert len(filters) == 2
        assert all(isinstance(f.child, RootVerify) for f in filters)
        assert len(_ops(plan, PathCheck)) == 0

    def test_view_rewrite_adds_path_checks(self, xdoc, partial_matrix):
        engine = QueryEngine.build(xdoc, partial_matrix)
        plan = engine.compile(QUERIES["Q5"], subject=0, semantics=VIEW)
        checks = _ops(plan, PathCheck)
        assert len(checks) == 1
        assert isinstance(checks[0].child, STDJoin)

    def test_fully_blocked_view_compiles_to_static_empty(self, xdoc, matrix):
        # the synthetic matrix denies subject 0 the document root, so
        # under view semantics no root path is accessible: the static
        # pre-pass answers empty without building the operator tree
        engine = QueryEngine.build(xdoc, matrix)
        plan = engine.compile(QUERIES["Q5"], subject=0, semantics=VIEW)
        assert plan.prepass == "deny"
        assert plan.run().n_answers == 0
        assert "fully denied" in plan.explain()

    def test_page_skip_only_over_store(self, xdoc, matrix):
        in_memory = QueryEngine.build(xdoc, matrix)
        stored = QueryEngine.build(xdoc, matrix, use_store=True, page_size=256)
        assert len(_ops(in_memory.compile("//item", subject=0), PageSkipScan)) == 0
        plan = stored.compile("//item", subject=0)
        skips = _ops(plan, PageSkipScan)
        assert len(skips) == 1
        assert isinstance(skips[0].child, TagIndexScan)

    def test_explain_renders_tree(self, xdoc, partial_matrix):
        engine = QueryEngine.build(xdoc, partial_matrix)
        plan = engine.compile(QUERIES["Q5"], subject=0, semantics=VIEW)
        text = plan.explain()
        for name in ("Project", "PathCheck", "STDJoin", "NPMMatch", "TagIndexScan"):
            assert name in text
        assert "rows=" not in text  # analyze=False

    def test_explain_analyze_shows_counters(self, xdoc, matrix):
        engine = QueryEngine.build(xdoc, matrix)
        result, text = engine.explain_analyze(QUERIES["Q5"], subject=0)
        assert result.n_answers >= 0
        assert "rows=" in text and "time=" in text

    def test_plan_table_report(self, xdoc):
        engine = QueryEngine.build(xdoc)
        plan = engine.compile("//item")
        plan.run()
        table = format_plan_table("Q plan", plan)
        assert "operator" in table and "TagIndexScan" in table


class TestPlanCorrectness:
    @pytest.mark.parametrize("qid", sorted(QUERIES))
    def test_matches_reference_all_semantics(self, xdoc, matrix, qid):
        engine = QueryEngine.build(xdoc, matrix)
        masks = matrix.masks()
        plain = set(engine.evaluate(QUERIES[qid]).positions)
        assert plain == evaluate_reference(xdoc, _pattern(qid))
        for semantics in (CHO, VIEW):
            got = set(
                engine.evaluate(QUERIES[qid], subject=0, semantics=semantics).positions
            )
            want = evaluate_reference(xdoc, _pattern(qid), masks, 0, semantics)
            assert got == want, (qid, semantics)

    @pytest.mark.parametrize("qid", sorted(QUERIES))
    @pytest.mark.parametrize("semantics", [CHO, VIEW])
    def test_store_matches_in_memory(self, xdoc, matrix, qid, semantics):
        """Acceptance: identical bindings in memory and over the store."""
        in_memory = QueryEngine.build(xdoc, matrix)
        stored = QueryEngine.build(
            xdoc, matrix, use_store=True, page_size=256, buffer_capacity=8
        )
        a = in_memory.evaluate(QUERIES[qid], subject=0, semantics=semantics)
        b = stored.evaluate(QUERIES[qid], subject=0, semantics=semantics)
        assert a.positions == b.positions, (qid, semantics)
        assert a.n_bindings == b.n_bindings, (qid, semantics)

    def test_stream_order_is_discovery_order_with_same_set(self, xdoc, matrix):
        engine = QueryEngine.build(xdoc, matrix)
        streamed = list(engine.stream("//item", subject=0))
        drained = engine.evaluate("//item", subject=0).positions
        assert sorted(streamed) == drained

    def test_user_level_subjects_union(self, xdoc, matrix):
        engine = QueryEngine.build(xdoc, matrix)
        either = set(engine.evaluate("//item", subject=(0, 1)).positions)
        s0 = set(engine.evaluate("//item", subject=0).positions)
        s1 = set(engine.evaluate("//item", subject=1).positions)
        assert either == s0 | s1


def _pattern(qid):
    from repro.nok.pattern import parse_query

    return parse_query(QUERIES[qid])
