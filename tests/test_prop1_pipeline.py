"""Proposition 1 under the operator pipeline.

Every accessibility or structural update adds at most 2 transition nodes
beyond those intrinsic to any inserted data (Proposition 1, Section 3.4)
— exercised here at the positions where off-by-one bugs live (document
start, document end, and positions adjacent to existing transitions) —
and after each update the compiled physical plan must still agree with
the brute-force reference oracle.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acl.synthetic import SyntheticACLConfig, generate_synthetic_acl
from repro.dol.labeling import DOL
from repro.dol.updates import DOLUpdater
from repro.nok.engine import QueryEngine
from repro.nok.pattern import parse_query
from repro.nok.reference import evaluate_reference
from repro.secure.semantics import CHO, VIEW
from repro.xmark.generator import XMarkConfig, generate_document

N_SUBJECTS = 2


@pytest.fixture(scope="module")
def xdoc():
    return generate_document(XMarkConfig(n_items=20, seed=13))


@pytest.fixture(scope="module")
def matrix(xdoc):
    config = SyntheticACLConfig(accessibility_ratio=0.6, seed=29)
    return generate_synthetic_acl(xdoc, config, n_subjects=N_SUBJECTS)


def _fresh_dol(matrix):
    return DOL.from_matrix(matrix)


def _edge_positions(dol):
    """Document start, document end, and transition-adjacent positions."""
    n = dol.n_nodes
    positions = {0, n - 1}
    for t in dol.positions:
        for pos in (t - 1, t, t + 1):
            if 0 <= pos < n:
                positions.add(pos)
    return sorted(positions)


class TestAccessibilityUpdates:
    def test_node_updates_at_edge_positions(self, matrix):
        dol = _fresh_dol(matrix)
        for pos in _edge_positions(dol):
            for subject in range(N_SUBJECTS):
                for value in (False, True):
                    delta = DOLUpdater(dol).set_node_accessibility(
                        pos, subject, value
                    )
                    assert delta <= 2, (pos, subject, value)
                    DOLUpdater.check_proposition1(delta)

    def test_range_updates_touching_boundaries(self, matrix):
        dol = _fresh_dol(matrix)
        n = dol.n_nodes
        for start, end in [(0, 3), (n - 3, n), (0, n), (n // 2, n // 2 + 5)]:
            delta = DOLUpdater(dol).set_range_mask(start, end, 0b01)
            assert delta <= 2, (start, end)
            dol = _fresh_dol(matrix)

    def test_queries_correct_after_each_update(self, xdoc, matrix):
        dol = _fresh_dol(matrix)
        updater = DOLUpdater(dol)
        pattern = parse_query("//item")
        probes = _edge_positions(dol)[:8]
        for index, pos in enumerate(probes):
            delta = updater.set_node_accessibility(pos, 0, index % 2 == 0)
            DOLUpdater.check_proposition1(delta)
            engine = QueryEngine(xdoc, dol=dol)
            masks = dol.to_masks()
            for semantics in (CHO, VIEW):
                got = set(engine.evaluate(pattern, subject=0, semantics=semantics).positions)
                want = evaluate_reference(xdoc, pattern, masks, 0, semantics)
                assert got == want, (pos, semantics)


class TestStructuralUpdates:
    def test_insert_at_start_end_and_transitions(self, matrix):
        base = _fresh_dol(matrix)
        probes = [0, base.n_nodes] + [t for t in base.positions if t < base.n_nodes]
        for at in probes[:12]:
            dol = _fresh_dol(matrix)
            delta = DOLUpdater(dol).insert_range(at, [0b11, 0b01, 0b11])
            assert delta <= 2, at
            DOLUpdater.check_proposition1(delta, "insert")

    def test_delete_at_start_end_and_transitions(self, matrix):
        base = _fresh_dol(matrix)
        n = base.n_nodes
        probes = [(0, 2), (n - 2, n)] + [
            (t, min(t + 3, n)) for t in base.positions if t + 1 < n
        ]
        for start, end in probes[:12]:
            dol = _fresh_dol(matrix)
            delta = DOLUpdater(dol).delete_range(start, end)
            assert delta <= 2, (start, end)
            DOLUpdater.check_proposition1(delta, "delete")


class TestProperty:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_random_update_then_query(self, xdoc, matrix, data):
        dol = _fresh_dol(matrix)
        n = dol.n_nodes
        updater = DOLUpdater(dol)
        for _ in range(data.draw(st.integers(1, 4), label="n_updates")):
            start = data.draw(st.integers(0, n - 1), label="start")
            end = data.draw(st.integers(start + 1, n), label="end")
            mask = data.draw(st.integers(0, (1 << N_SUBJECTS) - 1), label="mask")
            delta = updater.set_range_mask(start, end, mask)
            assert delta <= 2
        engine = QueryEngine(xdoc, dol=dol)
        masks = dol.to_masks()
        got = set(engine.evaluate("//item//keyword", subject=0).positions)
        want = evaluate_reference(xdoc, parse_query("//item//keyword"), masks, 0, CHO)
        assert got == want
