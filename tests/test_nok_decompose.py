"""Unit tests for NoK subtree decomposition."""

from repro.bench.queries import QUERIES
from repro.nok.decompose import decompose
from repro.nok.pattern import parse_query


class TestSingleSubtree:
    def test_child_only_pattern(self):
        dec = decompose(parse_query("/a/b[c]/d"))
        assert len(dec.subtrees) == 1
        assert dec.edges == []

    def test_q1_is_one_nok_tree(self):
        dec = decompose(parse_query(QUERIES["Q1"]))
        assert len(dec.subtrees) == 1

    def test_output_nodes_include_root_and_returning(self):
        dec = decompose(parse_query("/a/b"))
        (subtree,) = dec.subtrees
        tags = {node.tag for node in subtree.output_nodes}
        assert tags == {"a", "b"}


class TestSplitting:
    def test_q4_splits_in_two(self):
        dec = decompose(parse_query(QUERIES["Q4"]))
        assert len(dec.subtrees) == 2
        (edge,) = dec.edges
        assert edge.parent_subtree == 0
        assert edge.child_subtree == 1
        assert edge.parent_node.tag == "parlist"

    def test_three_level_chain(self):
        dec = decompose(parse_query("//a//b//c"))
        assert len(dec.subtrees) == 3
        assert sorted((e.parent_subtree, e.child_subtree) for e in dec.edges) == [
            (0, 1),
            (1, 2),
        ]

    def test_mixed_pattern(self):
        dec = decompose(parse_query("/a/b//c/d"))
        assert len(dec.subtrees) == 2
        assert dec.subtrees[0].root.tag == "a"
        assert dec.subtrees[1].root.tag == "c"
        (edge,) = dec.edges
        assert edge.parent_node.tag == "b"

    def test_descendant_predicate_splits(self):
        dec = decompose(parse_query("/a[//k]/b"))
        assert len(dec.subtrees) == 2
        assert dec.subtrees[1].root.tag == "k"

    def test_edge_source_becomes_output_node(self):
        dec = decompose(parse_query("/a/b//c"))
        outputs0 = {node.tag for node in dec.subtrees[0].output_nodes}
        assert "b" in outputs0  # the AD edge hangs off b

    def test_contains_returning(self):
        dec = decompose(parse_query("//a//b"))
        assert not dec.subtrees[0].contains_returning()
        assert dec.subtrees[1].contains_returning()


class TestJoinOrder:
    def test_children_before_parents(self):
        dec = decompose(parse_query("//a//b//c"))
        order = dec.join_order()
        assert order.index(2) < order.index(1) < order.index(0)

    def test_fan_out(self):
        dec = decompose(parse_query("/a[//x]//y"))
        order = dec.join_order()
        assert order[-1] == 0
        assert set(order) == {0, 1, 2}

    def test_children_of(self):
        dec = decompose(parse_query("/a[//x]//y"))
        assert len(dec.children_of(0)) == 2
        assert dec.children_of(1) == []
