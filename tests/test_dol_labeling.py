"""Unit tests for DOL construction, lookup, and metrics."""

import pytest

from repro.acl.model import AccessMatrix
from repro.dol.codebook import Codebook
from repro.dol.labeling import DOL, transition_count, transitions_from_masks
from repro.errors import AccessControlError


class TestTransitions:
    def test_root_is_always_a_transition(self):
        assert transitions_from_masks([5, 5, 5]) == [(0, 5)]

    def test_changes_create_transitions(self):
        assert transitions_from_masks([1, 1, 2, 2, 1]) == [(0, 1), (2, 2), (4, 1)]

    def test_alternating_worst_case(self):
        masks = [0, 1] * 5
        assert len(transitions_from_masks(masks)) == 10

    def test_empty_rejected(self):
        with pytest.raises(AccessControlError):
            transitions_from_masks([])

    def test_transition_count_boolean(self):
        assert transition_count([True, True, False, True]) == 3


class TestPaperExample:
    """Figure 1 of the paper: single-subject and two-subject DOLs."""

    def test_figure_1a_shape(self, paper_doc):
        # A plausible Figure-1(a) shading: root accessible, one inner
        # inaccessible run, back to accessible.
        vector = [1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1]
        dol = DOL.from_masks(vector, 1)
        assert dol.positions == [0, 2, 4, 7, 10]
        assert [dol.codebook.decode(c) for c in dol.codes] == [1, 0, 1, 0, 1]

    def test_figure_1c_codebook_sharing(self):
        # Two subjects; only three of four possible ACLs occur.
        masks = [0b11, 0b11, 0b01, 0b01, 0b10, 0b11]
        dol = DOL.from_masks(masks, 2)
        assert len(dol.codebook) == 3
        assert dol.n_transitions == 4


class TestConstruction:
    def test_from_matrix(self, xmark_acl):
        dol = DOL.from_matrix(xmark_acl)
        assert dol.to_masks() == xmark_acl.masks()

    def test_from_vector(self):
        dol = DOL.from_vector([True, False, False])
        assert dol.accessible(0, 0)
        assert not dol.accessible(0, 1)

    def test_shared_codebook(self):
        book = Codebook(2)
        a = DOL.from_masks([0b01, 0b10], 2, codebook=book)
        b = DOL.from_masks([0b10, 0b01], 2, codebook=book)
        assert a.codebook is b.codebook
        assert len(book) == 2  # entries shared across DOLs

    def test_empty_document_rejected(self):
        with pytest.raises(AccessControlError):
            DOL.from_masks([], 1)


class TestLookup:
    @pytest.fixture
    def dol(self):
        return DOL.from_masks([3, 3, 1, 1, 1, 2, 3], 2)

    def test_mask_at(self, dol):
        assert [dol.mask_at(i) for i in range(7)] == [3, 3, 1, 1, 1, 2, 3]

    def test_accessible(self, dol):
        assert dol.accessible(0, 0)
        assert dol.accessible(1, 0)
        assert dol.accessible(0, 3)
        assert not dol.accessible(1, 3)
        assert not dol.accessible(0, 5)
        assert dol.accessible(1, 5)

    def test_is_transition(self, dol):
        flags = [dol.is_transition(i) for i in range(7)]
        assert flags == [True, False, True, False, False, True, True]

    def test_out_of_range(self, dol):
        with pytest.raises(AccessControlError):
            dol.mask_at(7)
        with pytest.raises(AccessControlError):
            dol.mask_at(-1)


class TestRoundTrip:
    def test_to_matrix(self):
        matrix = AccessMatrix.from_masks([1, 0, 1, 1], 1)
        dol = DOL.from_matrix(matrix)
        assert dol.to_matrix() == matrix

    def test_equality_by_expansion(self):
        a = DOL.from_masks([1, 1, 0], 1)
        b = DOL.from_masks([1, 1, 0], 1)
        c = DOL.from_masks([1, 0, 0], 1)
        assert a == b
        assert a != c


class TestMetrics:
    def test_transition_density(self):
        dol = DOL.from_masks([1] * 100, 1)
        assert dol.transition_density() == pytest.approx(0.01)

    def test_size_bytes_model(self):
        dol = DOL.from_masks([1, 0, 1], 1)
        # 2 codebook entries x 1 byte + 3 transitions x 1 byte code
        assert dol.size_bytes() == 2 + 3

    def test_validate_catches_corruption(self):
        dol = DOL.from_masks([1, 0, 1], 1)
        dol.validate()
        dol.positions[1] = 0
        with pytest.raises(AccessControlError):
            dol.validate()

    def test_validate_catches_redundant_transition(self):
        dol = DOL.from_masks([1, 0, 0], 1)
        dol.positions.append(2)
        dol.codes.append(dol.codes[-1])  # same code as its predecessor
        with pytest.raises(AccessControlError):
            dol.validate()
