"""Crash-recovery matrix: kill the store at every fault point, recover.

The harness builds one saved store, computes two oracles — the exact
pre-update state and the exact post-update state (replayed on an
in-memory twin) — and then reruns the same DOL update once per scheduled
fault: hard-failed writes, torn writes, and crashed syncs, at every
operation index the workload performs. After each simulated power cut
the store is reopened through WAL recovery and must equal exactly one of
the two oracles (atomicity), pass ``verify()`` (page/header/DOL
integrity), and respect Proposition 1's bound of at most two new
transition nodes.

Run separately in CI (the ``fault-injection`` job): it is I/O heavy and
quadratic-ish in the workload's write count by design.

The whole matrix is parametrized over the page codec (``none``, ``zlib``,
``structure-delta``): WAL images and CRCs cover the *stored* (compressed)
bytes, so recovery must behave identically whatever the page interior
looks like. CI splits the codecs across jobs with ``-k``.
"""

import shutil

import pytest

from repro.acl.synthetic import SyntheticACLConfig, generate_synthetic_acl
from repro.dol.labeling import DOL
from repro.storage.faults import FaultPlan, InjectedCrash
from repro.storage.nokstore import NoKStore, wal_path_for
from repro.storage.persist import catalog_path_for, open_store, save_store
from repro.xmark.generator import XMarkConfig, generate_document

PAGE_SIZE = 256
N_ITEMS = 12
DOC_SEED = 5
ACL_SEED = 9
N_SUBJECTS = 2

# The update under test: revoke subject 0 over a multi-page range.
SUBJECT = 0
START = 30
END = 150


def _build_inputs():
    doc = generate_document(XMarkConfig(n_items=N_ITEMS, seed=DOC_SEED))
    matrix = generate_synthetic_acl(
        doc,
        SyntheticACLConfig(accessibility_ratio=0.8, seed=ACL_SEED),
        n_subjects=N_SUBJECTS,
    )
    return doc, DOL.from_matrix(matrix)


@pytest.fixture(
    scope="module", params=["none", "zlib", "structure-delta"]
)
def baseline(request, tmp_path_factory):
    """A saved store (one per page codec) plus the pre/post oracles."""
    base = tmp_path_factory.mktemp(f"crash-baseline-{request.param}")
    doc, dol = _build_inputs()
    path = str(base / "store.db")
    store = NoKStore(
        doc, dol, path=path, page_size=PAGE_SIZE, codec=request.param
    )
    pre_masks = dol.to_masks()
    pre_transitions = dol.n_transitions
    save_store(store)
    store.close()

    # Replay the identical update on an in-memory twin for the post oracle.
    doc2, dol2 = _build_inputs()
    twin = NoKStore(doc2, dol2, page_size=PAGE_SIZE)
    twin.update_subject_range(START, END, SUBJECT, False)
    post_masks = dol2.to_masks()
    post_transitions = dol2.n_transitions
    assert post_masks != pre_masks  # the update must actually change state
    assert post_transitions <= pre_transitions + 2  # Proposition 1

    return {
        "path": path,
        "pre_masks": pre_masks,
        "post_masks": post_masks,
        "pre_transitions": pre_transitions,
        "post_transitions": post_transitions,
    }


def _clone_store(baseline_path: str, workdir) -> str:
    workdir.mkdir(parents=True, exist_ok=True)
    path = str(workdir / "store.db")
    shutil.copy(baseline_path, path)
    shutil.copy(catalog_path_for(baseline_path), catalog_path_for(path))
    shutil.copy(wal_path_for(baseline_path), wal_path_for(path))
    return path


def _hard_kill(store: NoKStore) -> None:
    """Drop the process state without flushing anything — the crash."""
    for handle in (store.pager._file, store.wal._file if store.wal else None):
        if handle is not None:
            try:
                handle.close()
            except OSError:
                pass


def _run_update_under_plan(baseline, workdir, plan):
    """One matrix cell: update under ``plan``, crash, recover, check.

    Returns ``"pre"`` or ``"post"`` — which oracle the recovered store
    matched (the assertion that it matches one of them is done here).
    """
    path = _clone_store(baseline["path"], workdir)
    store = open_store(path, fault_plan=plan)
    crashed = False
    try:
        store.update_subject_range(START, END, SUBJECT, False)
    except InjectedCrash:
        crashed = True
    finally:
        _hard_kill(store)

    recovered = open_store(path)
    try:
        recovered.verify()
        masks = recovered.dol.to_masks()
        transitions = recovered.dol.n_transitions
        if masks == baseline["pre_masks"]:
            assert transitions == baseline["pre_transitions"]
            state = "pre"
        elif masks == baseline["post_masks"]:
            assert transitions == baseline["post_transitions"]
            state = "post"
        else:
            raise AssertionError(
                f"recovered store matches neither oracle (plan={plan})"
            )
        assert transitions <= baseline["pre_transitions"] + 2  # Proposition 1
        if not crashed:
            assert state == "post", "a fault-free run must commit"
    finally:
        recovered.close()
    return state


def _workload_footprint(baseline, workdir):
    """Writes/syncs the un-faulted update performs (= the matrix size)."""
    plan = FaultPlan()  # counts, injects nothing
    path = _clone_store(baseline["path"], workdir)
    with open_store(path, fault_plan=plan) as store:
        reads_before = plan.reads
        writes_before = plan.writes
        syncs_before = plan.syncs
        store.update_subject_range(START, END, SUBJECT, False)
        writes = plan.writes - writes_before
        syncs = plan.syncs - syncs_before
        assert plan.reads >= reads_before  # before-images were read
    return writes, syncs


class TestCrashMatrix:
    def test_every_fault_point_recovers_atomically(self, baseline, tmp_path):
        writes, syncs = _workload_footprint(baseline, tmp_path / "count")
        # the matrix must be meaningfully large: several pages, each with
        # a WAL record + data write + syncs, bracketed by BEGIN/COMMIT
        points = []
        for n in range(1, writes + 1):
            points.append(FaultPlan(crash_at_write=n))
        for n in range(1, writes + 1):
            points.append(FaultPlan(tear_at_write=n, seed=n))
        for n in range(1, syncs + 1):
            points.append(FaultPlan(crash_at_sync=n))
        # sync-drop composed with a mid-workload crash: fsyncs silently
        # did nothing, then the power went out
        points.append(FaultPlan(drop_syncs=True, crash_at_write=writes // 2))
        points.append(FaultPlan(drop_syncs=True, crash_at_sync=max(syncs - 1, 1)))
        assert len(points) >= 20

        outcomes = {"pre": 0, "post": 0}
        for index, plan in enumerate(points):
            workdir = tmp_path / f"cell-{index}"
            workdir.mkdir()
            outcomes[_run_update_under_plan(baseline, workdir, plan)] += 1

        # early faults must leave the pre-state, late ones the post-state
        assert outcomes["pre"] > 0
        assert outcomes["post"] > 0

    def test_fault_free_run_commits(self, baseline, tmp_path):
        state = _run_update_under_plan(baseline, tmp_path, FaultPlan())
        assert state == "post"

    def test_crash_between_updates_preserves_first(self, baseline, tmp_path):
        """A committed update survives a crash during the next one."""
        path = _clone_store(baseline["path"], tmp_path)
        # First update: committed, no faults.
        store = open_store(path)
        store.update_subject_range(START, END, SUBJECT, False)
        store.close()
        # Second update: crash at its first data write.
        plan = FaultPlan(crash_at_write=3)
        store = open_store(path, fault_plan=plan)
        with pytest.raises(InjectedCrash):
            store.update_subject_range(10, 60, 1, False)
        _hard_kill(store)

        recovered = open_store(path)
        try:
            recovered.verify()
            # first update intact, second fully rolled back
            assert recovered.dol.to_masks() == baseline["post_masks"]
        finally:
            recovered.close()

    def test_torn_commit_record_rolls_back(self, baseline, tmp_path):
        """Tear inside the COMMIT append: the batch must not be replayed."""
        writes, _syncs = _workload_footprint(baseline, tmp_path / "count")
        # the last write of the workload is the COMMIT record
        plan = FaultPlan(tear_at_write=writes, tear_offset=5)
        workdir = tmp_path / "torn-commit"
        workdir.mkdir()
        state = _run_update_under_plan(baseline, workdir, plan)
        assert state == "pre"
