"""Unit tests for the LiveLink and Unix-filesystem surrogates."""

import pytest

from repro.acl.surrogates import (
    LIVELINK_MODES,
    generate_livelink,
    generate_unix_fs,
)
from repro.dol.labeling import DOL
from repro.errors import AccessControlError


class TestLiveLink:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_livelink(n_items=400, n_groups=6, n_users=20, seed=2)

    def test_shape(self, dataset):
        assert dataset.matrix.n_nodes == len(dataset.doc)
        assert dataset.n_subjects == 26  # 6 groups + 20 users
        assert dataset.matrix.modes == list(LIVELINK_MODES)

    def test_tree_is_consistent(self, dataset):
        dataset.doc.validate()

    def test_tree_is_deep(self, dataset):
        # LiveLink's real tree averages depth ~8; the surrogate must not be
        # a flat star.
        assert max(dataset.doc.depth) >= 6

    def test_modes_are_nested(self, dataset):
        """A deeper permission implies the shallower ones (see < delete)."""
        matrix = dataset.matrix
        for pos in range(0, matrix.n_nodes, 37):
            for shallow, deep in zip(matrix.modes, matrix.modes[1:]):
                deep_mask = matrix.mask(pos, deep)
                shallow_mask = matrix.mask(pos, shallow)
                assert deep_mask & shallow_mask == deep_mask

    def test_users_correlate_with_groups(self, dataset):
        """Users inherit their groups' rights, so group rights ⊆ user rights."""
        registry = dataset.registry
        matrix = dataset.matrix
        user = registry.id_of("user0")
        groups = registry.groups_of(user)
        assert groups
        combined = 0
        for group in groups:
            combined |= 1 << group
        for pos in range(0, matrix.n_nodes, 53):
            if matrix.mask(pos, "see") & combined:
                assert matrix.accessible(user, pos, "see")

    def test_deterministic(self):
        a = generate_livelink(n_items=100, n_groups=3, n_users=5, seed=8)
        b = generate_livelink(n_items=100, n_groups=3, n_users=5, seed=8)
        assert a.matrix == b.matrix

    def test_too_small_rejected(self):
        with pytest.raises(AccessControlError):
            generate_livelink(n_items=2)


class TestUnixFS:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_unix_fs(n_nodes=600, n_users=12, n_groups=4, seed=3)

    def test_shape(self, dataset):
        assert dataset.matrix.n_nodes == len(dataset.doc)
        assert dataset.n_subjects == 16

    def test_tree_tags(self, dataset):
        tags = {dataset.doc.tag_name(i) for i in range(len(dataset.doc))}
        assert tags <= {"dir", "file"}

    def test_owner_always_reads_home(self, dataset):
        """Each user can read the root of their own home subtree."""
        doc, registry, matrix = dataset.doc, dataset.registry, dataset.matrix
        home = list(doc.children(0))[0]
        for user_home in doc.children(home):
            owners = [
                s
                for s in range(matrix.n_subjects)
                if not registry.is_group(s) and matrix.accessible(s, user_home)
            ]
            assert owners, "every home dir must be readable by someone"

    def test_correlation_present(self, dataset):
        """Group structure must make distinct ACLs far fewer than 2^S."""
        dol = DOL.from_matrix(dataset.matrix)
        assert len(dol.codebook) < dataset.matrix.n_nodes
        assert len(dol.codebook) < 2 ** dataset.n_subjects

    def test_deterministic(self):
        a = generate_unix_fs(n_nodes=200, n_users=5, n_groups=2, seed=1)
        b = generate_unix_fs(n_nodes=200, n_users=5, n_groups=2, seed=1)
        assert a.matrix == b.matrix

    def test_too_small_rejected(self):
        with pytest.raises(AccessControlError):
            generate_unix_fs(n_nodes=10, n_users=20, n_groups=5)
