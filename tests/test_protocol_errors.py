"""Error serialization round-trips for every ReproError subclass.

Parameterized over the protocol's own ``ERROR_REGISTRY`` (itself built
by introspecting :mod:`repro.errors`), so adding an error class
automatically adds its round-trip coverage — a class that cannot cross
the wire faithfully fails here, not in production.
"""

import json

import pytest

from repro import errors as errors_module
from repro.errors import (
    BadRequest,
    ConnectionFailed,
    PageCorruptionError,
    ReproError,
    RetryBudgetExhausted,
    ServiceError,
    ServiceOverloaded,
    ServiceTimeout,
    ServiceUnavailable,
)
from repro.server.protocol import (
    ERROR_REGISTRY,
    bad_request_response,
    decode_error,
    encode_error,
    encode_response,
    is_retriable,
)

REGISTRY_ITEMS = sorted(ERROR_REGISTRY.items())


def test_registry_covers_the_module():
    """Every ReproError subclass defined in repro.errors is registered."""
    declared = {
        name
        for name, obj in vars(errors_module).items()
        if isinstance(obj, type) and issubclass(obj, ReproError)
    }
    assert declared <= set(ERROR_REGISTRY)
    assert "ReproError" in ERROR_REGISTRY


@pytest.mark.parametrize("name,cls", REGISTRY_ITEMS, ids=[n for n, _ in REGISTRY_ITEMS])
def test_round_trip_preserves_type_message_retriability(name, cls):
    exc = cls.__new__(cls)
    Exception.__init__(exc, f"synthetic {name} for the wire")
    payload = encode_error(exc)
    assert payload["ok"] is False
    assert payload["error"] == name
    assert payload["retriable"] == bool(getattr(cls, "retriable", False))
    # through actual bytes, as the server would send it
    line = encode_response(payload)
    decoded = decode_error(json.loads(line))
    assert type(decoded) is cls
    assert str(decoded) == f"synthetic {name} for the wire"
    assert is_retriable(decoded) == payload["retriable"]


@pytest.mark.parametrize("name,cls", REGISTRY_ITEMS, ids=[n for n, _ in REGISTRY_ITEMS])
def test_registry_retriability_matches_class_attribute(name, cls):
    assert is_retriable(name) == bool(getattr(cls, "retriable", False))


class TestTaxonomy:
    """The retry classes the client's loop depends on."""

    def test_retriable_errors(self):
        assert ServiceOverloaded(1, 1).retriable
        assert ServiceUnavailable().retriable
        assert ConnectionFailed("reset").retriable
        assert PageCorruptionError(3, "crc").retriable

    def test_terminal_errors(self):
        assert not BadRequest("nope").retriable
        assert not ServiceTimeout(1.0).retriable
        assert not ServiceError("boom").retriable
        assert not RetryBudgetExhausted(5).retriable

    def test_unknown_wire_name_is_terminal(self):
        assert not is_retriable("TotallyMadeUpError")
        payload = {"ok": False, "error": "TotallyMadeUpError", "message": "x"}
        decoded = decode_error(payload)
        assert type(decoded) is ServiceError
        assert not is_retriable(decoded)

    def test_service_timeout_message_carries_queue_wait(self):
        exc = ServiceTimeout(2.0, waited=1.75)
        assert "2s" in str(exc)
        assert "1.750s" in str(exc)
        assert "waiting" in str(exc)

    def test_bad_request_response_shape(self):
        payload = bad_request_response("frame too large")
        assert payload == {
            "ok": False,
            "error": "BadRequest",
            "message": "frame too large",
            "retriable": False,
        }
