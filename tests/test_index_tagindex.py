"""Unit tests for the tag/value indexes (in-memory and disk-backed)."""

import pytest

from repro.index.tagindex import DiskTagIndex, TagIndex


class TestTagLookup:
    def test_positions_match_scan(self, xmark_doc):
        index = TagIndex(xmark_doc)
        for tag in ("item", "keyword", "parlist", "bold"):
            assert index.positions(tag) == xmark_doc.positions_with_tag(tag)

    def test_positions_sorted(self, xmark_doc):
        index = TagIndex(xmark_doc)
        positions = index.positions("item")
        assert positions == sorted(positions)

    def test_absent_tag(self, xmark_doc):
        assert TagIndex(xmark_doc).positions("nonexistent") == []

    def test_count(self, small_doc):
        index = TagIndex(small_doc)
        assert index.count("item") == 2
        assert index.count("nope") == 0

    def test_tags_sorted(self, small_doc):
        assert TagIndex(small_doc).tags() == ["item", "name", "price", "site"]


class TestDiskTagIndex:
    @pytest.fixture(scope="class")
    def disk_index(self, request):
        xmark_doc = request.getfixturevalue("xmark_doc")
        return DiskTagIndex(xmark_doc, page_size=512)

    def test_matches_in_memory_index(self, xmark_doc, disk_index):
        memory = TagIndex(xmark_doc)
        for tag in ("item", "keyword", "parlist", "bold", "absent"):
            assert disk_index.positions(tag) == memory.positions(tag)
            assert disk_index.count(tag) == memory.count(tag)

    def test_value_lookup(self, small_doc):
        index = DiskTagIndex(small_doc, page_size=256)
        assert index.positions_with_value("name", "anvil") == [2]
        assert index.positions_with_value("price", "10") == [3, 6]

    def test_value_scan_fallback(self, small_doc):
        index = DiskTagIndex(small_doc, page_size=256, index_values=False)
        assert index.positions_with_value("name", "anvil") == [2]

    def test_engine_accepts_disk_index(self, xmark_doc, disk_index):
        from repro.bench.queries import QUERIES
        from repro.nok.engine import QueryEngine
        from repro.nok.pattern import parse_query
        from repro.nok.reference import evaluate_reference

        engine = QueryEngine(xmark_doc, index=disk_index)
        got = set(engine.evaluate(QUERIES["Q5"]).positions)
        assert got == evaluate_reference(xmark_doc, parse_query(QUERIES["Q5"]))

    def test_probe_io_counted(self, xmark_doc, disk_index):
        before = disk_index.io_stats()
        disk_index.positions("item")
        after = disk_index.io_stats()
        assert after[0] > before[0]


class TestValueLookup:
    def test_tag_value_pairs(self, small_doc):
        index = TagIndex(small_doc)
        assert index.positions_with_value("name", "anvil") == [2]
        assert index.positions_with_value("price", "10") == [3, 6]
        assert index.positions_with_value("name", "missing") == []

    def test_without_value_index_falls_back_to_scan(self, small_doc):
        index = TagIndex(small_doc, index_values=False)
        assert index.positions_with_value("name", "anvil") == [2]
        assert index.positions_with_value("price", "10") == [3, 6]
