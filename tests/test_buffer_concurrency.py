"""Latch + pin semantics of the shared buffer pool.

Covers the concurrency contract the serving layer relies on: pinned
frames survive eviction pressure, the pool overflows rather than
deadlocks when everything is pinned, stats resets never touch frame
state, contention is counted race-free, and a multithreaded hammer over
one pool neither corrupts frames nor loses counter increments.
"""

import threading

import pytest

from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.pager import Pager


def make_pager(n_pages=8, page_size=128):
    pager = Pager(None, page_size)
    for page_id in range(n_pages):
        pager.allocate()
        pager.write_page(page_id, bytes([page_id]) * (page_size - 4) + b"\0\0\0\0")
    return pager


@pytest.fixture
def pager():
    return make_pager()


class TestPinning:
    def test_pin_requires_residence(self, pager):
        pool = BufferPool(pager, capacity=2)
        with pytest.raises(StorageError):
            pool.pin(0)
        pool.get(0)
        pool.pin(0)
        assert pool.pin_count(0) == 1

    def test_pins_nest(self, pager):
        pool = BufferPool(pager, capacity=2)
        pool.get(0)
        pool.pin(0)
        pool.pin(0)
        assert pool.pin_count(0) == 2
        pool.unpin(0)
        assert pool.pin_count(0) == 1
        pool.unpin(0)
        assert pool.pin_count(0) == 0
        with pytest.raises(StorageError):
            pool.unpin(0)

    def test_pinned_frame_never_evicted(self, pager):
        pool = BufferPool(pager, capacity=2)
        pool.get(0)
        pool.pin(0)
        for page_id in range(1, 6):
            pool.get(page_id)
        assert pool.resident(0)  # LRU would have evicted it long ago
        pool.unpin(0)
        for page_id in range(1, 6):
            pool.get(page_id)
        assert not pool.resident(0)

    def test_all_pinned_overflows_instead_of_deadlock(self, pager):
        pool = BufferPool(pager, capacity=2)
        pool.get(0)
        pool.get(1)
        pool.pin(0)
        pool.pin(1)
        pool.get(2)  # no victim available: admit beyond capacity
        assert len(pool) == 3
        assert pool.resident(0) and pool.resident(1) and pool.resident(2)

    def test_eviction_picks_oldest_unpinned(self, pager):
        pool = BufferPool(pager, capacity=3)
        pool.get(0)
        pool.get(1)
        pool.get(2)
        pool.pin(0)
        pool.get(3)
        assert pool.resident(0)
        assert not pool.resident(1)  # oldest unpinned was the victim


class TestResetContract:
    def test_reset_stats_keeps_frames_dirty_flags_and_pins(self, pager):
        pool = BufferPool(pager, capacity=4)
        pool.get(0)
        pool.pin(0)
        pool.put(1, b"x" * (pager.page_size - 4) + b"\0\0\0\0")
        pool.reset_stats()
        assert pool.stats.snapshot() == {
            "logical_reads": 0,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "dirty_writes": 0,
            "latch_contention": 0,
        }
        assert pool.resident(0) and pool.resident(1)
        assert pool.pin_count(0) == 1
        pool.flush(1)  # the dirty flag survived the reset
        assert pool.stats.dirty_writes == 1

    def test_clear_releases_pins(self, pager):
        pool = BufferPool(pager, capacity=4)
        pool.get(0)
        pool.pin(0)
        pool.clear()
        assert len(pool) == 0
        assert pool.pin_count(0) == 0


class TestLatch:
    def test_contention_counter_counts_waits(self, pager):
        pool = BufferPool(pager, capacity=4)
        entered = threading.Event()
        release = threading.Event()

        def holder():
            with pool.latched():
                entered.set()
                release.wait(timeout=5)

        def contender():
            entered.wait(timeout=5)
            pool.get(0)  # must wait for the holder

        hold = threading.Thread(target=holder)
        contend = threading.Thread(target=contender)
        hold.start()
        contend.start()
        entered.wait(timeout=5)
        # give the contender a moment to block on the latch
        import time

        time.sleep(0.05)
        release.set()
        hold.join()
        contend.join()
        assert pool.stats.latch_contention >= 1

    def test_reentrant_acquisition_is_not_contention(self, pager):
        pool = BufferPool(pager, capacity=4)
        with pool.latched():
            pool.get(0)  # same thread re-enters
        assert pool.stats.latch_contention == 0

    def test_hammer_loses_no_counts(self, pager):
        pool = BufferPool(pager, capacity=4)
        n_threads, n_reads = 8, 200
        barrier = threading.Barrier(n_threads)
        failures = []

        def worker(seed: int) -> None:
            barrier.wait()
            try:
                for i in range(n_reads):
                    page_id = (seed + i) % 8
                    data = pool.get(page_id)
                    if data[0] != page_id:
                        failures.append((page_id, data[0]))
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(exc)

        pool_threads = [
            threading.Thread(target=worker, args=(seed,))
            for seed in range(n_threads)
        ]
        for thread in pool_threads:
            thread.start()
        for thread in pool_threads:
            thread.join()
        assert not failures
        stats = pool.stats
        assert stats.logical_reads == n_threads * n_reads
        assert stats.hits + stats.misses == stats.logical_reads
