"""The health state machine: breaker transitions and brownout tiers.

Timestamps are passed explicitly wherever the API allows, so the
transition tests are exact rather than sleep-based.
"""

import pytest

from repro.server.health import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    DEGRADED,
    HEALTHY,
    UNAVAILABLE,
    CircuitBreaker,
    HealthConfig,
    HealthModel,
)


@pytest.fixture
def config():
    return HealthConfig(
        corruption_trip=3, window_s=10.0, probe_interval_s=1.0,
        min_samples=4, outcome_window=16, brownout_ratio=0.5,
    )


class TestCircuitBreaker:
    def test_trips_at_threshold_within_window(self, config):
        breaker = CircuitBreaker(config)
        assert not breaker.record_corruption(now=0.0)
        assert not breaker.record_corruption(now=1.0)
        assert breaker.state == BREAKER_CLOSED
        assert breaker.record_corruption(now=2.0)
        assert breaker.state == BREAKER_OPEN
        assert breaker.trips == 1

    def test_old_events_expire(self, config):
        breaker = CircuitBreaker(config)
        breaker.record_corruption(now=0.0)
        breaker.record_corruption(now=1.0)
        # the first two fell out of the 10s window by now
        assert not breaker.record_corruption(now=15.0)
        assert breaker.state == BREAKER_CLOSED

    def test_batch_count_trips_at_once(self, config):
        breaker = CircuitBreaker(config)
        assert breaker.record_corruption(count=3, now=0.0)
        assert breaker.state == BREAKER_OPEN

    def test_open_denies_strict_until_probe_interval(self, config):
        breaker = CircuitBreaker(config)
        breaker.record_corruption(count=3, now=0.0)
        assert not breaker.allow_strict(now=0.5)
        assert breaker.state == BREAKER_OPEN
        # the caller crossing the interval becomes the half-open probe
        assert breaker.allow_strict(now=1.0)
        assert breaker.state == BREAKER_HALF_OPEN
        # only one probe at a time
        assert not breaker.allow_strict(now=1.1)

    def test_probe_success_closes_and_clears(self, config):
        breaker = CircuitBreaker(config)
        breaker.record_corruption(count=3, now=0.0)
        assert breaker.allow_strict(now=1.0)
        breaker.record_probe_success()
        assert breaker.state == BREAKER_CLOSED
        # history cleared: tripping again needs a full window of events
        assert not breaker.record_corruption(now=1.5)
        assert breaker.state == BREAKER_CLOSED

    def test_probe_failure_reopens_immediately(self, config):
        breaker = CircuitBreaker(config)
        breaker.record_corruption(count=3, now=0.0)
        assert breaker.allow_strict(now=1.0)
        assert breaker.record_corruption(now=1.1)
        assert breaker.state == BREAKER_OPEN
        # and the next probe waits a full interval from the failure
        assert not breaker.allow_strict(now=1.5)
        assert breaker.allow_strict(now=2.1)

    def test_snapshot_shape(self, config):
        breaker = CircuitBreaker(config)
        snap = breaker.snapshot()
        assert snap["state"] == BREAKER_CLOSED
        assert snap["trips"] == 0
        assert snap["recent_events"] == 0


class TestHealthModel:
    def test_healthy_by_default(self, config):
        model = HealthModel(config)
        assert model.state() == HEALTHY

    def test_quarantine_degrades(self, config):
        count = [0]
        model = HealthModel(config, quarantine_count=lambda: count[0])
        assert model.state() == HEALTHY
        count[0] = 2
        assert model.state() == DEGRADED
        assert model.report()["quarantined_pages"] == 2

    def test_open_breaker_degrades(self, config):
        model = HealthModel(config)
        model.record_corruption(count=3)
        assert model.state() == DEGRADED
        assert model.report()["breaker"]["state"] == BREAKER_OPEN

    def test_wal_recovery_degrades_until_strict_success(self, config):
        model = HealthModel(config, recovery={"acted": True, "pages_replayed": 2})
        assert model.state() == DEGRADED
        model.record_strict_success()
        assert model.state() == HEALTHY
        assert model.report()["wal_recovery"]["pages_replayed"] == 2

    def test_clean_recovery_is_healthy(self, config):
        model = HealthModel(config, recovery={"acted": False})
        assert model.state() == HEALTHY

    def test_error_rate_flips_unavailable(self, config):
        model = HealthModel(config)
        for _ in range(8):
            model.record_outcome(False)
        assert model.state() == UNAVAILABLE
        # successes dilute the rate back under the threshold
        for _ in range(8):
            model.record_outcome(True)
        assert model.state() == HEALTHY

    def test_error_rate_needs_min_samples(self, config):
        model = HealthModel(config)
        model.record_outcome(False)
        model.record_outcome(False)
        assert model.state() == HEALTHY  # 2 < min_samples=4

    def test_brownout_tiers_scale_with_admission(self, config):
        model = HealthModel(config)  # brownout_ratio=0.5
        assert model.brownout_tier(0, 10) == 0
        assert model.brownout_tier(4, 10) == 0
        assert model.brownout_tier(5, 10) == 1  # >= 50%
        assert model.brownout_tier(7, 10) == 1
        assert model.brownout_tier(8, 10) == 2  # >= 75% (midway to full)
        assert model.brownout_tier(10, 10) == 2

    def test_brownout_state_is_degraded(self, config):
        model = HealthModel(config)
        assert model.state(inflight=6, limit=10) == DEGRADED
        assert model.state(inflight=0, limit=10) == HEALTHY

    def test_tripped_breaker_forces_cache_shedding(self, config):
        model = HealthModel(config)
        model.record_corruption(count=3)
        # idle service, but a possibly-corrupt store must not populate
        # shared caches
        assert model.brownout_tier(0, 10) == 1
