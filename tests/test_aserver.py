"""The asyncio NDJSON server: v1 compatibility, v2 multiplexing, chaos.

Raw-socket tests (no client retry machinery) so every wire behavior is
observed exactly as sent: hello negotiation, interleaved streams,
in-band errors for malformed and oversized frames, abandoned-stream
accounting, and the seeded network faults on the async write path.
"""

import json
import socket
import time

import pytest

from repro.acl.model import AccessMatrix
from repro.nok.engine import QueryEngine
from repro.server.aserver import serve_async
from repro.server.chaos import ChaosPlan, ChaosSpec
from repro.server.protocol import encode_response
from repro.server.service import QueryService, ServiceConfig


@pytest.fixture
def engine(small_doc):
    masks = [0b11] * len(small_doc)
    masks[5] = 0b01  # second subject loses the second <name> node
    matrix = AccessMatrix.from_masks(masks, 2)
    engine = QueryEngine.build(small_doc, matrix, use_store=True, page_size=128)
    yield engine
    engine.store.close()


@pytest.fixture
def service(engine):
    svc = QueryService(engine, ServiceConfig(workers=2, queue_depth=4))
    yield svc
    svc.close()


@pytest.fixture
def running(service):
    server = serve_async(service, host="127.0.0.1", port=0)
    yield server
    server.shutdown()


class Wire:
    """A blunt synchronous NDJSON peer."""

    def __init__(self, address, timeout=10.0):
        self.sock = socket.create_connection(address, timeout=timeout)
        self.reader = self.sock.makefile("rb")

    def send(self, payload):
        self.sock.sendall(encode_response(payload))

    def recv(self):
        line = self.reader.readline()
        return json.loads(line) if line else None

    def hello(self, version=2):
        self.send({"op": "hello", "version": version})
        return self.recv()

    def close(self):
        try:
            self.reader.close()
        finally:
            self.sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class TestV1Compatibility:
    def test_sequential_round_trip(self, running):
        with Wire(running.address) as wire:
            wire.send({"op": "ping"})
            assert wire.recv()["pong"]
            wire.send({"op": "query", "query": "//item/name", "subject": 0})
            assert wire.recv()["n_answers"] == 2
            wire.send({"op": "query", "query": "//item/name", "subject": 1})
            assert wire.recv()["n_answers"] == 1
            wire.send({"op": "metrics"})
            assert wire.recv()["metrics"]["completed"] >= 2

    def test_malformed_line_answered_in_band(self, running):
        with Wire(running.address) as wire:
            wire.sock.sendall(b"this is not json\n")
            response = wire.recv()
            assert response["ok"] is False
            assert response["error"] == "BadRequest"
            wire.send({"op": "ping"})
            assert wire.recv()["pong"]  # the connection survives

    def test_updates_flow_through(self, running):
        with Wire(running.address) as wire:
            wire.send({
                "op": "update", "kind": "subject_range", "start": 0,
                "end": 7, "subject": 0, "value": False,
            })
            assert wire.recv()["epoch"] == 1
            wire.send({"op": "query", "query": "//item/name", "subject": 0})
            assert wire.recv()["n_answers"] == 0


class TestNegotiation:
    def test_hello_upgrades_to_v2(self, running):
        with Wire(running.address) as wire:
            assert wire.hello(2) == {"ok": True, "version": 2}

    def test_future_version_capped(self, running):
        with Wire(running.address) as wire:
            assert wire.hello(99)["version"] == 2

    def test_v2_requires_ids(self, running):
        with Wire(running.address) as wire:
            wire.hello(2)
            wire.send({"op": "ping"})
            response = wire.recv()
            assert response["error"] == "BadRequest"
            assert "id" in response["message"]

    def test_v1_connection_rejects_stream_requests(self, running):
        with Wire(running.address) as wire:
            wire.send({
                "op": "query", "query": "//item", "subject": 0,
                "stream": True,
            })
            # without the hello, the request is served drained (v1 has
            # no frames): a plain positions body comes back
            response = wire.recv()
            assert response["ok"] and "positions" in response


class TestV2Streams:
    def test_stream_frame_sequence(self, running):
        with Wire(running.address) as wire:
            wire.hello(2)
            wire.send({
                "id": 7, "op": "query", "query": "//item/name",
                "subject": 0, "stream": True, "ordered": True,
            })
            frames = [wire.recv() for _ in range(4)]
        kinds = [f["frame"] for f in frames]
        assert kinds == ["begin", "fragment", "fragment", "end"]
        assert all(f["id"] == 7 for f in frames)
        assert [f["seq"] for f in frames[1:3]] == [0, 1]
        assert frames[3]["n_fragments"] == 2
        assert frames[3]["stats"]["access_class"] is not None

    def test_multiplexed_streams_and_pings_interleave(self, running):
        with Wire(running.address) as wire:
            wire.hello(2)
            wire.send({
                "id": "a", "op": "query", "query": "//item/name",
                "subject": 0, "stream": True,
            })
            wire.send({
                "id": "b", "op": "query", "query": "//item/name",
                "subject": 1, "stream": True,
            })
            wire.send({"id": "c", "op": "ping"})
            by_id = {"a": [], "b": [], "c": []}
            while not all(
                (frames and frames[-1].get("frame") in ("end", "reply"))
                for frames in by_id.values()
            ):
                frame = wire.recv()
                assert frame is not None
                by_id[frame["id"]].append(frame)
        assert by_id["c"][0]["frame"] == "reply" and by_id["c"][0]["pong"]
        assert [f["frame"] for f in by_id["a"]] == \
            ["begin", "fragment", "fragment", "end"]
        assert [f["frame"] for f in by_id["b"]] == \
            ["begin", "fragment", "end"]  # subject 1 lost a name

    def test_stream_error_is_a_typed_terminal_frame(self, running):
        with Wire(running.address) as wire:
            wire.hello(2)
            wire.send({
                "id": 1, "op": "query", "query": "//item[",
                "subject": 0, "stream": True,
            })
            frame = wire.recv()
            assert frame["frame"] == "error"
            assert frame["error"] == "QueryParseError"
            assert frame["retriable"] is False
            # the connection keeps multiplexing
            wire.send({"id": 2, "op": "ping"})
            assert wire.recv()["pong"]

    def test_abandoned_stream_is_counted_not_failed(self, running, service):
        wire = Wire(running.address)
        wire.hello(2)
        wire.send({
            "id": 1, "op": "query", "query": "//item", "subject": 0,
            "stream": True,
        })
        assert wire.recv()["frame"] == "begin"
        wire.close()  # walk away mid-stream
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            streams = service.metrics()["streams"]
            if streams["started"] == streams["completed"] \
                    + streams["abandoned"]:
                break
            time.sleep(0.01)
        streams = service.metrics()["streams"]
        assert streams["started"] == 1
        assert streams["failed"] == 0
        assert streams["completed"] + streams["abandoned"] == 1


class TestFraming:
    def test_oversized_frame_in_band_with_configured_cap(self, service):
        server = serve_async(
            service, host="127.0.0.1", port=0, max_request_bytes=512
        )
        try:
            with Wire(server.address) as wire:
                wire.sock.sendall(
                    b'{"op":"query","query":"' + b"a" * 600 + b'"}\n'
                )
                response = wire.recv()
                assert response["error"] == "BadRequest"
                assert "exceeds" in response["message"]
                wire.send({"op": "ping"})
                assert wire.recv()["pong"]
        finally:
            server.shutdown()

    def test_service_config_cap_is_the_default(self, engine):
        svc = QueryService(
            engine, ServiceConfig(workers=1, max_request_bytes=256)
        )
        server = serve_async(svc, host="127.0.0.1", port=0)
        try:
            assert server.server.max_request_bytes == 256
            with Wire(server.address) as wire:
                wire.sock.sendall(b'{"pad":"' + b"x" * 300 + b'"}\n')
                assert wire.recv()["error"] == "BadRequest"
        finally:
            server.shutdown()
            svc.close()


class TestChaosWritePath:
    """The seeded network faults act on the async writer too."""

    def _serve(self, service, **faults):
        chaos = ChaosPlan(ChaosSpec(seed=3, **faults))
        return serve_async(service, host="127.0.0.1", port=0, chaos=chaos)

    def test_slow_writes_still_deliver_correct_bytes(self, service):
        server = self._serve(service, slow_write_rate=1.0)
        try:
            with Wire(server.address) as wire:
                wire.send({"op": "query", "query": "//item/name", "subject": 0})
                response = wire.recv()
                assert response["ok"] and response["n_answers"] == 2
            assert server.server.chaos.stats()["slow_write"] >= 1
        finally:
            server.shutdown()

    def test_dropped_connection_never_sends_a_partial_json(self, service):
        server = self._serve(service, drop_rate=1.0)
        try:
            with Wire(server.address) as wire:
                wire.send({"op": "ping"})
                assert wire.reader.readline() == b""  # closed, nothing sent
        finally:
            server.shutdown()

    def test_torn_write_is_detectably_incomplete(self, service):
        server = self._serve(service, tear_rate=1.0)
        try:
            with Wire(server.address) as wire:
                wire.send({"op": "ping"})
                data = wire.reader.readline()
                # half a frame, then close: never parseable as a reply
                assert not data.endswith(b"\n") or data == b""
        finally:
            server.shutdown()


class TestConcurrency:
    def test_many_idle_connections_are_cheap(self, running):
        wires = [Wire(running.address) for _ in range(128)]
        try:
            for i, wire in enumerate(wires):
                wire.send({"op": "ping"} if i % 2 else {"op": "health"})
            for wire in wires:
                assert wire.recv()["ok"]
            assert running.server.connections_peak >= 128
        finally:
            for wire in wires:
                wire.close()

    def test_shutdown_with_connections_open_is_clean(self, service):
        server = serve_async(service, host="127.0.0.1", port=0)
        wire = Wire(server.address)
        wire.send({"op": "ping"})
        assert wire.recv()["pong"]
        server.shutdown()  # must not hang on the open connection
        assert wire.reader.readline() == b""
        wire.close()
