"""Client-side streaming: mid-stream retry rules, sync and async.

A scripted v2 server plays back one action list per connection
attempt — frames to send, then optionally tearing the connection — so
every branch of the stream retry loop runs deterministically: resume
with seq-skip, epoch pinning across retries, typed terminal errors,
and exhaustion. The happy paths additionally run against the real
asyncio server (see ``test_aserver.py`` for the wire itself).
"""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.acl.model import AccessMatrix
from repro.errors import (
    ClientError,
    ConnectionFailed,
    PageCorruptionError,
    QueryParseError,
    ServiceTimeout,
)
from repro.nok.engine import QueryEngine
from repro.server.aclient import AsyncResilientClient
from repro.server.aserver import serve_async
from repro.server.client import ResilientClient, RetryPolicy
from repro.server.protocol import encode_error, encode_response
from repro.server.service import QueryService, ServiceConfig

FAST = RetryPolicy(
    max_attempts=4, base_delay_s=0.005, max_delay_s=0.02, deadline_s=5.0
)


def begin(epoch=3, strict=True):
    return {"id": 1, "frame": "begin", "epoch": epoch, "strict": strict}


def frag(seq):
    return {
        "id": 1, "frame": "fragment", "seq": seq, "position": 10 + seq,
        "xml": f"<name>n{seq}</name>",
    }


def end(n):
    return {
        "id": 1, "frame": "end", "epoch": 3, "degraded": False,
        "n_fragments": n, "policy": "prune", "stats": {},
    }


class ScriptedStreamServer:
    """One action list per accepted connection.

    Each action list is a sequence of frames to write after answering
    the hello; the string ``"tear"`` drops the connection mid-list.
    """

    def __init__(self, script):
        self.script = list(script)
        self.requests = []
        self._closed = False
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self._sock.settimeout(0.1)
        self.address = self._sock.getsockname()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        while not self._closed:
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with conn:
                self._serve(conn)

    def _serve(self, conn):
        reader = conn.makefile("rb")
        conn.settimeout(2.0)
        try:
            hello = json.loads(reader.readline())
            assert hello["op"] == "hello"
            self.requests.append(json.loads(reader.readline()))
            conn.sendall(encode_response({"ok": True, "version": 2}))
            actions = self.script.pop(0) if self.script else []
            for action in actions:
                if action == "tear":
                    return
                if action == "hang":
                    time.sleep(1.0)
                    continue
                conn.sendall(encode_response(action))
        except (OSError, ValueError):
            return

    def close(self):
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass
        self._thread.join(timeout=2)


@pytest.fixture
def scripted():
    servers = []

    def start(script):
        server = ScriptedStreamServer(script)
        servers.append(server)
        return server

    yield start
    for server in servers:
        server.close()


class TestStreamRetry:
    def test_clean_stream_yields_every_frame_once(self, scripted):
        server = scripted([[begin(), frag(0), frag(1), end(2)]])
        with ResilientClient(*server.address, policy=FAST) as client:
            frames = list(client.stream("//item/name", subject=0))
        assert [f["frame"] for f in frames] == \
            ["begin", "fragment", "fragment", "end"]
        assert len(server.requests) == 1
        assert server.requests[0]["stream"] is True

    def test_mid_stream_tear_resumes_without_duplicates(self, scripted):
        server = scripted([
            [begin(), frag(0), "tear"],
            [begin(), frag(0), frag(1), frag(2), end(3)],
        ])
        with ResilientClient(*server.address, policy=FAST) as client:
            frames = list(client.stream("//item/name", subject=0))
        fragments = [f for f in frames if f["frame"] == "fragment"]
        # the replayed seq-0 fragment was skipped: exactly-once delivery
        assert [f["seq"] for f in fragments] == [0, 1, 2]
        assert sum(1 for f in frames if f["frame"] == "begin") == 1
        assert len(server.requests) == 2
        assert client.stats["retries"] == 1

    def test_epoch_change_across_retry_is_terminal(self, scripted):
        server = scripted([
            [begin(epoch=3), frag(0), "tear"],
            [begin(epoch=4), frag(0), frag(1), end(2)],
        ])
        with ResilientClient(*server.address, policy=FAST) as client:
            with pytest.raises(ClientError, match="epoch changed"):
                list(client.stream("//item/name", subject=0))

    def test_typed_terminal_error_raises_without_retry(self, scripted):
        server = scripted([
            [{"id": 1, "frame": "error",
              **encode_error(QueryParseError("bad"))}],
        ])
        with ResilientClient(*server.address, policy=FAST) as client:
            with pytest.raises(QueryParseError):
                list(client.stream("//item[", subject=0))
        assert len(server.requests) == 1

    def test_retriable_mid_stream_error_retries_from_scratch(self, scripted):
        server = scripted([
            [begin(), {"id": 1, "frame": "error",
                       **encode_error(PageCorruptionError(3))}],
            [begin(), frag(0), end(1)],
        ])
        with ResilientClient(*server.address, policy=FAST) as client:
            frames = list(client.stream("//item/name", subject=0))
        assert frames[-1]["frame"] == "end"
        assert len(server.requests) == 2

    def test_persistent_tearing_exhausts_attempts(self, scripted):
        server = scripted([[begin(), "tear"]] * 4)
        with ResilientClient(*server.address, policy=FAST) as client:
            with pytest.raises(ConnectionFailed):
                list(client.stream("//item/name", subject=0))
        assert len(server.requests) == 4

    def test_deadline_bounds_the_whole_stream(self, scripted):
        # a server that never sends the end frame: the read blocks
        server = scripted([[begin(), frag(0), "hang"]] * 4)
        with ResilientClient(*server.address, policy=FAST) as client:
            with pytest.raises(ServiceTimeout):
                list(client.stream("//item/name", subject=0, deadline_s=0.3))

    def test_deadline_rides_in_the_stream_request(self, scripted):
        server = scripted([[begin(), end(0)]])
        with ResilientClient(*server.address, policy=FAST) as client:
            list(client.stream("//item/name", subject=0, deadline_s=2.0))
        assert 0 < server.requests[0]["timeout"] <= 2.0


@pytest.fixture
def real_stack(small_doc):
    masks = [0b11] * len(small_doc)
    masks[5] = 0b01
    matrix = AccessMatrix.from_masks(masks, 2)
    engine = QueryEngine.build(small_doc, matrix, use_store=True, page_size=128)
    service = QueryService(engine, ServiceConfig(workers=2, queue_depth=4))
    server = serve_async(service, host="127.0.0.1", port=0)
    yield server
    server.shutdown()
    service.close()
    engine.store.close()


class TestAgainstRealServer:
    def test_sync_stream_end_to_end(self, real_stack):
        with ResilientClient(*real_stack.address, policy=FAST) as client:
            frames = list(
                client.stream("//item/name", subject=0, ordered=True)
            )
        assert [f["frame"] for f in frames] == \
            ["begin", "fragment", "fragment", "end"]
        assert frames[-1]["degraded"] is False

    def test_async_client_requests_multiplex(self, real_stack):
        async def run():
            async with AsyncResilientClient(
                *real_stack.address, policy=FAST
            ) as client:
                results = await asyncio.gather(*[
                    client.query("//item/name", subject=i % 2)
                    for i in range(10)
                ])
                assert await client.ping()
                return results

        results = asyncio.run(run())
        assert [r["n_answers"] for r in results] == [2, 1] * 5

    def test_async_stream_end_to_end(self, real_stack):
        async def run():
            async with AsyncResilientClient(
                *real_stack.address, policy=FAST
            ) as client:
                return [
                    frame
                    async for frame in client.stream(
                        "//item/name", subject=1, ordered=True
                    )
                ]

        frames = asyncio.run(run())
        assert [f["frame"] for f in frames] == ["begin", "fragment", "end"]
        assert frames[1]["xml"].startswith("<name")

    def test_async_client_update_and_health(self, real_stack):
        async def run():
            async with AsyncResilientClient(
                *real_stack.address, policy=FAST
            ) as client:
                body = await client.update(
                    "subject_range", 0, 7, subject=0, value=False
                )
                after = await client.query("//item/name", subject=0)
                health = await client.health()
                return body, after, health

        body, after, health = asyncio.run(run())
        assert body["epoch"] == 1
        assert after["n_answers"] == 0
        assert health["state"] == "healthy"
