"""Tests for the PathStack holistic path join."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acl.model import AccessMatrix
from repro.bench.queries import JOIN_QUERIES, QUERIES
from repro.errors import ReproError
from repro.nok.engine import QueryEngine
from repro.nok.pathstack import evaluate_pathstack, linear_steps
from repro.nok.pattern import parse_query
from repro.nok.reference import evaluate_reference
from repro.secure.semantics import CHO, VIEW
from repro.xmltree.builder import tree
from repro.xmltree.document import Document
from tests.conftest import random_document


class TestLinearSteps:
    def test_path_is_linear(self):
        steps = linear_steps(parse_query("//a//b/c"))
        assert [node.tag for node, _axis in steps] == ["a", "b", "c"]

    def test_branching_is_not(self):
        assert linear_steps(parse_query("//a[b]/c")) is None

    def test_single_step(self):
        steps = linear_steps(parse_query("//keyword"))
        assert len(steps) == 1


class TestBasicJoins:
    @pytest.fixture
    def doc(self):
        return Document.from_tree(
            tree(("r", ("a", ("b", ("c",))), ("a", ("c",)), ("b", ("a", ("c",)))))
        )

    def _eval(self, doc, query, access=None):
        from repro.index.tagindex import TagIndex

        return evaluate_pathstack(doc, parse_query(query), TagIndex(doc), access)

    def test_descendant_path(self, doc):
        assert self._eval(doc, "//a//c") == sorted(
            evaluate_reference(doc, parse_query("//a//c"))
        )

    def test_child_edges_enforced(self, doc):
        assert self._eval(doc, "//a/c") == sorted(
            evaluate_reference(doc, parse_query("//a/c"))
        )

    def test_rooted_path(self, doc):
        assert self._eval(doc, "/r/a/b/c") == sorted(
            evaluate_reference(doc, parse_query("/r/a/b/c"))
        )

    def test_returning_not_leaf(self, doc):
        # return the *ancestor*: //a//c with a as the returning node
        pattern = parse_query("//a//c")
        pattern.returning_node.is_returning = False
        pattern.root.is_returning = True
        from repro.index.tagindex import TagIndex

        got = evaluate_pathstack(doc, pattern, TagIndex(doc), None)
        want = sorted(evaluate_reference(doc, pattern))
        assert got == want

    def test_same_tag_self_join(self):
        doc = Document.from_tree(tree(("p", ("p", ("p",)), ("x",))))
        got = self._eval(doc, "//p//p")
        assert got == sorted(evaluate_reference(doc, parse_query("//p//p")))

    def test_branching_uses_path_merge(self, doc):
        engine = QueryEngine.build(doc)
        holistic = engine.evaluate_path("//a[b]/c")
        nok = engine.evaluate("//a[b]/c")
        assert holistic.positions == nok.positions

    def test_raw_pathstack_rejects_branching(self, doc):
        from repro.index.tagindex import TagIndex
        from repro.nok.pathstack import evaluate_pathstack

        with pytest.raises(ReproError):
            evaluate_pathstack(doc, parse_query("//a[b]/c"), TagIndex(doc))


class TestEngineIntegration:
    @pytest.mark.parametrize("qid", JOIN_QUERIES)
    def test_q4_q6_match_nok_strategy(self, xmark_doc, qid):
        engine = QueryEngine.build(xmark_doc)
        nok = engine.evaluate(QUERIES[qid])
        holistic = engine.evaluate_path(QUERIES[qid])
        assert holistic.positions == nok.positions, qid

    @pytest.mark.parametrize("qid", JOIN_QUERIES)
    @pytest.mark.parametrize("semantics", [CHO, VIEW])
    def test_secure_matches_nok(self, xmark_doc, xmark_acl, qid, semantics):
        engine = QueryEngine.build(xmark_doc, xmark_acl)
        nok = engine.evaluate(QUERIES[qid], subject=1, semantics=semantics)
        holistic = engine.evaluate_path(QUERIES[qid], subject=1, semantics=semantics)
        assert holistic.positions == nok.positions, (qid, semantics)

    @pytest.mark.parametrize("qid", sorted(QUERIES))
    def test_all_table1_queries_agree(self, xmark_doc, xmark_acl, qid):
        """Branching Q1/Q2 go through the path-merge; all six agree."""
        engine = QueryEngine.build(xmark_doc, xmark_acl)
        nok = engine.evaluate(QUERIES[qid], subject=0)
        holistic = engine.evaluate_path(QUERIES[qid], subject=0)
        assert holistic.positions == nok.positions, qid


@st.composite
def path_cases(draw):
    seed = draw(st.integers(min_value=0, max_value=9999))
    rng = random.Random(seed)
    doc = random_document(rng, draw(st.integers(min_value=1, max_value=40)))
    query = draw(
        st.sampled_from(
            [
                "//n0//n1",
                "//n1/n0",
                "//n0//n1//n2",
                "//n2/n1//n0",
                "//n0/n0/n0",
                "//n3//n3",
                "/n0//n2",
            ]
        )
    )
    masks = [rng.randrange(2) for _ in range(len(doc))]
    return doc, query, masks


@st.composite
def twig_cases(draw):
    seed = draw(st.integers(min_value=0, max_value=9999))
    rng = random.Random(seed)
    doc = random_document(rng, draw(st.integers(min_value=1, max_value=35)))
    query = draw(
        st.sampled_from(
            [
                "//n0[n1][n2]",
                "//n0[n1]//n2",
                "//n1[//n0]/n2",
                "/n0[n1/n2]//n3",
                "//n0[n1][n2/n3]//n4",
                "//n2[n0][n1][n3]",
            ]
        )
    )
    masks = [rng.randrange(2) for _ in range(len(doc))]
    return doc, query, masks


@given(twig_cases())
@settings(max_examples=150, deadline=None)
def test_twig_path_merge_matches_oracle(case):
    doc, query, _masks = case
    pattern = parse_query(query)
    engine = QueryEngine.build(doc)
    holistic = engine.evaluate_path(pattern).positions
    want = sorted(evaluate_reference(doc, pattern))
    assert holistic == want, query


@given(twig_cases())
@settings(max_examples=100, deadline=None)
def test_secure_twig_path_merge_matches_oracle(case):
    doc, query, masks = case
    pattern = parse_query(query)
    matrix = AccessMatrix.from_masks(masks, 1)
    engine = QueryEngine.build(doc, matrix)
    got = engine.evaluate_path(pattern, subject=0).positions
    want = sorted(evaluate_reference(doc, pattern, masks, 0, CHO))
    assert got == want, query


@given(path_cases())
@settings(max_examples=200, deadline=None)
def test_pathstack_matches_oracle(case):
    from repro.index.tagindex import TagIndex

    doc, query, _masks = case
    pattern = parse_query(query)
    got = evaluate_pathstack(doc, pattern, TagIndex(doc), None)
    want = sorted(evaluate_reference(doc, pattern))
    assert got == want, query


@given(path_cases())
@settings(max_examples=120, deadline=None)
def test_secure_pathstack_matches_oracle(case):
    doc, query, masks = case
    pattern = parse_query(query)
    matrix = AccessMatrix.from_masks(masks, 1)
    engine = QueryEngine.build(doc, matrix)
    got = engine.evaluate_path(pattern, subject=0).positions
    want = sorted(evaluate_reference(doc, pattern, masks, 0, CHO))
    assert got == want, query
