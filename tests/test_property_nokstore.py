"""Property tests: the block store is observationally equal to the
in-memory document + DOL, for random trees, ACLs, and page sizes."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dol.labeling import DOL
from repro.storage.nokstore import NoKStore
from tests.conftest import random_document


@st.composite
def store_cases(draw):
    seed = draw(st.integers(min_value=0, max_value=99_999))
    n = draw(st.integers(min_value=1, max_value=60))
    rng = random.Random(seed)
    doc = random_document(rng, n)
    masks = [rng.randrange(8) for _ in range(n)]
    page_size = draw(st.sampled_from([64, 96, 128, 256]))
    capacity = draw(st.integers(min_value=1, max_value=8))
    return doc, masks, page_size, capacity


@given(store_cases())
@settings(max_examples=80, deadline=None)
def test_store_equals_document(case):
    doc, masks, page_size, capacity = case
    dol = DOL.from_masks(masks, 3)
    store = NoKStore(doc, dol, page_size=page_size, buffer_capacity=capacity)
    for pos in range(len(doc)):
        assert store.tag_name(pos) == doc.tag_name(pos)
        assert store.first_child(pos) == doc.first_child(pos)
        assert store.following_sibling(pos) == doc.following_sibling(pos)
        assert store.subtree_end(pos) == doc.subtree_end(pos)
        for subject in range(3):
            assert store.accessible(subject, pos) == bool(
                masks[pos] >> subject & 1
            )


@given(store_cases(), st.data())
@settings(max_examples=60, deadline=None)
def test_store_updates_equal_dol_updates(case, data):
    doc, masks, page_size, capacity = case
    dol = DOL.from_masks(masks, 3)
    store = NoKStore(doc, dol, page_size=page_size, buffer_capacity=capacity)
    n = len(doc)
    reference = list(masks)
    for _ in range(data.draw(st.integers(min_value=1, max_value=4))):
        start = data.draw(st.integers(min_value=0, max_value=n - 1))
        end = data.draw(st.integers(min_value=start + 1, max_value=n))
        subject = data.draw(st.integers(min_value=0, max_value=2))
        value = data.draw(st.booleans())
        cost = store.update_subject_range(start, end, subject, value)
        assert cost.transition_delta <= 2
        bit = 1 << subject
        for pos in range(start, end):
            reference[pos] = reference[pos] | bit if value else reference[pos] & ~bit
    store.drop_caches()  # force re-reads from the page file image
    for pos in range(n):
        for subject in range(3):
            assert store.accessible(subject, pos) == bool(
                reference[pos] >> subject & 1
            )


@given(store_cases())
@settings(max_examples=50, deadline=None)
def test_page_skip_soundness(case):
    """If the header test says a page is fully inaccessible for a subject,
    then no node on that page is accessible — never a false skip."""
    doc, masks, page_size, capacity = case
    dol = DOL.from_masks(masks, 3)
    store = NoKStore(doc, dol, page_size=page_size, buffer_capacity=capacity)
    for page_id in range(store.n_pages):
        first = page_id * store.entries_per_page
        last = min(first + store.entries_per_page, store.n_nodes)
        for subject in range(3):
            if store.page_fully_inaccessible(page_id, subject):
                for pos in range(first, last):
                    assert not bool(masks[pos] >> subject & 1)
