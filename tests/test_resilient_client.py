"""The retrying client against a scripted misbehaving server.

A tiny in-process TCP server plays back a script of per-request
actions — answer ok, answer a structured error, drop the connection,
tear the frame, hang — so every branch of the client's retry loop is
exercised deterministically, without the chaos harness's randomness.
"""

import json
import socket
import threading
import time

import pytest

from repro.errors import (
    BadRequest,
    ConnectionFailed,
    RetryBudgetExhausted,
    ServiceOverloaded,
    ServiceTimeout,
)
from repro.server.client import ResilientClient, RetryPolicy
from repro.server.protocol import encode_error, encode_response

FAST = RetryPolicy(
    max_attempts=4, base_delay_s=0.005, max_delay_s=0.02, deadline_s=5.0
)


class ScriptedServer:
    """Replays one scripted action per received request line."""

    def __init__(self, script):
        self.script = list(script)
        self.received = []
        self._closed = False
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self._sock.settimeout(0.1)
        self.address = self._sock.getsockname()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        while not self._closed:
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with conn:
                self._serve_connection(conn)

    def _serve_connection(self, conn):
        reader = conn.makefile("rb")
        while not self._closed:
            conn.settimeout(0.5)
            try:
                line = reader.readline()
            except OSError:
                return
            if not line:
                return
            self.received.append(json.loads(line))
            action = self.script.pop(0) if self.script else "ok"
            if action == "ok":
                conn.sendall(encode_response({"ok": True, "pong": True}))
            elif action == "drop":
                return  # close without answering
            elif action == "tear":
                payload = encode_response({"ok": True, "pong": True})
                conn.sendall(payload[: len(payload) // 2])
                return
            elif action == "garbage":
                conn.sendall(b"%%% not json %%%\n")
            elif action == "hang":
                time.sleep(1.0)
                return
            else:  # an error class name
                exc = ServiceOverloaded(9, 9) if action == "ServiceOverloaded" \
                    else BadRequest("scripted bad request")
                conn.sendall(encode_response(encode_error(exc)))

    def close(self):
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass
        self._thread.join(timeout=2)


@pytest.fixture
def scripted():
    servers = []

    def start(script):
        server = ScriptedServer(script)
        servers.append(server)
        return server

    yield start
    for server in servers:
        server.close()


class TestRetryLoop:
    def test_retries_retriable_then_succeeds(self, scripted):
        server = scripted(["ServiceOverloaded", "ServiceOverloaded", "ok"])
        with ResilientClient(*server.address, policy=FAST) as client:
            assert client.ping()
        assert client.stats["retries"] == 2
        assert client.stats["successes"] == 1
        assert len(server.received) == 3

    def test_terminal_error_raises_without_retry(self, scripted):
        server = scripted(["BadRequest"])
        with ResilientClient(*server.address, policy=FAST) as client:
            with pytest.raises(BadRequest):
                client.request({"op": "wat"})
        assert client.stats["retries"] == 0
        assert len(server.received) == 1

    def test_reconnects_after_connection_drop(self, scripted):
        server = scripted(["drop", "ok"])
        with ResilientClient(*server.address, policy=FAST) as client:
            assert client.ping()
        assert client.stats["reconnects"] == 2
        assert client.stats["retries"] == 1

    def test_torn_frame_reconnects_and_retries(self, scripted):
        server = scripted(["tear", "ok"])
        with ResilientClient(*server.address, policy=FAST) as client:
            assert client.ping()
        assert client.stats["reconnects"] == 2

    def test_garbage_frame_is_connection_failure(self, scripted):
        server = scripted(["garbage", "ok"])
        with ResilientClient(*server.address, policy=FAST) as client:
            assert client.ping()
        assert client.stats["retries"] == 1

    def test_deadline_becomes_service_timeout(self, scripted):
        server = scripted(["hang", "hang", "hang", "hang"])
        with ResilientClient(*server.address, policy=FAST) as client:
            started = time.monotonic()
            with pytest.raises(ServiceTimeout):
                client.ping(deadline_s=0.3)
            assert time.monotonic() - started < 2.0

    def test_deadline_rides_in_the_request(self, scripted):
        server = scripted(["ok"])
        with ResilientClient(*server.address, policy=FAST) as client:
            client.ping(deadline_s=3.0)
        assert 0 < server.received[0]["timeout"] <= 3.0

    def test_remaining_deadline_shrinks_across_retries(self, scripted):
        server = scripted(["drop", "drop", "ok"])
        with ResilientClient(*server.address, policy=FAST) as client:
            client.ping(deadline_s=5.0)
        timeouts = [r["timeout"] for r in server.received]
        assert timeouts == sorted(timeouts, reverse=True)

    def test_retry_budget_exhausts(self, scripted):
        server = scripted(["ServiceOverloaded"] * 10)
        policy = RetryPolicy(
            max_attempts=10, base_delay_s=0.001, max_delay_s=0.002,
            retry_budget=2.0,
        )
        with ResilientClient(*server.address, policy=policy) as client:
            with pytest.raises(RetryBudgetExhausted):
                client.ping()
        # first try + 2 budgeted retries
        assert len(server.received) == 3

    def test_connect_refused_is_connection_failed(self):
        # bind-then-close guarantees a dead port
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        host, port = probe.getsockname()
        probe.close()
        policy = RetryPolicy(
            max_attempts=2, base_delay_s=0.001, max_delay_s=0.002,
            connect_timeout_s=0.2,
        )
        with ResilientClient(host, port, policy=policy) as client:
            with pytest.raises(ConnectionFailed):
                client.ping(deadline_s=1.0)


class TestIdempotency:
    def test_update_not_retried_across_connection_failure(self, scripted):
        server = scripted(["drop", "ok"])
        with ResilientClient(*server.address, policy=FAST) as client:
            with pytest.raises(ConnectionFailed) as info:
                client.update("subject_range", 0, 5, subject=1, value=False)
            assert info.value.request_sent
        # the update reached the wire once and was never resent
        assert len(server.received) == 1

    def test_update_retried_on_pre_execution_shed(self, scripted):
        server = scripted(["ServiceOverloaded", "ok"])
        with ResilientClient(*server.address, policy=FAST) as client:
            response = client.update(
                "subject_range", 0, 5, subject=1, value=False
            )
        assert response["ok"]
        assert len(server.received) == 2

    def test_query_is_retried_across_connection_failure(self, scripted):
        server = scripted(["drop", "ok"])
        with ResilientClient(*server.address, policy=FAST) as client:
            assert client.request({"op": "ping"})["ok"]
        assert len(server.received) == 2


class TestBudgetAccounting:
    def test_successes_refund_the_budget(self, scripted):
        server = scripted(["ServiceOverloaded", "ok", "ok"])
        policy = RetryPolicy(
            max_attempts=4, base_delay_s=0.001, max_delay_s=0.002,
            retry_budget=5.0, budget_refund=0.5,
        )
        with ResilientClient(*server.address, policy=policy) as client:
            client.ping()  # spends 1.0, refunds 0.5
            assert client.retry_budget_left == pytest.approx(4.5)
            client.ping()  # refunds up to the cap
            assert client.retry_budget_left == pytest.approx(5.0)
