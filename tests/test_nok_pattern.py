"""Unit tests for pattern trees and the query parser."""

import pytest

from repro.bench.queries import Q3_AS_PRINTED, QUERIES
from repro.errors import QueryParseError
from repro.nok.pattern import CHILD, DESCENDANT, PatternNode, parse_query


class TestParseSimplePaths:
    def test_single_step(self):
        tree = parse_query("/site")
        assert tree.root.tag == "site"
        assert tree.root_axis == CHILD
        assert tree.root.is_returning

    def test_child_chain(self):
        tree = parse_query("/a/b/c")
        assert tree.root.tag == "a"
        b = tree.root.children[0]
        c = b.children[0]
        assert (b.tag, c.tag) == ("b", "c")
        assert tree.root.axes == [CHILD]
        assert c.is_returning
        assert not b.is_returning

    def test_descendant_axes(self):
        tree = parse_query("//a//b")
        assert tree.root_axis == DESCENDANT
        assert tree.root.axes == [DESCENDANT]

    def test_mixed_axes(self):
        tree = parse_query("/a//b/c")
        assert tree.root_axis == CHILD
        assert tree.root.axes == [DESCENDANT]
        assert tree.root.children[0].axes == [CHILD]

    def test_wildcard(self):
        tree = parse_query("/a/*/c")
        assert tree.root.children[0].tag == "*"


class TestParsePredicates:
    def test_single_predicate(self):
        tree = parse_query("/a[b]")
        assert tree.root.is_returning
        assert tree.root.children[0].tag == "b"
        assert not tree.root.children[0].is_returning

    def test_multiple_predicates(self):
        tree = parse_query("/item[location][name][quantity]")
        assert [c.tag for c in tree.root.children] == [
            "location",
            "name",
            "quantity",
        ]

    def test_predicate_path(self):
        tree = parse_query("/a[b/c/d]")
        b = tree.root.children[0]
        assert b.children[0].tag == "c"
        assert b.children[0].children[0].tag == "d"

    def test_predicate_descendant(self):
        tree = parse_query("/a[//k]")
        assert tree.root.axes == [DESCENDANT]

    def test_predicate_then_path_continues(self):
        tree = parse_query("/a[x]/b")
        assert [c.tag for c in tree.root.children] == ["x", "b"]
        assert tree.root.children[1].is_returning

    def test_value_constraint(self):
        tree = parse_query('/a[payment = "Cash"]')
        assert tree.root.children[0].value == "Cash"

    def test_single_quoted_value(self):
        tree = parse_query("/a[b='x y']")
        assert tree.root.children[0].value == "x y"


class TestTableOneQueries:
    @pytest.mark.parametrize("query", list(QUERIES.values()) + [Q3_AS_PRINTED])
    def test_all_parse(self, query):
        tree = parse_query(query)
        assert tree.returning_node is not None

    def test_q1_shape(self):
        tree = parse_query(QUERIES["Q1"])
        item = tree.returning_node
        assert item.tag == "item"
        assert len(item.children) == 3

    def test_q2_branch_in_middle(self):
        tree = parse_query(QUERIES["Q2"])
        category = tree.root.children[0].children[0]
        assert category.tag == "category"
        assert [c.tag for c in category.children] == ["name", "description"]
        assert tree.returning_node.tag == "bold"

    def test_q4_two_nok_trees(self):
        tree = parse_query(QUERIES["Q4"])
        assert tree.root.tag == "parlist"
        assert tree.root.axes == [DESCENDANT]
        assert tree.returning_node.tag == "parlist"


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        ["", "a/b", "/a[", "/a]", "/a[]", "/", "//", "/a/'x'", "/a[b='unterminated]"],
    )
    def test_rejected(self, bad):
        with pytest.raises(QueryParseError):
            parse_query(bad)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("/a/b )")


class TestToString:
    @pytest.mark.parametrize("query", list(QUERIES.values()))
    def test_roundtrip_through_parser(self, query):
        tree = parse_query(query)
        again = parse_query(tree.to_string())
        assert again.to_string() == tree.to_string()

    def test_pattern_node_matches(self):
        node = PatternNode("a")
        assert node.matches("a", "")
        assert not node.matches("b", "")
        star = PatternNode("*", value="x")
        assert star.matches("anything", "x")
        assert not star.matches("anything", "y")
