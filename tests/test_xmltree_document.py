"""Unit tests for the flattened Document representation."""

import pytest

from repro.errors import TreeError
from repro.xmltree.builder import tree
from repro.xmltree.document import NO_NODE, Document, TagDictionary


class TestTagDictionary:
    def test_intern_is_idempotent(self):
        d = TagDictionary()
        assert d.intern("a") == d.intern("a") == 0
        assert d.intern("b") == 1
        assert len(d) == 2

    def test_name_roundtrip(self):
        d = TagDictionary()
        for name in ("item", "name", "price"):
            assert d.name_of(d.intern(name)) == name

    def test_get_unknown(self):
        d = TagDictionary()
        assert d.get("missing") is None
        assert "missing" not in d
        with pytest.raises(KeyError):
            d.id_of("missing")


class TestFlattening:
    def test_document_order(self, paper_doc):
        names = [paper_doc.tag_name(i) for i in range(len(paper_doc))]
        assert names == list("abcdefghijkl")

    def test_parent_links(self, paper_doc):
        assert paper_doc.parent[0] == NO_NODE
        # b, c, d, e are children of a (position 0)
        assert paper_doc.parent[1] == paper_doc.parent[2] == 0
        # f (5), g (6), h (7) are children of e (4)
        assert paper_doc.parent[5] == paper_doc.parent[7] == 4

    def test_subtree_sizes(self, paper_doc):
        assert paper_doc.subtree[0] == 12
        assert paper_doc.subtree[4] == 8  # e
        assert paper_doc.subtree[7] == 5  # h
        assert paper_doc.subtree[1] == 1  # b

    def test_depths(self, paper_doc):
        assert paper_doc.depth[0] == 0
        assert paper_doc.depth[4] == 1
        assert paper_doc.depth[8] == 3  # i

    def test_roundtrip_to_tree(self, paper_tree, paper_doc):
        assert paper_doc.to_tree().structurally_equal(paper_tree)

    def test_texts_preserved(self, small_doc):
        assert small_doc.text(2) == "anvil"
        assert small_doc.text(5) == "hammer"

    def test_empty_arrays_rejected(self):
        with pytest.raises(TreeError):
            Document([], [], [], [], [], TagDictionary())

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(TreeError):
            Document([0], [], [1], [0], [""], TagDictionary())


class TestNavigation:
    def test_first_child(self, paper_doc):
        assert paper_doc.first_child(0) == 1
        assert paper_doc.first_child(1) == NO_NODE  # b is a leaf
        assert paper_doc.first_child(4) == 5  # e -> f

    def test_following_sibling(self, paper_doc):
        assert paper_doc.following_sibling(1) == 2  # b -> c
        assert paper_doc.following_sibling(3) == 4  # d -> e
        assert paper_doc.following_sibling(4) == NO_NODE  # e is last child
        assert paper_doc.following_sibling(7) == NO_NODE  # h is last

    def test_children(self, paper_doc):
        assert list(paper_doc.children(0)) == [1, 2, 3, 4]
        assert list(paper_doc.children(7)) == [8, 9, 10, 11]
        assert list(paper_doc.children(1)) == []

    def test_is_ancestor(self, paper_doc):
        assert paper_doc.is_ancestor(0, 11)
        assert paper_doc.is_ancestor(4, 8)
        assert not paper_doc.is_ancestor(8, 4)
        assert not paper_doc.is_ancestor(4, 4)
        assert not paper_doc.is_ancestor(1, 2)

    def test_ancestors(self, paper_doc):
        assert list(paper_doc.ancestors(8)) == [7, 4, 0]
        assert list(paper_doc.ancestors(0)) == []

    def test_descendants_range(self, paper_doc):
        assert list(paper_doc.descendants(4)) == [5, 6, 7, 8, 9, 10, 11]
        assert list(paper_doc.descendants(1)) == []

    def test_positions_with_tag(self, small_doc):
        assert small_doc.positions_with_tag("item") == [1, 4]
        assert small_doc.positions_with_tag("absent") == []


class TestValidate:
    def test_valid_document_passes(self, paper_doc):
        paper_doc.validate()

    def test_corrupt_parent_detected(self, paper_doc):
        paper_doc.parent[5] = 9
        with pytest.raises(TreeError):
            paper_doc.validate()

    def test_corrupt_subtree_detected(self, paper_doc):
        paper_doc.subtree[0] = 3
        with pytest.raises(TreeError):
            paper_doc.validate()

    def test_corrupt_depth_detected(self, paper_doc):
        paper_doc.depth[2] = 5
        with pytest.raises(TreeError):
            paper_doc.validate()
