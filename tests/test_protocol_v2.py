"""Protocol v2: negotiation, request ids, and the framed stream grammar.

Pure wire-format tests — no sockets, no service. The server and client
tests exercise the same helpers end to end; here every edge of the
grammar is pinned down in isolation.
"""

import pytest

from repro.errors import (
    BadRequest,
    PageCorruptionError,
    ServiceError,
    ServiceOverloaded,
)
from repro.server.protocol import (
    FRAME_BEGIN,
    FRAME_END,
    FRAME_ERROR,
    FRAME_FRAGMENT,
    FRAME_REPLY,
    PROTOCOL_V1,
    PROTOCOL_V2,
    SUPPORTED_VERSIONS,
    begin_frame,
    decode_error,
    decode_request,
    encode_error,
    end_frame,
    error_frame,
    fragment_frame,
    hello_response,
    is_retriable,
    negotiate_version,
    reply_frame,
    request_id,
)


class TestNegotiation:
    def test_v2_client_gets_v2(self):
        assert negotiate_version({"op": "hello", "version": 2}) == PROTOCOL_V2

    def test_future_client_is_capped_at_newest_supported(self):
        assert negotiate_version({"op": "hello", "version": 99}) == PROTOCOL_V2

    def test_versionless_hello_is_a_v1_probe(self):
        assert negotiate_version({"op": "hello"}) == PROTOCOL_V1

    def test_explicit_v1_stays_v1(self):
        assert negotiate_version({"op": "hello", "version": 1}) == PROTOCOL_V1

    @pytest.mark.parametrize("version", [0, -3, "two", True, 1.5, None])
    def test_unusable_versions_rejected(self, version):
        with pytest.raises(BadRequest):
            negotiate_version({"op": "hello", "version": version})

    def test_hello_response_names_the_agreed_version(self):
        assert hello_response(2) == {"ok": True, "version": 2}

    def test_supported_versions_are_contiguous(self):
        assert SUPPORTED_VERSIONS == (1, 2)


class TestRequestId:
    @pytest.mark.parametrize("rid", [0, 7, "abc", 3.5])
    def test_scalar_ids_pass_through(self, rid):
        assert request_id({"id": rid}) == rid

    @pytest.mark.parametrize("payload", [{}, {"id": None}, {"id": [1]}, {"id": {}}])
    def test_missing_or_structured_ids_rejected(self, payload):
        with pytest.raises(BadRequest):
            request_id(payload)


class TestFrames:
    def test_reply_frame_wraps_v1_body(self):
        frame = reply_frame(4, {"ok": True, "pong": True})
        assert frame == {"id": 4, "frame": FRAME_REPLY, "ok": True, "pong": True}

    def test_begin_frame_carries_epoch_and_strictness(self):
        frame = begin_frame("q1", 9, False)
        assert frame == {
            "id": "q1", "frame": FRAME_BEGIN, "epoch": 9, "strict": False,
        }

    def test_fragment_frames_number_from_zero(self):
        frame = fragment_frame(1, 0, 17, "<item/>")
        assert frame["frame"] == FRAME_FRAGMENT
        assert (frame["seq"], frame["position"], frame["xml"]) == (0, 17, "<item/>")

    def test_end_frame_merges_the_accounting_body(self):
        frame = end_frame(1, {"epoch": 2, "degraded": False, "n_fragments": 3})
        assert frame["frame"] == FRAME_END
        assert frame["n_fragments"] == 3

    def test_error_frame_is_typed_and_classified(self):
        frame = error_frame(5, ServiceOverloaded(4, 4))
        assert frame["frame"] == FRAME_ERROR
        assert frame["id"] == 5
        assert frame["ok"] is False
        assert frame["error"] == "ServiceOverloaded"
        assert frame["retriable"] is True

    def test_error_frame_round_trips_to_the_type(self):
        frame = error_frame(1, PageCorruptionError(12, detail="checksum"))
        exc = decode_error(frame)
        assert isinstance(exc, PageCorruptionError)
        # corruption is retriable: the retry runs degraded around the
        # quarantine instead of failing the same way again
        assert is_retriable(exc)


class TestRequestCap:
    def test_per_call_cap_overrides_the_default(self):
        line = '{"op": "query", "query": "//item"}'
        assert decode_request(line, max_bytes=len(line))["op"] == "query"
        with pytest.raises(BadRequest):
            decode_request(line, max_bytes=len(line) - 1)

    def test_default_cap_still_applies_without_override(self):
        huge = '{"op": "x", "pad": "' + "a" * (1 << 20) + '"}'
        with pytest.raises(BadRequest):
            decode_request(huge)


class TestErrorTaxonomy:
    def test_unknown_wire_names_are_terminal(self):
        assert is_retriable("TotallyMadeUpError") is False

    def test_registry_classification_matches_classes(self):
        assert is_retriable("ServiceOverloaded") is True
        assert is_retriable("BadRequest") is False

    def test_decode_error_falls_back_to_service_error(self):
        exc = decode_error({"error": "NotARealName", "message": "m"})
        assert type(exc) is ServiceError
        assert str(exc) == "m"

    def test_encode_decode_preserves_message(self):
        original = BadRequest("stream request needs a query string")
        exc = decode_error(encode_error(original))
        assert type(exc) is BadRequest
        assert str(exc) == str(original)
