"""Property-based tests (hypothesis) for DOL invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dol.codebook import Codebook
from repro.dol.labeling import DOL, transitions_from_masks
from repro.dol.stream import StreamingDOLBuilder

masks_lists = st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=200)


@given(masks_lists)
def test_dol_roundtrip(masks):
    """from_masks . to_masks is the identity."""
    assert DOL.from_masks(masks, 8).to_masks() == masks


@given(masks_lists)
def test_transition_count_definition(masks):
    """Transitions = 1 + number of adjacent differing pairs."""
    expected = 1 + sum(1 for a, b in zip(masks, masks[1:]) if a != b)
    assert len(transitions_from_masks(masks)) == expected


@given(masks_lists)
def test_dol_validates(masks):
    DOL.from_masks(masks, 8).validate()


@given(masks_lists)
def test_codebook_entries_equal_distinct_masks_seen_at_transitions(masks):
    dol = DOL.from_masks(masks, 8)
    distinct = {mask for _pos, mask in transitions_from_masks(masks)}
    assert len(dol.codebook) == len(distinct)


@given(masks_lists)
def test_transitions_bounded_by_nodes(masks):
    dol = DOL.from_masks(masks, 8)
    assert 1 <= dol.n_transitions <= len(masks)
    assert 0 < dol.transition_density() <= 1


@given(masks_lists)
def test_streaming_equals_batch(masks):
    builder = StreamingDOLBuilder(8)
    for mask in masks:
        builder.feed(mask)
    assert builder.finish() == DOL.from_masks(masks, 8)


@given(masks_lists, st.integers(min_value=0, max_value=7))
def test_accessible_matches_bit(masks, subject):
    dol = DOL.from_masks(masks, 8)
    for pos, mask in enumerate(masks):
        assert dol.accessible(subject, pos) == bool(mask >> subject & 1)


@given(st.lists(st.integers(min_value=0, max_value=1023), min_size=1, max_size=60))
def test_shared_codebook_is_superset(masks):
    """Building several DOLs against one codebook never loses entries."""
    book = Codebook(10)
    first = DOL.from_masks(masks, 10, codebook=book)
    entries_after_first = len(book)
    DOL.from_masks(list(reversed(masks)), 10, codebook=book)
    assert len(book) >= entries_after_first
    assert first.to_masks() == masks


@given(masks_lists)
@settings(max_examples=50)
def test_size_bytes_monotone_in_transitions(masks):
    """A constant labeling can never cost more than the real labeling."""
    dol = DOL.from_masks(masks, 8)
    flat = DOL.from_masks([masks[0]] * len(masks), 8)
    assert flat.size_bytes() <= dol.size_bytes()
