"""Every example script must run cleanly — examples are executable docs."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_all_examples_discovered():
    names = {path.stem for path in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3
