"""Unit tests for rule-based policies and Most-Specific-Override propagation."""

import pytest

from repro.acl.policy import (
    DENY_OVERRIDES,
    GRANT_OVERRIDES,
    LAST_RULE_WINS,
    AccessRule,
    Policy,
    select,
)
from repro.errors import AccessControlError
from repro.xmltree.builder import tree
from repro.xmltree.document import Document


@pytest.fixture
def doc():
    #        site(0)
    #   dept(1)        dept(4)
    #  doc(2) doc(3)   doc(5)
    return Document.from_tree(
        tree(("site", ("dept", ("doc",), ("doc",)), ("dept", ("doc",))))
    )


class TestSelect:
    def test_absolute_path(self, doc):
        assert select(doc, "/site") == [0]
        assert select(doc, "/site/dept") == [1, 4]
        assert select(doc, "/site/dept/doc") == [2, 3, 5]

    def test_wildcard_step(self, doc):
        assert select(doc, "/site/*") == [1, 4]
        assert select(doc, "/*/dept") == [1, 4]

    def test_descendant_pattern(self, doc):
        assert select(doc, "//doc") == [2, 3, 5]
        assert select(doc, "//*") == [0, 1, 2, 3, 4, 5]

    def test_nonmatching_root(self, doc):
        assert select(doc, "/other") == []

    def test_invalid_paths_rejected(self, doc):
        for bad in ("dept", "/site//dept", "//a/b", "/site//"):
            with pytest.raises(AccessControlError):
                select(doc, bad)


class TestPropagation:
    def test_recursive_grant_cascades(self, doc):
        policy = Policy(doc, n_subjects=1)
        policy.grant(0, "/site/dept")
        matrix = policy.compile()
        assert matrix.subject_vector(0) == [False, True, True, True, True, True]

    def test_most_specific_override(self, doc):
        policy = Policy(doc, n_subjects=1)
        policy.grant(0, "/site")
        policy.deny(0, 1)  # deny first dept subtree recursively
        matrix = policy.compile()
        assert matrix.subject_vector(0) == [True, False, False, False, True, True]

    def test_local_rule_applies_to_node_only(self, doc):
        policy = Policy(doc, n_subjects=1)
        policy.deny(0, "/site")  # recursive deny everywhere
        policy.grant(0, 1, recursive=False)  # local grant on dept(1)
        matrix = policy.compile()
        assert matrix.subject_vector(0) == [False, True, False, False, False, False]

    def test_closed_world_default(self, doc):
        matrix = Policy(doc, n_subjects=1).compile()
        assert matrix.accessible_count() == 0

    def test_open_world_default(self, doc):
        matrix = Policy(doc, n_subjects=1, default_grant=True).compile()
        assert matrix.accessible_count() == len(doc)

    def test_subjects_independent(self, doc):
        policy = Policy(doc, n_subjects=2)
        policy.grant(0, "/site")
        policy.grant(1, "/site/dept/doc", recursive=False)
        matrix = policy.compile()
        assert matrix.subject_vector(0) == [True] * 6
        assert matrix.subject_vector(1) == [False, False, True, True, False, True]


class TestConflicts:
    def _policy(self, doc, conflict):
        policy = Policy(doc, n_subjects=1, conflict=conflict)
        policy.grant(0, 0)
        policy.deny(0, 0)
        return policy.compile()

    def test_deny_overrides(self, doc):
        assert not self._policy(doc, DENY_OVERRIDES).accessible(0, 0)

    def test_grant_overrides(self, doc):
        assert self._policy(doc, GRANT_OVERRIDES).accessible(0, 0)

    def test_last_rule_wins(self, doc):
        assert not self._policy(doc, LAST_RULE_WINS).accessible(0, 0)
        policy = Policy(doc, n_subjects=1, conflict=LAST_RULE_WINS)
        policy.deny(0, 0)
        policy.grant(0, 0)
        assert policy.compile().accessible(0, 0)

    def test_unknown_conflict_rejected(self, doc):
        with pytest.raises(AccessControlError):
            Policy(doc, 1, conflict="random")


class TestRuleValidation:
    def test_subject_out_of_range(self, doc):
        policy = Policy(doc, n_subjects=1)
        with pytest.raises(AccessControlError):
            policy.add_rule(AccessRule(subject=5, target="/site", grant=True))

    def test_bad_node_position(self, doc):
        policy = Policy(doc, n_subjects=1)
        policy.grant(0, 99)
        with pytest.raises(AccessControlError):
            policy.compile()

    def test_multiple_modes(self, doc):
        policy = Policy(doc, n_subjects=1)
        policy.add_rule(AccessRule(0, "/site", True, mode="read"))
        policy.add_rule(AccessRule(0, 4, True, mode="write"))
        matrix = policy.compile()
        assert matrix.accessible(0, 3, "read")
        assert not matrix.accessible(0, 3, "write")
        assert matrix.accessible(0, 5, "write")
