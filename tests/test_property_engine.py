"""Property-based tests: engine answers equal the brute-force oracle on
random documents, random ACLs, and random (generated) twig queries."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acl.model import AccessMatrix
from repro.nok.engine import QueryEngine
from repro.nok.pattern import CHILD, DESCENDANT, PatternNode, PatternTree
from repro.nok.reference import evaluate_reference
from repro.secure.semantics import CHO, VIEW
from tests.conftest import random_document


@st.composite
def random_patterns(draw, max_nodes=5):
    """Random small pattern trees over the n0..n4 tag alphabet."""
    tags = [f"n{i}" for i in range(5)] + ["*"]
    root = PatternNode(draw(st.sampled_from(tags)))
    nodes = [root]
    for _ in range(draw(st.integers(min_value=0, max_value=max_nodes - 1))):
        parent = nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))]
        child = PatternNode(draw(st.sampled_from(tags)))
        axis = draw(st.sampled_from([CHILD, DESCENDANT]))
        parent.add_child(child, axis)
        nodes.append(child)
    returning = nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))]
    returning.is_returning = True
    root_axis = draw(st.sampled_from([CHILD, DESCENDANT]))
    return PatternTree(root, root_axis)


@st.composite
def scenario(draw):
    seed = draw(st.integers(min_value=0, max_value=99_999))
    n = draw(st.integers(min_value=1, max_value=40))
    rng = random.Random(seed)
    doc = random_document(rng, n)
    masks = [rng.randrange(4) for _ in range(n)]
    pattern = draw(random_patterns())
    return doc, masks, pattern


@given(scenario())
@settings(max_examples=150, deadline=None)
def test_non_secure_matches_oracle(case):
    doc, _masks, pattern = case
    engine = QueryEngine.build(doc)
    got = set(engine.evaluate(pattern).positions)
    want = evaluate_reference(doc, pattern)
    assert got == want


@given(scenario(), st.integers(min_value=0, max_value=1), st.sampled_from([CHO, VIEW]))
@settings(max_examples=150, deadline=None)
def test_secure_matches_oracle(case, subject, semantics):
    doc, masks, pattern = case
    matrix = AccessMatrix.from_masks(masks, 2)
    engine = QueryEngine.build(doc, matrix)
    got = set(engine.evaluate(pattern, subject=subject, semantics=semantics).positions)
    want = evaluate_reference(doc, pattern, masks, subject, semantics)
    assert got == want


@given(scenario(), st.integers(min_value=0, max_value=1))
@settings(max_examples=60, deadline=None)
def test_store_backed_matches_in_memory(case, subject):
    doc, masks, pattern = case
    matrix = AccessMatrix.from_masks(masks, 2)
    in_memory = QueryEngine.build(doc, matrix)
    stored = QueryEngine.build(
        doc, matrix, use_store=True, page_size=128, buffer_capacity=4
    )
    a = set(in_memory.evaluate(pattern, subject=subject).positions)
    b = set(stored.evaluate(pattern, subject=subject).positions)
    assert a == b


@given(scenario())
@settings(max_examples=80, deadline=None)
def test_secure_view_subset_of_cho_subset_of_plain(case):
    doc, masks, pattern = case
    matrix = AccessMatrix.from_masks(masks, 2)
    engine = QueryEngine.build(doc, matrix)
    plain = set(engine.evaluate(pattern).positions)
    cho = set(engine.evaluate(pattern, subject=0, semantics=CHO).positions)
    view = set(engine.evaluate(pattern, subject=0, semantics=VIEW).positions)
    assert view <= cho <= plain
