"""Sanity tests for the brute-force reference evaluator itself."""

import pytest

from repro.nok.pattern import parse_query
from repro.nok.reference import enumerate_bindings, evaluate_reference
from repro.secure.semantics import CHO, VIEW
from repro.xmltree.builder import tree
from repro.xmltree.document import Document


@pytest.fixture
def doc():
    return Document.from_tree(
        tree(("a", ("b", ("c",)), ("b", ("c",), ("c",))))
    )


class TestEnumeration:
    def test_all_bindings_enumerated(self, doc):
        bindings = enumerate_bindings(doc, parse_query("/a/b/c"))
        assert len(bindings) == 3  # (b1,c2), (b3,c4), (b3,c5)

    def test_binding_covers_all_pattern_nodes(self, doc):
        pattern = parse_query("/a/b/c")
        (first, *_rest) = enumerate_bindings(doc, pattern)
        assert len(first) == 3

    def test_descendant_axis(self, doc):
        assert evaluate_reference(doc, parse_query("//c")) == {2, 4, 5}

    def test_wildcard(self, doc):
        assert evaluate_reference(doc, parse_query("/a/*")) == {1, 3}

    def test_no_match(self, doc):
        assert evaluate_reference(doc, parse_query("/a/x")) == set()


class TestSecureFilters:
    def test_cho_filters_bound_nodes_only(self, doc):
        # Block b(1); //c doesn't bind b, so c(2) survives under Cho.
        masks = [1, 0, 1, 1, 1, 1]
        assert evaluate_reference(
            doc, parse_query("//c"), masks, 0, CHO
        ) == {2, 4, 5}
        # /a/b/c does bind b(1): only the second b's cs survive.
        assert evaluate_reference(
            doc, parse_query("/a/b/c"), masks, 0, CHO
        ) == {4, 5}

    def test_view_prunes_subtrees(self, doc):
        masks = [1, 0, 1, 1, 1, 1]
        assert evaluate_reference(doc, parse_query("//c"), masks, 0, VIEW) == {4, 5}

    def test_view_blocked_root_blocks_everything(self, doc):
        masks = [0, 1, 1, 1, 1, 1]
        assert evaluate_reference(doc, parse_query("//c"), masks, 0, VIEW) == set()
        # Cho doesn't bind the root for //c.
        assert evaluate_reference(doc, parse_query("//c"), masks, 0, CHO) == {2, 4, 5}

    def test_unknown_semantics(self, doc):
        with pytest.raises(ValueError):
            evaluate_reference(doc, parse_query("//c"), [1] * 6, 0, "nope")

    def test_no_subject_means_non_secure(self, doc):
        assert evaluate_reference(doc, parse_query("//c"), [0] * 6, None) == {2, 4, 5}
