"""Kernel-registry and backend-equivalence suite.

Two layers of guarantees:

1. **Primitive equivalence** — for arbitrary sorted integer inputs, the
   stdlib and numpy kernels return byte-identical ``array('q')`` outputs
   for every primitive (``filter_runs``, ``take_eq``, ``join_ranges``).
2. **Query-level equivalence** — whole secure evaluations (both
   semantics, every labeling backend, memory and store-backed) return
   identical positions *and* identical accounting whichever backend is
   active.

The numpy legs skip cleanly when numpy is absent, so the suite is the
same file in both CI legs; ``REPRO_KERNELS`` / :func:`set_backend`
select explicitly.
"""

import random
from array import array

import pytest

from repro.acl.synthetic import SyntheticACLConfig, generate_synthetic_acl
from repro.exec import kernels as K
from repro.exec.kernels import (
    StdlibKernels,
    active_kernels,
    available_backends,
    set_backend,
)
from repro.nok.engine import QueryEngine
from repro.secure.semantics import CHO, VIEW
from repro.xmark.generator import XMarkConfig, generate_document

HAS_NUMPY = "numpy" in available_backends()
needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")

QUERIES = ("//item", "//item[name]/quantity", "//listitem//keyword")


@pytest.fixture(autouse=True)
def _restore_backend():
    yield
    set_backend("auto" if HAS_NUMPY else "stdlib")


@pytest.fixture(scope="module")
def doc():
    return generate_document(XMarkConfig(n_items=20, seed=11))


@pytest.fixture(scope="module")
def matrix(doc):
    return generate_synthetic_acl(
        doc,
        SyntheticACLConfig(
            accessibility_ratio=0.55, propagation_ratio=0.3, seed=9
        ),
        n_subjects=3,
    )


# -- registry ------------------------------------------------------------------


def test_stdlib_always_available():
    assert "stdlib" in available_backends()
    assert set_backend("stdlib").name == "stdlib"


def test_active_kernels_is_cached():
    pinned = set_backend("stdlib")
    assert active_kernels() is pinned


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        set_backend("cuda")


def test_env_variable_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS", "stdlib")
    assert set_backend(None).name == "stdlib"


@needs_numpy
def test_numpy_selected_automatically_when_importable():
    assert set_backend("auto").name == "numpy"


def test_explicit_numpy_without_numpy_fails():
    if HAS_NUMPY:
        assert set_backend("numpy").name == "numpy"
    else:
        with pytest.raises(ImportError):
            set_backend("numpy")


# -- primitive equivalence -----------------------------------------------------


def _random_runs(rng, hi):
    starts = array("q", sorted(rng.sample(range(hi), rng.randint(1, 40))))
    if starts[0] != 0:
        starts.insert(0, 0)
    flags = bytes(rng.randint(0, 1) for _ in starts)
    return starts, flags


@needs_numpy
def test_filter_runs_equivalence_random():
    rng = random.Random(1234)
    stdlib, numpy_k = StdlibKernels(), K.NumpyKernels()
    for _ in range(50):
        hi = rng.randint(1, 3000)
        starts, flags = _random_runs(rng, hi)
        positions = array(
            "q", sorted(rng.sample(range(hi), min(hi, rng.randint(0, 200))))
        )
        a = stdlib.filter_runs(positions, starts, flags, hi)
        b = numpy_k.filter_runs(positions, starts, flags, hi)
        assert a == b and a.typecode == b.typecode == "q"


@needs_numpy
def test_take_eq_equivalence_random():
    rng = random.Random(99)
    stdlib, numpy_k = StdlibKernels(), K.NumpyKernels()
    for typecode in ("H", "I", "q"):
        values = array(typecode, [rng.randint(0, 50) for _ in range(500)])
        base = 1000
        positions = array(
            "q", sorted(rng.sample(range(base, base + 500), 200))
        )
        for target in (0, 7, 50, 51):
            a = stdlib.take_eq(positions, values, target, base)
            b = numpy_k.take_eq(positions, values, target, base)
            assert list(a) == list(b)
    # plain-list values route both backends through the same code
    values = [rng.randint(0, 5) for _ in range(64)]
    positions = array("q", range(64))
    assert list(stdlib.take_eq(positions, values, 3)) == list(
        numpy_k.take_eq(positions, values, 3)
    )


@needs_numpy
def test_join_ranges_equivalence_random():
    rng = random.Random(7)
    stdlib, numpy_k = StdlibKernels(), K.NumpyKernels()
    for _ in range(50):
        haystack = array(
            "q", sorted(rng.sample(range(5000), rng.randint(0, 300)))
        )
        anchors = array("q", sorted(rng.sample(range(5000), 50)))
        ends = array("q", (a + rng.randint(0, 400) for a in anchors))
        a_lo, a_hi = stdlib.join_ranges(anchors, ends, haystack)
        b_lo, b_hi = numpy_k.join_ranges(anchors, ends, haystack)
        assert list(a_lo) == list(b_lo)
        assert list(a_hi) == list(b_hi)


@needs_numpy
def test_empty_inputs_agree():
    stdlib, numpy_k = StdlibKernels(), K.NumpyKernels()
    empty = array("q")
    for k in (stdlib, numpy_k):
        assert k.filter_runs(empty, array("q", [0]), b"\x01", 10) == empty
        assert k.filter_runs(array("q", [1]), array("q"), b"", 10) == empty
        assert list(k.take_eq(empty, array("H"), 1)) == []
        los, his = k.join_ranges(empty, empty, empty)
        assert list(los) == list(his) == []


# -- query-level equivalence ---------------------------------------------------


def _positions_and_stats(engine, query, subject, semantics):
    result = engine.evaluate(query, subject=subject, semantics=semantics)
    stats = result.stats
    return result.positions, (
        stats.candidates,
        stats.candidates_skipped_by_header,
        stats.candidates_skipped_by_runs,
        stats.access_checks,
        stats.probes_saved,
    )


@needs_numpy
@pytest.mark.parametrize("use_store", (False, True))
@pytest.mark.parametrize("semantics", (CHO, VIEW))
@pytest.mark.parametrize("backend", ("dol", "cam", "naive"))
def test_queries_identical_across_kernel_backends(
    doc, matrix, backend, semantics, use_store
):
    engine = QueryEngine.build(
        doc, matrix, labeling=backend, use_store=use_store,
        **({"page_size": 256} if use_store else {}),
    )
    for query in QUERIES:
        for subject in range(matrix.n_subjects):
            set_backend("stdlib")
            with_stdlib = _positions_and_stats(engine, query, subject, semantics)
            set_backend("numpy")
            with_numpy = _positions_and_stats(engine, query, subject, semantics)
            assert with_stdlib == with_numpy


def test_stats_report_active_backend(doc, matrix):
    set_backend("stdlib")
    engine = QueryEngine.build(doc, matrix)
    result = engine.evaluate("//item", subject=0)
    assert result.stats.kernel_backend == "stdlib"


def test_columnar_decodes_counted_store_backed(doc, matrix):
    engine = QueryEngine.build(doc, matrix, use_store=True, page_size=256)
    result = engine.evaluate("//item", subject=0)
    assert result.stats.pages_decoded_columnar > 0
    assert engine.store.columnar_decodes >= result.stats.pages_decoded_columnar


def test_explain_analyze_shows_kernel_line(doc, matrix):
    set_backend("stdlib")
    engine = QueryEngine.build(doc, matrix, use_store=True, page_size=256)
    _, text = engine.explain_analyze("//item", subject=0)
    assert "kernels: stdlib" in text
    assert "columnar pages decoded=" in text


def test_service_metrics_report_kernels(doc, matrix):
    from repro.server.service import QueryService, ServiceConfig

    engine = QueryEngine.build(doc, matrix, use_store=True, page_size=256)
    service = QueryService(engine, ServiceConfig(workers=1))
    try:
        service.evaluate("//item", subject=0)
        metrics = service.metrics()
        assert metrics["kernels"]["backend"] in ("stdlib", "numpy")
        assert "stdlib" in metrics["kernels"]["available"]
        assert metrics["columnar_decodes"] > 0
    finally:
        service.close()
