"""Integration tests exercising the full pipeline across modules.

These follow the paper's own story: specify a policy, materialize the
accessibility map, compress it into a DOL embedded in block storage, and
answer twig queries securely — then update rights and query again.
"""

import pytest

from repro.acl.policy import Policy
from repro.acl.surrogates import generate_livelink
from repro.acl.synthetic import SyntheticACLConfig, generate_correlated_acl
from repro.cam.cam import CAM
from repro.dol.labeling import DOL
from repro.nok.engine import QueryEngine
from repro.nok.pattern import parse_query
from repro.nok.reference import evaluate_reference
from repro.secure.semantics import CHO, VIEW
from repro.xmark.generator import XMarkConfig, generate_document
from repro.xmltree.parser import parse
from repro.xmltree.serializer import serialize
from repro.xmltree.document import Document


class TestPolicyToQueryPipeline:
    """Rules -> matrix -> DOL -> secure evaluation, end to end."""

    @pytest.fixture(scope="class")
    def setting(self):
        doc = generate_document(XMarkConfig(n_items=40, seed=21))
        policy = Policy(doc, n_subjects=2)
        policy.grant(0, "/site")                       # subject 0: everything
        policy.grant(1, "/site/categories")            # subject 1: categories only
        policy.deny(1, "//keyword")                    # ...but no keywords
        matrix = policy.compile()
        return doc, matrix

    def test_policy_compiles_to_expected_rights(self, setting):
        doc, matrix = setting
        categories = doc.positions_with_tag("categories")[0]
        assert matrix.accessible(1, categories)
        assert not matrix.accessible(1, 0)
        for keyword in doc.positions_with_tag("keyword"):
            assert not matrix.accessible(1, keyword)

    def test_secure_results_respect_policy(self, setting):
        doc, matrix = setting
        engine = QueryEngine.build(doc, matrix)
        # subject 1 cannot see the document root: rooted queries die...
        assert engine.evaluate("/site/categories", subject=1).positions == []
        # ...but descendant queries inside categories work (Cho semantics).
        bolds = engine.evaluate("//category//bold", subject=1)
        assert set(bolds.positions) == evaluate_reference(
            doc, parse_query("//category//bold"), matrix.masks(), 1, CHO
        )

    def test_dol_round_trips_policy_output(self, setting):
        _doc, matrix = setting
        assert DOL.from_matrix(matrix).to_matrix() == matrix


class TestStorePipelineWithUpdates:
    """Block store + secure queries + accessibility updates."""

    @pytest.fixture
    def engine(self):
        doc = generate_document(XMarkConfig(n_items=30, seed=33))
        matrix = generate_correlated_acl(doc, n_subjects=4, n_profiles=2)
        return QueryEngine.build(
            doc, matrix, use_store=True, page_size=512, buffer_capacity=16
        )

    def test_update_changes_query_answers(self, engine):
        doc = engine.doc
        items = doc.positions_with_tag("item")
        target = items[0]
        end = doc.subtree_end(target)

        engine.store.update_subject_range(target, end, 0, False)
        blocked = set(engine.evaluate("//item", subject=0).positions)
        assert target not in blocked

        engine.store.update_subject_range(target, end, 0, True)
        unblocked = set(engine.evaluate("//item", subject=0).positions)
        assert target in unblocked

    def test_updates_keep_oracle_agreement(self, engine):
        doc = engine.doc
        # Flip a few subtrees, then check all queries against the oracle.
        for pos in (5, 60, 200):
            if pos < len(doc):
                engine.store.update_subject_range(
                    pos, doc.subtree_end(pos), 1, False
                )
        masks = engine.dol.to_masks()
        got = set(engine.evaluate("//listitem//keyword", subject=1).positions)
        want = evaluate_reference(
            doc, parse_query("//listitem//keyword"), masks, 1, CHO
        )
        assert got == want

    def test_store_survives_cache_drops_between_queries(self, engine):
        before = set(engine.evaluate("//parlist//parlist", subject=2).positions)
        engine.store.drop_caches()
        after = set(engine.evaluate("//parlist//parlist", subject=2).positions)
        assert before == after


class TestXMLRoundTripPipeline:
    def test_parse_label_query(self):
        """Raw XML text in, secure answers out."""
        doc = generate_document(XMarkConfig(n_items=15, seed=2))
        text = serialize(doc.to_tree())
        doc2 = Document.from_tree(parse(text))
        config = SyntheticACLConfig(accessibility_ratio=0.7, seed=4)
        from repro.acl.synthetic import generate_synthetic_acl

        matrix = generate_synthetic_acl(doc2, config)
        engine = QueryEngine.build(doc2, matrix)
        result = engine.evaluate("//item//emph", subject=0)
        want = evaluate_reference(
            doc2, parse_query("//item//emph"), matrix.masks(), 0, CHO
        )
        assert set(result.positions) == want


class TestMultiUserSurrogatePipeline:
    def test_livelink_dol_and_cam_agree_per_user(self):
        dataset = generate_livelink(n_items=300, n_groups=4, n_users=10, seed=6)
        dol = DOL.from_matrix(dataset.matrix, mode="see")
        for subject in range(0, dataset.n_subjects, 3):
            cam = CAM.from_matrix(dataset.doc, dataset.matrix, subject, mode="see")
            vector = dataset.matrix.subject_vector(subject, "see")
            assert cam.to_vector() == vector
            assert [
                dol.accessible(subject, pos) for pos in range(len(dataset.doc))
            ] == vector

    def test_user_effective_rights_union_groups(self):
        dataset = generate_livelink(n_items=200, n_groups=4, n_users=8, seed=9)
        registry = dataset.registry
        user = registry.id_of("user3")
        effective = registry.effective_subjects(user)
        view = dataset.matrix.user_mask_view(effective, "see")
        own = dataset.matrix.subject_vector(user, "see")
        # the union view can only add rights on top of the user's own
        assert all(v or not o for v, o in zip(view, own))
