"""``stream_answer_fragments`` as the serving stack's transport source.

The wire protocol's ``fragment`` frames carry this iterator's output
verbatim, so its contract is load-bearing for the whole streaming
stack: document-order fragments under ``ordered=True``, early
termination that actually stops store reads, identical output across
executor modes, snapshot pinning for the stream's lifetime, and
degraded (subset) results around quarantined pages.
"""

import pytest

from repro.errors import PageCorruptionError
from repro.nok.engine import QueryEngine
from repro.secure.dissemination import stream_answer_fragments

QUERY = "//item/name"


@pytest.fixture(scope="module")
def store_engine(xmark_doc, xmark_acl):
    engine = QueryEngine.build(
        xmark_doc, xmark_acl, use_store=True, page_size=512
    )
    yield engine
    engine.store.close()


def drain(stream):
    try:
        return list(stream)
    finally:
        stream.close()


class TestOrderingAndContent:
    def test_ordered_fragments_arrive_in_document_order(self, store_engine):
        fragments = drain(
            stream_answer_fragments(store_engine, QUERY, 0, ordered=True)
        )
        positions = [pos for pos, _ in fragments]
        assert positions == sorted(positions)
        assert len(positions) == len(set(positions))

    def test_fragments_cover_exactly_the_engine_answers(self, store_engine):
        fragments = drain(stream_answer_fragments(store_engine, QUERY, 0))
        result = store_engine.evaluate(QUERY, subject=0)
        assert sorted(pos for pos, _ in fragments) == sorted(result.positions)
        assert all(xml.startswith("<name") for _, xml in fragments)

    def test_exec_modes_produce_identical_fragments(self, store_engine):
        runs = [
            sorted(
                drain(
                    stream_answer_fragments(
                        store_engine, QUERY, 1, exec_mode=mode,
                        use_run_cache=False,
                    )
                )
            )
            for mode in (None, "batch", "tuple")
        ]
        assert runs[0] == runs[1] == runs[2]
        assert runs[0]  # the comparison is not vacuous


class TestEarlyTermination:
    def test_limit_stops_store_reads_early(self, store_engine):
        full = stream_answer_fragments(
            store_engine, "//item", 0, use_run_cache=False
        )
        n_full = len(drain(full))
        assert n_full > 2
        limited = stream_answer_fragments(
            store_engine, "//item", 0, limit=1, use_run_cache=False
        )
        got = drain(limited)
        assert len(got) == 1
        # the pipeline stopped pulling: far fewer pages were ever read
        assert (
            limited.stats.logical_page_reads < full.stats.logical_page_reads
        )

    def test_close_abandons_the_plan_mid_stream(self, store_engine):
        full = stream_answer_fragments(
            store_engine, "//item", 0, use_run_cache=False
        )
        drain(full)
        abandoned = stream_answer_fragments(
            store_engine, "//item", 0, use_run_cache=False
        )
        next(abandoned)  # one fragment, then the subscriber walks away
        abandoned.close()
        assert (
            abandoned.stats.logical_page_reads
            < full.stats.logical_page_reads
        )
        # closing is idempotent and iteration is over
        abandoned.close()
        with pytest.raises(StopIteration):
            next(abandoned)


class TestSnapshotPinning:
    def test_stream_holds_its_epoch_across_an_update(self, store_engine):
        store = store_engine.store
        stream = stream_answer_fragments(store_engine, QUERY, 0, ordered=True)
        pinned = stream.epoch
        first = next(stream)
        store.update_subject_range(0, 1, subject=2, value=True)
        try:
            rest = list(stream)
        finally:
            stream.close()
        assert stream.epoch == pinned
        assert store.snapshot().epoch == pinned + 1
        # the whole answer reads the pinned epoch: identical to a fresh
        # stream taken against the old snapshot's answers
        again = drain(
            stream_answer_fragments(store_engine, QUERY, 0, ordered=True)
        )
        assert [first] + rest == again


class TestDegradedResults:
    def test_strict_stream_raises_on_quarantine(self, store_engine):
        store = store_engine.store
        store.quarantined.update(range(4096))
        try:
            stream = stream_answer_fragments(
                store_engine, QUERY, 0, strict=True, use_run_cache=False
            )
            with pytest.raises(PageCorruptionError):
                drain(stream)
        finally:
            store.clear_quarantine()

    def test_degraded_stream_yields_a_subset(self, store_engine):
        store = store_engine.store
        full = drain(
            stream_answer_fragments(
                store_engine, QUERY, 0, use_run_cache=False
            )
        )
        # quarantine a slice of the page space: strict=False skips it
        store.quarantined.update(range(0, 4096, 3))
        try:
            degraded = stream_answer_fragments(
                store_engine, QUERY, 0, strict=False, use_run_cache=False
            )
            got = drain(degraded)
            assert set(got) <= set(full)
            assert len(got) < len(full)
            assert degraded.stats.corrupted_pages
        finally:
            store.clear_quarantine()
