"""Unit tests for XML serialization and round-tripping."""

from repro.xmltree.builder import tree
from repro.xmltree.document import Document
from repro.xmltree.node import Node
from repro.xmltree.parser import parse
from repro.xmltree.serializer import escape_attr, escape_text, serialize


class TestEscaping:
    def test_text_escapes(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_attr_escapes_quotes(self):
        assert escape_attr('say "hi" & go') == "say &quot;hi&quot; &amp; go"


class TestSerialize:
    def test_empty_element_self_closes(self):
        assert serialize(Node("a")) == "<a/>"

    def test_text_and_children(self):
        root = tree(("a", "hello", ("b",)))
        assert serialize(root) == "<a>hello<b/></a>"

    def test_attributes_rendered(self):
        node = Node("a", attrs={"id": "1"})
        assert serialize(node) == '<a id="1"/>'

    def test_declaration(self):
        out = serialize(Node("a"), declaration=True)
        assert out.startswith("<?xml")

    def test_indented_output_parses_back(self, paper_tree):
        pretty = serialize(paper_tree, indent=2)
        assert "\n" in pretty
        assert parse(pretty).structurally_equal(paper_tree)

    def test_document_input(self, paper_doc):
        out = serialize(paper_doc)
        assert parse(out).structurally_equal(paper_doc.to_tree())


class TestRoundTrip:
    def test_compact_roundtrip(self, paper_tree):
        assert parse(serialize(paper_tree)).structurally_equal(paper_tree)

    def test_special_characters_roundtrip(self):
        root = tree(("a", ("b", 'quotes " and <angles> & amps')))
        again = parse(serialize(root))
        assert again.children[0].text == 'quotes " and <angles> & amps'

    def test_xmark_roundtrip(self, xmark_doc):
        text = serialize(xmark_doc.to_tree())
        doc2 = Document.from_tree(parse(text))
        assert doc2.tags == xmark_doc.tags
        assert doc2.subtree == xmark_doc.subtree
        assert doc2.texts == xmark_doc.texts
