"""Differential test: the three labeling backends are indistinguishable.

The refactor's end-to-end oracle. Over a seeded grid of
(document, policy, query) triples — more than fifty of them — and both
secure semantics (``cho`` and ``view``), the DOL, CAM and naive backends
must produce identical answer sets and identical secure-pruning
decisions. The DOL is the reference; any divergence is a bug in one of
the engines, not a matter of taste.
"""

import pytest

from repro.acl.synthetic import SyntheticACLConfig, generate_synthetic_acl
from repro.labeling.registry import available_backends, build_labeling
from repro.nok.engine import QueryEngine
from repro.secure.semantics import CHO, VIEW
from repro.xmark.generator import XMarkConfig, generate_document

BACKENDS = ("dol", "cam", "naive")

#: Seeded document grid: (n_items, generator seed).
DOC_CONFIGS = (
    (4, 7),
    (8, 21),
    (12, 99),
)

#: Seeded policy grid: (n_subjects, accessibility, propagation, acl seed).
ACL_CONFIGS = (
    (1, 0.5, 0.3, 1),
    (2, 0.7, 0.2, 13),
    (3, 0.3, 0.5, 42),
    (4, 0.9, 0.1, 77),
)

QUERY_SET = (
    "//item",
    "//person/name",
    "/site/regions",
    "//item[name]/quantity",
    "//listitem//keyword",
)

#: The acceptance bar: at least fifty distinct (doc, policy, query) triples.
N_TRIPLES = len(DOC_CONFIGS) * len(ACL_CONFIGS) * len(QUERY_SET)


def test_grid_is_large_enough():
    assert N_TRIPLES >= 50
    assert set(BACKENDS) == set(available_backends())


def _setup(doc_config, acl_config):
    n_items, doc_seed = doc_config
    n_subjects, accessibility, propagation, acl_seed = acl_config
    doc = generate_document(XMarkConfig(n_items=n_items, seed=doc_seed))
    matrix = generate_synthetic_acl(
        doc,
        SyntheticACLConfig(
            propagation_ratio=propagation,
            accessibility_ratio=accessibility,
            seed=acl_seed,
        ),
        n_subjects=n_subjects,
    )
    labelings = {name: build_labeling(name, doc, matrix) for name in BACKENDS}
    engines = {
        name: QueryEngine(doc, labeling=labeling)
        for name, labeling in labelings.items()
    }
    return doc, matrix, labelings, engines


@pytest.mark.parametrize("acl_config", ACL_CONFIGS)
@pytest.mark.parametrize("doc_config", DOC_CONFIGS)
def test_backends_agree_on_pruning_decisions(doc_config, acl_config):
    """Every per-node accessibility decision — the input to secure pruning —
    is identical across backends, for every subject."""
    doc, matrix, labelings, _ = _setup(doc_config, acl_config)
    reference = labelings["dol"]
    for name in ("cam", "naive"):
        other = labelings[name]
        for subject in range(matrix.n_subjects):
            mismatches = [
                pos
                for pos in range(len(doc))
                if other.accessible(subject, pos)
                != reference.accessible(subject, pos)
            ]
            assert not mismatches, (name, subject, mismatches[:10])


@pytest.mark.parametrize("acl_config", ACL_CONFIGS)
@pytest.mark.parametrize("doc_config", DOC_CONFIGS)
def test_backends_agree_on_answer_sets(doc_config, acl_config):
    """Identical secure answers for every query, subject and semantics."""
    _, matrix, _, engines = _setup(doc_config, acl_config)
    for query in QUERY_SET:
        for semantics in (CHO, VIEW):
            for subject in range(matrix.n_subjects):
                answers = {
                    name: sorted(
                        engine.evaluate(
                            query, subject=subject, semantics=semantics
                        ).positions
                    )
                    for name, engine in engines.items()
                }
                assert answers["cam"] == answers["dol"], (
                    query, semantics, subject,
                )
                assert answers["naive"] == answers["dol"], (
                    query, semantics, subject,
                )


@pytest.mark.parametrize("acl_config", ACL_CONFIGS[:2])
@pytest.mark.parametrize("doc_config", DOC_CONFIGS[:2])
def test_backends_agree_after_accessibility_update(doc_config, acl_config):
    """Agreement must survive the update hooks: apply the same grant and
    revoke through every backend, then re-run the differential check."""
    doc, matrix, labelings, engines = _setup(doc_config, acl_config)
    lo, hi = 2, min(len(doc) // 2 + 2, len(doc))
    for labeling in labelings.values():
        labeling.set_subject_accessibility(lo, hi, 0, True)
        labeling.set_node_accessibility(1, 0, False)
        labeling.validate()
    reference = labelings["dol"].to_masks()
    for name in ("cam", "naive"):
        assert labelings[name].to_masks() == reference, name
    for semantics in (CHO, VIEW):
        answers = {
            name: sorted(
                engine.evaluate(
                    "//item", subject=0, semantics=semantics
                ).positions
            )
            for name, engine in engines.items()
        }
        assert answers["cam"] == answers["dol"] == answers["naive"], semantics


@pytest.mark.parametrize("semantics", (CHO, VIEW))
def test_insecure_evaluation_unaffected_by_backend(semantics):
    """Without a subject the backends never even get probed; answers match
    the label-free engine."""
    doc = generate_document(XMarkConfig(n_items=6, seed=3))
    matrix = generate_synthetic_acl(
        doc, SyntheticACLConfig(seed=9), n_subjects=2
    )
    plain = QueryEngine(doc)
    for name in BACKENDS:
        engine = QueryEngine(doc, labeling=build_labeling(name, doc, matrix))
        for query in QUERY_SET:
            assert sorted(engine.evaluate(query).positions) == sorted(
                plain.evaluate(query).positions
            ), (name, query)
