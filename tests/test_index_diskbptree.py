"""Unit and property tests for the disk-backed B+-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexError_
from repro.index.diskbptree import DiskBPlusTree


class TestBasics:
    def test_empty(self):
        tree = DiskBPlusTree(page_size=128)
        assert tree.search("x") == []
        assert len(tree) == 0
        assert tree.height() == 1

    def test_insert_and_search(self):
        tree = DiskBPlusTree(page_size=128)
        tree.insert("b", 2)
        tree.insert("a", 1)
        tree.insert("b", 5)
        assert tree.search("a") == [1]
        assert tree.search("b") == [2, 5]
        assert len(tree) == 3

    def test_duplicates_across_page_splits(self):
        tree = DiskBPlusTree(page_size=96)
        for posting in range(200):
            tree.insert("same-key", posting)
        assert tree.search("same-key") == list(range(200))
        assert tree.height() > 1

    def test_unicode_keys(self):
        tree = DiskBPlusTree(page_size=256)
        tree.insert("tag-ü", 1)
        tree.insert("標籤", 2)
        assert tree.search("tag-ü") == [1]
        assert tree.search("標籤") == [2]

    def test_oversized_key_rejected(self):
        tree = DiskBPlusTree(page_size=96)
        with pytest.raises(IndexError_):
            tree.insert("k" * 200, 1)


class TestScale:
    def test_many_entries_match_reference(self):
        rng = random.Random(7)
        tree = DiskBPlusTree(page_size=128)
        reference = {}
        for _ in range(2000):
            key = f"tag{rng.randrange(60):03d}"
            posting = rng.randrange(10**6)
            tree.insert(key, posting)
            reference.setdefault(key, []).append(posting)
        for key, postings in reference.items():
            assert tree.search(key) == sorted(postings)
        tree.validate()
        assert tree.height() >= 3

    def test_items_sorted(self):
        rng = random.Random(8)
        tree = DiskBPlusTree(page_size=128)
        for _ in range(500):
            tree.insert(f"k{rng.randrange(30)}", rng.randrange(1000))
        items = list(tree.items())
        assert items == sorted(items)

    def test_range_query(self):
        tree = DiskBPlusTree(page_size=128)
        for i in range(300):
            tree.insert(f"k{i % 20:02d}", i)
        got = [k for k, _ in tree.range("k05", "k07")]
        assert set(got) == {"k05", "k06", "k07"}
        assert got == sorted(got)


class TestDiskBehaviour:
    def test_file_backed(self, tmp_path):
        path = str(tmp_path / "index.db")
        tree = DiskBPlusTree(path=path, page_size=128)
        for i in range(200):
            tree.insert(f"k{i % 10}", i)
        tree.flush()
        assert tree.search("k3") == list(range(3, 200, 10))
        tree.close()

    def test_probes_cost_bounded_io(self):
        tree = DiskBPlusTree(page_size=128, buffer_capacity=4)
        for i in range(2000):
            tree.insert(f"key{i:05d}", i)
        tree.flush()
        tree.buffer.clear()
        tree.pager.stats.reset()
        tree.search("key01000")
        # a point probe reads about one page per level
        assert tree.pager.stats.reads <= tree.height() + 1

    def test_validate_detects_count_drift(self):
        tree = DiskBPlusTree(page_size=128)
        tree.insert("a", 1)
        tree._n_entries = 5
        with pytest.raises(IndexError_):
            tree.validate()


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=25), st.integers(min_value=0, max_value=999)),
        max_size=300,
    ),
    st.sampled_from([96, 128, 256]),
)
@settings(max_examples=60, deadline=None)
def test_property_matches_dict(pairs, page_size):
    tree = DiskBPlusTree(page_size=page_size)
    reference = {}
    for key_n, posting in pairs:
        key = f"k{key_n:02d}"
        tree.insert(key, posting)
        reference.setdefault(key, []).append(posting)
    for key, postings in reference.items():
        assert tree.search(key) == sorted(postings)
    tree.validate()
