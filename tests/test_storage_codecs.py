"""Codec-layer tests: container round-trips, page formats, the fit
invariant, the device layer, and the decoded-page cache.

The load-bearing property is totality: ``decode_container`` must invert
``encode_container`` on *arbitrary* bytes for every codec id, because the
structure-delta coder is not a textbook byte compressor — it treats the
input as a u16 word stream — and a subtle asymmetry there silently
corrupts pages.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PageFormatError, StorageError
from repro.storage.codecs import (
    CODEC_DELTA,
    CODEC_IDS,
    CODEC_NONE,
    CODEC_ZLIB,
    CompressedPageFormat,
    PlainPageFormat,
    codes_container,
    decode_container,
    encode_container,
    entries_from_containers,
    resolve_page_format,
    structure_container,
    worst_case_codes_bytes,
)
from repro.storage.device import FileDevice, MemoryDevice, MmapDevice, open_device
from repro.storage.encoding import NodeEntry
from repro.storage.headers import PageHeader
from repro.storage.pagecache import DecodedPageCache


# -- container codecs: compress∘decompress = id --------------------------------


@pytest.mark.parametrize("codec_id", sorted(CODEC_IDS.values()))
@given(raw=st.binary(max_size=2048))
@settings(max_examples=120, deadline=None)
def test_container_roundtrip_arbitrary_bytes(codec_id, raw):
    blob = encode_container(codec_id, raw)
    assert decode_container(codec_id, blob) == raw


@pytest.mark.parametrize("codec_id", sorted(CODEC_IDS.values()))
@pytest.mark.parametrize(
    "raw",
    [b"", b"\x00", b"\xff", b"\x00" * 513, b"\xff\xff" * 100 + b"\x7f",
     bytes(range(256))],
)
def test_container_roundtrip_edges(codec_id, raw):
    assert decode_container(codec_id, encode_container(codec_id, raw)) == raw


def test_unknown_codec_id_rejected():
    with pytest.raises(PageFormatError):
        encode_container(99, b"x")
    with pytest.raises(PageFormatError):
        decode_container(99, b"x")


@pytest.mark.parametrize(
    "blob",
    [b"", b"\x80", b"\x04\x81", b"\x03\x00", b"\xff\xff\xff\xff\xff" * 3],
)
def test_corrupt_delta_blob_raises(blob):
    with pytest.raises(PageFormatError):
        decode_container(CODEC_DELTA, blob)


def test_corrupt_zlib_blob_raises():
    with pytest.raises(PageFormatError):
        decode_container(CODEC_ZLIB, b"not deflate data")


def test_delta_compresses_slowly_varying_words():
    """The structural columns the coder is built for: small deltas."""
    import struct

    words = list(range(100, 400))  # delta 1 per word -> ~1 byte per word
    raw = struct.pack(f"<{len(words)}H", *words)
    blob = encode_container(CODEC_DELTA, raw)
    assert len(blob) <= len(raw) // 2 + 8


# -- entry containers ----------------------------------------------------------


def _entries(spec):
    """spec: list of (tag, depth, subtree, code, is_transition)."""
    return [NodeEntry(*row) for row in spec]


@st.composite
def entry_lists(draw):
    n = draw(st.integers(min_value=0, max_value=40))
    rows = []
    for _ in range(n):
        rows.append(
            (
                draw(st.integers(0, 0xFFFF)),
                draw(st.integers(0, 0xFFFF)),
                draw(st.integers(0, 0xFFFFFFFF)),
                draw(st.integers(0, 0xFFFF)),
                draw(st.booleans()),
            )
        )
    # non-transition entries store code 0 on disk; mirror that here so
    # the round-trip comparison is exact
    return [
        NodeEntry(t, d, s, c if f else 0, f) for (t, d, s, c, f) in rows
    ]


@given(entries=entry_lists())
@settings(max_examples=80, deadline=None)
def test_entry_container_roundtrip(entries):
    rebuilt = entries_from_containers(
        len(entries), structure_container(entries), codes_container(entries)
    )
    assert rebuilt == entries


def test_container_length_mismatch_rejected():
    entries = _entries([(1, 1, 1, 0, False)])
    with pytest.raises(PageFormatError):
        entries_from_containers(2, structure_container(entries), b"\x00")
    with pytest.raises(PageFormatError):
        entries_from_containers(1, structure_container(entries), b"")


# -- page formats --------------------------------------------------------------


FORMATS = [
    PlainPageFormat(),
    CompressedPageFormat(structure="zlib", codes="zlib"),
    CompressedPageFormat(structure="structure-delta", codes="zlib"),
    CompressedPageFormat(structure="none", codes="none"),
]


@pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.structure_codec)
@given(entries=entry_lists(), data=st.data())
@settings(max_examples=60, deadline=None)
def test_page_roundtrip(fmt, entries, data):
    page_size = data.draw(st.sampled_from([1024, 4096]))
    entries = entries[: fmt.max_entries(page_size)]
    header = PageHeader(
        first_code=data.draw(st.integers(0, 0xFFFF)),
        change_bit=data.draw(st.integers(0, 1)),
        n_entries=len(entries),
    )
    page = fmt.encode_page(header, entries, page_size)
    assert len(page) == page_size
    out_header, out_entries = fmt.decode_page(page)
    assert out_header == header
    assert out_entries == entries


@pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.structure_codec)
@given(entries=entry_lists(), data=st.data())
@settings(max_examples=60, deadline=None)
def test_columnar_decode_equals_entry_decode(fmt, entries, data):
    """The tentpole equivalence: ``decode_page_columns`` is an independent
    code path from ``decode_page``, and the NodeEntry view it exposes must
    match the entry decoder record-for-record on arbitrary pages."""
    page_size = data.draw(st.sampled_from([1024, 4096]))
    entries = entries[: fmt.max_entries(page_size)]
    first_code = data.draw(st.integers(0, 0xFFFF))
    header = PageHeader(
        first_code=first_code,
        change_bit=data.draw(st.integers(0, 1)),
        n_entries=len(entries),
    )
    page = fmt.encode_page(header, entries, page_size)

    ref_header, ref_entries = fmt.decode_page(page)
    cols = fmt.decode_page_columns(page)

    assert cols.header == ref_header
    assert cols.n == len(ref_entries)
    assert list(cols.entries) == ref_entries
    # the satellite columns agree with the reference records elementwise
    assert list(cols.tags) == [e.tag_id for e in ref_entries]
    assert list(cols.depths) == [e.depth for e in ref_entries]
    assert list(cols.subtrees) == [e.subtree for e in ref_entries]
    for offset, entry in enumerate(ref_entries):
        assert cols.entry_at(offset) == entry
        assert cols.is_transition(offset) == entry.is_transition
    # running access codes fold first_code through the transitions
    code = first_code
    for offset, entry in enumerate(ref_entries):
        if entry.is_transition:
            code = entry.code
        assert cols.codes[offset] == code
    assert cols.nbytes > 0 or not entries


@pytest.mark.parametrize("fmt", FORMATS[1:], ids=lambda f: f.structure_codec)
@pytest.mark.parametrize("page_size", [256, 1024, 4096])
def test_fit_invariant_worst_case_codes(fmt, page_size):
    """Any page encode_page ACCEPTS must survive every entry becoming a
    transition — accessibility updates rewrite codes at fixed density, so
    an accepted page may never overflow on a codes-only change."""

    def typical(i):
        # the statistics encode_page is sized for: small tag alphabet,
        # ±1 depth walk, bounded subtree sizes, sparse transitions
        return NodeEntry(i % 23, 1 + i % 12, (i * 3) % 5000, 0, False)

    # find an accepted density the way the store does: back off from the
    # format's upper bound until the page fits
    n = fmt.max_entries(page_size)
    while True:
        entries = [typical(i) for i in range(n)]
        header = PageHeader(first_code=0, change_bit=False, n_entries=n)
        try:
            fmt.encode_page(header, entries, page_size)
            break
        except PageFormatError:
            assert n > 1
            n = max(1, n * 3 // 4)

    # worst case the codes container: every entry a transition, max code
    worst = [
        NodeEntry(e.tag_id, e.depth, e.subtree, 0xFFFF, True) for e in entries
    ]
    header = PageHeader(first_code=0, change_bit=True, n_entries=n)
    page = fmt.encode_page(header, worst, page_size)  # must not raise
    _, out = fmt.decode_page(page)
    assert out == worst
    assert worst_case_codes_bytes(n) >= len(codes_container(worst))


def test_incompressible_structure_falls_back_to_none():
    fmt = CompressedPageFormat(structure="zlib", codes="zlib")
    entries = [
        NodeEntry((i * 31013) & 0xFFFF, (i * 49999) & 0xFFFF,
                  (i * 2654435761) & 0xFFFFFFFF, 0, False)
        for i in range(64)
    ]
    header = PageHeader(first_code=0, change_bit=0, n_entries=len(entries))
    page = fmt.encode_page(header, entries, 4096)
    report = fmt.container_report(page)
    # whatever the codec chose per container, decode must still invert
    _, out = fmt.decode_page(page)
    assert out == entries
    assert report["structure"]["codec"] in ("zlib", "none")
    assert report["structure"]["logical"] == 8 * len(entries)


def test_page_overflow_raises():
    fmt = CompressedPageFormat()
    n = fmt.max_entries(256) + 1
    entries = [NodeEntry(i & 0xFFFF, 1, 1, 0, False) for i in range(n)]
    header = PageHeader(first_code=0, change_bit=0, n_entries=n)
    with pytest.raises(PageFormatError):
        fmt.encode_page(header, entries, 256)


def test_codec_header_bounds_checked():
    fmt = CompressedPageFormat()
    header = PageHeader(first_code=0, change_bit=0, n_entries=1)
    page = bytearray(fmt.encode_page(header, _entries([(1, 1, 1, 0, False)]), 256))
    # claim more container bytes than the page holds
    import struct as _s

    _s.pack_into("<I", page, 10, 0xFFFF)
    with pytest.raises(PageFormatError):
        fmt.decode_page(bytes(page))


def test_resolve_page_format_vocabulary():
    assert isinstance(resolve_page_format(None), PlainPageFormat)
    assert isinstance(resolve_page_format("none"), PlainPageFormat)
    fmt = resolve_page_format("structure-delta")
    assert fmt.catalog_tag == {"structure": "structure-delta", "codes": "zlib"}
    fmt = resolve_page_format({"structure": "zlib", "codes": "none"})
    assert (fmt.structure_codec, fmt.codes_codec) == ("zlib", "none")
    with pytest.raises(StorageError):
        resolve_page_format("lz4")
    with pytest.raises(StorageError):
        resolve_page_format({"structure": "lz4"})


# -- device layer --------------------------------------------------------------


def _device_roundtrip(device):
    device.extend(256)
    device.write(0, b"A" * 128)
    device.write(128, b"B" * 128)
    assert bytes(device.read(0, 128)) == b"A" * 128
    assert bytes(device.read(128, 128)) == b"B" * 128
    device.extend(128)
    device.write(256, b"C" * 128)
    assert bytes(device.read(256, 128)) == b"C" * 128
    assert device.size == 384


def test_memory_device_roundtrip():
    device = MemoryDevice()
    _device_roundtrip(device)
    device.close()
    assert device.closed


def test_file_device_roundtrip(tmp_path):
    path = str(tmp_path / "pages.bin")
    device = open_device(path, create=True, use_mmap=False)
    assert isinstance(device, FileDevice) and not isinstance(device, MmapDevice)
    _device_roundtrip(device)
    device.sync()
    device.close()
    assert os.path.getsize(path) == 384


def test_mmap_device_roundtrip_and_remap(tmp_path):
    device = open_device(str(tmp_path / "pages.bin"), create=True)
    assert isinstance(device, MmapDevice)
    _device_roundtrip(device)  # the second extend crosses the mapped extent
    view = device.read(0, 4)
    assert isinstance(view, memoryview)
    assert bytes(view) == b"AAAA"
    del view
    device.close()
    assert device.closed


def test_open_device_reopens_file(tmp_path):
    path = str(tmp_path / "pages.bin")
    device = open_device(path, create=True)
    device.extend(64)
    device.write(0, b"x" * 64)
    device.sync()
    device.close()
    reopened = open_device(path, create=False)
    assert bytes(reopened.read(0, 64)) == b"x" * 64
    reopened.close()


def test_open_device_memory_when_no_path():
    device = open_device(None, create=True)
    assert isinstance(device, MemoryDevice)
    device.close()


# -- decoded-page cache --------------------------------------------------------


class _Sized:
    """A stand-in decoded page with an explicit byte cost."""

    def __init__(self, label, nbytes):
        self.label = label
        self.nbytes = nbytes


def test_decoded_cache_lru_and_stats():
    cache = DecodedPageCache(capacity_bytes=200)
    assert cache.get(0) is None
    cache.put(0, _Sized("zero", 100))
    cache.put(1, _Sized("one", 100))
    assert cache.get(0).label == "zero"  # 0 now most-recent
    cache.put(2, _Sized("two", 100))  # over budget: evicts 1 (LRU)
    assert cache.get(1) is None
    assert cache.get(0).label == "zero"
    stats = cache.stats.snapshot()
    assert stats["evictions"] == 1
    assert stats["hits"] == 2
    assert stats["misses"] == 2
    assert stats["bytes_cached"] == cache.nbytes == 200


def test_decoded_cache_bytes_bound_holds_under_churn():
    budget = 1000
    cache = DecodedPageCache(capacity_bytes=budget)
    costs = [17, 250, 99, 403, 64, 128, 1, 333, 90, 210, 177]
    for page_id, cost in enumerate(costs * 3):
        cache.put(page_id % len(costs), _Sized(page_id, cost))
        assert cache.nbytes <= budget
        # the accounting gauge tracks the true total at every step
        held = sum(c for (_, c) in cache._pages.values())
        assert cache.nbytes == held == cache.stats.bytes_cached


def test_decoded_cache_admits_oversized_entry_alone():
    cache = DecodedPageCache(capacity_bytes=100)
    cache.put(0, _Sized("small", 60))
    cache.put(1, _Sized("huge", 500))  # larger than the whole budget
    assert cache.get(1).label == "huge"  # admitted, alone
    assert cache.get(0) is None
    assert len(cache) == 1


def test_decoded_cache_replacement_reaccounts_bytes():
    cache = DecodedPageCache(capacity_bytes=1000)
    cache.put(3, _Sized("v1", 400))
    cache.put(3, _Sized("v2", 100))  # same page re-decoded smaller
    assert cache.nbytes == 100
    assert cache.get(3).label == "v2"


def test_decoded_cache_invalidation():
    cache = DecodedPageCache(capacity_bytes=1000)
    cache.put(7, _Sized("seven", 300))
    cache.invalidate(7)
    assert cache.get(7) is None
    assert cache.stats.invalidations == 1
    assert cache.nbytes == 0
    cache.put(8, _Sized("eight", 300))
    cache.clear()
    assert len(cache) == 0
    assert cache.nbytes == 0


def test_decoded_cache_zero_capacity_disables():
    cache = DecodedPageCache(capacity_bytes=0)
    cache.put(1, _Sized("one", 10))
    assert cache.get(1) is None
    assert len(cache) == 0


def test_decoded_cache_sizeof_fallback_for_plain_objects():
    cache = DecodedPageCache(capacity_bytes=1 << 20)
    cache.put(0, b"x" * 64)  # no nbytes attr: charged via sys.getsizeof
    assert cache.nbytes >= 64
