"""Unit tests for the pluggable AccessLabeling backends.

Covers the registry, the three engines' conformance (probes, size
accounting, catalog round-trips, update hooks), the store integration for
hint-free backends, and backward compatibility with pre-refactor DOL
catalogs.
"""

import json

import pytest

from repro.acl.model import AccessMatrix
from repro.acl.synthetic import SyntheticACLConfig, generate_synthetic_acl
from repro.dol.labeling import DOL
from repro.errors import AccessControlError, UpdateError
from repro.labeling import (
    AccessLabeling,
    CAMLabeling,
    NaiveLabeling,
    available_backends,
    build_labeling,
    get_backend,
    register_backend,
)
from repro.nok.engine import QueryEngine
from repro.storage.nokstore import NoKStore
from repro.storage.persist import open_store, save_store
from repro.xmark.generator import XMarkConfig, generate_document
from repro.xmltree.builder import tree
from repro.xmltree.document import Document

BACKENDS = ("dol", "cam", "naive")


@pytest.fixture
def doc():
    return Document.from_tree(
        tree(
            (
                "site",
                ("regions", ("item", ("name", "anvil")), ("item", ("name", "rope"))),
                ("people", ("person", ("name", "ada")), ("person", ("name", "bob"))),
            )
        )
    )


@pytest.fixture
def matrix(doc):
    return generate_synthetic_acl(
        doc,
        SyntheticACLConfig(propagation_ratio=0.4, accessibility_ratio=0.6, seed=5),
        n_subjects=3,
    )


def build_all(doc, matrix):
    return {name: build_labeling(name, doc, matrix) for name in BACKENDS}


class TestRegistry:
    def test_builtins_registered(self):
        assert set(available_backends()) >= set(BACKENDS)

    def test_get_backend_resolves_classes(self):
        assert get_backend("dol") is DOL
        assert get_backend("cam") is CAMLabeling
        assert get_backend("naive") is NaiveLabeling

    def test_unknown_backend_rejected(self):
        with pytest.raises(AccessControlError, match="unknown labeling backend"):
            get_backend("bitmap")

    def test_unnamed_backend_rejected(self):
        class Nameless(NaiveLabeling):
            backend_name = "abstract"

        with pytest.raises(AccessControlError):
            register_backend(Nameless)

    def test_build_checks_matrix_coverage(self, doc):
        short = AccessMatrix(len(doc) - 1, 2)
        with pytest.raises(AccessControlError):
            build_labeling("dol", doc, short)


class TestConformance:
    def test_backend_names_and_hints(self, doc, matrix):
        built = build_all(doc, matrix)
        assert built["dol"].has_page_hints
        assert not built["cam"].has_page_hints
        assert not built["naive"].has_page_hints
        for name, labeling in built.items():
            assert isinstance(labeling, AccessLabeling)
            assert labeling.backend_name == name
            assert labeling.n_nodes == len(doc)

    def test_probes_agree_with_matrix(self, doc, matrix):
        for name, labeling in build_all(doc, matrix).items():
            for subject in range(matrix.n_subjects):
                for pos in range(len(doc)):
                    assert labeling.accessible(subject, pos) == matrix.accessible(
                        subject, pos
                    ), (name, subject, pos)
            assert labeling.to_masks() == matrix.masks(), name

    def test_accessible_any_is_union(self, doc, matrix):
        for name, labeling in build_all(doc, matrix).items():
            for pos in range(len(doc)):
                expected = any(
                    matrix.accessible(s, pos) for s in range(matrix.n_subjects)
                )
                assert labeling.accessible_any(
                    range(matrix.n_subjects), pos
                ) == expected, (name, pos)

    def test_out_of_range_probe_rejected(self, doc, matrix):
        for labeling in build_all(doc, matrix).values():
            with pytest.raises(AccessControlError):
                labeling.mask_at(len(doc))

    def test_size_accounting(self, doc, matrix):
        built = build_all(doc, matrix)
        assert built["naive"].n_labels == len(doc)
        assert built["dol"].n_labels == built["dol"].n_transitions
        assert built["cam"].n_labels == sum(
            built["cam"].cam_for(s).n_labels for s in range(matrix.n_subjects)
        )
        for labeling in built.values():
            assert labeling.size_bytes() > 0

    def test_validate_passes_on_fresh_builds(self, doc, matrix):
        for labeling in build_all(doc, matrix).values():
            labeling.validate()


class TestCatalogRoundTrip:
    def test_roundtrip_preserves_masks(self, doc, matrix):
        for name, labeling in build_all(doc, matrix).items():
            payload = json.loads(json.dumps(labeling.to_catalog()))
            rebuilt = get_backend(name).from_catalog(payload, doc)
            assert rebuilt.to_masks() == labeling.to_masks(), name
            rebuilt.validate()

    def test_naive_rejects_wrong_document(self, doc, matrix):
        labeling = build_labeling("naive", doc, matrix)
        small = Document.from_tree(tree(("a", ("b",))))
        with pytest.raises(AccessControlError):
            NaiveLabeling.from_catalog(labeling.to_catalog(), small)


class TestUpdateHooks:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_set_subject_accessibility(self, doc, matrix, name):
        labeling = build_labeling(name, doc, matrix)
        was = labeling.accessible(1, 3)
        labeling.set_subject_accessibility(2, 5, 1, not was)
        for pos in range(2, 5):
            assert labeling.accessible(1, pos) == (not was) or pos != 3
        assert labeling.accessible(1, 3) == (not was)
        labeling.validate()

    @pytest.mark.parametrize("name", BACKENDS)
    def test_insert_delete_move_roundtrip(self, doc, matrix, name):
        labeling = build_labeling(name, doc, matrix)
        reference = labeling.to_masks()
        labeling.insert_range(4, [0b101, 0b001])
        assert labeling.n_nodes == len(doc) + 2
        assert labeling.mask_at(4) == 0b101
        labeling.delete_range(4, 6)
        assert labeling.to_masks() == reference, name

    @pytest.mark.parametrize("name", BACKENDS)
    def test_move_range(self, doc, matrix, name):
        labeling = build_labeling(name, doc, matrix)
        masks = labeling.to_masks()
        labeling.move_range(1, 3, 0)
        expected = masks[1:3] + [masks[0]] + masks[3:]
        assert labeling.to_masks() == expected, name

    @pytest.mark.parametrize("name", BACKENDS)
    def test_invalid_updates_rejected(self, doc, matrix, name):
        labeling = build_labeling(name, doc, matrix)
        with pytest.raises(UpdateError):
            labeling.transform_range(5, 2, lambda m: m)
        with pytest.raises(UpdateError):
            labeling.insert_range(len(doc) + 1, [1])
        with pytest.raises(UpdateError):
            labeling.delete_range(0, len(doc))

    def test_cam_rebuilds_every_subject_on_update(self, doc, matrix):
        """CAM has no update locality: an accessibility change drops every
        per-subject map and the delta accounting rebuilds them all."""
        labeling = build_labeling("cam", doc, matrix)
        labeling.cam_for(0)
        assert labeling.rebuilt_subjects() == 1
        labeling.set_node_mask(2, 0b111)
        assert labeling.rebuilt_subjects() == matrix.n_subjects
        assert labeling.accessible(0, 2)
        labeling.validate()

    def test_cam_structural_edit_defers_label_count(self, doc, matrix):
        """Between a structural mask edit and rebind_document the CAM
        cannot count labels; the hook reports a zero delta and the maps
        rebuild only after the new document is bound."""
        labeling = build_labeling("cam", doc, matrix)
        delta = labeling.insert_range(len(doc), [0b1])
        assert delta == 0
        assert labeling.n_nodes == len(doc) + 1
        # Probes resolve again once the post-edit document is bound.
        bigger = Document.from_tree(
            tree(
                (
                    "site",
                    (
                        "regions",
                        ("item", ("name", "anvil")),
                        ("item", ("name", "rope")),
                    ),
                    ("people", ("person", ("name", "ada")), ("person", ("name", "bob"))),
                    ("extra",),
                )
            )
        )
        labeling.rebind_document(bigger)
        assert labeling.accessible(0, len(doc))
        labeling.validate()

    def test_cam_rebind_document(self, doc, matrix):
        labeling = build_labeling("cam", doc, matrix)
        labeling.cam_for(1)
        labeling.rebind_document(doc)
        assert labeling.rebuilt_subjects() == 0


class TestStoreIntegration:
    @pytest.mark.parametrize("name", ("cam", "naive"))
    def test_hint_free_store_answers_probes(self, doc, matrix, name):
        labeling = build_labeling(name, doc, matrix)
        store = NoKStore(doc, labeling, page_size=128)
        assert not store.has_page_hints
        for subject in range(matrix.n_subjects):
            for pos in range(len(doc)):
                assert store.accessible(subject, pos) == matrix.accessible(
                    subject, pos
                )
        assert not store.page_fully_inaccessible(0, 0)
        assert not store.page_fully_inaccessible_any(0, (0, 1))
        store.verify()

    @pytest.mark.parametrize("name", ("cam", "naive"))
    def test_hint_free_update_rewrites_no_pages(self, doc, matrix, name):
        labeling = build_labeling(name, doc, matrix)
        store = NoKStore(doc, labeling, page_size=128)
        cost = store.update_subject_range(1, 5, 0, True)
        assert cost.pages_rewritten == 0
        for pos in range(1, 5):
            assert store.accessible(0, pos)
        store.verify()

    def test_store_and_engine_share_labeling(self, doc, matrix):
        labeling = build_labeling("naive", doc, matrix)
        other = build_labeling("naive", doc, matrix)
        store = NoKStore(doc, labeling, page_size=128)
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            QueryEngine(doc, labeling=other, store=store)

    def test_engine_dol_alias(self, doc, matrix):
        labeling = build_labeling("cam", doc, matrix)
        engine = QueryEngine(doc, dol=labeling)
        assert engine.dol is labeling
        assert engine.labeling is labeling


class TestPersistence:
    @pytest.mark.parametrize("name", ("cam", "naive"))
    def test_save_reopen_hint_free_backend(self, tmp_path, name):
        doc = generate_document(XMarkConfig(n_items=10, seed=3))
        matrix = generate_synthetic_acl(
            doc, SyntheticACLConfig(accessibility_ratio=0.6, seed=2), n_subjects=2
        )
        labeling = build_labeling(name, doc, matrix)
        path = str(tmp_path / "store.db")
        with NoKStore(doc, labeling, path=path, page_size=512) as store:
            save_store(store)
        reopened = open_store(path)
        try:
            assert reopened.labeling.backend_name == name
            assert reopened.labeling.to_masks() == matrix.masks()
            reopened.verify()
        finally:
            reopened.close()

    def test_backend_tag_mismatch_raises_valueerror(self, tmp_path):
        doc = generate_document(XMarkConfig(n_items=5, seed=1))
        matrix = generate_synthetic_acl(
            doc, SyntheticACLConfig(seed=1), n_subjects=2
        )
        path = str(tmp_path / "store.db")
        with NoKStore(doc, build_labeling("cam", doc, matrix), path=path) as store:
            save_store(store)
        with pytest.raises(ValueError, match=r"'cam'.*'dol'"):
            open_store(path, labeling="dol")
        with pytest.raises(ValueError, match=r"'cam'.*'naive'"):
            NoKStore.open(path, labeling="naive")

    def test_matching_tag_accepted(self, tmp_path):
        doc = generate_document(XMarkConfig(n_items=5, seed=1))
        matrix = generate_synthetic_acl(
            doc, SyntheticACLConfig(seed=1), n_subjects=2
        )
        path = str(tmp_path / "store.db")
        with NoKStore(doc, build_labeling("dol", doc, matrix), path=path) as store:
            save_store(store)
        reopened = NoKStore.open(path, labeling="dol")
        reopened.close()

    def test_pre_refactor_catalog_loads_as_dol(self, tmp_path):
        """A catalog with no ``labeling`` tag predates the pluggable
        interface; it must open as a DOL and answer queries identically."""
        doc = generate_document(XMarkConfig(n_items=10, seed=4))
        matrix = generate_synthetic_acl(
            doc, SyntheticACLConfig(accessibility_ratio=0.7, seed=6), n_subjects=2
        )
        dol = DOL.from_matrix(matrix)
        path = str(tmp_path / "store.db")
        with NoKStore(doc, dol, path=path, page_size=512) as store:
            catalog_path = save_store(store)
        with open(path, "rb") as handle:
            page_bytes = handle.read()

        # Strip the new catalog keys, simulating a pre-refactor store.
        with open(catalog_path, "r", encoding="utf-8") as handle:
            catalog = json.load(handle)
        catalog.pop("labeling", None)
        catalog.pop("labeling_data", None)
        with open(catalog_path, "w", encoding="utf-8") as handle:
            json.dump(catalog, handle)

        reopened = open_store(path)
        try:
            assert reopened.labeling.backend_name == "dol"
            assert reopened.labeling.to_masks() == dol.to_masks()
            engine = QueryEngine(reopened.doc, labeling=reopened.labeling,
                                 store=reopened)
            secure = engine.evaluate("//item", subject=0)
            reference = QueryEngine(doc, labeling=dol).evaluate("//item", subject=0)
            assert sorted(secure.positions) == sorted(reference.positions)
        finally:
            reopened.close()
        # Opening must not have rewritten the page file.
        with open(path, "rb") as handle:
            assert handle.read() == page_bytes

    def test_catalog_records_backend_tag(self, tmp_path):
        doc = generate_document(XMarkConfig(n_items=5, seed=1))
        matrix = generate_synthetic_acl(
            doc, SyntheticACLConfig(seed=1), n_subjects=2
        )
        path = str(tmp_path / "store.db")
        with NoKStore(doc, build_labeling("naive", doc, matrix), path=path) as store:
            catalog_path = save_store(store)
        with open(catalog_path, "r", encoding="utf-8") as handle:
            catalog = json.load(handle)
        assert catalog["labeling"] == "naive"
        assert "labeling_data" in catalog
