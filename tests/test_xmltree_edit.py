"""Unit tests for structural document editing."""

import pytest

from repro.errors import TreeError
from repro.xmltree import edit
from repro.xmltree.builder import tree
from repro.xmltree.document import Document


@pytest.fixture
def doc():
    # a(0) -> b(1){c(2)}, d(3), e(4){f(5), g(6)}
    return Document.from_tree(
        tree(("a", ("b", ("c",)), ("d",), ("e", ("f",), ("g",))))
    )


class TestInsertPosition:
    def test_first_child(self, doc):
        assert edit.insert_position(doc, 0, 0) == 1

    def test_middle_child(self, doc):
        assert edit.insert_position(doc, 0, 1) == 3  # before d
        assert edit.insert_position(doc, 0, 2) == 4  # before e

    def test_append(self, doc):
        assert edit.insert_position(doc, 0, 3) == 7  # after e's subtree
        assert edit.insert_position(doc, 4, 2) == 7  # after g

    def test_into_leaf(self, doc):
        assert edit.insert_position(doc, 3, 0) == 4

    def test_bad_index(self, doc):
        with pytest.raises(TreeError):
            edit.insert_position(doc, 0, 4)


class TestInsertSubtree:
    def test_insert_in_middle(self, doc):
        result = edit.insert_subtree(doc, 0, 1, tree(("x", ("y",))))
        assert result.position == 3
        assert result.size == 2
        names = [result.doc.tag_name(i) for i in range(len(result.doc))]
        assert names == ["a", "b", "c", "x", "y", "d", "e", "f", "g"]
        result.doc.validate()

    def test_insert_at_end(self, doc):
        result = edit.insert_subtree(doc, 4, 2, tree(("z",)))
        names = [result.doc.tag_name(i) for i in range(len(result.doc))]
        assert names == ["a", "b", "c", "d", "e", "f", "g", "z"]

    def test_original_unchanged(self, doc):
        before = [doc.tag_name(i) for i in range(len(doc))]
        edit.insert_subtree(doc, 0, 0, tree(("x",)))
        assert [doc.tag_name(i) for i in range(len(doc))] == before

    def test_attached_subtree_rejected(self, doc):
        parent = tree(("p", ("q",)))
        with pytest.raises(TreeError):
            edit.insert_subtree(doc, 0, 0, parent.children[0])


class TestDeleteSubtree:
    def test_delete_inner(self, doc):
        new_doc = edit.delete_subtree(doc, 1)
        names = [new_doc.tag_name(i) for i in range(len(new_doc))]
        assert names == ["a", "d", "e", "f", "g"]
        new_doc.validate()

    def test_delete_leaf(self, doc):
        new_doc = edit.delete_subtree(doc, 5)
        assert [new_doc.tag_name(i) for i in range(len(new_doc))] == [
            "a", "b", "c", "d", "e", "g",
        ]

    def test_delete_root_rejected(self, doc):
        with pytest.raises(TreeError):
            edit.delete_subtree(doc, 0)


class TestMoveSubtree:
    def test_move_forward(self, doc):
        result = edit.move_subtree(doc, 1, 4)  # b under e, appended
        names = [result.doc.tag_name(i) for i in range(len(result.doc))]
        assert names == ["a", "d", "e", "f", "g", "b", "c"]
        assert result.source == (1, 3)
        assert result.destination == 5

    def test_move_backward_with_index(self, doc):
        result = edit.move_subtree(doc, 5, 0, child_index=0)  # f first child of a
        names = [result.doc.tag_name(i) for i in range(len(result.doc))]
        assert names == ["a", "f", "b", "c", "d", "e", "g"]
        assert result.destination == 1

    def test_move_into_self_rejected(self, doc):
        with pytest.raises(TreeError):
            edit.move_subtree(doc, 4, 5)

    def test_move_root_rejected(self, doc):
        with pytest.raises(TreeError):
            edit.move_subtree(doc, 0, 4)
