"""Property-based tests for the CAM baselines."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cam.cam import CAM, OverrideCAM
from repro.dol.labeling import DOL
from tests.conftest import random_document


@st.composite
def doc_and_vector(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=1, max_value=60))
    rng = random.Random(seed)
    doc = random_document(rng, n)
    vector = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    return doc, vector


@given(doc_and_vector())
def test_positive_cover_roundtrip(case):
    """CAM lookup reproduces the original accessibility exactly."""
    doc, vector = case
    cam = CAM.from_vector(doc, vector)
    assert cam.to_vector() == vector
    for pos in range(len(doc)):
        assert cam.accessible(pos) == vector[pos]


@given(doc_and_vector())
def test_override_roundtrip(case):
    doc, vector = case
    cam = OverrideCAM.from_vector(doc, vector)
    assert cam.to_vector() == vector
    for pos in range(len(doc)):
        assert cam.accessible(pos) == vector[pos]


@given(doc_and_vector())
def test_label_count_bounds(case):
    """Neither variant ever needs more labels than there are nodes."""
    doc, vector = case
    assert 0 <= CAM.from_vector(doc, vector).n_labels <= len(doc)
    assert 1 <= OverrideCAM.from_vector(doc, vector).n_labels <= len(doc)


@given(doc_and_vector())
def test_desc_grants_only_on_fully_accessible_subtrees(case):
    """Soundness of the positive cover: a descendant bit at v is only
    legal when every proper descendant of v is accessible."""
    doc, vector = case
    cam = CAM.from_vector(doc, vector)
    for pos, entry in cam.entries.items():
        if entry.descendant_default:
            assert all(vector[d] for d in doc.descendants(pos))


@given(doc_and_vector())
@settings(max_examples=60)
def test_override_never_beaten_by_positive_cover(case):
    """The override model is strictly more expressive, so its minimal
    labeling is never larger (modulo its mandatory root entry)."""
    doc, vector = case
    positive = CAM.from_vector(doc, vector)
    override = OverrideCAM.from_vector(doc, vector)
    assert override.n_labels <= positive.n_labels + 1


@given(doc_and_vector())
@settings(max_examples=60)
def test_uniform_subtrees_compress(case):
    doc, _ = case
    assert CAM.from_vector(doc, [True] * len(doc)).n_labels == 1
    assert CAM.from_vector(doc, [False] * len(doc)).n_labels == 0
    assert OverrideCAM.from_vector(doc, [True] * len(doc)).n_labels == 1


@given(doc_and_vector())
@settings(max_examples=60)
def test_cam_and_dol_agree(case):
    """All three structures decode to the same accessibility function."""
    doc, vector = case
    cam = CAM.from_vector(doc, vector)
    override = OverrideCAM.from_vector(doc, vector)
    dol = DOL.from_vector(vector)
    for pos in range(len(doc)):
        assert cam.accessible(pos) == dol.accessible(0, pos) == override.accessible(pos)
