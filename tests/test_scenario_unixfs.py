"""End-to-end scenario on the Unix file system surrogate.

The paper treats a multi-user Unix file system as a surrogate for an
access-controlled XML database. This scenario drives the whole stack on
that data: per-user secure queries, dissemination of a user's visible
tree, and compression metrics.
"""

import pytest

from repro.acl.surrogates import generate_unix_fs
from repro.dol.labeling import DOL
from repro.nok.engine import QueryEngine
from repro.secure.dissemination import PRUNE, filter_xml, visible_positions
from repro.secure.semantics import VIEW
from repro.xmltree.serializer import serialize


@pytest.fixture(scope="module")
def fs():
    return generate_unix_fs(n_nodes=800, n_users=10, n_groups=3, seed=5)


@pytest.fixture(scope="module")
def engine(fs):
    return QueryEngine.build(fs.doc, fs.matrix)


class TestPerUserQueries:
    def test_each_user_sees_some_files(self, fs, engine):
        registry = fs.registry
        users = [s for s in range(fs.n_subjects) if not registry.is_group(s)]
        for user in users[:4]:
            files = engine.evaluate("//file", subject=user)
            # every user owns a home subtree with files in it
            assert files.n_answers > 0, user

    def test_group_membership_extends_access(self, fs, engine):
        registry = fs.registry
        user = registry.id_of("usr0")
        groups = registry.groups_of(user)
        own = set(engine.evaluate("//file", subject=user).positions)
        effective = set(
            engine.evaluate(
                "//file", subject=registry.effective_subjects(user)
            ).positions
        )
        assert own <= effective
        assert groups  # membership exists in the surrogate

    def test_view_semantics_respects_directory_traversal(self, fs, engine):
        """Under view semantics a file in an unreadable directory is
        invisible, matching the intuition of path-based access."""
        registry = fs.registry
        user = registry.id_of("usr1")
        cho = set(engine.evaluate("//file", subject=user).positions)
        view = set(
            engine.evaluate("//file", subject=user, semantics=VIEW).positions
        )
        assert view <= cho


class TestDissemination:
    def test_user_receives_their_visible_tree(self, fs):
        dol = DOL.from_matrix(fs.matrix)
        user = fs.registry.id_of("usr2")
        xml = serialize(fs.doc.to_tree())
        out = filter_xml(xml, dol, user, PRUNE)
        visible = visible_positions(dol, user, fs.doc)
        if visible:
            from repro.xmltree.document import Document
            from repro.xmltree.parser import parse

            filtered = Document.from_tree(parse(out))
            # the filtered listing holds exactly the visible nodes
            assert len(filtered) == len(visible)
            assert len(filtered) <= len(fs.doc)
        else:
            assert out == ""


class TestCompression:
    def test_dol_much_smaller_than_matrix(self, fs):
        dol = DOL.from_matrix(fs.matrix)
        raw_bitmap_bytes = (fs.matrix.n_nodes * fs.n_subjects + 7) // 8
        assert dol.size_bytes() < raw_bitmap_bytes
        assert dol.transition_density() < 0.5
