"""Streaming acceptance tests: the pipeline must be lazy end to end.

The Volcano plan only does work that the consumer demands.  A ``Limit(k)``
plan over a large store-backed document must therefore perform strictly
fewer access checks and strictly fewer page reads than draining the same
query without a limit — that is the observable difference between a
streaming executor and a materialize-then-truncate one.
"""

import itertools

import pytest

from repro.acl.synthetic import SyntheticACLConfig, generate_synthetic_acl
from repro.nok.engine import QueryEngine
from repro.secure.semantics import CHO, VIEW
from repro.xmark.generator import XMarkConfig, generate_document


@pytest.fixture(scope="module")
def xdoc():
    return generate_document(XMarkConfig(n_items=120, seed=3))


@pytest.fixture(scope="module")
def matrix(xdoc):
    config = SyntheticACLConfig(accessibility_ratio=0.8, seed=5)
    return generate_synthetic_acl(xdoc, config, n_subjects=1)


def _stored_engine(xdoc, matrix):
    return QueryEngine.build(
        xdoc, matrix, use_store=True, page_size=128, buffer_capacity=4
    )


@pytest.mark.parametrize("semantics", [CHO, VIEW])
def test_limit_saves_access_checks_and_page_reads(xdoc, matrix, semantics):
    engine = _stored_engine(xdoc, matrix)
    full = engine.evaluate("//item", subject=0, semantics=semantics)
    assert full.n_answers > 3  # the limit below must actually bite

    limited = engine.evaluate("//item", subject=0, semantics=semantics, limit=2)
    assert limited.n_answers == 2
    assert limited.stats.access_checks < full.stats.access_checks
    assert limited.stats.logical_page_reads < full.stats.logical_page_reads


def test_limit_saves_candidates_in_memory(xdoc, matrix):
    engine = QueryEngine.build(xdoc, matrix)
    full = engine.evaluate("//item", subject=0)
    limited = engine.evaluate("//item", subject=0, limit=1)
    assert limited.stats.candidates < full.stats.candidates
    assert limited.stats.access_checks < full.stats.access_checks


def test_stream_is_lazy(xdoc, matrix):
    """Pulling two answers from the iterator must not drain the scan."""
    engine = QueryEngine.build(xdoc, matrix)
    plan = engine.compile("//item", subject=0)
    first_two = list(itertools.islice(plan.execute(), 2))
    assert len(first_two) == 2

    full = engine.compile("//item", subject=0)
    list(full.execute())
    scan_rows = [op for op in full.operators() if op.name == "TagIndexScan"]
    partial_scan = [op for op in plan.operators() if op.name == "TagIndexScan"]
    assert partial_scan[0].stats.rows_out < scan_rows[0].stats.rows_out


def test_limited_prefix_matches_unlimited(xdoc, matrix):
    engine = _stored_engine(xdoc, matrix)
    full = engine.evaluate("//item", subject=0).positions
    limited = engine.evaluate("//item", subject=0, limit=4).positions
    assert set(limited) <= set(full)
    assert len(limited) == 4
