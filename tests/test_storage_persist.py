"""Tests for saving and reopening a NoKStore."""

import pytest

from repro.acl.synthetic import SyntheticACLConfig, generate_synthetic_acl
from repro.dol.labeling import DOL
from repro.errors import StorageError
from repro.storage.nokstore import NoKStore
from repro.storage.persist import catalog_path_for, open_store, save_store
from repro.xmark.generator import XMarkConfig, generate_document


@pytest.fixture
def saved(tmp_path):
    doc = generate_document(XMarkConfig(n_items=40, seed=13))
    matrix = generate_synthetic_acl(
        doc, SyntheticACLConfig(accessibility_ratio=0.6, seed=2), n_subjects=3
    )
    dol = DOL.from_matrix(matrix)
    path = str(tmp_path / "store.db")
    store = NoKStore(doc, dol, path=path, page_size=512)
    save_store(store)
    store.close()
    return path, doc, dol


class TestRoundTrip:
    def test_document_reconstructed(self, saved):
        path, doc, _dol = saved
        store = open_store(path)
        assert store.n_nodes == len(doc)
        for pos in range(0, len(doc), 7):
            assert store.tag_name(pos) == doc.tag_name(pos)
            assert store.text(pos) == doc.text(pos)
            assert store.entry(pos).subtree == doc.subtree[pos]
        store.close()

    def test_dol_reconstructed(self, saved):
        path, _doc, dol = saved
        store = open_store(path)
        assert store.dol.to_masks() == dol.to_masks()
        assert store.dol.n_transitions == dol.n_transitions
        assert len(store.dol.codebook) == len(dol.codebook)
        store.close()

    def test_navigation_after_reopen(self, saved):
        path, doc, _dol = saved
        store = open_store(path)
        for pos in range(0, len(doc), 11):
            assert store.first_child(pos) == doc.first_child(pos)
            assert store.following_sibling(pos) == doc.following_sibling(pos)
        store.close()

    def test_queries_after_reopen(self, saved):
        from repro.nok.engine import QueryEngine

        path, doc, dol = saved
        store = open_store(path)
        engine = QueryEngine(store.doc, dol=store.dol, store=store)
        reopened = engine.evaluate("//item//emph", subject=1)

        original_engine = QueryEngine(doc, dol=dol)
        original = original_engine.evaluate("//item//emph", subject=1)
        assert reopened.positions == original.positions
        store.close()

    def test_updates_after_reopen_persist(self, saved):
        path, _doc, _dol = saved
        store = open_store(path)
        store.update_subject_range(0, store.n_nodes, 2, True)
        save_store(store)
        store.close()

        again = open_store(path)
        assert all(
            again.accessible(2, pos) for pos in range(0, again.n_nodes, 13)
        )
        again.close()


class TestErrors:
    def test_memory_store_cannot_save(self):
        from repro.xmltree.builder import tree
        from repro.xmltree.document import Document

        doc = Document.from_tree(tree(("a", ("b",))))
        store = NoKStore(doc, DOL.from_masks([1, 1], 1), page_size=96)
        with pytest.raises(StorageError):
            save_store(store)

    def test_missing_catalog(self, saved, tmp_path):
        path, _doc, _dol = saved
        import os

        os.remove(catalog_path_for(path))
        with pytest.raises(StorageError):
            open_store(path)

    def test_corrupt_catalog_version(self, saved):
        import json

        path, _doc, _dol = saved
        catalog_file = catalog_path_for(path)
        with open(catalog_file) as handle:
            catalog = json.load(handle)
        catalog["version"] = 99
        with open(catalog_file, "w") as handle:
            json.dump(catalog, handle)
        with pytest.raises(StorageError):
            open_store(path)

    def test_truncated_page_file(self, saved):
        path, _doc, _dol = saved
        with open(path, "r+b") as handle:
            handle.truncate(512)  # keep one page only
        with pytest.raises(StorageError):
            open_store(path)


class TestCodecRoundTrip:
    """Compressed (v3) stores and untagged (pre-codec) catalogs."""

    @pytest.fixture(params=["zlib", "structure-delta"])
    def saved_compressed(self, request, tmp_path):
        doc = generate_document(XMarkConfig(n_items=40, seed=13))
        matrix = generate_synthetic_acl(
            doc, SyntheticACLConfig(accessibility_ratio=0.6, seed=2),
            n_subjects=3,
        )
        dol = DOL.from_matrix(matrix)
        path = str(tmp_path / "store.db")
        store = NoKStore(
            doc, dol, path=path, page_size=512, codec=request.param
        )
        save_store(store)
        store.close()
        return path, doc, dol, request.param

    def test_codec_and_density_in_catalog(self, saved_compressed):
        import json

        path, _doc, _dol, codec = saved_compressed
        with open(catalog_path_for(path)) as handle:
            catalog = json.load(handle)
        expected_structure = "zlib" if codec == "zlib" else "structure-delta"
        assert catalog["codec"] == {
            "structure": expected_structure, "codes": "zlib",
        }
        assert catalog["entries_per_page"] >= 1

    def test_reopened_equals_document(self, saved_compressed):
        path, doc, dol, codec = saved_compressed
        with open_store(path) as store:
            assert store.page_format.compressed
            for pos in range(len(doc)):
                assert store.tag_name(pos) == doc.tag_name(pos)
                assert store.first_child(pos) == doc.first_child(pos)
                assert store.subtree_end(pos) == doc.subtree_end(pos)
                for subject in range(3):
                    assert store.accessible(subject, pos) == dol.accessible(
                        subject, pos
                    )

    def test_updates_after_reopen_persist(self, saved_compressed):
        path, _doc, _dol, _codec = saved_compressed
        store = open_store(path)
        store.update_subject_range(5, 60, 1, False)
        save_store(store)
        store.close()
        with open_store(path) as reopened:
            assert reopened.page_format.compressed
            for pos in range(5, 60):
                assert not reopened.accessible(1, pos)
            reopened.verify()

    def test_untagged_catalog_opens_as_plain(self, saved):
        """A pre-codec catalog (no codec/entries_per_page keys) must open
        byte-identically through the plain v2 format."""
        import json

        path, doc, _dol = saved
        catalog_file = catalog_path_for(path)
        with open(catalog_file) as handle:
            catalog = json.load(handle)
        assert "codec" not in catalog
        assert "entries_per_page" not in catalog
        with open_store(path) as store:
            assert not store.page_format.compressed
            assert store.tag_name(0) == doc.tag_name(0)

    def test_compressed_store_is_smaller(self, saved_compressed, tmp_path):
        import os

        path, doc, dol, _codec = saved_compressed
        plain_path = str(tmp_path / "plain.db")
        store = NoKStore(doc, dol, path=plain_path, page_size=512)
        save_store(store)
        store.close()
        assert os.path.getsize(path) < os.path.getsize(plain_path)
