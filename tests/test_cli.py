"""Tests for the repro-dol command-line interface."""

import json

import pytest

from repro.cli import main
from repro.xmark.generator import XMarkConfig, generate
from repro.xmltree.serializer import serialize


@pytest.fixture
def xmark_file(tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text(serialize(generate(XMarkConfig(n_items=20, seed=1))))
    return str(path)


class TestXmark:
    def test_writes_file(self, tmp_path):
        out = tmp_path / "out.xml"
        assert main(["xmark", "--items", "5", "-o", str(out)]) == 0
        assert out.read_text().startswith("<site>")

    def test_stdout(self, capsys):
        assert main(["xmark", "--items", "3"]) == 0
        assert "<site>" in capsys.readouterr().out

    def test_pretty(self, tmp_path):
        out = tmp_path / "pretty.xml"
        main(["xmark", "--items", "3", "--pretty", "-o", str(out)])
        assert "\n" in out.read_text()


class TestInspect:
    def test_prints_statistics(self, xmark_file, capsys):
        assert main(["inspect", xmark_file]) == 0
        out = capsys.readouterr().out
        assert "nodes:" in out
        assert "item" in out


class TestLabel:
    def test_prints_dol_and_cam_sizes(self, xmark_file, capsys):
        assert main(["label", xmark_file, "--subjects", "2"]) == 0
        out = capsys.readouterr().out
        assert "DOL transition nodes" in out
        assert "CAM labels" in out

    def test_prints_all_backends_side_by_side(self, xmark_file, capsys):
        assert main(["label", xmark_file, "--subjects", "3"]) == 0
        out = capsys.readouterr().out
        assert "DOL total bytes" in out
        assert "CAM total bytes" in out
        assert "naive labels (one per node)" in out
        assert "naive total bytes" in out

    def test_single_backend_selection(self, xmark_file, capsys):
        assert main(
            ["label", xmark_file, "--subjects", "2", "--labeling", "naive"]
        ) == 0
        out = capsys.readouterr().out
        assert "naive labels" in out
        assert "DOL transition nodes" not in out
        assert "CAM labels" not in out


class TestBuild:
    @pytest.mark.parametrize("backend", ("dol", "cam", "naive"))
    def test_builds_and_saves_each_backend(
        self, xmark_file, tmp_path, capsys, backend
    ):
        store = str(tmp_path / f"{backend}.db")
        assert main(
            ["build", xmark_file, store, "--labeling", backend]
        ) == 0
        out = capsys.readouterr().out
        assert f"built {backend} store" in out
        import json
        import os

        assert os.path.exists(store)
        with open(store + ".catalog.json", "r", encoding="utf-8") as handle:
            assert json.load(handle)["labeling"] == backend

    def test_built_store_passes_fsck(self, xmark_file, tmp_path, capsys):
        store = str(tmp_path / "cam.db")
        assert main(["build", xmark_file, store, "--labeling", "cam"]) == 0
        assert main(["verify-store", store]) == 0
        assert "clean" in capsys.readouterr().out

    @pytest.mark.parametrize("codec", ("zlib", "structure-delta"))
    def test_codec_build_and_fsck_container_bytes(
        self, xmark_file, tmp_path, capsys, codec
    ):
        import os

        store = str(tmp_path / "codec.db")
        plain = str(tmp_path / "plain.db")
        assert main(
            ["build", xmark_file, store, "--page-size", "1024",
             "--codec", codec]
        ) == 0
        assert main(["build", xmark_file, plain, "--page-size", "1024"]) == 0
        out = capsys.readouterr().out
        assert f"codec {codec}" in out
        assert os.path.getsize(store) < os.path.getsize(plain)

        assert main(["verify-store", store]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert "physical" in out and "logical" in out
        structure = "zlib" if codec == "zlib" else "structure-delta"
        assert f"structure={structure} codes=zlib" in out

        assert main(["verify-store", store, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        containers = report["containers"]
        assert containers["structure"]["physical_bytes"] < (
            containers["structure"]["logical_bytes"]
        )
        assert report["codec"]["structure"] == structure

    def test_plain_fsck_reports_equal_bytes(self, xmark_file, tmp_path, capsys):
        store = str(tmp_path / "plain.db")
        assert main(["build", xmark_file, store]) == 0
        capsys.readouterr()
        assert main(["verify-store", store, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["codec"] is None
        for totals in report["containers"].values():
            assert totals["physical_bytes"] == totals["logical_bytes"]


class TestExplain:
    def test_plan_printed(self, xmark_file, capsys):
        assert main(["explain", xmark_file, "//listitem//keyword"]) == 0
        out = capsys.readouterr().out
        assert "NoK subtrees: 2" in out
        assert "join order" in out
        assert "physical plan:" in out
        assert "STDJoin" in out

    def test_analyze_adds_counters(self, xmark_file, capsys):
        assert main(["explain", xmark_file, "//item", "--analyze"]) == 0
        out = capsys.readouterr().out
        assert "physical plan (analyzed):" in out
        assert "rows=" in out
        assert "answers:" in out


class TestDisseminate:
    def test_filtered_output(self, xmark_file, capsys):
        assert main(["disseminate", xmark_file, "--accessibility", "0.5"]) == 0
        out = capsys.readouterr().out
        assert len(out) > 0

    def test_writes_file(self, xmark_file, tmp_path, capsys):
        out_path = tmp_path / "filtered.xml"
        assert main(
            ["disseminate", xmark_file, "-o", str(out_path), "--policy", "hoist"]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        assert out_path.exists()


class TestQuery:
    def test_non_secure(self, xmark_file, capsys):
        assert main(["query", xmark_file, "//item"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("answers: 20")

    def test_secure(self, xmark_file, capsys):
        assert main(["query", xmark_file, "//item", "--subject", "0"]) == 0
        out = capsys.readouterr().out
        assert "answers:" in out

    def test_limit(self, xmark_file, capsys):
        main(["query", xmark_file, "//item", "--limit", "2"])
        out = capsys.readouterr().out
        assert "... and 18 more" in out

    def test_explain_prints_plan_without_executing(self, xmark_file, capsys):
        assert main(["query", xmark_file, "//item", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "physical plan:" in out
        assert "TagIndexScan" in out
        assert "answers:" not in out
        assert "rows=" not in out

    def test_explain_secure_shows_rewrites(self, xmark_file, capsys):
        assert main(
            ["query", xmark_file, "//item", "--subject", "0", "--explain"]
        ) == 0
        out = capsys.readouterr().out
        assert "AccessFilter" in out

    def test_explain_analyze_executes_and_annotates(self, xmark_file, capsys):
        assert main(["query", xmark_file, "//item", "--explain-analyze"]) == 0
        out = capsys.readouterr().out
        assert "physical plan (analyzed):" in out
        assert "rows=" in out
        assert "answers: 20" in out
        assert "wall time:" in out

    @pytest.mark.parametrize("backend", ("cam", "naive"))
    def test_secure_query_with_alternate_backend(
        self, xmark_file, capsys, backend
    ):
        assert main(
            ["query", xmark_file, "//item", "--subject", "0",
             "--labeling", backend]
        ) == 0
        assert "answers:" in capsys.readouterr().out

    def test_backends_answer_identically(self, xmark_file, capsys):
        counts = {}
        for backend in ("dol", "cam", "naive"):
            assert main(
                ["query", xmark_file, "//item", "--subject", "1",
                 "--labeling", backend]
            ) == 0
            counts[backend] = capsys.readouterr().out.splitlines()[0]
        assert counts["cam"] == counts["dol"] == counts["naive"]


class TestVerifyStore:
    @pytest.fixture
    def saved_store(self, tmp_path):
        from repro.acl.synthetic import SyntheticACLConfig, generate_synthetic_acl
        from repro.dol.labeling import DOL
        from repro.storage.nokstore import NoKStore
        from repro.storage.persist import save_store
        from repro.xmark.generator import generate_document

        doc = generate_document(XMarkConfig(n_items=15, seed=4))
        matrix = generate_synthetic_acl(
            doc, SyntheticACLConfig(accessibility_ratio=0.7, seed=1), n_subjects=2
        )
        path = str(tmp_path / "store.db")
        store = NoKStore(doc, DOL.from_matrix(matrix), path=path, page_size=512)
        save_store(store)
        store.close()
        return path

    def test_clean_store_passes(self, saved_store, capsys):
        assert main(["verify-store", saved_store]) == 0
        assert "clean" in capsys.readouterr().out

    def test_bit_flip_fails_nonzero(self, saved_store, capsys):
        with open(saved_store, "r+b") as handle:
            handle.seek(512 + 25)
            byte = handle.read(1)
            handle.seek(512 + 25)
            handle.write(bytes([byte[0] ^ 0xFF]))
        assert main(["verify-store", saved_store]) == 1
        out = capsys.readouterr().out
        assert "page 1" in out
        assert "problem(s) found" in out

    def test_missing_catalog_fails(self, saved_store, capsys):
        import os

        os.remove(saved_store + ".catalog.json")
        assert main(["verify-store", saved_store]) == 1

    def test_json_report_clean(self, saved_store, capsys):
        assert main(["verify-store", saved_store, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["clean"] is True
        assert report["findings"] == []
        assert report["corrupt_pages"] == []
        assert report["checked_pages"] > 0
        assert report["store"] == saved_store

    def test_json_report_names_corrupt_pages(self, saved_store, capsys):
        with open(saved_store, "r+b") as handle:
            handle.seek(512 + 25)
            byte = handle.read(1)
            handle.seek(512 + 25)
            handle.write(bytes([byte[0] ^ 0xFF]))
        assert main(["verify-store", saved_store, "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["clean"] is False
        assert 1 in report["corrupt_pages"]
        kinds = {finding["kind"] for finding in report["findings"]}
        assert "checksum" in kinds
        assert all(
            {"kind", "page", "message"} <= set(f) for f in report["findings"]
        )


class TestHealthCommand:
    def test_probes_running_server(self, xmark_file, capsys):
        from repro.acl.synthetic import SyntheticACLConfig, generate_synthetic_acl
        from repro.cli import _load_document
        from repro.nok.engine import QueryEngine
        from repro.server.netserver import serve
        from repro.server.service import QueryService

        doc = _load_document(xmark_file)
        matrix = generate_synthetic_acl(
            doc, SyntheticACLConfig(seed=1), n_subjects=2
        )
        engine = QueryEngine.build(doc, matrix, use_store=True)
        service = QueryService(engine)
        server = serve(service, host="127.0.0.1", port=0, background=True)
        host, port = server.address
        try:
            code = main(
                ["health", "--host", host, "--port", str(port), "--json"]
            )
            report = json.loads(capsys.readouterr().out)
            assert code == 0
            assert report["state"] == "healthy"
            assert report["breaker"]["state"] == "closed"
        finally:
            server.shutdown()
            server.server_close()
            service.close()
            engine.store.close()

    def test_unreachable_exits_2(self, capsys):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        host, port = probe.getsockname()
        probe.close()
        code = main(
            ["health", "--host", host, "--port", str(port), "--timeout", "0.5"]
        )
        assert code == 2
        assert "unreachable" in capsys.readouterr().out
