"""Figure 7(a–c): ε-NoK vs non-secure NoK — processing time ratio and
answers-returned ratio as a function of the percentage of accessible nodes
(50%–80%), for queries Q1–Q3.

Paper findings: secure evaluation costs only ~2% extra (accessibility
checks need no additional I/O) and the overhead does not depend on the
accessibility ratio; the answer ratio tracks the accessible fraction of
the result set.
"""

import time

from repro.acl.synthetic import SyntheticACLConfig, single_subject_labels
from repro.bench.queries import NOK_ONLY, QUERIES
from repro.bench.reporting import print_table
from repro.dol.labeling import DOL
from repro.nok.engine import QueryEngine
from repro.storage.nokstore import NoKStore

ACCESSIBLE_PERCENTAGES = [0.5, 0.6, 0.7, 0.8]
REPEATS = 7


def _engine_for(doc, accessibility, seed=3):
    config = SyntheticACLConfig(
        propagation_ratio=0.3, accessibility_ratio=accessibility, seed=seed
    )
    vector = single_subject_labels(doc, config)
    dol = DOL.from_masks([int(v) for v in vector], 1)
    store = NoKStore(doc, dol, page_size=4096, buffer_capacity=256)
    return QueryEngine(doc, dol=dol, store=store)


def _median_time(fn, repeats=REPEATS):
    """Minimum over repeats — the standard low-noise timing estimator."""
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return min(times)


def _ratio_rows(doc, qid):
    rows = []
    for accessibility in ACCESSIBLE_PERCENTAGES:
        engine = _engine_for(doc, accessibility)
        query = QUERIES[qid]
        plain = engine.evaluate(query)
        secure = engine.evaluate(query, subject=0)
        t_plain = _median_time(lambda: engine.evaluate(query))
        t_secure = _median_time(lambda: engine.evaluate(query, subject=0))
        answer_ratio = (
            secure.n_answers / plain.n_answers if plain.n_answers else 1.0
        )
        rows.append(
            (
                f"{accessibility:.0%}",
                t_secure / t_plain,
                answer_ratio,
                plain.n_answers,
                secure.n_answers,
            )
        )
    return rows


def _check_overhead(rows, qid):
    time_ratios = [row[1] for row in rows]
    # Paper: ~2% overhead, independent of accessibility. Python timing is
    # noisier than the paper's Java testbed; accept up to 60% overhead and
    # require the *shape*: no blow-up, no strong dependence on the ratio.
    for ratio in time_ratios:
        assert ratio < 1.6, (qid, time_ratios)
    spread = max(time_ratios) - min(time_ratios)
    assert spread < 0.6, (qid, time_ratios)
    # Answers returned can only shrink under secure evaluation.
    for row in rows:
        assert row[2] <= 1.0 + 1e-9


def test_fig7a_query1(xmark_doc, benchmark):
    from repro.bench.figures import print_bars

    rows = _ratio_rows(xmark_doc, "Q1")
    print_table(
        "Figure 7(a): Q1 ratios (ε-NoK / NoK)",
        ["accessible", "time ratio", "answers ratio", "plain", "secure"],
        rows,
    )
    print_bars(
        "Q1 answers returned (ε-NoK / NoK)", [(row[0], row[2]) for row in rows]
    )
    _check_overhead(rows, "Q1")
    engine = _engine_for(xmark_doc, 0.7)
    benchmark(engine.evaluate, QUERIES["Q1"], 0)


def test_fig7b_query2(xmark_doc, benchmark):
    rows = _ratio_rows(xmark_doc, "Q2")
    print_table(
        "Figure 7(b): Q2 ratios (ε-NoK / NoK)",
        ["accessible", "time ratio", "answers ratio", "plain", "secure"],
        rows,
    )
    _check_overhead(rows, "Q2")
    engine = _engine_for(xmark_doc, 0.7)
    benchmark(engine.evaluate, QUERIES["Q2"], 0)


def test_fig7c_query3(xmark_doc, benchmark):
    rows = _ratio_rows(xmark_doc, "Q3")
    print_table(
        "Figure 7(c): Q3 ratios (ε-NoK / NoK)",
        ["accessible", "time ratio", "answers ratio", "plain", "secure"],
        rows,
    )
    _check_overhead(rows, "Q3")
    engine = _engine_for(xmark_doc, 0.7)
    benchmark(engine.evaluate, QUERIES["Q3"], 0)


def test_fig7_no_extra_io_for_checks(xmark_doc, benchmark):
    """The mechanism behind the flat overhead: secure evaluation reads no
    more pages than non-secure evaluation of the same query."""
    engine = _engine_for(xmark_doc, 0.7)
    benchmark(engine.evaluate, QUERIES["Q1"], 0)
    for qid in NOK_ONLY:
        engine.store.drop_caches()
        plain = engine.evaluate(QUERIES[qid])
        engine.store.drop_caches()
        secure = engine.evaluate(QUERIES[qid], subject=0)
        assert (
            secure.stats.physical_page_reads <= plain.stats.physical_page_reads
        ), qid
