"""Section 3.3's page-skip optimization, measured in physical page reads.

When the querying subject can access little of the document, the
in-memory page headers let the secure evaluator skip entire pages (first
node's code denies + change bit clear) — so secure evaluation can read
*fewer* pages than non-secure evaluation, the effect the paper reports at
very low accessibility ratios.
"""

from repro.acl.synthetic import SyntheticACLConfig, single_subject_labels
from repro.bench.reporting import print_table
from repro.dol.labeling import DOL
from repro.nok.engine import QueryEngine
from repro.storage.nokstore import NoKStore


def _engine(doc, accessibility, seed=2, page_size=1024):
    config = SyntheticACLConfig(
        propagation_ratio=0.1, accessibility_ratio=accessibility, seed=seed
    )
    vector = single_subject_labels(doc, config)
    dol = DOL.from_masks([int(v) for v in vector], 1)
    store = NoKStore(doc, dol, page_size=page_size, buffer_capacity=512)
    return QueryEngine(doc, dol=dol, store=store)


def test_page_skip_saves_io_at_low_accessibility(xmark_doc, benchmark):
    rows = []
    for accessibility in (0.02, 0.1, 0.3, 0.7):
        engine = _engine(xmark_doc, accessibility)
        query = "//item//emph"

        engine.store.drop_caches()
        plain = engine.evaluate(query)
        engine.store.drop_caches()
        secure = engine.evaluate(query, subject=0)

        rows.append(
            (
                f"{accessibility:.0%}",
                plain.stats.physical_page_reads,
                secure.stats.physical_page_reads,
                secure.stats.candidates_skipped_by_header,
            )
        )
    print_table(
        "Page-skip optimization (//item//emph, cold cache)",
        ["accessible", "plain page reads", "secure page reads", "header skips"],
        rows,
    )
    # secure never reads more pages than non-secure (checks are free)...
    for _acc, plain_reads, secure_reads, _skips in rows:
        assert secure_reads <= plain_reads
    # ...and at very low accessibility it reads strictly fewer.
    lowest = rows[0]
    assert lowest[2] < lowest[1], rows
    assert lowest[3] > 0, "expected header-based candidate skips"

    engine = _engine(xmark_doc, 0.02)
    benchmark(engine.evaluate, "//item//emph", 0)


def test_header_table_memory_footprint(xmark_doc, benchmark):
    """The paper estimates 3 MB–100 MB of headers per terabyte of XML;
    verify the per-page overhead that estimate implies."""
    engine = _engine(xmark_doc, 0.5)
    store = engine.store
    header_bytes = store.headers.size_bytes()
    data_bytes = store.n_pages * store.page_size
    overhead = header_bytes / data_bytes
    print(
        f"header table: {header_bytes} B over {data_bytes} B of pages "
        f"({overhead:.4%})"
    )
    assert overhead < 0.01  # well under 1%
    benchmark(store.headers.size_bytes)
