"""Construction scaling: DOL is built in a single pass (Section 2).

Verifies the linear-time construction claim — doubling the document size
roughly doubles DOL build time — and measures the streaming (one pass over
raw XML text) vs batch (over flattened arrays) construction paths.
"""

import time

from repro.acl.synthetic import SyntheticACLConfig, single_subject_labels
from repro.bench.reporting import print_table
from repro.dol.labeling import DOL
from repro.dol.stream import build_dol_streaming
from repro.xmark.generator import XMarkConfig, generate_document
from repro.xmltree.serializer import serialize

SIZES = (100, 200, 400, 800)


def _build_time(n_items):
    doc = generate_document(XMarkConfig(n_items=n_items, seed=1))
    vector = single_subject_labels(
        doc, SyntheticACLConfig(accessibility_ratio=0.5, seed=1)
    )
    masks = [int(v) for v in vector]
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        DOL.from_masks(masks, 1)
        best = min(best, time.perf_counter() - started)
    return len(doc), best


def test_build_time_scales_linearly(benchmark):
    rows = [(n, *_build_time(n)) for n in SIZES]
    print_table(
        "DOL construction scaling (single linear pass)",
        ["n_items", "nodes", "seconds"],
        rows,
    )
    # 8x more items must not cost more than ~24x the time (3x slack on
    # linear; guards against accidental quadratic behaviour).
    smallest, largest = rows[0], rows[-1]
    node_factor = largest[1] / smallest[1]
    time_factor = largest[2] / max(smallest[2], 1e-9)
    assert time_factor < 3 * node_factor, rows

    doc = generate_document(XMarkConfig(n_items=200, seed=1))
    vector = single_subject_labels(
        doc, SyntheticACLConfig(accessibility_ratio=0.5, seed=1)
    )
    masks = [int(v) for v in vector]
    benchmark(DOL.from_masks, masks, 1)


def test_streaming_build_single_pass(benchmark):
    """One pass over raw XML text builds the same DOL as the batch path."""
    doc = generate_document(XMarkConfig(n_items=150, seed=3))
    xml = serialize(doc.to_tree())
    vector = single_subject_labels(
        doc, SyntheticACLConfig(accessibility_ratio=0.6, seed=3)
    )
    masks = [int(v) for v in vector]

    streamed = build_dol_streaming(xml, 1, lambda pos, tag, path: masks[pos])
    assert streamed == DOL.from_masks(masks, 1)
    print(
        f"streaming build over {len(xml)} bytes of XML: "
        f"{streamed.n_transitions} transitions"
    )
    benchmark(build_dol_streaming, xml, 1, lambda pos, tag, path: masks[pos])


def test_dissemination_throughput(benchmark):
    """Secure dissemination is also one-pass (conclusion claim)."""
    from repro.secure.dissemination import PRUNE, filter_xml

    doc = generate_document(XMarkConfig(n_items=150, seed=4))
    xml = serialize(doc.to_tree())
    vector = single_subject_labels(
        doc, SyntheticACLConfig(accessibility_ratio=0.7, seed=4)
    )
    dol = DOL.from_masks([int(v) for v in vector], 1)
    out = filter_xml(xml, dol, 0, PRUNE)
    print(f"disseminated {len(out)} of {len(xml)} bytes")
    benchmark(filter_xml, xml, dol, 0, PRUNE)
