"""Concurrent serving benchmark: throughput vs threads, reader latency
under an update stream, and plan-cache effectiveness, emitted as
``BENCH_concurrency.json``.

Numbers are honest for the host (``cpu_count`` is in the payload): on a
single CPython core the thread sweep measures safety and overhead, not
parallel speedup. The assertions therefore check *correctness under
concurrency* (zero answer mismatches, monotone epochs, cache hits), not
a scaling factor.
"""

from __future__ import annotations

import os

from repro.acl.synthetic import SyntheticACLConfig, generate_synthetic_acl
from repro.bench.concurrency import run_concurrency_bench, write_report
from repro.nok.engine import QueryEngine

QUERIES = {
    "q_name": "//item/name",
    "q_twig": "//item[.//name]//price",
    "q_person": "//person/name",
}


def test_concurrency_bench(xmark_doc, bench_scale):
    matrix = generate_synthetic_acl(
        xmark_doc, SyntheticACLConfig(seed=11), n_subjects=8
    )
    engine = QueryEngine.build(xmark_doc, matrix, use_store=True)
    try:
        report = run_concurrency_bench(
            engine,
            QUERIES,
            subject=2,
            threads=(1, 2, 4, 8),
            requests_per_thread=10 * bench_scale,
        )
    finally:
        engine.store.close()

    scan = report["throughput_vs_threads"]
    assert set(scan) == {"1", "2", "4", "8"}
    for entry in scan.values():
        assert entry["answer_mismatches"] == 0
        assert entry["throughput_qps"] > 0

    interference = report["reader_latency"]
    assert interference["under_updates"]["update_commits"] > 0
    assert interference["under_updates"]["latency"]["n"] > 0
    # every committed update published a snapshot
    assert report["epoch"] == interference["epoch_end"]
    assert report["epoch"] >= interference["under_updates"]["update_commits"]

    cache = report["plan_cache"]
    assert cache["hits"] > cache["misses"]
    assert cache["hit_ratio"] > 0.5

    out = os.environ.get("REPRO_BENCH_CONCURRENCY_OUT", "BENCH_concurrency.json")
    path = write_report(report, out)
    assert os.path.exists(path)
