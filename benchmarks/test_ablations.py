"""Ablation benchmarks for the design choices DESIGN.md calls out.

A1 — codebook (dictionary compression): store full access control lists at
     every transition instead of codes; measures what correlation-sharing
     buys in the multi-user setting.
A2 — correlation strength: sweep the subject mutation rate and watch the
     codebook/transition growth move from the correlated regime to the
     independent (worst-case) regime of Section 2.1.
A3 — CAM label model: the paper's positive-cover CAM vs the idealized
     nearest-override CAM (how much of Figure 4(a)'s gap is the label
     model rather than the structure).
A4 — document order: DOL keyed on document order vs a random node order
     (structural locality is what makes transitions few).
A5 — cross-mode correlation (footnote 2): one combined DOL over all
     (mode, subject) columns vs ten independent per-mode DOLs on the
     LiveLink surrogate with its nested permission levels.
"""

import random

from repro.acl.synthetic import SyntheticACLConfig, generate_correlated_acl, single_subject_labels
from repro.bench.reporting import print_table
from repro.cam.cam import CAM, OverrideCAM
from repro.dol.labeling import DOL, transitions_from_masks


def test_a1_codebook_vs_inline_acls(livelink, benchmark):
    dol = DOL.from_matrix(livelink.matrix, "see")
    entry_bytes = dol.codebook.entry_bytes()
    with_codebook = dol.size_bytes()
    without_codebook = dol.n_transitions * entry_bytes  # inline full ACLs
    print_table(
        "A1: dictionary compression of access control lists",
        ["layout", "bytes"],
        [
            ("codebook + codes", with_codebook),
            ("inline ACL per transition", without_codebook),
        ],
    )
    # With many subjects, inlining the bit vector at every transition is
    # strictly worse whenever transitions outnumber distinct ACLs.
    if dol.n_transitions > len(dol.codebook) * 2:
        assert with_codebook < without_codebook
    benchmark(dol.size_bytes)


def test_a2_correlation_sweep(xmark_doc, benchmark):
    rows = []
    for mutation_rate in (0.0, 0.01, 0.05, 0.2):
        matrix = generate_correlated_acl(
            xmark_doc, n_subjects=8, n_profiles=2, mutation_rate=mutation_rate
        )
        dol = DOL.from_matrix(matrix)
        rows.append((mutation_rate, len(dol.codebook), dol.n_transitions))
    print_table(
        "A2: inter-subject correlation vs DOL size (8 subjects)",
        ["mutation rate", "codebook entries", "transitions"],
        rows,
    )
    # Weaker correlation (higher mutation) always costs more.
    entries = [row[1] for row in rows]
    transitions = [row[2] for row in rows]
    assert entries == sorted(entries)
    assert transitions == sorted(transitions)
    benchmark(
        generate_correlated_acl, xmark_doc, 4, 2, 0.05
    )


def test_a3_cam_label_models(xmark_doc, benchmark):
    rows = []
    for accessibility in (0.1, 0.5, 0.9):
        config = SyntheticACLConfig(
            propagation_ratio=0.3, accessibility_ratio=accessibility, seed=5
        )
        vector = single_subject_labels(xmark_doc, config)
        positive = CAM.from_vector(xmark_doc, vector).n_labels
        override = OverrideCAM.from_vector(xmark_doc, vector).n_labels
        rows.append((f"{accessibility:.0%}", positive, override))
    print_table(
        "A3: CAM label models (positive cover vs nearest-override)",
        ["accessible", "positive-cover labels", "override labels"],
        rows,
    )
    for _acc, positive, override in rows:
        assert override <= positive + 1
    # The override model removes the high-accessibility blow-up.
    assert rows[2][2] < rows[2][1]

    config = SyntheticACLConfig(accessibility_ratio=0.5, seed=5)
    vector = single_subject_labels(xmark_doc, config)
    benchmark(OverrideCAM.from_vector, xmark_doc, vector)


def test_a5_cross_mode_correlation(livelink, benchmark):
    from repro.dol.multimode import MultiModeDOL

    combined = MultiModeDOL.from_matrix(livelink.matrix)
    per_mode_transitions = sum(
        DOL.from_matrix(livelink.matrix, mode).n_transitions
        for mode in livelink.matrix.modes
    )
    per_mode_bytes = MultiModeDOL.per_mode_total_bytes(livelink.matrix)
    print_table(
        "A5: one combined multi-mode DOL vs per-mode DOLs (10 modes)",
        ["layout", "transitions", "bytes"],
        [
            ("combined (mode x subject)", combined.n_transitions, combined.size_bytes()),
            ("ten per-mode DOLs", per_mode_transitions, per_mode_bytes),
        ],
    )
    # Nested permission levels change at the same subtree boundaries, so
    # the combined labeling shares transitions across modes.
    assert combined.n_transitions < per_mode_transitions
    assert combined.to_matrix() == livelink.matrix
    benchmark(MultiModeDOL.from_matrix, livelink.matrix)


def test_a4_document_order_matters(xmark_doc, benchmark):
    """Shuffling node order destroys structural locality: transition
    counts approach the alternation worst case."""
    config = SyntheticACLConfig(accessibility_ratio=0.5, seed=11)
    vector = single_subject_labels(xmark_doc, config)
    masks = [int(v) for v in vector]

    rng = random.Random(0)
    shuffled = list(masks)
    rng.shuffle(shuffled)

    in_document_order = len(transitions_from_masks(masks))
    in_random_order = len(transitions_from_masks(shuffled))
    print_table(
        "A4: node order and transition count (single subject)",
        ["order", "transitions"],
        [
            ("document order", in_document_order),
            ("random order", in_random_order),
        ],
    )
    assert in_document_order < in_random_order / 2
    benchmark(transitions_from_masks, masks)
