"""Plan-level benchmarks for the Volcano operator pipeline.

For each Table 1 query, compiles the physical plan, runs it, and prints a
per-operator report (rows, inclusive milliseconds, operator counters) —
the plan-level analogue of Figure 7's query-overhead numbers. A second
bench measures what streaming buys: access checks and page reads for a
``LIMIT k`` plan against the full drain.
"""

from repro.acl.synthetic import SyntheticACLConfig, generate_synthetic_acl
from repro.bench.queries import QUERIES
from repro.bench.reporting import format_plan_table, print_table
from repro.nok.engine import QueryEngine
from repro.secure.semantics import CHO, VIEW


def _engine(xmark_doc, use_store=False):
    config = SyntheticACLConfig(accessibility_ratio=0.8, seed=17)
    matrix = generate_synthetic_acl(xmark_doc, config, n_subjects=4)
    return QueryEngine.build(
        xmark_doc, matrix, use_store=use_store, page_size=1024,
        buffer_capacity=16,
    )


def test_per_operator_profile_all_queries(xmark_doc, benchmark):
    engine = _engine(xmark_doc)
    for qid in sorted(QUERIES):
        plan = engine.compile(QUERIES[qid], subject=0, semantics=CHO)
        plan.run()
        print("\n" + format_plan_table(f"{qid}: {QUERIES[qid]}", plan) + "\n")

    benchmark(lambda: engine.compile(QUERIES["Q5"], subject=0).run())


def test_semantics_rewrite_overhead(xmark_doc, benchmark):
    """Cho vs view semantics as plan shapes: operator counts and checks."""
    engine = _engine(xmark_doc)
    rows = []
    for qid in sorted(QUERIES):
        for semantics in (CHO, VIEW):
            plan = engine.compile(QUERIES[qid], subject=0, semantics=semantics)
            result = plan.run()
            rows.append(
                (
                    qid,
                    semantics,
                    len(list(plan.operators())),
                    result.n_answers,
                    result.stats.access_checks,
                )
            )
    print_table(
        "secure rewrites: plan size and access checks per semantics",
        ["query", "semantics", "operators", "answers", "access checks"],
        rows,
    )
    benchmark(
        lambda: engine.compile(QUERIES["Q5"], subject=0, semantics=VIEW).run()
    )


def test_streaming_limit_savings(xmark_doc, benchmark):
    """What Limit(k) saves over a full drain, store-backed."""
    engine = _engine(xmark_doc, use_store=True)
    rows = []
    full = engine.evaluate("//item", subject=0)
    for k in (1, 5, 25):
        limited = engine.evaluate("//item", subject=0, limit=k)
        rows.append(
            (
                f"limit {k}",
                limited.n_answers,
                limited.stats.access_checks,
                limited.stats.logical_page_reads,
            )
        )
        assert limited.stats.access_checks <= full.stats.access_checks
    rows.append(
        (
            "full drain",
            full.n_answers,
            full.stats.access_checks,
            full.stats.logical_page_reads,
        )
    )
    print_table(
        "streaming: early termination vs full drain (//item, store-backed)",
        ["plan", "answers", "access checks", "logical page reads"],
        rows,
    )
    benchmark(lambda: engine.evaluate("//item", subject=0, limit=5))
