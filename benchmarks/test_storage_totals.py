"""Section 5.1.1: total storage, multi-user DOL vs per-user CAMs.

The paper's headline number: for all 8,639 LiveLink subjects under one
action mode, one DOL needs ~188k transition nodes while per-user CAMs need
~39M labels — three orders of magnitude apart in label count, and ~4 MB
(codebook) + trivial embedded codes vs ~46.6 MB even under unrealistically
small CAM pointers.
"""

from repro.bench.reporting import print_table
from repro.cam.cam import total_cam_labels
from repro.dol.labeling import DOL

MODE = "see"


def test_storage_totals_livelink(livelink, benchmark):
    dol = DOL.from_matrix(livelink.matrix, MODE)
    cam_labels = total_cam_labels(livelink.doc, livelink.matrix, mode=MODE)

    dol_bytes = dol.size_bytes()
    # The paper's generous CAM accounting: 2 accessibility bits and only
    # 1 pointer byte per label.
    cam_bytes_generous = (cam_labels * (2 + 8) + 7) // 8
    cam_bytes_realistic = (cam_labels * (2 + 32) + 7) // 8

    print_table(
        "Section 5.1.1: total storage, all subjects, one action mode",
        ["metric", "DOL", "per-user CAMs"],
        [
            ("labels / transitions", dol.n_transitions, cam_labels),
            ("codebook entries", len(dol.codebook), "n/a"),
            ("bytes (generous CAM)", dol_bytes, cam_bytes_generous),
            ("bytes (4-byte ptr CAM)", dol_bytes, cam_bytes_realistic),
        ],
    )

    # Paper shape: the multi-user DOL is much smaller than the sum of
    # per-user CAMs (three orders of magnitude at 8,639 subjects; the gap
    # scales with the subject count, so CI-sized runs see a smaller but
    # still decisive factor)...
    assert dol.n_transitions * 2 < cam_labels
    assert dol_bytes < cam_bytes_generous

    # ...and the gap *widens* with the number of subjects, because DOL
    # shares transitions across correlated subjects while CAM cannot.
    few = list(range(max(2, livelink.n_subjects // 8)))
    projected = livelink.matrix.restrict_to_subjects(few, MODE)
    dol_few = DOL.from_matrix(projected, MODE)
    cam_few = total_cam_labels(livelink.doc, projected, mode=MODE)
    ratio_few = cam_few / max(dol_few.n_transitions, 1)
    ratio_full = cam_labels / dol.n_transitions
    print(f"CAM/DOL label ratio: {ratio_few:.2f} at {len(few)} subjects, "
          f"{ratio_full:.2f} at {livelink.n_subjects}")
    assert ratio_full > ratio_few

    benchmark(DOL.from_matrix, livelink.matrix, MODE)


def test_storage_totals_unix(unixfs, benchmark):
    dol = DOL.from_matrix(unixfs.matrix)
    cam_labels = total_cam_labels(unixfs.doc, unixfs.matrix)
    print_table(
        "Section 5.1.1 (Unix): total storage, all subjects",
        ["metric", "value"],
        [
            ("DOL transitions", dol.n_transitions),
            ("DOL codebook entries", len(dol.codebook)),
            ("DOL total bytes", dol.size_bytes()),
            ("CAM labels (all users)", cam_labels),
        ],
    )
    assert dol.n_transitions * 5 < cam_labels
    benchmark(total_cam_labels, unixfs.doc, unixfs.matrix)
