"""Figure 4(b): CAM labels vs DOL transition nodes per action mode,
average single user, on the LiveLink surrogate.

The paper samples users for each of the ten access modes and builds a
single-user CAM and DOL for each; in the worst case DOL had 20–25% more
nodes than CAM, in other cases the two were about the same.
"""

import random

from repro.bench.reporting import print_table
from repro.cam.cam import CAM
from repro.dol.labeling import DOL

SAMPLED_USERS = 12


def _per_mode_averages(dataset, rng):
    registry = dataset.registry
    users = [s for s in range(dataset.n_subjects) if not registry.is_group(s)]
    sample = rng.sample(users, min(SAMPLED_USERS, len(users)))
    rows = []
    for mode in dataset.matrix.modes:
        cam_total = dol_total = 0
        for user in sample:
            vector = dataset.matrix.subject_vector(user, mode)
            cam_total += CAM.from_vector(dataset.doc, vector).n_labels
            dol_total += DOL.from_vector(vector).n_transitions
        rows.append(
            (
                mode,
                cam_total / len(sample),
                dol_total / len(sample),
            )
        )
    return rows


def test_fig4b_livelink_modes(livelink, benchmark):
    rng = random.Random(17)
    rows = _per_mode_averages(livelink, rng)
    print_table(
        "Figure 4(b): average single-user CAM labels vs DOL nodes per mode",
        ["mode", "CAM labels", "DOL nodes"],
        rows,
    )
    for mode, cam_avg, dol_avg in rows:
        if cam_avg == 0 and dol_avg <= 1:
            continue  # mode with no sampled rights: both trivial
        # Paper: DOL within ~25% of CAM in the worst case, often equal.
        # Real-data locality keeps the two structures comparable; allow a
        # generous factor-of-3 band for the smaller surrogate.
        assert dol_avg <= 3 * max(cam_avg, 1), (mode, cam_avg, dol_avg)

    # time a representative single-user DOL construction ("see" mode)
    registry = livelink.registry
    user = next(s for s in range(livelink.n_subjects) if not registry.is_group(s))
    vector = livelink.matrix.subject_vector(user, "see")
    benchmark(DOL.from_vector, vector)


def test_fig4b_single_user_structures_decode_correctly(livelink, benchmark):
    """Spot-check that both structures are faithful on surrogate data."""
    registry = livelink.registry
    users = [s for s in range(livelink.n_subjects) if not registry.is_group(s)]
    benchmark(livelink.matrix.subject_vector, users[0], "see")
    for user in users[:3]:
        for mode in ("see", "delete"):
            vector = livelink.matrix.subject_vector(user, mode)
            assert CAM.from_vector(livelink.doc, vector).to_vector() == vector
            dol = DOL.from_vector(vector)
            assert [dol.accessible(0, p) for p in range(len(vector))] == vector
