"""Class-collapse benchmark — emits ``BENCH_classes.json``.

Simulates LiveLink-scale user populations (each user a subject set of
1–3 groups) against one fixed ACL configuration and asserts the
canonicalization contract end to end:

- the distinct-class count stays in the hundreds while simulated users
  scale 10^3 → 10^5 (classes measure ACL structure, not population);
- every cache layer's entry count is bounded by ``#classes x #queries``
  times a small constant — the machine-independent ratio the CI gate
  (:func:`~repro.bench.classes.gate_class_report`) also enforces;
- statically denied (query, class) pairs answer with zero page reads.

Timing numbers are reported but not asserted — ratios transfer across
machines, latencies do not.
"""

import os

from repro.bench.classes import (
    gate_class_report,
    run_class_benchmark,
    write_report,
)


def test_class_collapse_report(bench_scale):
    user_counts = (
        1_000 * bench_scale, 10_000 * bench_scale, 100_000 * bench_scale
    )
    report = run_class_benchmark(user_counts=user_counts)

    assert set(report["scales"]) == {str(c) for c in user_counts}
    n_queries = len(report["queries"])
    for entry in report["scales"].values():
        # collapse: hundreds of classes against thousands-to-hundreds of
        # thousands of users
        assert 0 < entry["n_classes"] < 1_000
        assert entry["n_classes"] < entry["n_users"]
        # cache population bounded by class structure, never users
        bound = entry["n_classes"] * n_queries * 4
        assert entry["plan_cache_entries"] <= bound
        assert entry["run_cache_entries"] <= bound
        assert entry["result_cache_entries"] <= bound
        # fully-denied classes never touch the store
        assert entry["denied_with_reads"] == 0
        if entry["static_deny"]:
            assert entry["denied_zero_read"] == entry["static_deny"]

    # the largest population must show real collapse (and the gate the
    # CLI/CI use must agree)
    largest = report["scales"][str(user_counts[-1])]
    assert largest["n_classes"] * 10 <= largest["n_users"]
    assert gate_class_report(report) == []

    # class-id memoization carries the canonicalization load: all but
    # the distinct subject sets resolve from the memo
    assert largest["class_memo_hits"] > largest["n_users"] * 0.9

    out = os.environ.get("REPRO_BENCH_CLASSES_OUT", "BENCH_classes.json")
    write_report(report, out)

    print("\nClass collapse (fixed ACL config, growing population):")
    for label in sorted(report["scales"], key=int):
        entry = report["scales"][label]
        print(
            f"  users={label}: {entry['n_classes']} classes  "
            f"plan={entry['plan_cache_entries']} "
            f"run={entry['run_cache_entries']} "
            f"result={entry['result_cache_entries']}  "
            f"{entry['users_per_sec']:.0f} canon/s  "
            f"{entry['queries_per_sec']:.0f} q/s"
        )
