"""Per-backend labeling comparison on the XMark instance.

Builds every registered backend (DOL / CAM / naive) from one synthetic
accessibility matrix, checks that all of them produce identical secure
answers for the Table 1 workload, prints the size and timing comparison,
and emits the machine-readable report as ``BENCH_labeling.json``.
"""

import os

from repro.acl.synthetic import SyntheticACLConfig, generate_synthetic_acl
from repro.bench.labeling import compare_backends, write_report
from repro.bench.queries import QUERIES
from repro.bench.reporting import print_table
from repro.labeling.registry import available_backends, build_labeling

N_SUBJECTS = 4
ACL_CONFIG = SyntheticACLConfig(
    propagation_ratio=0.3, accessibility_ratio=0.7, seed=11
)


def _matrix(doc):
    return generate_synthetic_acl(doc, ACL_CONFIG, n_subjects=N_SUBJECTS)


def test_backend_comparison_report(xmark_doc):
    matrix = _matrix(xmark_doc)
    report = compare_backends(xmark_doc, matrix, subject=1)

    backends = report["backends"]
    assert set(backends) == set(available_backends())

    # Differential gate: every backend answers the whole workload
    # identically (count and position fingerprint).
    for qid in QUERIES:
        per_backend = {
            name: (
                entry["queries"][qid]["n_answers"],
                entry["queries"][qid]["positions_digest"],
            )
            for name, entry in backends.items()
        }
        assert len(set(per_backend.values())) == 1, (qid, per_backend)

    print_table(
        "Labeling backends on XMark (size + Q1 wall time)",
        ["backend", "labels", "bytes", "build ms", "Q1 ms"],
        [
            (
                name,
                entry["n_labels"],
                entry["size_bytes"],
                entry["build_time"] * 1000.0,
                entry["queries"]["Q1"]["wall_time"] * 1000.0,
            )
            for name, entry in sorted(backends.items())
        ],
    )

    out = os.environ.get("REPRO_BENCH_LABELING_OUT", "BENCH_labeling.json")
    path = write_report(report, out)
    assert os.path.exists(path)


def test_dol_is_smallest_backend(xmark_doc, benchmark):
    """The paper's size claim: the DOL stores far fewer labels than naive
    per-node ACLs, and fewer bytes than per-subject CAMs at multi-subject
    scale."""
    matrix = _matrix(xmark_doc)
    built = {
        name: build_labeling(name, xmark_doc, matrix)
        for name in available_backends()
    }
    assert built["dol"].n_labels < built["naive"].n_labels
    assert built["dol"].size_bytes() < built["cam"].size_bytes()
    assert built["dol"].size_bytes() < built["naive"].size_bytes()

    benchmark(build_labeling, "dol", xmark_doc, matrix)
