"""Batch-vs-tuple execution benchmark — emits ``BENCH_exec.json``.

Runs the secure-query workload in both execution modes at three document
sizes (scaled by ``REPRO_BENCH_SCALE``) and writes the per-query latency,
speedup, and probes-saved report. Answer identity between the modes is
enforced inside :func:`~repro.bench.exec.run_exec_benchmark` itself; the
assertions here are deliberately loose on timing — the committed
baseline gate (the ``bench`` CLI subcommand against
``BENCH_baseline.json``) is where regressions are judged.
"""

import os

from repro.bench.exec import run_exec_benchmark, write_report


def test_exec_vectorized_report(bench_scale):
    sizes = (40 * bench_scale, 80 * bench_scale, 160 * bench_scale)
    report = run_exec_benchmark(sizes=sizes, repeats=3)

    assert set(report["sizes"]) == {str(s) for s in sizes}
    for entry in report["sizes"].values():
        for qid, q in entry["queries"].items():
            assert q["tuple_ms"] > 0 and q["batch_ms"] > 0, qid
        assert entry["speedup_overall"] > 0

    # The vectorized operators must not lose to tuple mode overall at
    # the largest size (the committed baseline shows >= 2x; CI boxes are
    # noisy, so the in-test floor is deliberately soft).
    assert report["largest"]["speedup_overall"] > 1.0

    # Every secure query answers through run intervals, never per-node
    # backend probes.
    biggest = report["sizes"][str(sizes[-1])]
    assert all(
        q["probes_saved"] > 0
        for q in biggest["queries"].values()
        if q["access_checks"] > 0
    )

    out = os.environ.get("REPRO_BENCH_EXEC_OUT", "BENCH_exec.json")
    write_report(report, out)

    print("\nBatch vs tuple execution (best of 3):")
    for size in sorted(report["sizes"], key=int):
        entry = report["sizes"][size]
        print(
            f"  n_items={size}: tuple {entry['tuple_total_ms']:.2f}ms  "
            f"batch {entry['batch_total_ms']:.2f}ms  "
            f"speedup {entry['speedup_overall']:.2f}x"
        )
