"""Figure 4(a): CAM labels vs DOL transition nodes, single subject,
synthetic access controls on XMark.

The paper sweeps the accessibility ratio from 10% to 90% under three
propagation ratios (10%, 30%, 50%) and plots the ratio of CAM node count to
DOL transition node count. Expected shape: CAM is smaller (ratio ~0.5) at
low accessibility, the gap narrows as accessibility grows; CAM's curve is
asymmetric (worst near 60% accessibility) while DOL's peaks at 50%.
"""

from repro.acl.synthetic import SyntheticACLConfig, single_subject_labels
from repro.bench.reporting import print_table
from repro.cam.cam import CAM
from repro.dol.labeling import DOL

ACCESSIBILITY_RATIOS = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
PROPAGATION_RATIOS = [0.1, 0.3, 0.5]


def _sizes(doc, propagation, accessibility, seed=1):
    config = SyntheticACLConfig(
        propagation_ratio=propagation,
        accessibility_ratio=accessibility,
        seed=seed,
    )
    vector = single_subject_labels(doc, config)
    dol = DOL.from_vector(vector)
    cam = CAM.from_vector(doc, vector)
    return cam.n_labels, dol.n_transitions


def _mean_sizes(doc, propagation, accessibility, n_seeds=3):
    cams, dols = [], []
    for seed in range(n_seeds):
        cam_n, dol_n = _sizes(doc, propagation, accessibility, seed)
        cams.append(cam_n)
        dols.append(dol_n)
    return sum(cams) / n_seeds, sum(dols) / n_seeds


def test_fig4a_ratio_sweep(xmark_doc, benchmark):
    rows = []
    curves = {}
    for propagation in PROPAGATION_RATIOS:
        ratios = []
        for accessibility in ACCESSIBILITY_RATIOS:
            cam_n, dol_n = _mean_sizes(xmark_doc, propagation, accessibility)
            ratio = cam_n / dol_n
            ratios.append(ratio)
            rows.append(
                (f"{propagation:.0%}", f"{accessibility:.0%}", cam_n, dol_n, ratio)
            )
        curves[propagation] = ratios
    print_table(
        "Figure 4(a): CAM labels / DOL transition nodes (synthetic, 1 subject)",
        ["propagation", "accessibility", "CAM", "DOL", "CAM/DOL"],
        rows,
    )

    for propagation, ratios in curves.items():
        # Paper shape: the CAM/DOL ratio is lowest at low accessibility
        # and grows with it (the paper's gap narrows; our minimal
        # positive-cover CAM eventually exceeds DOL).
        assert ratios[0] == min(ratios), (propagation, ratios)
        assert ratios[-1] > ratios[0], (propagation, ratios)

    # time one representative labeling construction
    benchmark(_sizes, xmark_doc, 0.3, 0.5)


def test_fig4a_dol_symmetry(xmark_doc, benchmark):
    """DOL transition count peaks near 50% accessibility and is roughly
    symmetric around it; CAM's peak sits right of 50% (asymmetric)."""
    dol_counts = {}
    cam_counts = {}
    for accessibility in ACCESSIBILITY_RATIOS:
        # average over seeds to smooth sampling noise
        cams, dols = [], []
        for seed in range(3):
            cam_n, dol_n = _sizes(xmark_doc, 0.3, accessibility, seed=seed)
            cams.append(cam_n)
            dols.append(dol_n)
        dol_counts[accessibility] = sum(dols) / len(dols)
        cam_counts[accessibility] = sum(cams) / len(cams)

    from repro.bench.figures import print_bars

    print_bars(
        "CAM labels by accessibility ratio (propagation 30%)",
        [(f"{a:.0%}", cam_counts[a]) for a in ACCESSIBILITY_RATIOS],
    )
    print_bars(
        "DOL transitions by accessibility ratio (propagation 30%)",
        [(f"{a:.0%}", dol_counts[a]) for a in ACCESSIBILITY_RATIOS],
    )
    dol_peak = max(dol_counts, key=dol_counts.get)
    cam_peak = max(cam_counts, key=cam_counts.get)
    print_table(
        "Figure 4(a) detail: size curves (propagation 30%)",
        ["accessibility", "CAM", "DOL"],
        [
            (f"{a:.0%}", cam_counts[a], dol_counts[a])
            for a in ACCESSIBILITY_RATIOS
        ],
    )
    benchmark(_sizes, xmark_doc, 0.3, 0.6)
    assert 0.4 <= dol_peak <= 0.6, f"DOL peak at {dol_peak}"
    # CAM's maximum sits right of 50% (the paper reports 60%).
    assert cam_peak > 0.5, f"CAM peak at {cam_peak}"
    assert cam_peak >= dol_peak, f"CAM peak {cam_peak} left of DOL peak {dol_peak}"
    # DOL symmetry: counts at 10% and 90% are within a factor ~2.5
    low, high = dol_counts[0.1], dol_counts[0.9]
    assert max(low, high) / max(1, min(low, high)) < 2.5
    # CAM asymmetry: 10% accessibility needs far fewer labels than 90%
    # (the paper reports roughly one third).
    assert cam_counts[0.1] < 0.6 * cam_counts[0.9]
