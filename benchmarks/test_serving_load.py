"""Serving load benchmark — emits ``BENCH_serving.json``.

Runs the open-loop load generator against *both* servers (threaded
NDJSON v1 and asyncio v2) over one engine, applies the
machine-independent ratio gates, and separately verifies the async
server's headline capacity claim: ≥1000 concurrent connections with
bounded resident memory.

Scale knobs: ``REPRO_BENCH_SCALE`` multiplies the request counts;
``REPRO_BENCH_SERVING_OUT`` overrides the report path.
"""

from __future__ import annotations

import json
import os
import socket

import pytest

from repro.acl.surrogates import generate_livelink
from repro.bench.loadgen import (
    gate_serving_report,
    run_serving_benchmark,
)
from repro.labeling.registry import build_labeling
from repro.nok.engine import QueryEngine
from repro.server.aserver import serve_async
from repro.server.netserver import serve
from repro.server.protocol import encode_response
from repro.server.service import QueryService, ServiceConfig
from repro.storage.nokstore import NoKStore

N_GROUPS = 12


@pytest.fixture(scope="module")
def serving_engine():
    dataset = generate_livelink(
        n_items=300, n_groups=N_GROUPS, n_users=0, seed=7
    )
    built = build_labeling("dol", dataset.doc, dataset.matrix, "add_items")
    store = NoKStore(dataset.doc, built, page_size=4096)
    engine = QueryEngine(dataset.doc, labeling=built, store=store)
    yield engine
    store.close()


def rss_mb() -> float:
    with open("/proc/self/status", encoding="ascii") as status:
        for line in status:
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) / 1024.0
    return 0.0


def test_serving_load_both_servers(serving_engine, bench_scale, tmp_path):
    config = ServiceConfig(workers=4, queue_depth=16)
    v1_service = QueryService(serving_engine, config)
    v2_service = QueryService(serving_engine, config)
    v1_server = serve(v1_service, host="127.0.0.1", port=0, background=True)
    v2_server = serve_async(v2_service, host="127.0.0.1", port=0)
    try:
        report = run_serving_benchmark(
            v1_server.address,
            v2_server.address,
            n_users=2000,
            n_groups=N_GROUPS,
            connections=(8, 64),
            requests=60 * bench_scale,
            arrival_rate_hz=400.0,
            seed=0,
        )
    finally:
        v2_server.shutdown()
        v1_server.shutdown()
        v1_server.server_close()
        v2_service.close()
        v1_service.close()

    # every profile is stamped with its measurement identity
    assert len(report["profiles"]) == 6
    for entry in report["profiles"]:
        assert entry["protocol"] in (1, 2)
        assert entry["connections"] in (8, 64)
        assert entry["arrival_rate_hz"] == 400.0
        assert entry["completed"] > 0
        assert entry["latency"]["n"] == entry["completed"]
    streamed = [e for e in report["profiles"] if e["stream"]]
    assert streamed and all("ttff" in e for e in streamed)

    problems = gate_serving_report(report)
    assert problems == [], problems

    out = os.environ.get(
        "REPRO_BENCH_SERVING_OUT", str(tmp_path / "BENCH_serving.json")
    )
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)


def test_thousand_connections_bounded_rss(serving_engine):
    service = QueryService(serving_engine, ServiceConfig(workers=4, queue_depth=16))
    server = serve_async(service, host="127.0.0.1", port=0)
    conns = []
    try:
        before = rss_mb()
        for _ in range(1000):
            sock = socket.create_connection(server.address, timeout=10)
            conns.append(sock)
        # every connection is live: each one answers a request
        for i, sock in enumerate(conns):
            sock.sendall(encode_response(
                {"op": "ping"} if i % 4 else
                {"op": "query", "query": "//item/name", "subject": i % N_GROUPS}
            ))
        # every connection stays live and gets a structured answer; a
        # burst of 1000 simultaneous requests against a 20-slot
        # admission limit MUST shed most of them — in-band, typed, and
        # without dropping anyone
        answered = ok = shed = 0
        for sock in conns:
            reader = sock.makefile("rb")
            response = json.loads(reader.readline())
            answered += 1
            if response["ok"]:
                ok += 1
            else:
                assert response["error"] == "ServiceOverloaded", response
                shed += 1
        assert answered == 1000
        assert ok > 0
        grown = rss_mb() - before
        assert server.server.connections_peak >= 1000
        # bounded memory: ~1k idle-ish connections must not cost more
        # than ~100KB each (buffers allocate on demand, not at the cap)
        assert grown < 128.0, f"RSS grew {grown:.1f} MB for 1000 connections"
    finally:
        for sock in conns:
            try:
                sock.close()
            except OSError:
                pass
        server.shutdown()
        service.close()
