"""Index I/O: B+-tree probes cost O(height) page reads.

NoK matching is seeded from B+-trees on tag names (Section 4.1). The
disk-backed index participates in the same I/O accounting as data pages;
a point probe should read about one page per tree level plus the leaf
chain holding the postings.
"""

from repro.bench.reporting import print_table
from repro.index.diskbptree import DiskBPlusTree
from repro.index.tagindex import DiskTagIndex


def test_probe_cost_tracks_height(xmark_doc, benchmark):
    index = DiskTagIndex(xmark_doc, page_size=1024, buffer_capacity=256)
    tree = index._by_tag
    tree.buffer.clear()
    tree.pager.stats.reset()

    rows = []
    for tag in ("site", "quantity", "keyword", "item", "text"):
        tree.buffer.clear()
        tree.pager.stats.reset()
        postings = index.positions(tag)
        rows.append((tag, len(postings), tree.pager.stats.reads))
    print_table(
        "DiskTagIndex point probes (cold cache)",
        ["tag", "postings", "page reads"],
        rows,
    )
    height = tree.height()
    print(f"index height: {height}, pages: {tree.pager.n_pages}")
    for tag, n_postings, reads in rows:
        # descend (height pages) + the leaves holding the postings
        leaf_budget = max(1, n_postings // 8 + 2)
        assert reads <= height + leaf_budget, (tag, reads)

    benchmark(index.positions, "item")


def test_index_construction_scales(benchmark):
    def build(n):
        tree = DiskBPlusTree(page_size=1024)
        for i in range(n):
            tree.insert(f"tag{i % 50:02d}", i)
        return tree

    small = build(1000)
    large = build(4000)
    assert large.height() >= small.height()
    print(
        f"1k entries: height {small.height()}, {small.pager.n_pages} pages; "
        f"4k entries: height {large.height()}, {large.pager.n_pages} pages"
    )
    benchmark(build, 1000)
