"""Figures 5(a) and 5(b): codebook entries as a function of the number of
subjects, on the LiveLink and Unix file system surrogates.

If subjects' rights were uncorrelated the codebook would grow
exponentially (up to min(|D|, 2^S)); the paper observes far slower,
sub-exponential growth — ~4,000 entries for 8,639 LiveLink subjects and
~855 entries for 247 Unix subjects.
"""

import random

from repro.bench.reporting import print_table
from repro.dol.labeling import DOL


def _codebook_curve(dataset, mode, fractions, rng):
    n_subjects = dataset.n_subjects
    rows = []
    for fraction in fractions:
        k = max(1, round(fraction * n_subjects))
        subjects = rng.sample(range(n_subjects), k)
        projected = dataset.matrix.restrict_to_subjects(subjects, mode)
        dol = DOL.from_matrix(projected, mode)
        rows.append((k, len(dol.codebook), dol.n_transitions))
    return rows


FRACTIONS = [0.1, 0.25, 0.5, 0.75, 1.0]


def _check_subexponential(rows, n_nodes):
    for k, entries, _transitions in rows:
        # Far below the uncorrelated bound min(|D|, 2^k).
        bound = min(n_nodes, 2**k)
        if k > 8:
            assert entries < bound / 4, (k, entries, bound)
    # Growth factor between consecutive points is modest, nothing like 2^k.
    for (k1, e1, _), (k2, e2, _) in zip(rows, rows[1:]):
        if e1 >= 8:
            assert e2 / e1 < (k2 / k1) ** 3, (k1, e1, k2, e2)


def test_fig5a_livelink_codebook(livelink, benchmark):
    rng = random.Random(5)
    rows = _codebook_curve(livelink, "see", FRACTIONS, rng)
    print_table(
        "Figure 5(a): codebook entries vs number of LiveLink subjects",
        ["subjects", "codebook entries", "transition nodes"],
        [(k, e, t) for k, e, t in rows],
    )
    _check_subexponential(rows, len(livelink.doc))

    full_dol = DOL.from_matrix(livelink.matrix, "see")
    size = full_dol.codebook.size_bytes()
    print(f"complete LiveLink codebook: {len(full_dol.codebook)} entries, {size} bytes")
    benchmark(DOL.from_matrix, livelink.matrix, "see")


def test_fig5b_unix_codebook(unixfs, benchmark):
    rng = random.Random(6)
    rows = _codebook_curve(unixfs, "read", FRACTIONS, rng)
    print_table(
        "Figure 5(b): codebook entries vs number of Unix subjects",
        ["subjects", "codebook entries", "transition nodes"],
        [(k, e, t) for k, e, t in rows],
    )
    _check_subexponential(rows, len(unixfs.doc))
    benchmark(DOL.from_matrix, unixfs.matrix, "read")
