"""Section 3.4: update costs.

- A single-node accessibility update touches one page (read + write).
- A subtree update of N nodes rewrites ~N/B pages (B = nodes per page),
  far cheaper than N separate node updates.
- Proposition 1 holds across random update workloads: every operation
  adds at most 2 transition nodes.
- Subject addition/removal touches only the in-memory codebook.
"""

import random

from repro.acl.synthetic import SyntheticACLConfig, generate_synthetic_acl
from repro.bench.reporting import print_table
from repro.dol.labeling import DOL
from repro.dol.updates import DOLUpdater
from repro.storage.nokstore import NoKStore


def _store(doc, n_subjects=4, page_size=4096):
    matrix = generate_synthetic_acl(
        doc, SyntheticACLConfig(accessibility_ratio=0.6, seed=8), n_subjects
    )
    dol = DOL.from_matrix(matrix)
    return NoKStore(doc, dol, page_size=page_size, buffer_capacity=64)


def test_single_node_update_touches_one_page(xmark_doc, benchmark):
    store = _store(xmark_doc)
    target = len(xmark_doc) // 2
    cost = store.update_subject_range(target, target + 1, 0, False)
    assert cost.pages_rewritten <= 2  # node page + possible boundary page
    assert cost.transition_delta <= 2

    benchmark(store.update_subject_range, target, target + 1, 0, True)


def test_subtree_update_costs_n_over_b_pages(xmark_doc, benchmark):
    store = _store(xmark_doc)
    b = store.entries_per_page
    # pick a large subtree (the regions section)
    root = 1
    end = xmark_doc.subtree_end(root)
    n = end - root
    cost = store.update_subject_range(root, end, 1, False)
    expected_pages = -(-n // b)  # ceil(N/B)
    print_table(
        "Section 3.4: subtree update cost",
        ["metric", "value"],
        [
            ("subtree nodes N", n),
            ("nodes per page B", b),
            ("ceil(N/B)", expected_pages),
            ("pages rewritten", cost.pages_rewritten),
        ],
    )
    assert cost.pages_rewritten <= expected_pages + 2
    assert cost.transition_delta <= 2

    benchmark(store.update_subject_range, root, end, 1, True)


def test_proposition1_random_workload(xmark_doc, benchmark):
    rng = random.Random(44)
    matrix = generate_synthetic_acl(
        xmark_doc, SyntheticACLConfig(accessibility_ratio=0.5, seed=3), 4
    )
    dol = DOL.from_matrix(matrix)
    updater = DOLUpdater(dol)
    n = len(xmark_doc)
    deltas = []
    for _ in range(300):
        start = rng.randrange(n)
        end = xmark_doc.subtree_end(start)
        subject = rng.randrange(4)
        delta = updater.set_subject_accessibility(
            start, end, subject, rng.random() < 0.5
        )
        DOLUpdater.check_proposition1(delta)
        deltas.append(delta)
    dol.validate()
    print_table(
        "Proposition 1 over 300 random subtree updates",
        ["metric", "value"],
        [
            ("max delta", max(deltas)),
            ("mean delta", sum(deltas) / len(deltas)),
            ("final transitions", dol.n_transitions),
        ],
    )
    assert max(deltas) <= 2

    def one_update():
        start = rng.randrange(n)
        updater.set_subject_accessibility(
            start, xmark_doc.subtree_end(start), 0, True
        )

    benchmark(one_update)


def test_subject_addition_is_codebook_only(xmark_doc, benchmark):
    store = _store(xmark_doc)
    dol = store.dol
    transitions_before = list(dol.positions)
    pager_writes_before = store.pager.stats.writes

    new_subject = dol.codebook.add_subject(initially_like=0)
    assert dol.positions == transitions_before  # embedded data untouched
    assert store.pager.stats.writes == pager_writes_before  # no page I/O
    # the new subject's rights mirror subject 0's
    for pos in range(0, store.n_nodes, 57):
        assert dol.accessible(new_subject, pos) == dol.accessible(0, pos)

    benchmark(dol.codebook.add_subject)


def test_subject_removal_lazy_compaction(xmark_doc, benchmark):
    store = _store(xmark_doc)
    book = store.dol.codebook
    book.remove_subject(2)
    # codes remain valid; duplicates may exist awaiting lazy compaction
    for code in store.dol.codes:
        book.decode(code)
    assert book.duplicate_entry_count() >= 0
    benchmark(book.duplicate_entry_count)
