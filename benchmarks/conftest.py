"""Shared benchmark fixtures.

Scale is controlled by ``REPRO_BENCH_SCALE`` (default 1): the paper ran on
an 832k-node XMark instance and datasets with thousands of subjects; scale
1 keeps every bench in CI territory (seconds), scale 4+ approaches
paper-like sizes.
"""

from __future__ import annotations

import os

import pytest

from repro.acl.surrogates import generate_livelink, generate_unix_fs
from repro.xmark.generator import XMarkConfig, generate_document

SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "1"))


def scaled(base: int) -> int:
    return base * SCALE


@pytest.fixture(scope="session")
def bench_scale():
    return SCALE


@pytest.fixture(scope="session")
def xmark_doc():
    """The benchmark XMark instance (~10k nodes at scale 1)."""
    return generate_document(
        XMarkConfig(
            n_items=scaled(400),
            n_categories=scaled(40),
            n_people=scaled(50),
            n_open_auctions=scaled(50),
            seed=42,
        )
    )


@pytest.fixture(scope="session")
def livelink():
    """LiveLink surrogate (~4k items, 72 subjects, 10 modes at scale 1)."""
    return generate_livelink(
        n_items=scaled(2000),
        n_groups=max(8, scaled(12)),
        n_users=scaled(60),
        seed=7,
    )


@pytest.fixture(scope="session")
def unixfs():
    """Unix file system surrogate (~6k nodes, 50 subjects at scale 1)."""
    return generate_unix_fs(
        n_nodes=scaled(6000),
        n_users=scaled(40),
        n_groups=max(6, scaled(10)),
        seed=7,
    )
