"""Figures 6(a) and 6(b): transition nodes as a function of the number of
subjects, on the LiveLink and Unix surrogates.

The paper observes strongly sublinear growth: 8,000+ LiveLink subjects
need only ~4x the transitions of a single subject, and 247 Unix subjects
only ~2x those of 5 subjects; transition density stays below 1 in 100
nodes for the full subject sets.
"""

import random

from repro.bench.reporting import print_table
from repro.dol.labeling import DOL


def _transition_curve(dataset, mode, counts, rng):
    rows = []
    for k in counts:
        subjects = rng.sample(range(dataset.n_subjects), k)
        projected = dataset.matrix.restrict_to_subjects(subjects, mode)
        dol = DOL.from_matrix(projected, mode)
        rows.append((k, dol.n_transitions, dol.transition_density()))
    return rows


def _counts_for(dataset):
    n = dataset.n_subjects
    return sorted({1, max(2, n // 8), max(3, n // 4), max(4, n // 2), n})


def _check_sublinear(rows):
    (k0, t0, _), *_rest, (k1, t1, _) = rows
    subject_growth = k1 / k0
    transition_growth = t1 / max(t0, 1)
    # Sublinear: transitions grow much more slowly than the subject count.
    assert transition_growth < subject_growth, (rows,)
    assert transition_growth < 0.5 * subject_growth or subject_growth < 8, (rows,)


def test_fig6a_livelink_transitions(livelink, benchmark):
    rng = random.Random(15)
    rows = _transition_curve(livelink, "see", _counts_for(livelink), rng)
    print_table(
        "Figure 6(a): transition nodes vs number of LiveLink subjects",
        ["subjects", "transition nodes", "density"],
        rows,
    )
    _check_sublinear(rows)
    full = rows[-1]
    # Paper: density below 1 in 10 for the full subject set (1 in 100 at
    # paper scale; the smaller surrogate tree is denser).
    assert full[2] < 0.5, full

    subjects = list(range(livelink.n_subjects))
    benchmark(livelink.matrix.restrict_to_subjects, subjects, "see")


def test_fig6b_unix_transitions(unixfs, benchmark):
    rng = random.Random(16)
    rows = _transition_curve(unixfs, "read", _counts_for(unixfs), rng)
    print_table(
        "Figure 6(b): transition nodes vs number of Unix subjects",
        ["subjects", "transition nodes", "density"],
        rows,
    )
    _check_sublinear(rows)

    def build_full():
        return DOL.from_matrix(unixfs.matrix, "read")

    benchmark(build_full)
