"""Queries Q4–Q6: ancestor–descendant structural joins, secure variants.

Table 1's bottom three queries exercise structural joins with descendants
close to (Q4), medium-distant from (Q5) and distant from (Q6) their
ancestors. The paper evaluates ε-NoK for these via the ε-STD secure join
([18], Section 4.2): under Cho semantics no path checks are needed; under
view semantics every joined path must be fully accessible.
"""

import time

from repro.acl.synthetic import SyntheticACLConfig, single_subject_labels
from repro.bench.queries import JOIN_QUERIES, QUERIES
from repro.bench.reporting import print_table
from repro.dol.labeling import DOL
from repro.nok.engine import QueryEngine
from repro.secure.semantics import CHO, VIEW


def _engine(doc, accessibility=0.7, seed=9):
    config = SyntheticACLConfig(
        propagation_ratio=0.3, accessibility_ratio=accessibility, seed=seed
    )
    vector = single_subject_labels(doc, config)
    dol = DOL.from_masks([int(v) for v in vector], 1)
    return QueryEngine(doc, dol=dol)


def _median_time(fn, repeats=5):
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    times.sort()
    return times[len(times) // 2]


def test_join_queries_all_semantics(xmark_doc, benchmark):
    engine = _engine(xmark_doc)
    rows = []
    for qid in JOIN_QUERIES:
        query = QUERIES[qid]
        plain = engine.evaluate(query)
        cho = engine.evaluate(query, subject=0, semantics=CHO)
        view = engine.evaluate(query, subject=0, semantics=VIEW)
        t_plain = _median_time(lambda: engine.evaluate(query))
        t_cho = _median_time(lambda: engine.evaluate(query, subject=0))
        rows.append(
            (
                qid,
                plain.n_answers,
                cho.n_answers,
                view.n_answers,
                t_cho / t_plain,
            )
        )
    print_table(
        "Q4-Q6: structural joins under three evaluation modes",
        ["query", "plain answers", "cho answers", "view answers", "time ratio"],
        rows,
    )
    for qid, plain_n, cho_n, view_n, time_ratio in rows:
        assert view_n <= cho_n <= plain_n, qid
        assert plain_n > 0, f"{qid} found nothing: generator too small"
        # Secure joins stay in the same cost regime as non-secure ones.
        assert time_ratio < 2.0, (qid, time_ratio)

    benchmark(engine.evaluate, QUERIES["Q6"], 0)


def test_join_distance_classes(xmark_doc, benchmark):
    """Q4 descendants sit close to their ancestors, Q6 distant — verify the
    workload exhibits the distance classes Table 1 was designed around."""
    engine = _engine(xmark_doc)

    def mean_distance(qid):
        from repro.nok.pattern import parse_query
        from repro.nok.reference import enumerate_bindings

        pattern = parse_query(QUERIES[qid])
        bindings = enumerate_bindings(xmark_doc, pattern)
        distances = []
        for binding in bindings:
            positions = sorted(binding.values())
            top, bottom = positions[0], positions[-1]
            distances.append(xmark_doc.depth[bottom] - xmark_doc.depth[top])
        return sum(distances) / len(distances)

    d4 = mean_distance("Q4")
    d6 = mean_distance("Q6")
    print(f"mean AD depth distance: Q4={d4:.2f} Q6={d6:.2f}")
    assert d4 < d6, "parlist//parlist should be tighter than item//emph"
    benchmark(engine.evaluate, QUERIES["Q4"])


def test_pathstack_strategy_comparison(xmark_doc, benchmark):
    """A6: NoK decomposition + STD vs holistic PathStack on Q4–Q6.

    Both strategies must agree exactly; timings show which join style wins
    on each distance class.
    """
    engine = _engine(xmark_doc)
    rows = []
    for qid in JOIN_QUERIES:
        query = QUERIES[qid]
        nok = engine.evaluate(query, subject=0)
        holistic = engine.evaluate_path(query, subject=0)
        assert holistic.positions == nok.positions, qid
        t_nok = _median_time(lambda: engine.evaluate(query, subject=0))
        t_ps = _median_time(lambda: engine.evaluate_path(query, subject=0))
        rows.append((qid, nok.n_answers, t_nok * 1000, t_ps * 1000))
    print_table(
        "A6: secure join strategies (times in ms)",
        ["query", "answers", "NoK+STD", "PathStack"],
        rows,
    )
    benchmark(engine.evaluate_path, QUERIES["Q6"], 0)


def test_join_loads_each_page_at_most_once(xmark_doc, benchmark):
    """The [18] claim for ε-STD: with a sufficient buffer, secure join
    evaluation loads every data page at most once."""
    from repro.dol.labeling import DOL
    from repro.storage.nokstore import NoKStore
    from repro.acl.synthetic import SyntheticACLConfig, single_subject_labels

    vector = single_subject_labels(
        xmark_doc,
        SyntheticACLConfig(propagation_ratio=0.3, accessibility_ratio=0.7, seed=9),
    )
    dol = DOL.from_masks([int(v) for v in vector], 1)
    store = NoKStore(xmark_doc, dol, page_size=1024, buffer_capacity=4096)
    engine = QueryEngine(xmark_doc, dol=dol, store=store)
    for qid in JOIN_QUERIES:
        store.drop_caches()
        result = engine.evaluate(QUERIES[qid], subject=0)
        assert result.stats.physical_page_reads <= store.n_pages, (
            qid,
            result.stats.physical_page_reads,
            store.n_pages,
        )
    benchmark(engine.evaluate, QUERIES["Q4"], 0)


def test_secure_join_view_prunes_paths(xmark_doc, benchmark):
    """With a blocked region, view semantics returns strictly fewer (or
    equal) answers than Cho on join queries."""
    engine = _engine(xmark_doc, accessibility=0.5, seed=1)
    benchmark(engine.evaluate, QUERIES["Q5"], 0, VIEW)
    for qid in JOIN_QUERIES:
        cho = set(engine.evaluate(QUERIES[qid], subject=0, semantics=CHO).positions)
        view = set(engine.evaluate(QUERIES[qid], subject=0, semantics=VIEW).positions)
        assert view <= cho
