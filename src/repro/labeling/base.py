"""The :class:`AccessLabeling` backend interface.

The paper's experiments compare three ways of attaching an accessibility
function to an XML document: the DOL (its contribution), the Compressed
Accessibility Map (CAM, the prior art), and naive per-node labels (the
strawman). This module defines the contract all three implement so the
query engine, the block store, secure dissemination, and the benchmarks
can run against any of them interchangeably:

- **accessibility probes** — ``accessible`` / ``accessible_any`` /
  ``mask_at`` answer the paper's ``accessible(s, d)`` predicate;
- **skip hints** — ``has_page_hints`` declares whether the backend embeds
  transition codes into store pages (enabling the Section 3.3 page-skip
  test); backends without hints degrade gracefully — every page is read;
- **catalog serialization** — ``to_catalog`` / ``from_catalog`` move the
  labeling through the store's JSON catalog (the DOL backend is special:
  its codes are *embedded in the pages*, so it round-trips through the
  page file instead and keeps its on-disk format);
- **update hooks** — the Section 3.4 accessibility and structural update
  operations, with a generic rebuild-from-masks default that concrete
  backends override when they can do better (the DOL's local splice);
- **size accounting** — ``n_labels`` / ``size_bytes`` under each
  backend's own cost model (Section 5.1.1), so size comparisons are
  uniform.

Backends register themselves in :mod:`repro.labeling.registry`; the CLI
and benches select them by name (``dol`` / ``cam`` / ``naive``).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Sequence

from repro.acl.model import READ
from repro.errors import AccessControlError, UpdateError
from repro.labeling.runs import Run, runs_from_predicate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.acl.model import AccessMatrix
    from repro.xmltree.document import Document

MaskFn = Callable[[int], int]


class AccessLabeling(abc.ABC):
    """Abstract access-control labeling of one document (one action mode).

    Concrete backends carry ``n_nodes`` as an instance attribute and set
    the two class attributes:

    ``backend_name``
        The registry/catalog tag (``"dol"``, ``"cam"``, ``"naive"``).
    ``has_page_hints``
        True iff the backend supplies embedded per-page transition codes,
        i.e. the store can render its pages with access codes inline and
        answer the header-only page-skip test. Only the DOL does; other
        backends keep their labels beside the data and every page must be
        read.
    """

    backend_name: str = "abstract"
    has_page_hints: bool = False

    n_nodes: int

    # -- construction -------------------------------------------------------

    @classmethod
    @abc.abstractmethod
    def build(
        cls, doc: "Document", matrix: "AccessMatrix", mode: str = READ
    ) -> "AccessLabeling":
        """Label ``doc`` with one action mode of an accessibility matrix."""

    # -- accessibility probes ----------------------------------------------

    @abc.abstractmethod
    def accessible(self, subject: int, pos: int) -> bool:
        """The secure-evaluation ACCESS check: may ``subject`` see ``pos``?"""

    @abc.abstractmethod
    def mask_at(self, pos: int) -> int:
        """The access control list (subject bitmask) in effect at ``pos``."""

    def accessible_any(self, subjects: Sequence[int], pos: int) -> bool:
        """True if *any* of the subjects may access ``pos``.

        The user-level check of Section 4's footnote: a user's rights are
        the union of her own subject's and her groups'.
        """
        mask = self.mask_at(pos)
        return any(mask >> subject & 1 for subject in subjects)

    def to_masks(self) -> List[int]:
        """Per-node access control lists in document order."""
        return [self.mask_at(pos) for pos in range(self.n_nodes)]

    # -- bulk accessibility (run-length intervals) ---------------------------
    #
    # Accessibility is piecewise constant in document order (the paper's
    # Section 2 observation); these hooks expose that structure to the
    # vectorized executor. The contract: the yielded (start, end,
    # accessible) triples are half-open, tile [lo, hi) exactly (no gaps,
    # no overlaps), and are maximal — consecutive runs differ in their
    # flag. The defaults probe per node; backends with run-native
    # decodings (DOL transition lists, CAM entry walks) override them.

    def access_runs(
        self, subject: int, lo: int = 0, hi: "int | None" = None
    ) -> Iterator[Run]:
        """Maximal accessibility runs of one subject over ``[lo, hi)``."""
        lo, hi = self._check_range(lo, hi)
        return runs_from_predicate(
            lambda pos: self.accessible(subject, pos), lo, hi
        )

    def access_runs_any(
        self, subjects: Sequence[int], lo: int = 0, hi: "int | None" = None
    ) -> Iterator[Run]:
        """Maximal runs of the subjects' *union* rights over ``[lo, hi)``.

        The bulk form of :meth:`accessible_any` (user-level rights are
        the union of the user's subjects', per Section 4's footnote).
        """
        lo, hi = self._check_range(lo, hi)
        subjects = tuple(subjects)
        if not subjects:
            raise AccessControlError("access_runs_any needs >= 1 subject")
        if len(subjects) == 1:
            return self.access_runs(subjects[0], lo, hi)
        return runs_from_predicate(
            lambda pos: self.accessible_any(subjects, pos), lo, hi
        )

    # -- access classes -----------------------------------------------------
    #
    # Two subject sets whose bits intersect exactly the same distinct
    # ACLs ("atoms") see exactly the same accessibility at every node —
    # they are in the same *access class* and every derived artifact
    # (run list, plan, answer) is shared. The signature below is a small
    # bitmap over the atom list, recomputed per runs_epoch; backends
    # override _signature_atoms to read the atoms off their native
    # structure (DOL: codebook columns; CAM/naive: the mask array).

    def _signature_atoms(self) -> "tuple[int, ...]":
        """Distinct ACL masks in first-occurrence order, memoized per epoch."""
        cached = getattr(self, "_sig_atoms", None)
        epoch = self.runs_epoch
        if cached is not None and cached[0] == epoch:
            return cached[1]
        atoms = tuple(dict.fromkeys(self.to_masks()))
        self._sig_atoms = (epoch, atoms)
        return atoms

    def access_signature(self, subjects: Sequence[int]) -> int:
        """Bitmap of distinct ACLs the subject set can see (its class key).

        Bit *i* is set iff the subjects' union intersects the *i*-th
        distinct ACL of the labeling. Equal signatures (under one
        ``runs_epoch``) imply node-for-node identical accessibility for
        the whole subject set — the accessibility-equivalence relation
        the :class:`~repro.labeling.classes.ClassDirectory` partitions
        by. Cost after the per-epoch atom build: O(distinct ACLs).
        """
        subjects = tuple(subjects)
        if not subjects:
            raise AccessControlError("access_signature needs >= 1 subject")
        bits = 0
        for subject in subjects:
            bits |= 1 << subject
        signature = 0
        for index, mask in enumerate(self._signature_atoms()):
            if mask & bits:
                signature |= 1 << index
        return signature

    def access_class(self, subjects: Sequence[int], semantics: str = "cho") -> int:
        """The subject set's accessibility-equivalence class signature.

        Valid under the current :attr:`runs_epoch` only — an update
        re-partitions. The signature is semantics-invariant: view-path
        accessibility is a deterministic function of node accessibility
        and document shape, so sets equal under cho are equal under view
        too; ``semantics`` is validated and otherwise ignored.
        """
        from repro.secure.semantics import SEMANTICS

        if semantics not in SEMANTICS:
            raise AccessControlError(f"unknown semantics {semantics!r}")
        return self.access_signature(subjects)

    @property
    def runs_epoch(self) -> int:
        """Monotone version of the labeling's accessibility content.

        Every mutating hook bumps it; a cached artifact derived from the
        labeling (decoded run lists, most importantly) is valid exactly
        as long as the ``runs_epoch`` it was keyed under is current.
        Store-backed evaluation keys on the store epoch instead — the
        snapshot's labeling clone is frozen for its lifetime.
        """
        return getattr(self, "_runs_epoch", 0)

    def _bump_runs_epoch(self) -> None:
        self._runs_epoch = self.runs_epoch + 1

    def _check_range(self, lo: int, hi: "int | None") -> "tuple[int, int]":
        hi = self.n_nodes if hi is None else hi
        if not 0 <= lo <= hi <= self.n_nodes:
            raise AccessControlError(f"invalid run range [{lo}, {hi})")
        return lo, hi

    # -- size accounting (Section 5.1.1) -----------------------------------

    @property
    @abc.abstractmethod
    def n_labels(self) -> int:
        """The backend's primary size metric: how many labels it stores.

        DOL counts transition nodes, CAM counts entries across all
        per-subject maps, naive counts one label per node.
        """

    @abc.abstractmethod
    def size_bytes(self) -> int:
        """Total storage under the backend's own cost model."""

    # -- catalog serialization ---------------------------------------------

    @abc.abstractmethod
    def to_catalog(self) -> Dict[str, object]:
        """JSON-safe payload for the store catalog's ``labeling_data``."""

    @classmethod
    @abc.abstractmethod
    def from_catalog(
        cls, payload: Dict[str, object], doc: "Document"
    ) -> "AccessLabeling":
        """Rebuild the labeling from a catalog payload and its document."""

    # -- update hooks (Section 3.4) ----------------------------------------
    #
    # The default implementations rebuild the whole labeling from the
    # updated per-node masks — correct for every backend, and exactly the
    # non-local cost the paper holds against CAM and naive labels. The DOL
    # backend overrides them with its local transition splice (Proposition
    # 1: at most 2 extra transitions per operation). Each hook returns the
    # backend's label-count delta.

    @abc.abstractmethod
    def _install_masks(self, masks: List[int]) -> None:
        """Replace the labeling so it encodes exactly ``masks``."""

    def _count_labels(self) -> "int | None":
        """``n_labels`` for delta accounting, or None when uncountable.

        Backends whose labels depend on the document shape (CAM) cannot
        count labels between a structural mask edit and the matching
        :meth:`rebind_document`; they return None and the hook reports a
        zero delta for that operation.
        """
        return self.n_labels

    @staticmethod
    def _delta(before: "int | None", after: "int | None") -> int:
        if before is None or after is None:
            return 0
        return after - before

    def transform_range(self, start: int, end: int, fn: MaskFn) -> int:
        """Apply ``fn`` to the ACL of every node in [start, end)."""
        if not 0 <= start < end <= self.n_nodes:
            raise UpdateError(f"invalid range [{start}, {end})")
        before = self._count_labels()
        masks = self.to_masks()
        for pos in range(start, end):
            masks[pos] = fn(masks[pos])
        self._install_masks(masks)
        self._bump_runs_epoch()
        return self._delta(before, self._count_labels())

    def set_node_mask(self, pos: int, mask: int) -> int:
        """Replace the access control list of a single node."""
        return self.transform_range(pos, pos + 1, lambda _old: mask)

    def set_range_mask(self, start: int, end: int, mask: int) -> int:
        """Replace the ACL of every node in [start, end) — a subtree update."""
        return self.transform_range(start, end, lambda _old: mask)

    def set_subject_accessibility(
        self, start: int, end: int, subject: int, value: bool
    ) -> int:
        """Grant/revoke one subject over [start, end), keeping other bits."""
        bit = 1 << subject
        if value:
            return self.transform_range(start, end, lambda old: old | bit)
        return self.transform_range(start, end, lambda old: old & ~bit)

    def set_node_accessibility(self, pos: int, subject: int, value: bool) -> int:
        """Grant/revoke one subject on one node."""
        return self.set_subject_accessibility(pos, pos + 1, subject, value)

    def insert_range(self, at: int, masks: Sequence[int]) -> int:
        """Insert ``len(masks)`` labeled nodes at position ``at``."""
        if not 0 <= at <= self.n_nodes:
            raise UpdateError(f"invalid insert position {at}")
        if not masks:
            raise UpdateError("cannot insert an empty subtree")
        before = self._count_labels()
        rebuilt = self.to_masks()
        rebuilt[at:at] = list(masks)
        self._install_masks(rebuilt)
        self._bump_runs_epoch()
        return self._delta(before, self._count_labels())

    def delete_range(self, start: int, end: int) -> int:
        """Delete the nodes in [start, end) (a subtree)."""
        if not 0 <= start < end <= self.n_nodes:
            raise UpdateError(f"invalid range [{start}, {end})")
        if end - start == self.n_nodes:
            raise UpdateError("cannot delete the entire document")
        before = self._count_labels()
        rebuilt = self.to_masks()
        del rebuilt[start:end]
        self._install_masks(rebuilt)
        self._bump_runs_epoch()
        return self._delta(before, self._count_labels())

    def move_range(self, start: int, end: int, to: int) -> int:
        """Move the subtree [start, end) so it begins at ``to`` (post-excise
        coordinates)."""
        if not 0 <= start < end <= self.n_nodes:
            raise UpdateError(f"invalid range [{start}, {end})")
        before = self._count_labels()
        rebuilt = self.to_masks()
        moved = rebuilt[start:end]
        del rebuilt[start:end]
        if not 0 <= to <= len(rebuilt):
            raise UpdateError(f"invalid destination {to}")
        rebuilt[to:to] = moved
        self._install_masks(rebuilt)
        self._bump_runs_epoch()
        return self._delta(before, self._count_labels())

    def rebind_document(self, doc: "Document") -> None:
        """Point the labeling at a structurally edited document.

        Backends that derive labels from tree shape (CAM) must see the
        post-edit document before they rebuild; positional backends (DOL,
        naive) need nothing. Bumps :attr:`runs_epoch` either way — the
        document shape feeds view-semantics run lists.
        """
        self._bump_runs_epoch()

    # -- snapshots ----------------------------------------------------------

    def clone(self) -> "AccessLabeling":
        """An independent copy that future updates to ``self`` never touch.

        The snapshot mechanism (:class:`~repro.storage.snapshot.StoreSnapshot`)
        freezes the labeling state at commit time with this hook: the
        clone must answer every probe identically to ``self`` *now*, and
        must share no mutable state with it — mutating either afterwards
        cannot be observed through the other. Backends with cheaper
        copies than the catalog round-trip override it.
        """
        return type(self).from_catalog(self.to_catalog(), getattr(self, "doc", None))

    # -- invariants ---------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raises on corruption."""

    def _check_pos(self, pos: int) -> None:
        if not 0 <= pos < self.n_nodes:
            raise AccessControlError(f"position {pos} out of range")
