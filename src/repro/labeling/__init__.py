"""Pluggable access-control labeling backends.

One interface (:class:`AccessLabeling`), three engines:

- ``dol`` — :class:`repro.dol.labeling.DOL`, the paper's contribution
  (transition codes + codebook, embedded in store pages);
- ``cam`` — :class:`CAMLabeling`, per-subject Compressed Accessibility
  Maps (the prior-art baseline, Yu et al.);
- ``naive`` — :class:`NaiveLabeling`, explicit per-node ACLs (the
  strawman).

All three answer the same probes, serialize through the store catalog,
and support the Section 3.4 update operations, so the paper's DOL-vs-CAM
head-to-head runs end-to-end through the real query engine, and a
cross-backend differential suite serves as the secure-semantics oracle.
"""

from repro.labeling.base import AccessLabeling
from repro.labeling.cam_backend import CAMLabeling
from repro.labeling.classes import ClassDirectory, normalize_subjects
from repro.labeling.naive import NaiveLabeling
from repro.labeling.registry import (
    DEFAULT_BACKEND,
    available_backends,
    build_labeling,
    get_backend,
    register_backend,
)

__all__ = [
    "AccessLabeling",
    "CAMLabeling",
    "ClassDirectory",
    "DEFAULT_BACKEND",
    "NaiveLabeling",
    "available_backends",
    "build_labeling",
    "get_backend",
    "normalize_subjects",
    "register_backend",
]
