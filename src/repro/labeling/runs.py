"""Accessibility run-length intervals: the bulk face of a labeling.

The paper's central observation is that accessibility is piecewise
constant in document order (Section 2: transition nodes are rare). The
per-node probe interface hides that structure from the executor; this
module gives it a first-class representation:

- a *run* is a maximal half-open interval ``(start, end, accessible)``
  over which one subject set's accessibility is constant; consecutive
  runs differ in their flag and tile ``[lo, hi)`` with no gaps;
- :class:`RunList` freezes a run sequence into parallel arrays for
  O(log R) point probes (``is_accessible``) and O(R + log B) sorted-batch
  intersection (``filter_positions``) — the primitive the vectorized
  operators are built on;
- :class:`RunCache` memoizes decoded run lists per ``(snapshot epoch,
  access class, semantics)`` — class-equivalent subject sets share one
  entry — so a serving workload decodes each labeling epoch once per
  *behavior*, not once per user. Invalidation is by construction: a
  commit bumps the store epoch (or the labeling's ``runs_epoch``), which
  changes every key derived from it; stale entries age out of the LRU.

Run *production* lives with the backends
(:meth:`~repro.labeling.base.AccessLabeling.access_runs`); this module
only represents, combines, and caches them, so it must not import any
concrete backend.
"""

from __future__ import annotations

import threading
from array import array
from bisect import bisect_left, bisect_right
from collections import OrderedDict
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import AccessControlError

#: One maximal accessibility run: ``(start, end, accessible)``, half-open.
Run = Tuple[int, int, bool]


def runs_from_predicate(
    accessible: Callable[[int], bool], lo: int, hi: int
) -> Iterator[Run]:
    """Maximal runs of a per-node predicate over ``[lo, hi)``.

    The generic fallback used by backends without run-native decoding
    (one predicate call per node, merged into maximal intervals).
    """
    if lo >= hi:
        return
    run_start = lo
    run_flag = bool(accessible(lo))
    for pos in range(lo + 1, hi):
        flag = bool(accessible(pos))
        if flag != run_flag:
            yield (run_start, pos, run_flag)
            run_start, run_flag = pos, flag
    yield (run_start, hi, run_flag)


def runs_from_flags(flags: Sequence[bool], lo: int = 0) -> Iterator[Run]:
    """Maximal runs of a precomputed flag array starting at ``lo``."""
    n = len(flags)
    if n == 0:
        return
    run_start = lo
    run_flag = bool(flags[0])
    for i in range(1, n):
        flag = bool(flags[i])
        if flag != run_flag:
            yield (run_start, lo + i, run_flag)
            run_start, run_flag = lo + i, flag
    yield (run_start, lo + n, run_flag)


def union_runs(run_iters: Iterable[Iterable[Run]], lo: int, hi: int) -> Iterator[Run]:
    """Union the accessible intervals of several run sequences over ``[lo, hi)``.

    The user-level combinator (Section 4's footnote: a user's rights are
    the union of her subjects'), used by backends whose native decoding
    is per subject (one CAM per subject).
    """
    if lo >= hi:
        return
    intervals: List[Tuple[int, int]] = []
    for runs in run_iters:
        intervals.extend((start, end) for start, end, flag in runs if flag)
    intervals.sort()
    merged: List[Tuple[int, int]] = []
    for start, end in intervals:
        if merged and start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1] = (merged[-1][0], end)
        else:
            merged.append((start, end))
    cursor = lo
    for start, end in merged:
        if start > cursor:
            yield (cursor, start, False)
        yield (start, end, True)
        cursor = end
    if cursor < hi:
        yield (cursor, hi, False)


class RunList:
    """A frozen run sequence over ``[lo, hi)`` behind array-backed probes.

    ``_starts`` is strictly increasing with ``_starts[0] == lo``;
    ``_flags[i]`` is the accessibility of ``[_starts[i], _starts[i+1])``
    (the last run ends at ``hi``). Instances are immutable once built and
    safe to share across threads — the cache hands one object to many
    concurrent queries of the same epoch.
    """

    __slots__ = ("lo", "hi", "_starts", "_flags", "_flags_u8", "_n_accessible")

    def __init__(self, lo: int, hi: int, starts: array, flags: List[bool]):
        self.lo = lo
        self.hi = hi
        self._starts = starts
        self._flags = flags
        #: the flags as a byte string — the buffer form the array kernels
        #: consume (zero-copy under numpy, int indexing under stdlib)
        self._flags_u8 = bytes(flags)
        self._n_accessible: Optional[int] = None

    @classmethod
    def from_runs(cls, runs: Iterable[Run], lo: int, hi: int) -> "RunList":
        """Freeze a run iterator, checking the tiling contract as it goes.

        Adjacent equal-flag runs are coalesced (tolerated on input, never
        produced by a conforming ``access_runs``), so the stored runs are
        always maximal.
        """
        starts = array("q")
        flags: List[bool] = []
        expected = lo
        for start, end, flag in runs:
            if start != expected or end <= start or end > hi:
                raise AccessControlError(
                    f"runs must tile [{lo}, {hi}) contiguously; "
                    f"got ({start}, {end}) after {expected}"
                )
            flag = bool(flag)
            if not flags or flags[-1] != flag:
                starts.append(start)
                flags.append(flag)
            expected = end
        if expected != hi and not (lo == hi and not flags):
            raise AccessControlError(
                f"runs cover [{lo}, {expected}) of [{lo}, {hi})"
            )
        return cls(lo, hi, starts, flags)

    @classmethod
    def from_flags(cls, accessible: Sequence[bool], lo: int = 0) -> "RunList":
        """Freeze a per-node flag array (positions ``lo .. lo+len``)."""
        return cls.from_runs(
            runs_from_flags(accessible, lo), lo, lo + len(accessible)
        )

    def __len__(self) -> int:
        """Number of maximal runs."""
        return len(self._starts)

    def runs(self) -> Iterator[Run]:
        """Re-expand to ``(start, end, accessible)`` triples."""
        starts, flags = self._starts, self._flags
        for i, start in enumerate(starts):
            end = starts[i + 1] if i + 1 < len(starts) else self.hi
            yield (start, end, flags[i])

    def is_accessible(self, pos: int) -> bool:
        """Point probe: the flag of the run containing ``pos`` (O(log R))."""
        if not self.lo <= pos < self.hi:
            raise AccessControlError(f"position {pos} outside [{self.lo}, {self.hi})")
        return self._flags[bisect_right(self._starts, pos) - 1]

    def accessible_intervals(self) -> List[Tuple[int, int]]:
        """The accessible runs only, as ``(start, end)`` pairs."""
        return [(start, end) for start, end, flag in self.runs() if flag]

    def count_accessible(self) -> int:
        """Total accessible positions (memoized — the list is immutable).

        The planner's static pre-pass asks this on every secure compile,
        so a cached run list answers allow/deny verdicts in O(1).
        """
        if self._n_accessible is None:
            self._n_accessible = sum(
                end - start for start, end, flag in self.runs() if flag
            )
        return self._n_accessible

    def filter_positions(self, positions: Sequence[int]) -> array:
        """Intersect a *sorted* position batch with the accessible runs.

        Returns the accessible subset as a fresh ``array('q')``. The work
        is delegated to the active array kernel backend
        (:mod:`repro.exec.kernels`): a linear galloping merge over the
        run boundaries and the batch under stdlib, one vectorized
        ``searchsorted`` + boolean mask under numpy — byte-identical
        answers either way. No per-position probing.
        """
        if not isinstance(positions, array):
            positions = array("q", positions)
        if len(positions) == 0 or not self._starts:
            return array("q")
        # Imported lazily: the execution package imports this module at
        # load time, so a top-level import would be circular.
        from repro.exec.kernels import active_kernels

        return active_kernels().filter_runs(
            positions, self._starts, self._flags_u8, self.hi
        )


#: Cache key: (source tag + epoch, access class id or subject tuple,
#: semantics). The class id comes from the engine's
#: :class:`~repro.labeling.classes.ClassDirectory`; standalone contexts
#: without one fall back to the normalized subject tuple.
RunKey = Tuple


class RunCache:
    """Thread-safe LRU of decoded :class:`RunList` objects.

    Keys embed the snapshot epoch (store-backed) or the labeling's
    ``runs_epoch`` (in-memory), so a commit *is* the invalidation: the
    next query computes a new key, misses, and decodes the new state,
    while entries for dead epochs age out of the LRU. One cache must only
    ever serve one store / labeling lineage (the engine owns one).
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise AccessControlError("run cache needs capacity >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[RunKey, RunList]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get_or_build(
        self, key: RunKey, build: Callable[[], RunList]
    ) -> Tuple[RunList, bool]:
        """Return ``(run_list, was_hit)``, building and inserting on miss.

        ``build`` runs outside the lock — decoding can be O(document) and
        must not block concurrent queries hitting other keys. Two threads
        missing the same fresh key may both build; both results are
        identical (same epoch) and the second insert wins harmlessly.
        """
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return cached, True
            self._misses += 1
        built = build()
        with self._lock:
            self._entries[key] = built
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
        return built, False

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "size": len(self._entries),
                "capacity": self.capacity,
            }
