"""Backend registry: labeling engines selectable by name.

The CLI (``--labeling {dol,cam,naive}``), the store catalog (its backend
tag), and the benchmarks all resolve backends through this registry, so a
new engine only needs to subclass :class:`~repro.labeling.base.AccessLabeling`
and call :func:`register_backend`.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from repro.acl.model import READ, AccessMatrix
from repro.errors import AccessControlError
from repro.labeling.base import AccessLabeling
from repro.labeling.cam_backend import CAMLabeling
from repro.labeling.naive import NaiveLabeling
from repro.xmltree.document import Document

#: The default backend — the paper's contribution.
DEFAULT_BACKEND = "dol"

_BACKENDS: Dict[str, Type[AccessLabeling]] = {}


def register_backend(cls: Type[AccessLabeling]) -> Type[AccessLabeling]:
    """Register a backend class under its ``backend_name`` tag."""
    name = cls.backend_name
    if not name or name == "abstract":
        raise AccessControlError(f"{cls.__name__} has no usable backend_name")
    _BACKENDS[name] = cls
    return cls


def get_backend(name: str) -> Type[AccessLabeling]:
    """Resolve a backend class by name; raises with the known names."""
    _ensure_builtins()
    try:
        return _BACKENDS[name]
    except KeyError:
        raise AccessControlError(
            f"unknown labeling backend {name!r} "
            f"(available: {', '.join(available_backends())})"
        ) from None


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_BACKENDS))


def build_labeling(
    name: str, doc: Document, matrix: AccessMatrix, mode: str = READ
) -> AccessLabeling:
    """Build the named backend for one mode of an accessibility matrix."""
    if matrix.n_nodes != len(doc):
        raise AccessControlError(
            f"matrix covers {matrix.n_nodes} nodes, document has {len(doc)}"
        )
    return get_backend(name).build(doc, matrix, mode)


def _ensure_builtins() -> None:
    # Deferred to first lookup: repro.dol.labeling imports
    # repro.labeling.base (DOL subclasses the interface), so importing DOL
    # while this package initializes would be circular.
    if "dol" in _BACKENDS:
        return
    from repro.dol.labeling import DOL

    register_backend(DOL)
    register_backend(CAMLabeling)
    register_backend(NaiveLabeling)
