"""Naive per-node labeling — the paper's strawman baseline.

Every node stores its full access control list explicitly (Section 1's
"associate an access control list with each node"). Lookup is a direct
array read; size is one ACL per node with no compression; updates touch
every node in the range. It exists to anchor the comparisons: the DOL and
CAM must decode to exactly this labeling, and the size/update benchmarks
measure how far each compresses it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.acl.model import READ, AccessMatrix
from repro.errors import AccessControlError
from repro.labeling.base import AccessLabeling
from repro.xmltree.document import Document


class NaiveLabeling(AccessLabeling):
    """Explicit per-node access control lists (no compression)."""

    backend_name = "naive"
    has_page_hints = False

    def __init__(self, masks: Sequence[int], n_subjects: int):
        if not masks:
            raise AccessControlError("cannot label an empty document")
        if n_subjects <= 0:
            raise AccessControlError("need at least one subject column")
        self.n_nodes = len(masks)
        self.n_subjects = n_subjects
        self._masks: List[int] = list(masks)

    @classmethod
    def build(
        cls, doc: Document, matrix: AccessMatrix, mode: str = READ
    ) -> "NaiveLabeling":
        return cls(matrix.masks(mode), matrix.n_subjects)

    @classmethod
    def from_masks(cls, masks: Sequence[int], n_subjects: int) -> "NaiveLabeling":
        return cls(masks, n_subjects)

    # -- probes -------------------------------------------------------------

    def accessible(self, subject: int, pos: int) -> bool:
        if not 0 <= subject < self.n_subjects:
            raise AccessControlError(f"subject {subject} out of range")
        self._check_pos(pos)
        return bool(self._masks[pos] >> subject & 1)

    def mask_at(self, pos: int) -> int:
        self._check_pos(pos)
        return self._masks[pos]

    def to_masks(self) -> List[int]:
        return list(self._masks)

    # -- access classes ------------------------------------------------------

    def _signature_atoms(self) -> "tuple[int, ...]":
        """Distinct ACLs from the label array (no copy)."""
        cached = getattr(self, "_sig_atoms", None)
        epoch = self.runs_epoch
        if cached is not None and cached[0] == epoch:
            return cached[1]
        atoms = tuple(dict.fromkeys(self._masks))
        self._sig_atoms = (epoch, atoms)
        return atoms

    # -- size accounting ----------------------------------------------------

    @property
    def n_labels(self) -> int:
        """One explicit label per node — the strawman's defining cost."""
        return self.n_nodes

    def size_bytes(self) -> int:
        """One byte-aligned ACL (a bit per subject) on every node."""
        return self.n_nodes * ((self.n_subjects + 7) // 8)

    # -- catalog serialization ---------------------------------------------

    def to_catalog(self) -> Dict[str, object]:
        return {
            "n_subjects": self.n_subjects,
            "masks": [f"{mask:x}" for mask in self._masks],
        }

    @classmethod
    def from_catalog(
        cls, payload: Dict[str, object], doc: Document
    ) -> "NaiveLabeling":
        masks = [int(text, 16) for text in payload["masks"]]
        labeling = cls(masks, payload["n_subjects"])
        if labeling.n_nodes != len(doc):
            raise AccessControlError(
                f"catalog holds {labeling.n_nodes} labels for a "
                f"{len(doc)}-node document"
            )
        return labeling

    # -- updates ------------------------------------------------------------

    def _install_masks(self, masks: List[int]) -> None:
        self._masks = list(masks)
        self.n_nodes = len(masks)

    def clone(self) -> "NaiveLabeling":
        """Snapshot copy: an independent mask array is the whole state."""
        return NaiveLabeling(self._masks, self.n_subjects)

    def validate(self) -> None:
        if len(self._masks) != self.n_nodes:
            raise AccessControlError("mask array / node count drift")
        for pos, mask in enumerate(self._masks):
            if mask < 0 or mask >> self.n_subjects:
                raise AccessControlError(
                    f"mask at {pos} has bits outside {self.n_subjects} subjects"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"NaiveLabeling(n_nodes={self.n_nodes}, "
            f"n_subjects={self.n_subjects})"
        )
