"""Access classes: canonicalizing subject sets into equivalence classes.

The paper's core size observation (Section 2.2) is that distinct access
control lists number in the hundreds even when subjects number in the
millions — accessibility is *shared*. The same collapse applies to whole
subject sets: two user sessions whose subject sets light up the same set
of distinct ACLs have identical accessibility at every node, hence
identical run lists, identical secure answers, and identical plans. An
**access class** is that equivalence class, and it — not the raw subject
tuple — is what every subject-keyed cache in the hot path should key on.

Two pieces live here:

- :func:`normalize_subjects` — the one shared normalization of the
  ``subject`` argument every entry point accepts (engine, service, CLI):
  ``None`` passes through, a single id becomes a 1-tuple, any iterable is
  deduplicated and sorted. Duplicate or unsorted inputs therefore hit the
  same cache entries everywhere.
- :class:`ClassDirectory` — maps a (labeling epoch, subject set) to a
  dense class id via the backend's
  :meth:`~repro.labeling.base.AccessLabeling.access_class` signature.
  Ids are globally unique across the directory's lifetime (the counter
  never resets), so a cache entry keyed on ``(epoch, class_id)`` can
  never alias a different accessibility behavior even across
  re-partitions; an update that changes any mask bumps ``runs_epoch``
  (or the store epoch), the epoch key changes, and the directory
  re-partitions from scratch.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, Optional, Sequence, Tuple, Union

from repro.errors import AccessControlError

Subject = Union[int, Sequence[int]]

#: Per-epoch partition state: signature -> class id, subject set -> class id.
_Partition = Tuple[Dict[int, int], Dict[Tuple[int, ...], int]]


def normalize_subjects(subject: Optional[Subject]) -> Optional[Tuple[int, ...]]:
    """Canonicalize a ``subject`` argument to a sorted, deduplicated tuple.

    Accepts ``None`` (non-secure evaluation), a single subject id, or any
    iterable of ids (the user-level union of Section 4's footnote).
    ``[2, 1, 2]`` and ``(1, 2)`` normalize identically, so every cache
    keyed downstream of this helper treats them as the same principal.
    """
    if subject is None:
        return None
    if isinstance(subject, int):
        return (subject,)
    subjects = tuple(sorted(set(subject)))
    if not subjects:
        raise AccessControlError("user-level evaluation needs >= 1 subject")
    if not all(isinstance(s, int) for s in subjects):
        raise AccessControlError(f"subject ids must be integers: {subjects!r}")
    return subjects


class ClassDirectory:
    """Canonicalizes subject sets to dense accessibility-class ids.

    One directory serves one labeling lineage (the engine owns one, like
    its caches). Partitions are kept per *epoch key* — ``("store",
    epoch)`` for store-backed evaluation, ``("mem", id(labeling),
    runs_epoch)`` in memory — in a small LRU, so a few concurrently
    pinned snapshots each keep their own stable id assignment. Class ids
    are drawn from one monotone counter shared by all partitions: the
    same behavior in the same epoch always resolves to the same id, and
    an id is never reused for a different signature, so downstream cache
    keys built from ``(epoch key, class id)`` cannot alias.
    """

    def __init__(self, max_partitions: int = 8, max_tracked_sets: int = 65536):
        if max_partitions < 1:
            raise AccessControlError("class directory needs >= 1 partition")
        self._lock = threading.Lock()
        self._partitions: "OrderedDict[Hashable, _Partition]" = OrderedDict()
        self._next_class = 0
        self.max_partitions = max_partitions
        #: per-partition bound on memoized subject sets (the signature
        #: map is bounded by distinct behaviors and needs no cap)
        self.max_tracked_sets = max_tracked_sets
        self._lookups = 0
        self._memo_hits = 0
        self._repartitions = 0

    def _partition(self, epoch_key: Hashable) -> _Partition:
        part = self._partitions.get(epoch_key)
        if part is None:
            part = ({}, {})
            self._partitions[epoch_key] = part
            self._repartitions += 1
            while len(self._partitions) > self.max_partitions:
                self._partitions.popitem(last=False)
        else:
            self._partitions.move_to_end(epoch_key)
        return part

    def class_of(
        self, labeling, epoch_key: Hashable, subject: Optional[Subject]
    ) -> int:
        """The access-class id of ``subject`` under ``labeling`` at ``epoch_key``.

        The subject set is normalized first, so duplicate/unsorted inputs
        share a memo entry. The signature computation
        (:meth:`~repro.labeling.base.AccessLabeling.access_class`) runs
        outside the lock — it is O(distinct ACLs) after the backend's
        per-epoch atom list is built.
        """
        subjects = normalize_subjects(subject)
        if subjects is None:
            raise AccessControlError("class_of needs a subject set")
        with self._lock:
            self._lookups += 1
            classes, sets = self._partition(epoch_key)
            known = sets.get(subjects)
            if known is not None:
                self._memo_hits += 1
                return known
        signature = labeling.access_class(subjects)
        with self._lock:
            classes, sets = self._partition(epoch_key)
            class_id = classes.get(signature)
            if class_id is None:
                class_id = self._next_class
                self._next_class += 1
                classes[signature] = class_id
            if len(sets) < self.max_tracked_sets:
                sets[subjects] = class_id
            return class_id

    def n_classes(self, epoch_key: Hashable) -> int:
        """Distinct classes seen so far in one epoch's partition."""
        with self._lock:
            part = self._partitions.get(epoch_key)
            return len(part[0]) if part is not None else 0

    def clear(self) -> None:
        with self._lock:
            self._partitions.clear()

    def stats(self) -> Dict[str, int]:
        """Counters for the service metrics: collapse visible at a glance."""
        with self._lock:
            current = next(reversed(self._partitions.values()), ({}, {}))
            return {
                "classes": len(current[0]),
                "subject_sets": len(current[1]),
                "classes_total": self._next_class,
                "lookups": self._lookups,
                "memo_hits": self._memo_hits,
                "repartitions": self._repartitions,
                "partitions": len(self._partitions),
            }
