"""The CAM access-labeling backend: per-subject Compressed Accessibility
Maps behind the :class:`~repro.labeling.base.AccessLabeling` interface.

The CAM of Yu et al. [17] is a *single-subject* structure, so the backend
keeps one map per subject (the multi-user deployment the paper charges
CAM for in its size comparisons). Accessibility probes resolve through
each subject's CAM entry tree — the existential ancestor walk, not a mask
array read — so secure query evaluation genuinely exercises the CAM
lookup path end-to-end.

The authoritative state is the per-node mask array; CAMs are built from
it lazily per subject and dropped on any update or structural rebind
(CAM labels depend on tree shape, so an edited document invalidates
them). This mirrors CAM's real update story: no locality — a changed
range rebuilds every affected subject's map.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

from repro.acl.model import READ, AccessMatrix
from repro.cam.cam import CAM
from repro.errors import AccessControlError
from repro.labeling.base import AccessLabeling
from repro.labeling.runs import union_runs
from repro.xmltree.document import Document


class CAMLabeling(AccessLabeling):
    """One positive-cover CAM per subject, as a pluggable backend."""

    backend_name = "cam"
    has_page_hints = False

    def __init__(self, doc: Document, masks: Sequence[int], n_subjects: int):
        if len(masks) != len(doc):
            raise AccessControlError("mask count must match document size")
        if n_subjects <= 0:
            raise AccessControlError("need at least one subject column")
        self.doc = doc
        self.n_nodes = len(masks)
        self.n_subjects = n_subjects
        self._masks: List[int] = list(masks)
        self._cams: Dict[int, CAM] = {}
        # Guards the lazy map cache: concurrent readers of one (snapshot)
        # labeling may race to build the same subject's CAM; the lock
        # makes the build-and-insert atomic. Update hooks clear the cache
        # under the same lock, inside the store's writer critical section
        # — but isolation for in-flight readers comes from clone(): a
        # snapshot keeps its own map dict, so a writer clearing the live
        # labeling's maps can never empty a cache a reader is using.
        self._cams_lock = threading.Lock()

    @classmethod
    def build(
        cls, doc: Document, matrix: AccessMatrix, mode: str = READ
    ) -> "CAMLabeling":
        return cls(doc, matrix.masks(mode), matrix.n_subjects)

    # -- the per-subject maps ----------------------------------------------

    def cam_for(self, subject: int) -> CAM:
        """The (lazily built) CAM of one subject (thread-safe)."""
        if not 0 <= subject < self.n_subjects:
            raise AccessControlError(f"subject {subject} out of range")
        cam = self._cams.get(subject)
        if cam is None:
            with self._cams_lock:
                cam = self._cams.get(subject)
                if cam is None:
                    vector = [bool(mask >> subject & 1) for mask in self._masks]
                    cam = CAM.from_vector(self.doc, vector)
                    self._cams[subject] = cam
        return cam

    # -- probes -------------------------------------------------------------

    def accessible(self, subject: int, pos: int) -> bool:
        """Resolve through the subject's CAM entries (the real lookup)."""
        return self.cam_for(subject).accessible(pos)

    def accessible_any(self, subjects: Sequence[int], pos: int) -> bool:
        return any(self.cam_for(subject).accessible(pos) for subject in subjects)

    def mask_at(self, pos: int) -> int:
        self._check_pos(pos)
        return self._masks[pos]

    def to_masks(self) -> List[int]:
        return list(self._masks)

    # -- bulk accessibility (run-length intervals) ---------------------------

    def access_runs(self, subject: int, lo: int = 0, hi: "int | None" = None):
        """Decode one subject's CAM entry tree straight into runs.

        One :meth:`~repro.cam.cam.CAM.runs` walk over the entries —
        not a per-node ancestor probe — so bulk decoding costs
        O(entries + runs) after the subject's map is built.
        """
        lo, hi = self._check_range(lo, hi)
        return self.cam_for(subject).runs(lo, hi)

    def access_runs_any(
        self, subjects: Sequence[int], lo: int = 0, hi: "int | None" = None
    ):
        """Union of the per-subject CAM runs (one walk per subject)."""
        lo, hi = self._check_range(lo, hi)
        subjects = tuple(subjects)
        if not subjects:
            raise AccessControlError("access_runs_any needs >= 1 subject")
        if len(subjects) == 1:
            return self.access_runs(subjects[0], lo, hi)
        return union_runs(
            [self.cam_for(subject).runs(lo, hi) for subject in subjects], lo, hi
        )

    # -- access classes ------------------------------------------------------

    def _signature_atoms(self) -> "tuple[int, ...]":
        """Distinct ACLs from the authoritative mask array (no copy)."""
        cached = getattr(self, "_sig_atoms", None)
        epoch = self.runs_epoch
        if cached is not None and cached[0] == epoch:
            return cached[1]
        atoms = tuple(dict.fromkeys(self._masks))
        self._sig_atoms = (epoch, atoms)
        return atoms

    # -- size accounting ----------------------------------------------------

    @property
    def n_labels(self) -> int:
        """Total CAM entries across all subjects (the paper's CAM metric)."""
        return sum(
            self.cam_for(subject).n_labels for subject in range(self.n_subjects)
        )

    def size_bytes(self) -> int:
        """Sum of per-subject CAM sizes under the Section 5.1.1 model."""
        return sum(
            self.cam_for(subject).size_bytes()
            for subject in range(self.n_subjects)
        )

    # -- catalog serialization ---------------------------------------------

    def to_catalog(self) -> Dict[str, object]:
        return {
            "n_subjects": self.n_subjects,
            "masks": [f"{mask:x}" for mask in self._masks],
        }

    @classmethod
    def from_catalog(
        cls, payload: Dict[str, object], doc: Document
    ) -> "CAMLabeling":
        masks = [int(text, 16) for text in payload["masks"]]
        return cls(doc, masks, payload["n_subjects"])

    # -- updates ------------------------------------------------------------

    def _install_masks(self, masks: List[int]) -> None:
        # Map invalidation runs inside the writer critical section (the
        # store holds its writer lock around every update hook); the lock
        # below additionally serializes against a concurrent lazy build
        # on this same object. Readers on an older snapshot are unharmed
        # either way: clone() gave them their own _cams dict.
        with self._cams_lock:
            self._masks = list(masks)
            self.n_nodes = len(masks)
            self._cams.clear()
        self._bump_runs_epoch()

    def _count_labels(self) -> "int | None":
        # CAM labels depend on tree shape: between a structural mask edit
        # and rebind_document the maps cannot be built, so the label-count
        # delta for that operation is unknowable.
        if len(self._masks) != len(self.doc):
            return None
        return self.n_labels

    def rebind_document(self, doc: Document) -> None:
        """Adopt a structurally edited document; CAMs rebuild lazily.

        Like :meth:`_install_masks`, the invalidation is only sound
        inside the writer critical section — the store calls it with the
        writer lock held, after old-snapshot readers were given clones.
        """
        with self._cams_lock:
            self.doc = doc
            self._cams.clear()
        self._bump_runs_epoch()

    def clone(self) -> "CAMLabeling":
        """Snapshot copy: own mask array, own map cache.

        Built CAM objects are shared — a CAM is immutable once built
        (probes only walk its entry tree) and the live labeling drops,
        never mutates, its maps on update. The clone's independent
        ``_cams`` dict is the point: the writer clearing the live cache
        cannot empty what a snapshot reader is probing.
        """
        copy = CAMLabeling(self.doc, self._masks, self.n_subjects)
        with self._cams_lock:
            copy._cams = dict(self._cams)
        return copy

    def rebuilt_subjects(self) -> Optional[int]:
        """How many per-subject CAMs are currently materialized."""
        return len(self._cams)

    def validate(self) -> None:
        if len(self._masks) != self.n_nodes or self.n_nodes != len(self.doc):
            raise AccessControlError("mask array / document drift")
        for subject, cam in self._cams.items():
            decoded = cam.to_vector()
            expected = [bool(m >> subject & 1) for m in self._masks]
            if decoded != expected:
                raise AccessControlError(
                    f"subject {subject}: CAM decodes to the wrong vector"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CAMLabeling(n_nodes={self.n_nodes}, "
            f"n_subjects={self.n_subjects})"
        )
