"""A disk-backed B+-tree over the page store.

The NoK query processor starts matching "by using B+ trees on the subtree
root's value or tag names" (Section 4.1). The in-memory
:class:`~repro.index.bptree.BPlusTree` serves correctness tests; this
variant serializes nodes into fixed-size pages behind the buffer pool, so
index probes participate in the same I/O accounting as data pages.

Layout
------
Entries are (key, posting) pairs — duplicates are separate entries, which
keeps every record small and removes the need for overflow chains. Keys
are UTF-8 strings.

- Leaf page:     ``type=1 | n_entries u16 | next_leaf i32 | entries...``
  where an entry is ``keylen u16 | key bytes | posting u32``.
- Internal page: ``type=0 | n_keys u16 | children: (n_keys+1) x u32 |
  separators: (keylen u16 + bytes + posting u32) ...`` — separators are
  full (key, posting) pairs so duplicate keys route correctly.

Splits occur when a page's serialized size would exceed the page size.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

from repro.errors import IndexError_
from repro.storage.buffer import BufferPool
from repro.storage.pager import CHECKSUM_SIZE, DEFAULT_PAGE_SIZE, Pager

_LEAF = 1
_INTERNAL = 0
_HEADER = struct.Struct("<BHi")  # type, count, next_leaf (leaves only)
_POSTING = struct.Struct("<I")
_KEYLEN = struct.Struct("<H")


class _Node:
    """Decoded in-memory form of one index page."""

    __slots__ = ("kind", "keys", "postings", "children", "next_leaf")

    def __init__(self, kind: int):
        self.kind = kind
        self.keys: List[str] = []
        self.postings: List[int] = []  # parallel to keys (both node kinds)
        self.children: List[int] = []  # internal: page ids, len(keys)+1
        self.next_leaf = -1

    def encode(self, page_size: int) -> bytes:
        parts = [_HEADER.pack(self.kind, len(self.keys), self.next_leaf)]
        if self.kind == _INTERNAL:
            for child in self.children:
                parts.append(_POSTING.pack(child))
        for key, posting in zip(self.keys, self.postings):
            raw = key.encode("utf-8")
            parts.append(_KEYLEN.pack(len(raw)))
            parts.append(raw)
            parts.append(_POSTING.pack(posting))
        body = b"".join(parts)
        if len(body) > page_size - CHECKSUM_SIZE:
            raise IndexError_("index node exceeds the page capacity")
        return body + bytes(page_size - len(body))

    @classmethod
    def decode(cls, data: bytes) -> "_Node":
        kind, count, next_leaf = _HEADER.unpack_from(data, 0)
        node = cls(kind)
        node.next_leaf = next_leaf
        offset = _HEADER.size
        if kind == _INTERNAL:
            for _ in range(count + 1):
                (child,) = _POSTING.unpack_from(data, offset)
                offset += _POSTING.size
                node.children.append(child)
        for _ in range(count):
            (keylen,) = _KEYLEN.unpack_from(data, offset)
            offset += _KEYLEN.size
            node.keys.append(data[offset : offset + keylen].decode("utf-8"))
            offset += keylen
            (posting,) = _POSTING.unpack_from(data, offset)
            offset += _POSTING.size
            node.postings.append(posting)
        return node

    def size_bytes(self) -> int:
        total = _HEADER.size
        if self.kind == _INTERNAL:
            total += _POSTING.size * (len(self.keys) + 1)
        for key in self.keys:
            total += _KEYLEN.size + len(key.encode("utf-8")) + _POSTING.size
        return total


class DiskBPlusTree:
    """B+-tree on (string key, int posting) entries, stored in pages."""

    def __init__(
        self,
        path: Optional[str] = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_capacity: int = 32,
    ):
        self.pager = Pager(path, page_size)
        self.buffer = BufferPool(self.pager, buffer_capacity)
        self.page_size = page_size
        root = _Node(_LEAF)
        self._root_id = self.pager.allocate()
        self._write(self._root_id, root)
        self._n_entries = 0

    # -- queries -----------------------------------------------------------------

    def search(self, key: str) -> List[int]:
        """All postings stored under ``key``, sorted."""
        leaf_id = self._find_leaf(key)
        postings: List[int] = []
        while leaf_id != -1:
            leaf = self._read(leaf_id)
            for k, posting in zip(leaf.keys, leaf.postings):
                if k == key:
                    postings.append(posting)
                elif k > key:
                    return postings
            leaf_id = leaf.next_leaf
        return postings

    def range(self, lo: str, hi: str) -> Iterator[Tuple[str, int]]:
        """(key, posting) pairs with lo <= key <= hi, in order."""
        leaf_id = self._find_leaf(lo)
        while leaf_id != -1:
            leaf = self._read(leaf_id)
            for k, posting in zip(leaf.keys, leaf.postings):
                if k < lo:
                    continue
                if k > hi:
                    return
                yield k, posting
            leaf_id = leaf.next_leaf

    def items(self) -> Iterator[Tuple[str, int]]:
        """Every (key, posting) pair in key order."""
        leaf_id = self._leftmost_leaf()
        while leaf_id != -1:
            leaf = self._read(leaf_id)
            yield from zip(leaf.keys, leaf.postings)
            leaf_id = leaf.next_leaf

    def __len__(self) -> int:
        return self._n_entries

    # -- mutation ------------------------------------------------------------------

    def insert(self, key: str, posting: int) -> None:
        """Insert one (key, posting) entry."""
        split = self._insert(self._root_id, key, posting)
        self._n_entries += 1
        if split is not None:
            separator, right_id = split
            new_root = _Node(_INTERNAL)
            new_root.keys = [separator[0]]
            new_root.postings = [separator[1]]
            new_root.children = [self._root_id, right_id]
            self._root_id = self.pager.allocate()
            self._write(self._root_id, new_root)

    def _insert(self, page_id: int, key: str, posting: int):
        node = self._read(page_id)
        if node.kind == _LEAF:
            index = self._leaf_slot(node, key, posting)
            node.keys.insert(index, key)
            node.postings.insert(index, posting)
            if node.size_bytes() > self.page_size - CHECKSUM_SIZE:
                return self._split_leaf(page_id, node)
            self._write(page_id, node)
            return None

        slot = self._child_slot(node, (key, posting))
        split = self._insert(node.children[slot], key, posting)
        if split is None:
            return None
        separator, right_id = split
        node.keys.insert(slot, separator[0])
        node.postings.insert(slot, separator[1])
        node.children.insert(slot + 1, right_id)
        if node.size_bytes() > self.page_size - CHECKSUM_SIZE:
            return self._split_internal(page_id, node)
        self._write(page_id, node)
        return None

    # -- internals ------------------------------------------------------------------

    @staticmethod
    def _leaf_slot(node: _Node, key: str, posting: int) -> int:
        lo, hi = 0, len(node.keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if (node.keys[mid], node.postings[mid]) < (key, posting):
                lo = mid + 1
            else:
                hi = mid
        return lo

    @staticmethod
    def _child_slot(node: _Node, entry) -> int:
        lo, hi = 0, len(node.keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if (node.keys[mid], node.postings[mid]) <= entry:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _split_leaf(self, page_id: int, node: _Node):
        mid = len(node.keys) // 2
        right = _Node(_LEAF)
        right.keys = node.keys[mid:]
        right.postings = node.postings[mid:]
        right.next_leaf = node.next_leaf
        node.keys = node.keys[:mid]
        node.postings = node.postings[:mid]
        right_id = self.pager.allocate()
        node.next_leaf = right_id
        self._write(right_id, right)
        self._write(page_id, node)
        return (right.keys[0], right.postings[0]), right_id

    def _split_internal(self, page_id: int, node: _Node):
        mid = len(node.keys) // 2
        separator = (node.keys[mid], node.postings[mid])
        right = _Node(_INTERNAL)
        right.keys = node.keys[mid + 1 :]
        right.postings = node.postings[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.postings = node.postings[:mid]
        node.children = node.children[: mid + 1]
        right_id = self.pager.allocate()
        self._write(right_id, right)
        self._write(page_id, node)
        return separator, right_id

    def _find_leaf(self, key: str) -> int:
        """Leaf that would hold the smallest entry with this key."""
        page_id = self._root_id
        node = self._read(page_id)
        while node.kind == _INTERNAL:
            page_id = node.children[self._child_slot(node, (key, -1))]
            node = self._read(page_id)
        return page_id

    def _leftmost_leaf(self) -> int:
        page_id = self._root_id
        node = self._read(page_id)
        while node.kind == _INTERNAL:
            page_id = node.children[0]
            node = self._read(page_id)
        return page_id

    def _read(self, page_id: int) -> _Node:
        return _Node.decode(self.buffer.get(page_id))

    def _write(self, page_id: int, node: _Node) -> None:
        self.buffer.put(page_id, node.encode(self.page_size))

    # -- maintenance -------------------------------------------------------------------

    def flush(self) -> None:
        self.buffer.flush_all()

    def close(self) -> None:
        self.flush()
        self.pager.close()

    def height(self) -> int:
        """Tree height (1 = a single leaf)."""
        levels = 1
        node = self._read(self._root_id)
        while node.kind == _INTERNAL:
            levels += 1
            node = self._read(node.children[0])
        return levels

    def validate(self) -> None:
        """Check ordering along the leaf chain and separator consistency."""
        previous = None
        count = 0
        for key, posting in self.items():
            entry = (key, posting)
            if previous is not None and entry < previous:
                raise IndexError_("leaf chain out of order")
            previous = entry
            count += 1
        if count != self._n_entries:
            raise IndexError_(
                f"entry count drift: chain has {count}, expected {self._n_entries}"
            )
