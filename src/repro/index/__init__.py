"""Index structures.

The NoK query processor seeds pattern matching "by using B+ trees on the
subtree root's value or tag names" (Section 4.1). This subpackage provides
a from-scratch in-memory :class:`~repro.index.bptree.BPlusTree`, a
page-serialized :class:`~repro.index.diskbptree.DiskBPlusTree`, and the
:class:`~repro.index.tagindex.TagIndex` / ``DiskTagIndex`` built on them.
"""

from repro.index.bptree import BPlusTree
from repro.index.diskbptree import DiskBPlusTree
from repro.index.tagindex import DiskTagIndex, TagIndex

__all__ = ["BPlusTree", "DiskBPlusTree", "DiskTagIndex", "TagIndex"]
