"""Tag (and tag+value) index over a flattened document.

NoK pattern matching starts from candidate data nodes for the root of each
NoK subtree; those candidates come from a B+-tree keyed on tag name (and,
when the query constrains a value, on (tag, text) pairs). Postings are
document positions in document order.
"""

from __future__ import annotations

from typing import List, Optional

from repro.index.bptree import BPlusTree
from repro.xmltree.document import Document


class TagIndex:
    """B+-tree-backed lookup from tag name (optionally + text) to positions."""

    def __init__(self, doc: Document, index_values: bool = True, order: int = 64):
        self.doc = doc
        self._by_tag = BPlusTree(order)
        self._by_tag_value: Optional[BPlusTree] = BPlusTree(order) if index_values else None
        for pos in range(len(doc)):
            name = doc.tag_name(pos)
            self._by_tag.insert(name, pos)
            if self._by_tag_value is not None and doc.texts[pos]:
                self._by_tag_value.insert((name, doc.texts[pos]), pos)

    def positions(self, tag: str) -> List[int]:
        """Document positions with the given tag, in document order."""
        return self._by_tag.search(tag)

    def positions_with_value(self, tag: str, value: str) -> List[int]:
        """Positions whose tag and text both match."""
        if self._by_tag_value is None:
            return [
                pos for pos in self._by_tag.search(tag) if self.doc.texts[pos] == value
            ]
        return self._by_tag_value.search((tag, value))

    def tags(self) -> List[str]:
        """All distinct tag names, sorted."""
        return self._by_tag.keys()

    def count(self, tag: str) -> int:
        """Number of nodes with the given tag."""
        return len(self._by_tag.search(tag))


class DiskTagIndex:
    """Disk-backed drop-in for :class:`TagIndex`.

    Backed by :class:`~repro.index.diskbptree.DiskBPlusTree`, so index
    probes cost (accounted) page I/O like every other storage access. Tag
    postings use the tag name as key; value postings use
    ``tag + "\\x00" + text`` composite keys.
    """

    def __init__(
        self,
        doc: Document,
        index_values: bool = True,
        path: Optional[str] = None,
        page_size: int = 4096,
        buffer_capacity: int = 32,
    ):
        from repro.index.diskbptree import DiskBPlusTree

        self.doc = doc
        self._by_tag = DiskBPlusTree(
            path=path, page_size=page_size, buffer_capacity=buffer_capacity
        )
        self._values_indexed = index_values
        for pos in range(len(doc)):
            name = doc.tag_name(pos)
            self._by_tag.insert(name, pos)
            if index_values and doc.texts[pos]:
                self._by_tag.insert(f"{name}\x00{doc.texts[pos]}", pos)
        self._by_tag.flush()

    def positions(self, tag: str) -> List[int]:
        """Document positions with the given tag, in document order."""
        return self._by_tag.search(tag)

    def positions_with_value(self, tag: str, value: str) -> List[int]:
        """Positions whose tag and text both match."""
        if self._values_indexed:
            return self._by_tag.search(f"{tag}\x00{value}")
        return [
            pos for pos in self._by_tag.search(tag) if self.doc.texts[pos] == value
        ]

    def count(self, tag: str) -> int:
        """Number of nodes with the given tag."""
        return len(self._by_tag.search(tag))

    def io_stats(self):
        """(logical reads, physical reads) of index probes so far."""
        return (
            self._by_tag.buffer.stats.logical_reads,
            self._by_tag.pager.stats.reads,
        )

    def close(self) -> None:
        self._by_tag.close()
