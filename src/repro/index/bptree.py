"""A from-scratch in-memory B+-tree.

Keys are any totally-ordered values (the library uses strings for tag names
and tuples for (tag, value) pairs); each key maps to a *postings list* of
integers (document positions), kept sorted by insertion order — documents
are loaded in document order, so postings arrive sorted.

Leaves are chained for ordered range scans. Classic split-on-overflow
insertion; deletion removes a posting, drops the key when its list
empties, and restores occupancy invariants by borrowing from or merging
with siblings (textbook B+-tree rebalancing). ``validate`` enforces the
occupancy bounds on every node except the root.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import IndexError_

DEFAULT_ORDER = 64


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self) -> None:
        self.keys: List[Any] = []
        self.values: List[List[int]] = []
        self.next: Optional["_Leaf"] = None


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        self.keys: List[Any] = []  # separator keys; len(children) == len(keys)+1
        self.children: List[Any] = []


class BPlusTree:
    """B+-tree mapping keys to postings lists of ints."""

    def __init__(self, order: int = DEFAULT_ORDER):
        if order < 3:
            raise IndexError_("B+-tree order must be at least 3")
        self.order = order
        self._root: Any = _Leaf()
        self._n_keys = 0
        self._n_postings = 0

    # -- queries ---------------------------------------------------------------

    def search(self, key: Any) -> List[int]:
        """Postings for ``key`` (empty list if absent)."""
        leaf = self._find_leaf(key)
        index = bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return list(leaf.values[index])
        return []

    def __contains__(self, key: Any) -> bool:
        leaf = self._find_leaf(key)
        index = bisect_left(leaf.keys, key)
        return index < len(leaf.keys) and leaf.keys[index] == key

    def range(self, lo: Any, hi: Any) -> Iterator[Tuple[Any, List[int]]]:
        """Yield (key, postings) for lo <= key <= hi in key order."""
        leaf = self._find_leaf(lo)
        index = bisect_left(leaf.keys, lo)
        while leaf is not None:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if key > hi:
                    return
                yield key, list(leaf.values[index])
                index += 1
            leaf = leaf.next
            index = 0

    def items(self) -> Iterator[Tuple[Any, List[int]]]:
        """All (key, postings) pairs in key order."""
        leaf = self._leftmost_leaf()
        while leaf is not None:
            for key, value in zip(leaf.keys, leaf.values):
                yield key, list(value)
            leaf = leaf.next

    def keys(self) -> List[Any]:
        return [key for key, _ in self.items()]

    def __len__(self) -> int:
        return self._n_keys

    @property
    def n_postings(self) -> int:
        return self._n_postings

    # -- mutation ----------------------------------------------------------------

    def insert(self, key: Any, posting: int) -> None:
        """Add a posting under ``key`` (creating the key if new)."""
        split = self._insert(self._root, key, posting)
        if split is not None:
            separator, right = split
            new_root = _Internal()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root

    def delete(self, key: Any, posting: int) -> bool:
        """Remove one posting; returns True if it was present.

        The key disappears when its postings list empties; underfull
        nodes borrow from or merge with a sibling, and the root collapses
        when it is an internal node with a single child.
        """
        removed = self._delete(self._root, key, posting)
        if isinstance(self._root, _Internal) and len(self._root.children) == 1:
            self._root = self._root.children[0]
        return removed

    def _leaf_min_keys(self) -> int:
        return self.order // 2

    def _internal_min_children(self) -> int:
        return (self.order + 1) // 2

    def _delete(self, node: Any, key: Any, posting: int) -> bool:
        if isinstance(node, _Leaf):
            index = bisect_left(node.keys, key)
            if index >= len(node.keys) or node.keys[index] != key:
                return False
            postings = node.values[index]
            slot = bisect_left(postings, posting)
            if slot >= len(postings) or postings[slot] != posting:
                return False
            postings.pop(slot)
            self._n_postings -= 1
            if not postings:
                node.keys.pop(index)
                node.values.pop(index)
                self._n_keys -= 1
            return True

        slot = bisect_right(node.keys, key)
        removed = self._delete(node.children[slot], key, posting)
        if removed and self._underfull(node.children[slot]):
            self._rebalance(node, slot)
        return removed

    def _underfull(self, node: Any) -> bool:
        if isinstance(node, _Leaf):
            return len(node.keys) < self._leaf_min_keys()
        return len(node.children) < self._internal_min_children()

    def _rebalance(self, parent: _Internal, slot: int) -> None:
        """Fix an underfull child by borrowing from, or merging with, a
        sibling. The parent may become underfull itself; its own parent
        handles that on the way back up the recursion."""
        child = parent.children[slot]
        left = parent.children[slot - 1] if slot > 0 else None
        right = parent.children[slot + 1] if slot + 1 < len(parent.children) else None

        if isinstance(child, _Leaf):
            if left is not None and len(left.keys) > self._leaf_min_keys():
                child.keys.insert(0, left.keys.pop())
                child.values.insert(0, left.values.pop())
                parent.keys[slot - 1] = child.keys[0]
            elif right is not None and len(right.keys) > self._leaf_min_keys():
                child.keys.append(right.keys.pop(0))
                child.values.append(right.values.pop(0))
                parent.keys[slot] = right.keys[0]
            elif left is not None:
                left.keys.extend(child.keys)
                left.values.extend(child.values)
                left.next = child.next
                parent.keys.pop(slot - 1)
                parent.children.pop(slot)
            elif right is not None:
                child.keys.extend(right.keys)
                child.values.extend(right.values)
                child.next = right.next
                parent.keys.pop(slot)
                parent.children.pop(slot + 1)
            return

        minimum = self._internal_min_children()
        if left is not None and len(left.children) > minimum:
            child.keys.insert(0, parent.keys[slot - 1])
            parent.keys[slot - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())
        elif right is not None and len(right.children) > minimum:
            child.keys.append(parent.keys[slot])
            parent.keys[slot] = right.keys.pop(0)
            child.children.append(right.children.pop(0))
        elif left is not None:
            left.keys.append(parent.keys[slot - 1])
            left.keys.extend(child.keys)
            left.children.extend(child.children)
            parent.keys.pop(slot - 1)
            parent.children.pop(slot)
        elif right is not None:
            child.keys.append(parent.keys[slot])
            child.keys.extend(right.keys)
            child.children.extend(right.children)
            parent.keys.pop(slot)
            parent.children.pop(slot + 1)

    # -- invariants ------------------------------------------------------------------

    def validate(self) -> None:
        """Check ordering and fanout invariants; raises on violation."""
        self._validate_node(self._root, None, None, is_root=True)
        previous = None
        for key, postings in self.items():
            if previous is not None and key <= previous:
                raise IndexError_("leaf chain keys out of order")
            if not postings:
                raise IndexError_(f"empty postings list for {key!r}")
            if postings != sorted(postings):
                raise IndexError_(f"unsorted postings for {key!r}")
            previous = key

    # -- internals ---------------------------------------------------------------------

    def _find_leaf(self, key: Any) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[bisect_right(node.keys, key)]
        return node

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        return node

    def _insert(self, node: Any, key: Any, posting: int) -> Optional[Tuple[Any, Any]]:
        if isinstance(node, _Leaf):
            index = bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                insort(node.values[index], posting)
            else:
                node.keys.insert(index, key)
                node.values.insert(index, [posting])
                self._n_keys += 1
            self._n_postings += 1
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None

        slot = bisect_right(node.keys, key)
        split = self._insert(node.children[slot], key, posting)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(slot, separator)
        node.children.insert(slot + 1, right)
        if len(node.children) > self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, leaf: _Leaf) -> Tuple[Any, _Leaf]:
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal) -> Tuple[Any, _Internal]:
        mid = len(node.keys) // 2
        separator = node.keys[mid]
        right = _Internal()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return separator, right

    def _validate_node(
        self, node: Any, lo: Any, hi: Any, is_root: bool = False
    ) -> None:
        if isinstance(node, _Leaf):
            for key in node.keys:
                if (lo is not None and key < lo) or (hi is not None and key >= hi):
                    raise IndexError_(f"leaf key {key!r} outside bounds")
            if node.keys != sorted(node.keys):
                raise IndexError_("leaf keys unsorted")
            if not is_root and len(node.keys) < self._leaf_min_keys():
                raise IndexError_("leaf underfull")
            return
        if len(node.children) != len(node.keys) + 1:
            raise IndexError_("internal fanout mismatch")
        if not is_root and len(node.children) < self._internal_min_children():
            raise IndexError_("internal node underfull")
        if is_root and len(node.children) < 2:
            raise IndexError_("internal root must have at least two children")
        if node.keys != sorted(node.keys):
            raise IndexError_("internal keys unsorted")
        bounds = [lo] + list(node.keys) + [hi]
        for i, child in enumerate(node.children):
            self._validate_node(child, bounds[i], bounds[i + 1])
