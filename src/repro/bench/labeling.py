"""Per-backend labeling comparison: sizes, build time, query timings.

The head-to-head the paper runs between the DOL and prior-art labelings,
generalized over every registered :class:`~repro.labeling.base.AccessLabeling`
backend. :func:`compare_backends` builds each backend from one
accessibility matrix, sizes it under its own cost model, runs a query
workload through the real engine per backend, and returns a JSON-safe
report — the payload behind ``BENCH_labeling.json``.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Optional, Sequence

from repro.acl.model import AccessMatrix
from repro.bench.queries import QUERIES
from repro.labeling.registry import available_backends, build_labeling
from repro.nok.engine import QueryEngine
from repro.xmltree.document import Document


def compare_backends(
    doc: Document,
    matrix: AccessMatrix,
    queries: Optional[Dict[str, str]] = None,
    subject: int = 0,
    semantics: str = "cho",
    backends: Optional[Sequence[str]] = None,
    repeats: int = 1,
) -> Dict[str, object]:
    """Build every backend and run the workload; returns the comparison.

    The report carries, per backend: construction time, label count and
    byte size under the backend's own cost model, and per-query wall time
    plus the answer count (identical across backends by construction —
    callers may assert it).
    """
    names = tuple(backends) if backends is not None else available_backends()
    queries = queries if queries is not None else dict(QUERIES)
    report: Dict[str, object] = {
        "n_nodes": len(doc),
        "n_subjects": matrix.n_subjects,
        "subject": subject,
        "semantics": semantics,
        "backends": {},
    }
    for name in names:
        started = time.perf_counter()
        labeling = build_labeling(name, doc, matrix)
        build_time = time.perf_counter() - started
        engine = QueryEngine(doc, labeling=labeling)
        entry: Dict[str, object] = {
            "build_time": build_time,
            "n_labels": labeling.n_labels,
            "size_bytes": labeling.size_bytes(),
            "queries": {},
        }
        for qid, query in queries.items():
            best = None
            answers = None
            for _ in range(max(repeats, 1)):
                result = engine.evaluate(query, subject=subject, semantics=semantics)
                best = (
                    result.stats.wall_time
                    if best is None
                    else min(best, result.stats.wall_time)
                )
                answers = sorted(result.positions)
            entry["queries"][qid] = {
                "wall_time": best,
                "n_answers": len(answers),
                "positions_digest": _digest(answers),
            }
        report["backends"][name] = entry
    return report


def write_report(report: Dict[str, object], path: str) -> str:
    """Write the comparison as JSON; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _digest(positions: Sequence[int]) -> int:
    """Order-independent fingerprint for cross-backend answer agreement."""
    return hash(tuple(positions)) & 0xFFFFFFFF
