"""Kernel microbenchmarks — the payload behind ``BENCH_kernels.json``.

Three micros isolate the primitives the columnar rework vectorized, each
reported as a machine-independent *ratio* of two measurements taken in
the same process (absolute latencies do not transfer across machines;
ratios of the same workload do):

``run_intersection``
    One bulk :meth:`~repro.labeling.runs.RunList.filter_positions` call
    (routed through the active kernel) against the per-position
    ``is_accessible`` loop it replaced.

``page_decode``
    :meth:`~repro.storage.codecs.CompressedPageFormat.decode_page_columns`
    against the entry-at-a-time ``decode_page`` on the same page bytes.
    The page is encoded with ``none`` container codecs so the comparison
    measures reconstruction, not decompression (which both paths share).

``leaf_npm``
    End-to-end batch-vs-tuple evaluation of a ``//``-chain query (the
    leaf-NPM + positional-join fast path) on an XMark document — the
    user-visible composition of the other two.

:func:`gate_kernels_report` enforces floor ratios chosen well below the
measured values, so CI noise does not flake the gate while a real
regression (a kernel silently falling back to per-element work) fails
it.
"""

from __future__ import annotations

import time
from array import array
from typing import Dict, Optional, Sequence

from repro.bench.labeling import write_report
from repro.bench.workloads import secured_xmark
from repro.exec.kernels import active_kernels, available_backends
from repro.labeling.runs import RunList
from repro.nok.engine import QueryEngine
from repro.storage.codecs import CompressedPageFormat
from repro.storage.encoding import NodeEntry
from repro.storage.headers import PageHeader

__all__ = [
    "run_kernels_benchmark",
    "gate_kernels_report",
    "write_report",
]

#: floor on each micro's speedup ratio — generous against CI noise
GATES = {
    "run_intersection": 1.5,
    "page_decode": 1.2,
    "leaf_npm": 1.2,
}


def _best_of(fn, repeats: int) -> float:
    best = None
    for _ in range(max(repeats, 1)):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


def _bench_run_intersection(n: int, repeats: int) -> Dict[str, float]:
    # alternating accessibility runs of varying width; positions hit
    # every third node, the density PageSkipScan sees on real workloads
    flags = []
    width, flag = 1, True
    while len(flags) < n:
        flags.extend([flag] * width)
        flag = not flag
        width = width % 37 + 3
    run_list = RunList.from_flags(flags[:n])
    positions = array("q", range(0, n, 3))

    def bulk():
        run_list.filter_positions(positions)

    def per_position():
        [pos for pos in positions if run_list.is_accessible(pos)]

    bulk_s = _best_of(bulk, repeats)
    loop_s = _best_of(per_position, repeats)
    assert list(run_list.filter_positions(positions)) == [
        pos for pos in positions if run_list.is_accessible(pos)
    ]
    return {
        "n_positions": len(positions),
        "bulk_ms": bulk_s * 1000.0,
        "per_position_ms": loop_s * 1000.0,
        "ratio": loop_s / bulk_s,
    }


def _bench_page_decode(repeats: int) -> Dict[str, float]:
    fmt = CompressedPageFormat(structure="none", codes="none")
    page_size = 4096
    # structure (8n) + worst-case codes must fit beside the headers
    n = 300
    entries = [
        NodeEntry(
            tag_id=i % 23,
            depth=1 + i % 12,
            subtree=1 + (i * 3) % 50,
            code=(i % 7) if i % 9 == 0 else 0,
            is_transition=i % 9 == 0,
        )
        for i in range(n)
    ]
    header = PageHeader(first_code=1, change_bit=0, n_entries=n)
    page = fmt.encode_page(header, entries, page_size)
    rounds = 50

    def columnar():
        for _ in range(rounds):
            fmt.decode_page_columns(page)

    def entrywise():
        for _ in range(rounds):
            fmt.decode_page(page)

    columnar_s = _best_of(columnar, repeats)
    entry_s = _best_of(entrywise, repeats)
    assert list(fmt.decode_page_columns(page).entries) == fmt.decode_page(page)[1]
    return {
        "entries_per_page": n,
        "decodes": rounds,
        "columnar_ms": columnar_s * 1000.0,
        "entrywise_ms": entry_s * 1000.0,
        "ratio": entry_s / columnar_s,
    }


def _bench_leaf_npm(n_items: int, repeats: int) -> Dict[str, float]:
    doc, matrix, _ = secured_xmark(n_items)
    engine = QueryEngine.build(doc, matrix)
    query = "//open_auction//annotation//emph"

    def run(mode):
        return engine.evaluate(query, subject=0, semantics="cho", exec_mode=mode)

    batch = run("batch")
    tuple_ = run("tuple")
    assert batch.positions == tuple_.positions
    batch_s = _best_of(lambda: run("batch"), repeats)
    tuple_s = _best_of(lambda: run("tuple"), repeats)
    return {
        "n_items": n_items,
        "n_answers": len(batch.positions),
        "batch_ms": batch_s * 1000.0,
        "tuple_ms": tuple_s * 1000.0,
        "ratio": tuple_s / batch_s,
    }


def run_kernels_benchmark(
    n_positions: int = 200_000,
    n_items: int = 120,
    repeats: int = 5,
) -> Dict[str, object]:
    """Run the three micros under the active kernel backend."""
    return {
        "backend": active_kernels().name,
        "available_backends": available_backends(),
        "repeats": repeats,
        "micros": {
            "run_intersection": _bench_run_intersection(n_positions, repeats),
            "page_decode": _bench_page_decode(repeats),
            "leaf_npm": _bench_leaf_npm(n_items, repeats),
        },
        "gates": dict(GATES),
    }


def gate_kernels_report(
    report: Dict[str, object], gates: Optional[Dict[str, float]] = None
) -> Sequence[str]:
    """Ratio-floor violations in a kernels report (empty = pass)."""
    gates = gates if gates is not None else GATES
    violations = []
    micros = report["micros"]
    for name, floor in gates.items():
        ratio = micros[name]["ratio"]
        if ratio < floor:
            violations.append(
                f"{name}: ratio {ratio:.2f}x below the {floor:.2f}x floor"
            )
    return violations
