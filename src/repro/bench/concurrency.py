"""Concurrent-serving benchmark: throughput, update interference, cache.

Three measurements over one store-backed engine, reported honestly for
the machine they ran on (``cpu_count`` is in the payload — CPython
threads share the GIL, so on a single core rising thread counts measure
scheduling overhead and snapshot safety, not parallel speedup):

- **throughput vs threads**: a fixed batch of secure queries drained by
  1/2/4/8 worker threads; every thread's answers are checked against the
  single-threaded result, so the numbers only count *correct* work;
- **reader latency under an update stream**: reader threads evaluating
  in a loop while a writer commits Section 3.4 updates; per-request
  latencies against the no-writer baseline quantify what snapshot
  isolation costs readers (they never block on the writer — the delta is
  clone/copy-on-write overhead plus GIL sharing);
- **plan-cache effect**: hit ratio and recompile counts across the whole
  workload.

The payload behind ``BENCH_concurrency.json``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.nok.engine import QueryEngine

#: thread counts the throughput scan sweeps
DEFAULT_THREADS = (1, 2, 4, 8)


def _percentile(samples: Sequence[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _latency_summary(samples: Sequence[float]) -> Dict[str, float]:
    if not samples:
        return {"n": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    return {
        "n": len(samples),
        "mean": sum(samples) / len(samples),
        "p50": _percentile(samples, 0.50),
        "p95": _percentile(samples, 0.95),
        "max": max(samples),
    }


def throughput_scan(
    engine: QueryEngine,
    queries: Dict[str, str],
    subject: int,
    semantics: str = "cho",
    threads: Sequence[int] = DEFAULT_THREADS,
    requests_per_thread: int = 25,
) -> Dict[str, object]:
    """Queries/second at each thread count, answers verified en route."""
    workload = list(queries.items())
    oracle = {
        qid: sorted(engine.evaluate(query, subject=subject, semantics=semantics).positions)
        for qid, query in workload
    }

    scan: Dict[str, object] = {}
    for n_threads in threads:
        mismatches = 0
        done = 0
        counter_lock = threading.Lock()
        start_gate = threading.Event()

        def worker() -> None:
            nonlocal mismatches, done
            local_bad = 0
            local_done = 0
            start_gate.wait()
            for i in range(requests_per_thread):
                qid, query = workload[i % len(workload)]
                result = engine.evaluate(query, subject=subject, semantics=semantics)
                if sorted(result.positions) != oracle[qid]:
                    local_bad += 1
                local_done += 1
            with counter_lock:
                mismatches += local_bad
                done += local_done

        pool = [threading.Thread(target=worker) for _ in range(n_threads)]
        for thread in pool:
            thread.start()
        started = time.perf_counter()
        start_gate.set()
        for thread in pool:
            thread.join()
        elapsed = time.perf_counter() - started
        scan[str(n_threads)] = {
            "requests": done,
            "wall_time": elapsed,
            "throughput_qps": done / elapsed if elapsed else 0.0,
            "answer_mismatches": mismatches,
        }
    return scan


def reader_latency_under_updates(
    engine: QueryEngine,
    query: str,
    subject: int,
    semantics: str = "cho",
    n_readers: int = 4,
    reads_per_reader: int = 30,
    update_span: int = 64,
) -> Dict[str, object]:
    """Reader latencies with and without a concurrent update stream.

    The writer alternately revokes and restores one subject over a
    rotating node range, committing (and so publishing a snapshot) as
    fast as it can until every reader finishes. Readers time each
    ``evaluate`` individually.
    """
    store = engine.store
    if store is None:
        raise ValueError("reader/update interference needs a store-backed engine")
    n_nodes = len(engine.doc)
    n_subjects = getattr(
        store.labeling, "n_subjects", None
    ) or store.labeling.codebook.n_subjects
    write_subject = subject + 1 if subject + 1 < n_subjects else 0

    def read_phase(concurrent_updates: bool) -> Dict[str, object]:
        latencies: List[List[float]] = [[] for _ in range(n_readers)]
        stop_writer = threading.Event()
        commits = 0

        def writer() -> None:
            nonlocal commits
            offset = 1
            value = False
            while not stop_writer.is_set():
                start = offset % max(n_nodes - update_span - 1, 1) + 1
                store.update_subject_range(
                    start, start + update_span, write_subject, value
                )
                commits += 1
                value = not value
                offset += update_span

        def reader(slot: int) -> None:
            for _ in range(reads_per_reader):
                started = time.perf_counter()
                engine.evaluate(query, subject=subject, semantics=semantics)
                latencies[slot].append(time.perf_counter() - started)

        writer_thread: Optional[threading.Thread] = None
        if concurrent_updates:
            writer_thread = threading.Thread(target=writer)
            writer_thread.start()
        readers = [
            threading.Thread(target=reader, args=(slot,))
            for slot in range(n_readers)
        ]
        for thread in readers:
            thread.start()
        for thread in readers:
            thread.join()
        stop_writer.set()
        if writer_thread is not None:
            writer_thread.join()
        flat = [sample for series in latencies for sample in series]
        return {
            "latency": _latency_summary(flat),
            "update_commits": commits,
        }

    baseline = read_phase(concurrent_updates=False)
    contended = read_phase(concurrent_updates=True)
    return {
        "n_readers": n_readers,
        "reads_per_reader": reads_per_reader,
        "baseline": baseline,
        "under_updates": contended,
        "epoch_end": store.epoch,
    }


def run_concurrency_bench(
    engine: QueryEngine,
    queries: Dict[str, str],
    subject: int,
    semantics: str = "cho",
    threads: Sequence[int] = DEFAULT_THREADS,
    requests_per_thread: int = 25,
) -> Dict[str, object]:
    """The full benchmark: throughput scan, interference, cache stats."""
    engine.plan_cache.reset_stats()
    report: Dict[str, object] = {
        "cpu_count": os.cpu_count(),
        "n_nodes": len(engine.doc),
        "subject": subject,
        "semantics": semantics,
        "throughput_vs_threads": throughput_scan(
            engine, queries, subject, semantics, threads, requests_per_thread
        ),
    }
    first_query = next(iter(queries.values()))
    report["reader_latency"] = reader_latency_under_updates(
        engine, first_query, subject, semantics
    )
    report["plan_cache"] = engine.plan_cache.stats()
    if engine.store is not None:
        report["buffer"] = engine.store.buffer.stats.snapshot()
        report["epoch"] = engine.store.epoch
    return report


def write_report(report: Dict[str, object], path: str) -> str:
    """Write the benchmark payload as JSON; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
