"""Batch-vs-tuple execution benchmark — the payload behind ``BENCH_exec.json``.

:func:`run_exec_benchmark` runs the secure-query workload
(:data:`~repro.bench.queries.QUERIES`) over XMark-like documents at
several sizes, timing every query once per execution mode on one shared
engine. Both modes must return identical answers — the benchmark asserts
it — so the speedup column compares equal work. Per query it records the
best-of-``repeats`` latency in each mode plus the run-interval counters
(probes saved, access checks); per size, the overall speedup
``total tuple time / total batch time``.

:func:`diff_reports` compares a fresh report against a committed
baseline (``BENCH_baseline.json``) on the *speedup ratios*, not absolute
latencies — ratios transfer across machines, latencies do not. The
``bench`` CLI subcommand and the CI perf-smoke job gate on it.

:func:`run_storage_benchmark` is the codec gate's payload: it builds the
largest document twice as a file-backed store — plain v2 layout and the
requested page codec — runs the same workload batch-mode over both, and
records on-disk bytes plus best-of-repeats latency for each.
:func:`gate_storage_report` enforces the acceptance ratios (compressed
store ≥ 25% smaller, batch latency within 10% of plain); both land in
``BENCH_exec.json`` under ``"storage"``.
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import Dict, List, Optional, Sequence

from repro.bench.labeling import write_report
from repro.bench.queries import QUERIES
from repro.bench.workloads import secured_xmark
from repro.errors import ReproError
from repro.nok.engine import QueryEngine

__all__ = [
    "run_exec_benchmark",
    "run_storage_benchmark",
    "gate_storage_report",
    "diff_reports",
    "write_report",
]


def run_exec_benchmark(
    sizes: Sequence[int] = (40, 80, 160),
    queries: Optional[Dict[str, str]] = None,
    subject: int = 0,
    semantics: str = "cho",
    repeats: int = 3,
) -> Dict[str, object]:
    """Time the workload in both execution modes at each document size."""
    if not sizes:
        raise ReproError("benchmark needs at least one document size")
    queries = queries if queries is not None else dict(QUERIES)
    sizes = sorted(sizes)
    report: Dict[str, object] = {
        "subject": subject,
        "semantics": semantics,
        "repeats": repeats,
        "queries": list(queries),
        "sizes": {},
    }
    for n_items in sizes:
        doc, matrix, _ = secured_xmark(n_items)
        engine = QueryEngine.build(doc, matrix)
        entry: Dict[str, object] = {
            "n_items": n_items,
            "n_nodes": len(doc),
            "queries": {},
        }
        totals = {"tuple": 0.0, "batch": 0.0}
        for qid, query in queries.items():
            per_mode: Dict[str, Dict[str, object]] = {}
            answers: Dict[str, List[int]] = {}
            for mode in ("tuple", "batch"):
                best_ms = None
                for _ in range(max(repeats, 1)):
                    started = time.perf_counter()
                    result = engine.evaluate(
                        query, subject=subject, semantics=semantics,
                        exec_mode=mode,
                    )
                    elapsed_ms = (time.perf_counter() - started) * 1000.0
                    best_ms = (
                        elapsed_ms if best_ms is None else min(best_ms, elapsed_ms)
                    )
                answers[mode] = result.positions
                per_mode[mode] = {
                    "ms": best_ms,
                    "access_checks": result.stats.access_checks,
                    "probes_saved": result.stats.probes_saved,
                }
                totals[mode] += best_ms
            if answers["tuple"] != answers["batch"]:
                raise ReproError(
                    f"batch and tuple answers diverge on {qid} "
                    f"at n_items={n_items}"
                )
            entry["queries"][qid] = {
                "n_answers": len(answers["batch"]),
                "tuple_ms": per_mode["tuple"]["ms"],
                "batch_ms": per_mode["batch"]["ms"],
                "speedup": per_mode["tuple"]["ms"] / per_mode["batch"]["ms"],
                "access_checks": per_mode["batch"]["access_checks"],
                "probes_saved": per_mode["batch"]["probes_saved"],
            }
        entry["tuple_total_ms"] = totals["tuple"]
        entry["batch_total_ms"] = totals["batch"]
        entry["speedup_overall"] = totals["tuple"] / totals["batch"]
        report["sizes"][str(n_items)] = entry
    biggest = report["sizes"][str(sizes[-1])]
    report["largest"] = {
        "n_items": sizes[-1],
        "speedup_overall": biggest["speedup_overall"],
    }
    return report


def run_storage_benchmark(
    n_items: int = 160,
    codec: str = "structure-delta",
    page_size: int = 4096,
    queries: Optional[Dict[str, str]] = None,
    subject: int = 0,
    semantics: str = "cho",
    repeats: int = 3,
) -> Dict[str, object]:
    """Disk footprint + batch latency of a compressed vs plain store.

    Both stores are built from the same document and ACL, saved to disk,
    and queried batch-mode through store-backed engines. Answers must
    match position-for-position — compression may never change results —
    and the report carries the two ratios the gate checks:
    ``bytes_ratio`` (compressed page file / plain page file) and
    ``latency_ratio`` (compressed best-of-repeats total / plain).
    """
    from repro.storage.persist import save_store

    queries = queries if queries is not None else dict(QUERIES)
    doc, matrix, _ = secured_xmark(n_items)
    report: Dict[str, object] = {
        "n_items": n_items,
        "n_nodes": len(doc),
        "codec": codec,
        "page_size": page_size,
        "repeats": repeats,
        "variants": {},
    }
    answers: Dict[str, Dict[str, List[int]]] = {}
    with tempfile.TemporaryDirectory() as tmp:
        for name, spec in (("plain", None), ("compressed", codec)):
            path = os.path.join(tmp, f"{name}.pages")
            engine = QueryEngine.build(
                doc, matrix, use_store=True, store_path=path,
                page_size=page_size, codec=spec,
            )
            try:
                save_store(engine.store)
                total_ms = 0.0
                answers[name] = {}
                for qid, query in queries.items():
                    best_ms = None
                    for _ in range(max(repeats, 1)):
                        started = time.perf_counter()
                        result = engine.evaluate(
                            query, subject=subject, semantics=semantics,
                            exec_mode="batch",
                        )
                        elapsed = (time.perf_counter() - started) * 1000.0
                        best_ms = (
                            elapsed if best_ms is None else min(best_ms, elapsed)
                        )
                    answers[name][qid] = result.positions
                    total_ms += best_ms
                report["variants"][name] = {
                    "store_bytes": os.path.getsize(path),
                    "n_pages": engine.store.n_pages,
                    "entries_per_page": engine.store.entries_per_page,
                    "batch_total_ms": total_ms,
                }
            finally:
                engine.store.close()
    for qid in queries:
        if answers["plain"][qid] != answers["compressed"][qid]:
            raise ReproError(
                f"compressed store answers diverge from plain on {qid} "
                f"at n_items={n_items}"
            )
    plain = report["variants"]["plain"]
    compressed = report["variants"]["compressed"]
    report["bytes_ratio"] = compressed["store_bytes"] / plain["store_bytes"]
    report["latency_ratio"] = (
        compressed["batch_total_ms"] / plain["batch_total_ms"]
    )
    return report


def gate_storage_report(
    storage: Dict[str, object],
    max_bytes_ratio: float = 0.75,
    max_latency_ratio: float = 1.10,
) -> List[str]:
    """Acceptance-ratio violations of a storage report; empty when clean."""
    violations: List[str] = []
    if storage["bytes_ratio"] > max_bytes_ratio:
        violations.append(
            f"codec {storage['codec']}: store is "
            f"{storage['bytes_ratio']:.2f}x the plain size "
            f"(must be <= {max_bytes_ratio:.2f}x, i.e. "
            f">= {1.0 - max_bytes_ratio:.0%} smaller)"
        )
    if storage["latency_ratio"] > max_latency_ratio:
        violations.append(
            f"codec {storage['codec']}: batch latency "
            f"{storage['latency_ratio']:.2f}x plain "
            f"(must be <= {max_latency_ratio:.2f}x)"
        )
    return violations


def diff_reports(
    baseline: Dict[str, object],
    current: Dict[str, object],
    threshold: float = 0.25,
) -> List[str]:
    """Regressions of ``current`` against ``baseline``; empty when clean.

    Only the machine-independent ratios are compared: a size's overall
    batch-vs-tuple speedup must not drop by more than ``threshold``
    (relative) below the baseline's, and a query's probes-saved count —
    a pure pruning measure — must not shrink. Sizes present in only one
    report are ignored, so the two may be run at different scales.
    """
    if threshold < 0:
        raise ReproError("threshold cannot be negative")
    regressions: List[str] = []
    base_sizes = baseline.get("sizes", {})
    cur_sizes = current.get("sizes", {})
    for size in sorted(set(base_sizes) & set(cur_sizes), key=int):
        base, cur = base_sizes[size], cur_sizes[size]
        floor = base["speedup_overall"] * (1.0 - threshold)
        if cur["speedup_overall"] < floor:
            regressions.append(
                f"size {size}: speedup {cur['speedup_overall']:.2f}x fell "
                f"below {floor:.2f}x (baseline "
                f"{base['speedup_overall']:.2f}x - {threshold:.0%})"
            )
        for qid in sorted(set(base["queries"]) & set(cur["queries"])):
            base_saved = base["queries"][qid]["probes_saved"]
            cur_saved = cur["queries"][qid]["probes_saved"]
            if cur_saved < base_saved:
                regressions.append(
                    f"size {size} {qid}: probes_saved {cur_saved} < "
                    f"baseline {base_saved}"
                )
    return regressions
