"""The chaos harness: seeded fault scenarios against the full stack.

Each :class:`ChaosScenario` stands up the real serving stack — a saved
store reopened with a fault-injecting pager, a self-healing
:class:`~repro.server.service.QueryService`, the NDJSON TCP server, and
``n_clients`` concurrent :class:`~repro.server.client.ResilientClient`
workers — then runs a deterministic workload while a
:class:`~repro.server.chaos.ChaosPlan` injects faults at the storage,
service, and network layers.

The harness asserts *invariants*, not traces (the fault distribution is
seed-reproducible; which request eats which fault follows the thread
schedule):

1. **No wrong answers.** Every response a client accepts is either

   - ``ok`` and not degraded → its positions **equal** the oracle
     answer for its snapshot epoch (Proposition 1 exactly);
   - ``ok`` and ``degraded: true`` → its positions are a **subset** of
     the oracle answer (corrupt pages were skipped; an inaccessible
     node is still never returned);
   - a structured :class:`~repro.errors.ReproError` — never a wrong
     answer, never an unstructured crash.

2. **Self-healing.** After :meth:`ChaosPlan.disable`, the service
   reports ``healthy`` again within a few probe intervals (the breaker
   half-opens, the probe clears the quarantine and verifies the store
   clean).

The oracle is a second, fault-free copy of the same store: answers per
``(query, subject)`` are precomputed for every epoch the update
sequence can produce, so a response is checked against the epoch it
actually names — which is also what makes concurrent updates testable
under snapshot isolation.
"""

from __future__ import annotations

import shutil
import threading
from dataclasses import dataclass, field
from time import monotonic, sleep
from typing import Any, Dict, List, Optional, Tuple

from repro.acl.synthetic import SyntheticACLConfig, generate_synthetic_acl
from repro.dol.labeling import DOL
from repro.errors import ReproError
from repro.nok.engine import QueryEngine
from repro.server.chaos import ChaosPlan, ChaosSpec
from repro.server.client import ResilientClient, RetryPolicy
from repro.server.health import HEALTHY, HealthConfig
from repro.server.netserver import serve
from repro.server.service import QueryService, ServiceConfig
from repro.storage.nokstore import NoKStore
from repro.storage.persist import catalog_path_for, open_store, save_store
from repro.xmark.generator import XMarkConfig, generate_document

#: the workload's query mix (valid against any XMark instance)
QUERY_SET = ("//item/name", "//item", "//keyword")

PAGE_SIZE = 512
N_SUBJECTS = 3


@dataclass
class ChaosScenario:
    """One seeded chaos run; ``faults`` holds ChaosSpec field overrides."""

    name: str
    seed: int
    faults: Dict[str, Any] = field(default_factory=dict)
    n_clients: int = 4
    requests_per_client: int = 6
    with_updates: bool = False
    #: per-request client deadline (propagated to the server)
    deadline_s: float = 8.0
    workers: int = 3
    queue_depth: int = 4
    #: XMark size knob — small keeps a scenario sub-second
    n_items: int = 8
    #: page codec for the store under test (None = plain v2 layout);
    #: injected read flips then land on *compressed* bytes, which the
    #: CRC must still catch
    codec: Optional[str] = None

    def spec(self) -> ChaosSpec:
        return ChaosSpec(seed=self.seed, **self.faults)


def _build_saved_store(path: str, scenario: ChaosScenario) -> None:
    """Create and save the store under test (fault-free)."""
    doc = generate_document(XMarkConfig(n_items=scenario.n_items, seed=scenario.seed))
    matrix = generate_synthetic_acl(
        doc,
        SyntheticACLConfig(accessibility_ratio=0.8, seed=scenario.seed + 1),
        n_subjects=N_SUBJECTS,
    )
    store = NoKStore(
        doc, DOL.from_matrix(matrix), path=path, page_size=PAGE_SIZE,
        codec=scenario.codec,
    )
    save_store(store)
    store.close()


def _update_sequence(n_nodes: int) -> List[Dict[str, Any]]:
    """The deterministic updates an update-scenario applies, in order.

    Epoch ``k`` on the wire always means "updates ``1..k`` applied" —
    only the harness's single updater writes, so the epoch counter and
    the update sequence stay in lockstep.
    """
    third = max(1, n_nodes // 3)
    return [
        {"kind": "subject_range", "start": 0, "end": third,
         "subject": 1, "value": False},
        {"kind": "subject_range", "start": third, "end": 2 * third,
         "subject": 2, "value": False},
        {"kind": "subject_range", "start": 0, "end": third,
         "subject": 1, "value": True},
    ]


def _oracle_answers(
    store_path: str, oracle_dir: str, updates: List[Dict[str, Any]]
) -> Dict[int, Dict[Tuple[str, int], List[int]]]:
    """Per-epoch ground truth from a fault-free copy of the store."""
    oracle_path = f"{oracle_dir}/oracle.db"
    shutil.copy(store_path, oracle_path)
    shutil.copy(catalog_path_for(store_path), catalog_path_for(oracle_path))
    store = open_store(oracle_path)
    engine = QueryEngine(store.doc, store=store)
    answers: Dict[int, Dict[Tuple[str, int], List[int]]] = {}
    try:
        for step in range(len(updates) + 1):
            epoch = store.epoch
            answers[epoch] = {}
            for query in QUERY_SET:
                for subject in range(N_SUBJECTS):
                    result = engine.evaluate(query, subject=subject)
                    answers[epoch][(query, subject)] = sorted(result.positions)
            if step < len(updates):
                upd = dict(updates[step])
                store.update_subject_range(
                    upd["start"], upd["end"], upd["subject"], upd["value"]
                )
    finally:
        store.close()
    return answers


def _check_response(
    response: Dict[str, Any],
    query: str,
    subject: int,
    oracle: Dict[int, Dict[Tuple[str, int], List[int]]],
) -> Optional[str]:
    """Returns a violation message, or None when the response is sound."""
    epoch = response.get("epoch")
    if epoch not in oracle:
        return f"response named unknown epoch {epoch!r}"
    expected = oracle[epoch][(query, subject)]
    got = sorted(response.get("positions", ()))
    if response.get("degraded"):
        if not set(got) <= set(expected):
            extras = sorted(set(got) - set(expected))
            return (
                f"degraded answer returned nodes outside the accessible "
                f"set for epoch {epoch}: {extras[:5]}"
            )
        return None
    if got != expected:
        return (
            f"strict answer diverged from oracle at epoch {epoch}: "
            f"got {got[:8]}, expected {expected[:8]}"
        )
    return None


def run_scenario(
    scenario: ChaosScenario, workdir: str, server: str = "thread"
) -> Dict[str, Any]:
    """Run one scenario end to end; returns its outcome report.

    ``report["violations"]`` empty and ``report["recovered"]`` True is
    the pass condition; everything else is observability.

    ``server`` selects the front end under test: ``"thread"`` is the
    socketserver NDJSON v1 stack, ``"async"`` the asyncio server — same
    service, same chaos plan, so the drop/tear/slow faults exercise the
    async write path with the identical seeded distribution.
    """
    store_path = f"{workdir}/chaos.db"
    _build_saved_store(store_path, scenario)

    chaos = ChaosPlan(scenario.spec())
    chaos.disable()  # clean open; faults start once the server is up

    store = open_store(
        store_path, buffer_capacity=4, fault_plan=chaos.storage
    )
    updates = _update_sequence(len(store.doc)) if scenario.with_updates else []
    oracle = _oracle_answers(store_path, workdir, updates)

    engine = QueryEngine(store.doc, store=store)
    health_config = HealthConfig(corruption_trip=2, probe_interval_s=0.05)
    service = QueryService(
        engine,
        ServiceConfig(
            workers=scenario.workers,
            queue_depth=scenario.queue_depth,
            timeout=scenario.deadline_s,
        ),
        chaos=chaos,
        health_config=health_config,
    )
    if server == "async":
        from repro.server.aserver import serve_async

        front = serve_async(service, host="127.0.0.1", port=0, chaos=chaos)
    else:
        front = serve(service, host="127.0.0.1", port=0, background=True)
    host, port = front.address

    violations: List[str] = []
    outcomes: Dict[str, int] = {"ok": 0, "degraded": 0}
    errors: Dict[str, int] = {}
    lock = threading.Lock()

    def record(kind: str) -> None:
        with lock:
            outcomes[kind] = outcomes.get(kind, 0) + 1

    def client_worker(index: int) -> None:
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.01, max_delay_s=0.2)
        with ResilientClient(
            host, port, policy=policy, seed=scenario.seed * 101 + index
        ) as client:
            for j in range(scenario.requests_per_client):
                query = QUERY_SET[(index + j) % len(QUERY_SET)]
                subject = (index + j) % N_SUBJECTS
                try:
                    response = client.query(
                        query, subject=subject, deadline_s=scenario.deadline_s
                    )
                except ReproError as exc:
                    with lock:
                        name = type(exc).__name__
                        errors[name] = errors.get(name, 0) + 1
                    continue
                except Exception as exc:  # noqa: BLE001 - the invariant
                    with lock:
                        violations.append(
                            f"client {index} got unstructured error: "
                            f"{type(exc).__name__}: {exc}"
                        )
                    continue
                problem = _check_response(response, query, subject, oracle)
                if problem is not None:
                    with lock:
                        violations.append(f"client {index}: {problem}")
                record("degraded" if response.get("degraded") else "ok")

    def updater_worker() -> None:
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.01, max_delay_s=0.2)
        with ResilientClient(
            host, port, policy=policy, seed=scenario.seed * 101 + 97
        ) as client:
            applied = 0
            for upd in updates:
                target = applied + 1
                for _ in range(8):
                    try:
                        response = client.update(
                            upd["kind"], upd["start"], upd["end"],
                            deadline_s=scenario.deadline_s,
                            subject=upd["subject"], value=upd["value"],
                        )
                        applied = response["epoch"]
                        break
                    except ReproError:
                        # Ambiguous (the update may or may not have
                        # landed): the epoch counter arbitrates, since
                        # this thread is the only writer.
                        try:
                            epoch = client.metrics(
                                deadline_s=scenario.deadline_s
                            )["epoch"]
                        except ReproError:
                            sleep(0.02)
                            continue
                        if epoch >= target:
                            applied = epoch
                            break
                        sleep(0.02)
                else:
                    with lock:
                        errors["update_gave_up"] = (
                            errors.get("update_gave_up", 0) + 1
                        )
                    return

    threads = [
        threading.Thread(target=client_worker, args=(i,), name=f"chaos-client-{i}")
        for i in range(scenario.n_clients)
    ]
    if updates:
        threads.append(threading.Thread(target=updater_worker, name="chaos-updater"))

    chaos.enable()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    # -- faults stop; the service must heal ------------------------------
    chaos.disable()
    recovered = False
    probes = 0
    healing_deadline = monotonic() + max(2.0, 40 * health_config.probe_interval_s)
    while monotonic() < healing_deadline:
        sleep(health_config.probe_interval_s)
        probes += 1
        try:
            service.evaluate(QUERY_SET[0], subject=0, timeout=2.0)
        except ReproError:
            continue
        if service.health_report()["state"] == HEALTHY:
            recovered = True
            break

    report = {
        "scenario": scenario.name,
        "seed": scenario.seed,
        "server": server,
        "violations": violations,
        "outcomes": outcomes,
        "errors": errors,
        "recovered": recovered,
        "recovery_probes": probes,
        "chaos_injected": chaos.stats(),
        "health": service.health_report(),
    }

    front.shutdown()
    if server != "async":
        front.server_close()
    service.close()
    store.close()
    return report


def scenario_matrix() -> List[ChaosScenario]:
    """The CI chaos suite: ≥25 seeded scenarios crossing every layer."""
    scenarios: List[ChaosScenario] = []

    # storage-layer: transient bit rot on the read path (CRC catches it,
    # the breaker degrades, the probe heals)
    for rate in (0.02, 0.08):
        for seed in (101, 202):
            scenarios.append(
                ChaosScenario(
                    name=f"storage-flip-{rate}-s{seed}",
                    seed=seed,
                    faults={"read_flip_rate": rate},
                )
            )

    # the same bit rot on compressed (v3) stores: the flip lands on
    # compressed container bytes, and the CRC — computed over the stored
    # form — must catch it before the codec ever sees the page
    for codec in ("zlib", "structure-delta"):
        scenarios.append(
            ChaosScenario(
                name=f"storage-flip-{codec}",
                seed=111,
                faults={"read_flip_rate": 0.05},
                codec=codec,
            )
        )

    # service-layer faults, one at a time
    for seed in (303, 404):
        scenarios.append(
            ChaosScenario(
                name=f"service-latency-s{seed}",
                seed=seed,
                faults={"latency_rate": 0.3, "latency_s": 0.02},
            )
        )
        scenarios.append(
            ChaosScenario(
                name=f"service-overload-s{seed}",
                seed=seed,
                faults={"overload_rate": 0.3},
            )
        )
        scenarios.append(
            ChaosScenario(
                name=f"service-snapshot-fail-s{seed}",
                seed=seed,
                faults={"snapshot_fail_rate": 0.3},
            )
        )
    scenarios.append(
        ChaosScenario(
            name="service-caches-disabled",
            seed=505,
            faults={"disable_caches": True, "latency_rate": 0.2},
        )
    )
    scenarios.append(
        ChaosScenario(
            name="service-mixed",
            seed=606,
            faults={
                "latency_rate": 0.2,
                "overload_rate": 0.2,
                "snapshot_fail_rate": 0.1,
            },
        )
    )

    # network-layer faults (exercise the client's reconnect + retry)
    for seed in (707, 808):
        scenarios.append(
            ChaosScenario(
                name=f"net-drop-s{seed}", seed=seed, faults={"drop_rate": 0.2}
            )
        )
        scenarios.append(
            ChaosScenario(
                name=f"net-tear-s{seed}", seed=seed, faults={"tear_rate": 0.2}
            )
        )
    scenarios.append(
        ChaosScenario(
            name="net-slow", seed=909, faults={"slow_write_rate": 0.4}
        )
    )
    scenarios.append(
        ChaosScenario(
            name="net-mixed",
            seed=1010,
            faults={"drop_rate": 0.15, "tear_rate": 0.1, "slow_write_rate": 0.2},
        )
    )

    # the full stack at once
    for seed in (1111, 2222, 3333):
        scenarios.append(
            ChaosScenario(
                name=f"full-stack-s{seed}",
                seed=seed,
                faults={
                    "read_flip_rate": 0.03,
                    "latency_rate": 0.1,
                    "latency_s": 0.01,
                    "overload_rate": 0.1,
                    "snapshot_fail_rate": 0.05,
                    "drop_rate": 0.1,
                    "tear_rate": 0.05,
                    "slow_write_rate": 0.1,
                },
                requests_per_client=8,
            )
        )

    # concurrent updates: snapshot isolation + exactly-once under chaos
    for seed in (4444, 5555):
        scenarios.append(
            ChaosScenario(
                name=f"updates-service-chaos-s{seed}",
                seed=seed,
                faults={"latency_rate": 0.2, "overload_rate": 0.15},
                with_updates=True,
            )
        )
    scenarios.append(
        ChaosScenario(
            name="updates-storage-chaos",
            seed=6666,
            faults={"read_flip_rate": 0.03},
            with_updates=True,
        )
    )

    # pressure shapes: tiny admission window forces shedding + brownout
    scenarios.append(
        ChaosScenario(
            name="overload-heavy",
            seed=7777,
            faults={"latency_rate": 0.5, "latency_s": 0.03},
            workers=1,
            queue_depth=1,
            n_clients=6,
        )
    )
    # tight deadlines force ServiceTimeout (queue wait included)
    scenarios.append(
        ChaosScenario(
            name="deadline-tight",
            seed=8888,
            faults={"latency_rate": 0.8, "latency_s": 0.05},
            deadline_s=1.0,
            workers=1,
            queue_depth=2,
        )
    )
    return scenarios
