"""Class-collapse benchmark — the payload behind ``BENCH_classes.json``.

The experiment behind the access-class directory: simulate LiveLink-scale
user populations (every user is a subject set of 1–3 groups, as in the
paper's production dataset where 8,639 subjects derive their rights from
a much smaller set of roles) and measure that the engine's canonicalized
caches grow with the number of *equivalence classes*, never with the
number of *users*.

Per population scale the benchmark:

1. canonicalizes every simulated user through
   :meth:`~repro.nok.engine.QueryEngine.access_class_of` (the class
   directory's memoized path) and records users/sec plus the resulting
   class count;
2. runs the query workload for a sample of users with result caching on,
   recording throughput and how many evaluations resolved statically
   (fully-allowed / fully-denied classes) or straight from a cache;
3. snapshots all three cache layers — plan, run, result — whose entry
   counts the gate bounds by ``#classes x #queries x factor``.

:func:`gate_class_report` is the machine-independent regression gate
(the CI class-collapse job and ``repro-dol bench --suite classes`` both
call it): entry-count ratios and zero-read guarantees transfer across
machines, wall-clock latencies do not.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.acl.surrogates import generate_livelink
from repro.bench.labeling import write_report
from repro.errors import ReproError
from repro.labeling.registry import build_labeling
from repro.nok.engine import QueryEngine

__all__ = [
    "CLASS_QUERIES",
    "simulated_user_sets",
    "run_class_benchmark",
    "gate_class_report",
    "write_report",
]

#: The workload: the LiveLink surrogate is a homogeneous ``item`` tree,
#: so the queries exercise scan, child-chain, and structural-join shapes
#: over the one tag.
CLASS_QUERIES: Dict[str, str] = {
    "scan": "//item",
    "chain": "//item/item",
    "join": "//item//item",
}

#: LiveLink mode benchmarked: deep enough in the permission hierarchy
#: (geometric grant depth) that group subtrees split into granted,
#: partially granted, and denied — so fully-allowed, partial, *and*
#: fully-denied classes all occur.
DEFAULT_MODE = "add_items"


def simulated_user_sets(
    n_users: int, n_groups: int, seed: int = 0
) -> List[Tuple[int, ...]]:
    """``n_users`` subject sets of 1–3 group ids (duplicates expected).

    This is the paper's population model: users hold no direct grants,
    their rights are the union of a few roles — which is exactly why the
    distinct-class count stays in the hundreds while users go to 10^6.
    """
    if n_groups < 3:
        raise ReproError("need at least 3 groups to draw user role sets")
    rng = random.Random(seed)
    groups = range(n_groups)
    return [
        tuple(sorted(rng.sample(groups, k=rng.randint(1, 3))))
        for _ in range(n_users)
    ]


def _build_engine(
    n_items: int,
    n_groups: int,
    n_real_users: int,
    mode: str,
    labeling: str,
    seed: int,
    use_store: bool,
    page_size: int,
) -> QueryEngine:
    dataset = generate_livelink(
        n_items=n_items, n_groups=n_groups, n_users=n_real_users, seed=seed
    )
    built = build_labeling(labeling, dataset.doc, dataset.matrix, mode)
    store = None
    if use_store:
        from repro.storage.nokstore import NoKStore

        store = NoKStore(dataset.doc, built, page_size=page_size)
    return QueryEngine(
        dataset.doc,
        labeling=built,
        store=store,
        plan_cache_size=4096,
        run_cache_size=4096,
        result_cache_size=8192,
    )


def run_class_benchmark(
    user_counts: Sequence[int] = (1_000, 10_000, 100_000),
    n_items: int = 400,
    n_groups: int = 16,
    n_real_users: int = 64,
    queries: Optional[Dict[str, str]] = None,
    query_sample: int = 512,
    mode: str = DEFAULT_MODE,
    labeling: str = "dol",
    use_store: bool = True,
    page_size: int = 2048,
    seed: int = 0,
) -> Dict[str, object]:
    """Measure cache population vs. simulated-user population.

    A fresh engine is built per scale so each entry's cache counts are
    attributable to that scale alone; the ACL configuration (and hence
    the class structure) is identical across scales.
    """
    if not user_counts:
        raise ReproError("benchmark needs at least one user count")
    queries = queries if queries is not None else dict(CLASS_QUERIES)
    user_counts = sorted(user_counts)
    report: Dict[str, object] = {
        "n_items": n_items,
        "n_groups": n_groups,
        "mode": mode,
        "labeling": labeling,
        "queries": dict(queries),
        "seed": seed,
        "scales": {},
    }
    for n_users in user_counts:
        engine = _build_engine(
            n_items, n_groups, n_real_users, mode, labeling, seed,
            use_store, page_size,
        )
        users = simulated_user_sets(n_users, n_groups, seed=seed + 1)

        started = time.perf_counter()
        classes = [engine.access_class_of(user) for user in users]
        class_seconds = time.perf_counter() - started
        n_classes = len(set(classes))

        sample = users[: min(n_users, query_sample)]
        counters = {
            "static_allow": 0,
            "static_deny": 0,
            "result_cache_hits": 0,
            "denied_zero_read": 0,
            "denied_with_reads": 0,
        }
        n_queries_run = 0
        started = time.perf_counter()
        for user in sample:
            for query in queries.values():
                result = engine.evaluate(
                    query, subject=user, use_result_cache=True
                )
                n_queries_run += 1
                stats = result.stats
                counters["static_allow"] += stats.static_allow
                counters["static_deny"] += stats.static_deny
                counters["result_cache_hits"] += stats.result_cache_hits
                if stats.static_deny:
                    reads = stats.logical_page_reads + stats.physical_page_reads
                    key = "denied_zero_read" if reads == 0 else "denied_with_reads"
                    counters[key] += 1
        query_seconds = time.perf_counter() - started

        directory = engine.class_directory.stats()
        entry: Dict[str, object] = {
            "n_users": n_users,
            "n_classes": n_classes,
            "class_seconds": class_seconds,
            "users_per_sec": n_users / class_seconds if class_seconds else 0.0,
            "queries_run": n_queries_run,
            "query_seconds": query_seconds,
            "queries_per_sec": (
                n_queries_run / query_seconds if query_seconds else 0.0
            ),
            "plan_cache_entries": engine.plan_cache.stats()["entries"],
            "run_cache_entries": engine.run_cache.stats()["size"],
            "result_cache_entries": engine.result_cache.stats()["entries"],
            "class_memo_hits": directory["memo_hits"],
            "class_lookups": directory["lookups"],
            **counters,
        }
        report["scales"][str(n_users)] = entry
        if engine.store is not None:
            engine.store.close()
    biggest = report["scales"][str(user_counts[-1])]
    report["largest"] = {
        "n_users": user_counts[-1],
        "n_classes": biggest["n_classes"],
        "classes_per_10k_users": (
            biggest["n_classes"] * 10_000 / user_counts[-1]
        ),
    }
    return report


def gate_class_report(
    report: Dict[str, object],
    entries_factor: float = 4.0,
    collapse_ratio: float = 0.1,
    min_users: int = 10_000,
) -> List[str]:
    """Machine-independent violations of the class-collapse contract.

    For every scale of at least ``min_users`` simulated users:

    - the class count must have *collapsed*: ``#classes <= users x
      collapse_ratio`` (the whole point of canonicalization);
    - each cache layer's entry count must be bounded by ``#classes x
      #queries x entries_factor`` — i.e. population is a function of
      the class structure, never of the user population;
    - every statically denied evaluation must have answered with zero
      page reads.

    Returns a list of violation strings; empty means the gate passes.
    """
    if entries_factor <= 0:
        raise ReproError("entries_factor must be positive")
    violations: List[str] = []
    n_queries = max(1, len(report.get("queries", {})))
    for label, entry in sorted(
        report.get("scales", {}).items(), key=lambda kv: int(kv[0])
    ):
        n_users = entry["n_users"]
        if n_users < min_users:
            continue
        n_classes = entry["n_classes"]
        if n_classes > n_users * collapse_ratio:
            violations.append(
                f"{label} users: {n_classes} classes exceeds "
                f"{collapse_ratio:.0%} of the population (no collapse)"
            )
        bound = int(n_classes * n_queries * entries_factor)
        for cache in ("plan_cache", "run_cache", "result_cache"):
            entries = entry[f"{cache}_entries"]
            if entries > bound:
                violations.append(
                    f"{label} users: {cache} holds {entries} entries, "
                    f"bound is {bound} ({n_classes} classes x "
                    f"{n_queries} queries x {entries_factor:g})"
                )
        if entry.get("denied_with_reads", 0):
            violations.append(
                f"{label} users: {entry['denied_with_reads']} statically "
                f"denied evaluations touched the store"
            )
    return violations
