"""ASCII figure rendering for benchmark output.

The paper's figures are line/bar charts; benches print their data as
tables (:mod:`~repro.bench.reporting`) plus, via :func:`render_bars`, a
quick horizontal bar chart so trends are visible directly in the pytest
log without plotting dependencies.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

BAR_WIDTH = 40


def render_bars(
    caption: str,
    rows: Iterable[Tuple[str, float]],
    width: int = BAR_WIDTH,
    unit: str = "",
) -> str:
    """Render labeled horizontal bars scaled to the maximum value."""
    rows = list(rows)
    if not rows:
        return caption + "\n(no data)"
    label_width = max(len(str(label)) for label, _value in rows)
    peak = max(value for _label, value in rows)
    lines = [caption]
    for label, value in rows:
        filled = 0 if peak <= 0 else round(width * value / peak)
        bar = "#" * filled
        lines.append(
            f"{str(label).rjust(label_width)} |{bar.ljust(width)}| "
            f"{value:.4g}{unit}"
        )
    return "\n".join(lines)


def render_series(
    caption: str,
    x_labels: Sequence[str],
    series: Sequence[Tuple[str, Sequence[float]]],
    width: int = BAR_WIDTH,
) -> str:
    """Render several named series as grouped bars per x value."""
    lines = [caption]
    peak = max(
        (value for _name, values in series for value in values), default=0
    )
    name_width = max((len(name) for name, _values in series), default=0)
    for index, x_label in enumerate(x_labels):
        lines.append(f"{x_label}:")
        for name, values in series:
            value = values[index]
            filled = 0 if peak <= 0 else round(width * value / peak)
            lines.append(
                f"  {name.rjust(name_width)} |{('#' * filled).ljust(width)}| "
                f"{value:.4g}"
            )
    return "\n".join(lines)


def print_bars(caption: str, rows: Iterable[Tuple[str, float]], unit: str = "") -> None:
    print("\n" + render_bars(caption, rows, unit=unit) + "\n")
