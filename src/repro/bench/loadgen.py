"""Serving load generator — the payload behind ``BENCH_serving.json``.

Drives a running server (threaded NDJSON v1 or asyncio v2) with an
**open-loop** arrival process: request start times are drawn from a
seeded exponential inter-arrival distribution *in advance*, so a slow
server cannot slow down the offered load — queueing shows up as latency,
exactly as it would with real independent clients. Subjects are drawn
per-request from the PR 6 population model
(:func:`~repro.bench.classes.simulated_user_sets`: thousands of users,
each a small set of group ids), so the server sees the class-collapse
workload, not one hot subject.

Per profile the generator records a latency histogram (p50/p95/p99,
mean, max), throughput, an error breakdown by taxonomy name, and — for
streamed profiles — time-to-first-fragment, the number protocol v2
exists to improve. A follow-up measurement streams the *largest* query
once and reports its time-to-first-fragment against its full-answer
latency.

:func:`gate_serving_report` is the machine-independent regression gate
(the CI serving-load job calls it): it compares throughput *ratios*
between protocols at equal connection counts and checks
time-to-first-fragment beats full-answer latency on the largest query —
no wall-clock thresholds, so the gate transfers across machines.
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass, field
from time import monotonic
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bench.classes import simulated_user_sets
from repro.bench.reporting import serving_stamp
from repro.server.protocol import encode_response

__all__ = [
    "LOAD_QUERIES",
    "LoadProfile",
    "run_profile",
    "run_serving_benchmark",
    "gate_serving_report",
]

#: the workload mix (LiveLink surrogate documents are homogeneous
#: ``item`` trees); "largest" is the full scan every gate measures
LOAD_QUERIES: Dict[str, str] = {
    "scan": "//item",
    "chain": "//item/item",
    "join": "//item//item",
}

LARGEST_QUERY = "//item"

#: response-line limit for the generator's raw connections
_LIMIT = 16 << 20


@dataclass
class LoadProfile:
    """One measured point: a protocol, a connection count, an offered load."""

    protocol: int = 2
    connections: int = 8
    #: total requests offered (the run ends when all have completed)
    requests: int = 200
    #: offered load in requests/second (open-loop Poisson arrivals)
    arrival_rate_hz: float = 400.0
    #: v2 only: issue framed streams instead of single-reply queries
    stream: bool = False
    seed: int = 0
    #: per-request deadline carried in the request
    timeout_s: float = 30.0
    queries: Sequence[str] = field(
        default_factory=lambda: list(LOAD_QUERIES.values())
    )


class _Histogram:
    """Latency samples (seconds in, milliseconds out)."""

    def __init__(self) -> None:
        self.samples: List[float] = []

    def add(self, seconds: float) -> None:
        self.samples.append(seconds)

    def summary(self) -> Dict[str, float]:
        if not self.samples:
            return {"n": 0}
        ordered = sorted(self.samples)

        def pct(p: float) -> float:
            index = min(len(ordered) - 1, int(p * len(ordered)))
            return ordered[index] * 1000.0

        return {
            "n": len(ordered),
            "mean_ms": sum(ordered) / len(ordered) * 1000.0,
            "p50_ms": pct(0.50),
            "p95_ms": pct(0.95),
            "p99_ms": pct(0.99),
            "max_ms": ordered[-1] * 1000.0,
        }


class _Conn:
    """One raw NDJSON connection, protocol-versioned.

    v1 runs one request at a time (the protocol is sequential); v2
    hellos once, then multiplexes — concurrent callers tag requests with
    ids and a demux loop routes frames back, which is exactly the
    multiplexing advantage the benchmark exists to measure.
    """

    def __init__(self, protocol: int):
        self.protocol = protocol
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()  # v1: serialize exchanges
        self._next_id = 0
        self._routes: Dict[int, asyncio.Queue] = {}
        self._demux: Optional[asyncio.Task] = None

    async def open(self, host: str, port: int) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            host, port, limit=_LIMIT
        )
        if self.protocol >= 2:
            self._writer.write(encode_response({"op": "hello", "version": 2}))
            await self._writer.drain()
            hello = await self._reader.readline()
            if not hello:
                raise ConnectionError("no hello response")
            self._demux = asyncio.get_running_loop().create_task(
                self._demux_loop()
            )

    async def close(self) -> None:
        if self._demux is not None:
            self._demux.cancel()
            try:
                await self._demux
            except (asyncio.CancelledError, Exception):
                pass
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _demux_loop(self) -> None:
        assert self._reader is not None
        while True:
            line = await self._reader.readline()
            if not line:
                break
            frame = json.loads(line.decode("utf-8"))
            queue = self._routes.get(frame.get("id"))
            if queue is not None:
                queue.put_nowait(frame)

    # -- request shapes ------------------------------------------------------

    async def request_v1(self, request: Dict[str, Any]) -> Dict[str, Any]:
        assert self._reader is not None and self._writer is not None
        async with self._lock:
            self._writer.write(encode_response(request))
            await self._writer.drain()
            line = await self._reader.readline()
            if not line:
                raise ConnectionError("connection closed mid-exchange")
            return json.loads(line.decode("utf-8"))

    def _route(self) -> Tuple[int, asyncio.Queue]:
        self._next_id += 1
        queue: asyncio.Queue = asyncio.Queue()
        self._routes[self._next_id] = queue
        return self._next_id, queue

    async def request_v2(self, request: Dict[str, Any]) -> Dict[str, Any]:
        assert self._writer is not None
        rid, queue = self._route()
        try:
            wire = dict(request)
            wire["id"] = rid
            self._writer.write(encode_response(wire))
            await self._writer.drain()
            return await queue.get()
        finally:
            self._routes.pop(rid, None)

    async def stream_v2(
        self, request: Dict[str, Any]
    ) -> Tuple[Optional[float], Optional[float], Optional[str]]:
        """Issue one framed stream; returns (ttff_s, total_s, error_name),
        times measured from the call."""
        assert self._writer is not None
        rid, queue = self._route()
        started = monotonic()
        ttff: Optional[float] = None
        try:
            wire = dict(request)
            wire["id"] = rid
            wire["stream"] = True
            self._writer.write(encode_response(wire))
            await self._writer.drain()
            while True:
                frame = await queue.get()
                kind = frame.get("frame")
                if kind == "fragment" and ttff is None:
                    ttff = monotonic() - started
                elif kind == "end":
                    return ttff, monotonic() - started, None
                elif kind == "error":
                    return ttff, monotonic() - started, str(
                        frame.get("error")
                    )
        finally:
            self._routes.pop(rid, None)


async def _run_profile_async(
    host: str,
    port: int,
    profile: LoadProfile,
    users: Sequence[Tuple[int, ...]],
) -> Dict[str, Any]:
    rng = random.Random(profile.seed)
    conns = [_Conn(profile.protocol) for _ in range(profile.connections)]
    await asyncio.gather(*(c.open(host, port) for c in conns))

    # Draw the whole arrival schedule up front: open-loop means the
    # offered load never adapts to server slowness.
    gap = 1.0 / max(profile.arrival_rate_hz, 1e-9)
    arrivals: List[float] = []
    t = 0.0
    for _ in range(profile.requests):
        t += rng.expovariate(1.0 / gap) if gap > 0 else 0.0
        arrivals.append(t)

    latency = _Histogram()
    ttff_hist = _Histogram()
    errors: Dict[str, int] = {}
    completed = 0
    t0 = monotonic()

    async def one(index: int, arrival: float) -> None:
        nonlocal completed
        due = t0 + arrival
        delay = due - monotonic()
        if delay > 0:
            await asyncio.sleep(delay)
        conn = conns[index % len(conns)]
        subject = list(rng.choice(users))
        query = rng.choice(list(profile.queries))
        request = {
            "op": "query",
            "query": query,
            "subject": subject,
            "timeout": profile.timeout_s,
        }
        started = monotonic()
        try:
            if profile.protocol >= 2 and profile.stream:
                ttff, total, error = await conn.stream_v2(request)
                if error is not None:
                    errors[error] = errors.get(error, 0) + 1
                    return
                if ttff is not None:
                    ttff_hist.add(ttff)
                latency.add(total if total is not None else 0.0)
                completed += 1
                return
            if profile.protocol >= 2:
                response = await conn.request_v2(request)
            else:
                response = await conn.request_v1(request)
            if response.get("ok"):
                latency.add(monotonic() - started)
                completed += 1
            else:
                name = str(response.get("error"))
                errors[name] = errors.get(name, 0) + 1
        except (ConnectionError, OSError, ValueError) as exc:
            name = type(exc).__name__
            errors[name] = errors.get(name, 0) + 1

    await asyncio.gather(
        *(one(i, arrival) for i, arrival in enumerate(arrivals))
    )
    elapsed = monotonic() - t0
    await asyncio.gather(*(c.close() for c in conns))

    entry: Dict[str, Any] = {
        "stream": profile.stream,
        "requests": profile.requests,
        "completed": completed,
        "errors": errors,
        "elapsed_s": round(elapsed, 4),
        "throughput_rps": round(completed / elapsed, 2) if elapsed else 0.0,
        "latency": latency.summary(),
    }
    if profile.stream:
        entry["ttff"] = ttff_hist.summary()
    entry.update(
        serving_stamp(
            protocol=profile.protocol,
            connections=profile.connections,
            arrival_rate_hz=profile.arrival_rate_hz,
        )
    )
    return entry


def run_profile(
    host: str,
    port: int,
    profile: LoadProfile,
    users: Sequence[Tuple[int, ...]],
) -> Dict[str, Any]:
    """Run one load profile to completion (blocking facade)."""
    return asyncio.run(_run_profile_async(host, port, profile, users))


async def _measure_largest_async(
    host: str, port: int, subject: Sequence[int], timeout_s: float = 30.0
) -> Dict[str, Any]:
    """Stream the largest query once: ttff vs full-answer latency."""
    conn = _Conn(2)
    await conn.open(host, port)
    try:
        ttff, total, error = await conn.stream_v2(
            {
                "op": "query",
                "query": LARGEST_QUERY,
                "subject": list(subject),
                "timeout": timeout_s,
            }
        )
    finally:
        await conn.close()
    return {
        "query": LARGEST_QUERY,
        "error": error,
        "ttff_ms": round(ttff * 1000.0, 3) if ttff is not None else None,
        "full_ms": round(total * 1000.0, 3) if total is not None else None,
    }


def measure_largest(
    host: str, port: int, subject: Sequence[int], timeout_s: float = 30.0
) -> Dict[str, Any]:
    return asyncio.run(_measure_largest_async(host, port, subject, timeout_s))


def run_serving_benchmark(
    v1_address: Tuple[str, int],
    v2_address: Tuple[str, int],
    n_users: int = 2000,
    n_groups: int = 16,
    connections: Sequence[int] = (8, 64),
    requests: int = 200,
    arrival_rate_hz: float = 400.0,
    seed: int = 0,
) -> Dict[str, Any]:
    """The full measurement matrix behind ``BENCH_serving.json``.

    For every connection count: protocol v1 single-frame against the
    first server, protocol v2 replies *and* v2 framed streams against
    the second, all with the same seeded arrival schedule and user
    population; plus the largest-query ttff measurement on v2.
    """
    users = simulated_user_sets(n_users, n_groups, seed=seed)
    profiles: List[Dict[str, Any]] = []
    for n_conns in connections:
        for protocol, stream, (host, port) in (
            (1, False, v1_address),
            (2, False, v2_address),
            (2, True, v2_address),
        ):
            profile = LoadProfile(
                protocol=protocol,
                connections=n_conns,
                requests=requests,
                arrival_rate_hz=arrival_rate_hz,
                stream=stream,
                seed=seed,
            )
            profiles.append(run_profile(host, port, profile, users))
    # full-access subject: every group (rights are the union)
    largest = measure_largest(
        v2_address[0], v2_address[1], list(range(n_groups))
    )
    return {
        "n_users": n_users,
        "n_groups": n_groups,
        "requests_per_profile": requests,
        "profiles": profiles,
        "largest_query": largest,
    }


def gate_serving_report(
    report: Dict[str, Any],
    min_throughput_ratio: float = 0.9,
    min_completion_ratio: float = 0.5,
) -> List[str]:
    """Machine-independent regression gates; returns human-readable
    problems (empty = pass).

    - at every connection count >= 64, v2 reply throughput must be at
      least ``min_throughput_ratio`` of v1's (the ratio transfers across
      machines; the default leaves headroom for scheduler noise — the
      claim guarded is "multiplexing does not lose to one-at-a-time",
      not a microbenchmark ordering);
    - on the largest query, time-to-first-fragment must beat the
      full-answer latency — the bounded-memory streaming claim;
    - every profile must complete at least ``min_completion_ratio`` of
      its offered requests (shed/error storms fail the gate).
    """
    problems: List[str] = []
    by_key: Dict[Tuple[int, int, bool], Dict[str, Any]] = {}
    for entry in report.get("profiles", []):
        key = (entry["protocol"], entry["connections"], entry["stream"])
        by_key[key] = entry
        offered = entry.get("requests", 0)
        done = entry.get("completed", 0)
        if offered and done / offered < min_completion_ratio:
            problems.append(
                f"profile {key}: only {done}/{offered} requests completed"
            )
    conn_counts = sorted({k[1] for k in by_key})
    for n_conns in conn_counts:
        if n_conns < 64:
            continue
        v1 = by_key.get((1, n_conns, False))
        v2 = by_key.get((2, n_conns, False))
        if v1 is None or v2 is None:
            continue
        v1_rps = v1.get("throughput_rps", 0.0)
        v2_rps = v2.get("throughput_rps", 0.0)
        if v1_rps > 0 and v2_rps < min_throughput_ratio * v1_rps:
            problems.append(
                f"v2 throughput {v2_rps} < {min_throughput_ratio} x v1 "
                f"{v1_rps} at {n_conns} connections"
            )
    largest = report.get("largest_query") or {}
    ttff, full = largest.get("ttff_ms"), largest.get("full_ms")
    if largest.get("error"):
        problems.append(f"largest query errored: {largest['error']}")
    elif ttff is None or full is None:
        problems.append("largest query produced no ttff/full measurement")
    elif ttff >= full:
        problems.append(
            f"ttff {ttff}ms did not beat full-answer latency {full}ms "
            f"on the largest query"
        )
    return problems
