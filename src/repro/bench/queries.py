"""Table 1 — the paper's benchmark queries.

Q1–Q3 exercise the three classes of NoK pattern trees (branches at the end,
branches in the middle, a single path); Q4–Q6 are ancestor–descendant
structural joins with descendants close (Q4), medium (Q5) and distant (Q6)
from their ancestors.

Note: the published text of Q3 reads
``/site/categories/category/name[description/text/bold]``, which contradicts
the prose ("a single path") and can never match XMark data (``name`` has no
``description`` child) — an apparent typesetting slip. We use the single
path the prose describes; the printed form is kept as ``Q3_AS_PRINTED`` and
is also accepted by the parser.
"""

from __future__ import annotations

QUERIES = {
    "Q1": "/site/regions/africa/item[location][name][quantity]",
    "Q2": "/site/categories/category[name]/description/text/bold",
    "Q3": "/site/categories/category/description/text/bold",
    "Q4": "//parlist//parlist",
    "Q5": "//listitem//keyword",
    "Q6": "//item//emph",
}

Q3_AS_PRINTED = "/site/categories/category/name[description/text/bold]"

QUERY_IDS = tuple(QUERIES)

#: Queries answered by a single NoK pattern tree (no structural join).
NOK_ONLY = ("Q1", "Q2", "Q3")

#: Queries requiring ancestor-descendant structural joins.
JOIN_QUERIES = ("Q4", "Q5", "Q6")
