"""Benchmark harness utilities.

Shared between the ``benchmarks/`` pytest modules and the examples:

- :mod:`~repro.bench.queries` — the Table 1 benchmark queries;
- :mod:`~repro.bench.workloads` — canonical document + ACL configurations
  for each experiment;
- :mod:`~repro.bench.reporting` — fixed-width table printers that render
  each reproduced figure/table as text.
"""

from repro.bench.queries import QUERIES, QUERY_IDS
from repro.bench.reporting import (
    format_plan_table,
    format_table,
    plan_rows,
    print_table,
)

__all__ = [
    "QUERIES",
    "QUERY_IDS",
    "format_plan_table",
    "format_table",
    "plan_rows",
    "print_table",
]
