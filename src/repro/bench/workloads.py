"""Canonical benchmark workloads.

Each experiment's document + access control configuration lives here so
benchmarks, examples, and EXPERIMENTS.md all agree on what was run. Sizes
are scaled down from the paper (which used an 832k-node XMark instance and
datasets with up to 8,639 subjects) to keep CI runs in seconds; every
factory takes explicit size parameters for larger runs.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

from repro.acl.model import AccessMatrix
from repro.acl.surrogates import SurrogateDataset, generate_livelink, generate_unix_fs
from repro.acl.synthetic import SyntheticACLConfig, single_subject_labels
from repro.dol.labeling import DOL
from repro.xmark.generator import XMarkConfig, generate_document
from repro.xmltree.document import Document


@lru_cache(maxsize=4)
def xmark_document(n_items: int = 400, seed: int = 42) -> Document:
    """The shared XMark instance (≈20 nodes per item)."""
    config = XMarkConfig(
        n_items=n_items,
        n_categories=max(10, n_items // 10),
        n_people=max(10, n_items // 8),
        n_open_auctions=max(10, n_items // 8),
        seed=seed,
    )
    return generate_document(config)


def synthetic_vector(
    doc: Document,
    accessibility_ratio: float,
    propagation_ratio: float = 0.3,
    seed: int = 0,
):
    """One subject's synthetic accessibility labels (Section 5 generator)."""
    config = SyntheticACLConfig(
        propagation_ratio=propagation_ratio,
        accessibility_ratio=accessibility_ratio,
        seed=seed,
    )
    return single_subject_labels(doc, config)


def secured_xmark(
    n_items: int = 400,
    accessibility_ratio: float = 0.7,
    propagation_ratio: float = 0.3,
    seed: int = 0,
) -> Tuple[Document, AccessMatrix, DOL]:
    """XMark document + single-subject synthetic ACL + its DOL."""
    doc = xmark_document(n_items)
    vector = synthetic_vector(doc, accessibility_ratio, propagation_ratio, seed)
    matrix = AccessMatrix(len(doc), 1)
    for pos, value in enumerate(vector):
        if value:
            matrix.set_accessible(0, pos, True)
    return doc, matrix, DOL.from_matrix(matrix)


@lru_cache(maxsize=2)
def livelink_dataset(
    n_items: int = 2000, n_groups: int = 12, n_users: int = 60, seed: int = 0
) -> SurrogateDataset:
    """The LiveLink surrogate used by Figures 4(b), 5(a), 6(a)."""
    return generate_livelink(
        n_items=n_items, n_groups=n_groups, n_users=n_users, seed=seed
    )


@lru_cache(maxsize=2)
def unix_dataset(
    n_nodes: int = 3000, n_users: int = 40, n_groups: int = 10, seed: int = 0
) -> SurrogateDataset:
    """The Unix file system surrogate used by Figures 5(b), 6(b)."""
    return generate_unix_fs(
        n_nodes=n_nodes, n_users=n_users, n_groups=n_groups, seed=seed
    )
