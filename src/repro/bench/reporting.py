"""Plain-text table rendering and report stamping for benchmark output.

Every reproduced figure/table prints through these helpers so the bench
logs read like the paper's tables: a caption, aligned columns, one row per
measured point. :func:`serving_stamp` is the shared identity block for
serving measurements, so BENCH_serving.json snapshots taken across PRs
stay comparable point-by-point.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def serving_stamp(
    protocol: int, connections: int, arrival_rate_hz: float
) -> Dict[str, Any]:
    """The identity block every serving-benchmark entry carries.

    A measured point is only comparable to another taken under the same
    protocol version, connection count, and offered load; stamping the
    three into each entry lets trajectory tooling join snapshots across
    BENCH_serving.json revisions by key instead of by list position.
    """
    return {
        "protocol": int(protocol),
        "connections": int(connections),
        "arrival_rate_hz": float(arrival_rate_hz),
    }


def _format_cell(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def format_table(
    caption: str, header: Sequence[str], rows: Iterable[Sequence[Cell]]
) -> str:
    """Render a fixed-width text table with a caption."""
    text_rows: List[List[str]] = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in header]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out = [caption, line(list(header)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)


def print_table(
    caption: str, header: Sequence[str], rows: Iterable[Sequence[Cell]]
) -> None:
    """Print a table (benchmarks run pytest with ``-s`` unnecessary; pytest
    captures and shows output for failing or ``-rA`` runs, and
    pytest-benchmark prints its own timing table separately)."""
    print("\n" + format_table(caption, header, rows) + "\n")


def plan_rows(plan) -> List[Sequence[Cell]]:
    """Per-operator report rows for a (run) physical plan.

    One row per operator, preorder: name, detail, rows out, inclusive
    milliseconds, and any operator-specific counters (pages skipped,
    candidates denied, join pairs pruned). Feed the result straight to
    :func:`format_table` / :func:`print_table`.
    """
    rows: List[Sequence[Cell]] = []
    for depth, op in _walk_with_depth(plan.root, 0):
        extras = " ".join(
            f"{key}={value}" for key, value in sorted(op.stats.extra.items())
        )
        rows.append(
            (
                "  " * depth + op.name,
                op.describe(),
                op.stats.rows_out,
                op.stats.time * 1000.0,
                extras,
            )
        )
    return rows


def format_plan_table(caption: str, plan) -> str:
    """Render a physical plan's per-operator counters as a text table."""
    return format_table(
        caption,
        ["operator", "detail", "rows", "ms", "counters"],
        plan_rows(plan),
    )


def _walk_with_depth(op, depth: int):
    yield depth, op
    for child in op.children:
        yield from _walk_with_depth(child, depth + 1)
