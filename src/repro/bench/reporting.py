"""Plain-text table rendering for benchmark output.

Every reproduced figure/table prints through these helpers so the bench
logs read like the paper's tables: a caption, aligned columns, one row per
measured point.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def format_table(
    caption: str, header: Sequence[str], rows: Iterable[Sequence[Cell]]
) -> str:
    """Render a fixed-width text table with a caption."""
    text_rows: List[List[str]] = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in header]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out = [caption, line(list(header)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)


def print_table(
    caption: str, header: Sequence[str], rows: Iterable[Sequence[Cell]]
) -> None:
    """Print a table (benchmarks run pytest with ``-s`` unnecessary; pytest
    captures and shows output for failing or ``-rA`` runs, and
    pytest-benchmark prints its own timing table separately)."""
    print("\n" + format_table(caption, header, rows) + "\n")
