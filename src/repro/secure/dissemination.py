"""Secure one-pass XML dissemination.

The paper's conclusion points out that because DOL embeds access controls
into the document encoding in document order, "many one-pass algorithms on
streaming XML data can be made secure". This module implements the
canonical such algorithm — selective dissemination: given raw XML text,
a DOL, and a subject, emit the portion of the document the subject may
see, in a single pass over the input event stream.

Two filtering policies are provided, mirroring the two secure-evaluation
semantics:

- ``PRUNE`` (view semantics, Gabillon-Bruno): an inaccessible element is
  removed together with its entire subtree.
- ``HOIST`` (Cho-style): an inaccessible element is removed but its
  accessible children are spliced into the nearest retained ancestor —
  the transformation used by fine-grained dissemination systems that let
  answers come from inside denied regions.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.labeling.base import AccessLabeling
from repro.errors import AccessControlError
from repro.xmltree import parser
from repro.xmltree.document import NO_NODE
from repro.xmltree.node import Node
from repro.xmltree.serializer import escape_attr, escape_text, serialize

PRUNE = "prune"
HOIST = "hoist"

_POLICIES = (PRUNE, HOIST)


def filter_xml(
    xml_text: str,
    labeling: AccessLabeling,
    subject: int,
    policy: str = PRUNE,
) -> str:
    """Produce the XML a subject is allowed to see, in one pass.

    The input is consumed as a SAX-like event stream; each start event is
    matched to its document position (events arrive in document order, the
    same order the DOL is keyed on) and checked against the DOL.

    The output is a well-formed XML *fragment*: under ``PRUNE`` it is a
    single element or empty; under ``HOIST`` hoisting can surface several
    sibling roots (wrap it before re-parsing if a single document is
    needed).
    """
    if policy not in _POLICIES:
        raise AccessControlError(f"unknown dissemination policy {policy!r}")

    out: List[str] = []
    position = 0
    # Per open element: its tag if kept, None if dropped.
    stack: List[Optional[str]] = []
    #: kept element whose start tag is buffered until we know whether it
    #: is empty (lets us emit <tag/> like the serializer does)
    pending: Optional[str] = None
    prune_depth: Optional[int] = None  # depth at which a PRUNE cut began

    def flush_pending() -> None:
        nonlocal pending
        if pending is not None:
            out.append(f"<{pending[0]}{pending[1]}>")
            pending = None

    for kind, payload in parser.iterparse(xml_text):
        if kind == parser.START:
            tag, attrs = payload  # type: ignore[misc]
            pos = position
            position += 1
            if prune_depth is not None:
                stack.append(None)
                continue
            if pos >= labeling.n_nodes:
                raise AccessControlError(
                    "document has more elements than the DOL covers"
                )
            if labeling.accessible(subject, pos):
                flush_pending()
                attr_text = "".join(
                    f' {name}="{escape_attr(value)}"'
                    for name, value in attrs.items()  # type: ignore[union-attr]
                )
                pending = (tag, attr_text)
                stack.append(tag)
            elif policy == PRUNE:
                prune_depth = len(stack)
                stack.append(None)
            else:  # HOIST: drop the element, keep descending
                stack.append(None)
        elif kind == parser.END:
            kept = stack.pop()
            if kept is not None:
                if pending is not None and pending[0] == kept:
                    out.append(f"<{pending[0]}{pending[1]}/>")
                    pending = None
                else:
                    out.append(f"</{kept}>")
            if prune_depth is not None and len(stack) == prune_depth:
                prune_depth = None
        else:  # TEXT belongs to the innermost open element
            if prune_depth is None and stack and stack[-1] is not None:
                flush_pending()
                out.append(escape_text(str(payload)))

    return "".join(out)


def visible_positions(labeling: AccessLabeling, subject: int, doc) -> List[int]:
    """Positions surviving PRUNE filtering (view-visible nodes).

    A node survives iff every node on its root path, itself included, is
    accessible — the same set the :class:`~repro.nok.stdjoin.PathAccessIndex`
    computes; exposed here for verification and tests.
    """
    visible: List[int] = []
    flags = [False] * labeling.n_nodes
    for pos in range(labeling.n_nodes):
        par = doc.parent[pos]
        above = flags[par] if par >= 0 else True
        flags[pos] = above and labeling.accessible(subject, pos)
        if flags[pos]:
            visible.append(pos)
    return visible


def hoisted_positions(labeling: AccessLabeling, subject: int) -> List[int]:
    """Positions surviving HOIST filtering: simply the accessible nodes."""
    return [
        pos for pos in range(labeling.n_nodes) if labeling.accessible(subject, pos)
    ]


# -- query-driven dissemination ------------------------------------------------


def stream_answer_fragments(
    engine,
    query,
    subject: int,
    semantics: str = "cho",
    policy: str = PRUNE,
    limit: Optional[int] = None,
    ordered: bool = False,
    strict: bool = True,
    snapshot=None,
    exec_mode: Optional[str] = None,
    use_run_cache: bool = True,
) -> Iterator[Tuple[int, str]]:
    """Disseminate *query answers*: (position, XML fragment) pairs, lazily.

    Consumes the engine's streaming iterator — the compiled physical plan
    is pulled one answer at a time, so a subscriber that stops reading (or
    passes ``limit``) terminates evaluation early, with no further access
    checks or page reads. Each answer subtree is filtered for the subject
    under the given policy before serialization, exactly like
    :func:`filter_xml` filters a whole document:

    - ``PRUNE``: an inaccessible descendant disappears with its subtree;
    - ``HOIST``: an inaccessible descendant is dropped but its accessible
      children are spliced into the nearest retained ancestor.

    This iterator is the serving stack's transport source: the protocol
    v2 ``fragment`` frames carry its output verbatim. ``snapshot=`` pins
    document, labeling, *and* plan execution to one store epoch for the
    stream's whole lifetime; ``strict=False`` degrades around quarantined
    pages (fragments then cover a subset of the accessible answers);
    ``exec_mode``/``use_run_cache`` pass through to the engine compile.
    """
    return AnswerFragmentStream(
        engine,
        query,
        subject,
        semantics=semantics,
        policy=policy,
        limit=limit,
        ordered=ordered,
        strict=strict,
        snapshot=snapshot,
        exec_mode=exec_mode,
        use_run_cache=use_run_cache,
    )


class AnswerFragmentStream:
    """The iterator behind :func:`stream_answer_fragments`.

    Iterating yields ``(position, xml_fragment)`` pairs lazily, exactly
    as the generator it replaced; in addition the compiled plan's live
    :class:`~repro.exec.context.EvalStats` is exposed as :attr:`stats`
    (the wire protocol's ``end`` frame reports it) and the pinned epoch
    as :attr:`epoch`. Abandoning the iterator (``close()``/GC) stops the
    underlying plan — no further access checks or page reads happen.
    """

    def __init__(
        self,
        engine,
        query,
        subject,
        semantics: str = "cho",
        policy: str = PRUNE,
        limit: Optional[int] = None,
        ordered: bool = False,
        strict: bool = True,
        snapshot=None,
        exec_mode: Optional[str] = None,
        use_run_cache: bool = True,
    ):
        if policy not in _POLICIES:
            raise AccessControlError(f"unknown dissemination policy {policy!r}")
        if snapshot is None and engine.store is not None:
            snapshot = engine.store.snapshot()
        if snapshot is not None:
            doc, labeling = snapshot.doc, snapshot.labeling
        else:
            doc, labeling = engine.doc, engine.labeling
        if labeling is None:
            raise AccessControlError("dissemination requires access control data")
        plan = engine.compile(
            query,
            subject=subject,
            semantics=semantics,
            ordered=ordered,
            limit=limit,
            strict=strict,
            snapshot=snapshot,
            exec_mode=exec_mode,
            use_run_cache=use_run_cache,
        )
        #: live statistics of the executing plan (complete once drained)
        self.stats = plan.ctx.stats
        #: the store epoch every fragment reads (0 for in-memory engines)
        self.epoch = snapshot.epoch if snapshot is not None else 0
        self.policy = policy
        self._doc = doc
        self._labeling = labeling
        self._subject = subject
        self._positions = plan.execute()

    def __iter__(self) -> "AnswerFragmentStream":
        return self

    def __next__(self) -> Tuple[int, str]:
        pos = next(self._positions)
        return pos, serialize_visible_subtree(
            self._doc, self._labeling, self._subject, pos, self.policy
        )

    def close(self) -> None:
        """Stop the underlying plan early (no more page reads)."""
        close = getattr(self._positions, "close", None)
        if close is not None:
            close()


def _can_see(labeling: AccessLabeling, subject, pos: int) -> bool:
    """One accessibility probe, subject-set aware.

    ``subject`` may be a single id or a sequence of ids (user-level
    evaluation: rights are the union, per Section 4's footnote).
    """
    if isinstance(subject, int):
        return labeling.accessible(subject, pos)
    return labeling.accessible_any(subject, pos)


def serialize_visible_subtree(
    doc, labeling: AccessLabeling, subject, root: int, policy: str = PRUNE
) -> str:
    """Serialize the subtree at ``root``, filtered for one subject (or a
    subject set, whose rights are the union).

    The root itself must be accessible (under Cho semantics every answer
    position is). Returns a well-formed XML fragment.
    """
    if policy not in _POLICIES:
        raise AccessControlError(f"unknown dissemination policy {policy!r}")
    if not _can_see(labeling, subject, root):
        raise AccessControlError(
            f"answer position {root} is not accessible to subject {subject}"
        )
    return serialize(_visible_node(doc, labeling, subject, root, policy))


def _visible_node(doc, labeling: AccessLabeling, subject, pos: int, policy: str) -> Node:
    """Rebuild the accessible portion of the subtree at ``pos`` as a tree."""
    node = Node(doc.tag_name(pos), text=doc.text(pos), attrs=doc.attrs_of(pos))
    for child_node in _visible_children(doc, labeling, subject, pos, policy):
        node.append(child_node)
    return node


def _visible_children(
    doc, labeling: AccessLabeling, subject, pos: int, policy: str
) -> List[Node]:
    out: List[Node] = []
    child = doc.first_child(pos)
    while child != NO_NODE:
        if _can_see(labeling, subject, child):
            out.append(_visible_node(doc, labeling, subject, child, policy))
        elif policy == HOIST:
            # Drop the element, splice its accessible children upward.
            out.extend(_visible_children(doc, labeling, subject, child, policy))
        child = doc.following_sibling(child)
    return out
