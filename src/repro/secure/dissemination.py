"""Secure one-pass XML dissemination.

The paper's conclusion points out that because DOL embeds access controls
into the document encoding in document order, "many one-pass algorithms on
streaming XML data can be made secure". This module implements the
canonical such algorithm — selective dissemination: given raw XML text,
a DOL, and a subject, emit the portion of the document the subject may
see, in a single pass over the input event stream.

Two filtering policies are provided, mirroring the two secure-evaluation
semantics:

- ``PRUNE`` (view semantics, Gabillon-Bruno): an inaccessible element is
  removed together with its entire subtree.
- ``HOIST`` (Cho-style): an inaccessible element is removed but its
  accessible children are spliced into the nearest retained ancestor —
  the transformation used by fine-grained dissemination systems that let
  answers come from inside denied regions.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.labeling.base import AccessLabeling
from repro.errors import AccessControlError
from repro.xmltree import parser
from repro.xmltree.document import NO_NODE
from repro.xmltree.node import Node
from repro.xmltree.serializer import escape_attr, escape_text, serialize

PRUNE = "prune"
HOIST = "hoist"

_POLICIES = (PRUNE, HOIST)


def filter_xml(
    xml_text: str,
    labeling: AccessLabeling,
    subject: int,
    policy: str = PRUNE,
) -> str:
    """Produce the XML a subject is allowed to see, in one pass.

    The input is consumed as a SAX-like event stream; each start event is
    matched to its document position (events arrive in document order, the
    same order the DOL is keyed on) and checked against the DOL.

    The output is a well-formed XML *fragment*: under ``PRUNE`` it is a
    single element or empty; under ``HOIST`` hoisting can surface several
    sibling roots (wrap it before re-parsing if a single document is
    needed).
    """
    if policy not in _POLICIES:
        raise AccessControlError(f"unknown dissemination policy {policy!r}")

    out: List[str] = []
    position = 0
    # Per open element: its tag if kept, None if dropped.
    stack: List[Optional[str]] = []
    #: kept element whose start tag is buffered until we know whether it
    #: is empty (lets us emit <tag/> like the serializer does)
    pending: Optional[str] = None
    prune_depth: Optional[int] = None  # depth at which a PRUNE cut began

    def flush_pending() -> None:
        nonlocal pending
        if pending is not None:
            out.append(f"<{pending[0]}{pending[1]}>")
            pending = None

    for kind, payload in parser.iterparse(xml_text):
        if kind == parser.START:
            tag, attrs = payload  # type: ignore[misc]
            pos = position
            position += 1
            if prune_depth is not None:
                stack.append(None)
                continue
            if pos >= labeling.n_nodes:
                raise AccessControlError(
                    "document has more elements than the DOL covers"
                )
            if labeling.accessible(subject, pos):
                flush_pending()
                attr_text = "".join(
                    f' {name}="{escape_attr(value)}"'
                    for name, value in attrs.items()  # type: ignore[union-attr]
                )
                pending = (tag, attr_text)
                stack.append(tag)
            elif policy == PRUNE:
                prune_depth = len(stack)
                stack.append(None)
            else:  # HOIST: drop the element, keep descending
                stack.append(None)
        elif kind == parser.END:
            kept = stack.pop()
            if kept is not None:
                if pending is not None and pending[0] == kept:
                    out.append(f"<{pending[0]}{pending[1]}/>")
                    pending = None
                else:
                    out.append(f"</{kept}>")
            if prune_depth is not None and len(stack) == prune_depth:
                prune_depth = None
        else:  # TEXT belongs to the innermost open element
            if prune_depth is None and stack and stack[-1] is not None:
                flush_pending()
                out.append(escape_text(str(payload)))

    return "".join(out)


def visible_positions(labeling: AccessLabeling, subject: int, doc) -> List[int]:
    """Positions surviving PRUNE filtering (view-visible nodes).

    A node survives iff every node on its root path, itself included, is
    accessible — the same set the :class:`~repro.nok.stdjoin.PathAccessIndex`
    computes; exposed here for verification and tests.
    """
    visible: List[int] = []
    flags = [False] * labeling.n_nodes
    for pos in range(labeling.n_nodes):
        par = doc.parent[pos]
        above = flags[par] if par >= 0 else True
        flags[pos] = above and labeling.accessible(subject, pos)
        if flags[pos]:
            visible.append(pos)
    return visible


def hoisted_positions(labeling: AccessLabeling, subject: int) -> List[int]:
    """Positions surviving HOIST filtering: simply the accessible nodes."""
    return [
        pos for pos in range(labeling.n_nodes) if labeling.accessible(subject, pos)
    ]


# -- query-driven dissemination ------------------------------------------------


def stream_answer_fragments(
    engine,
    query,
    subject: int,
    semantics: str = "cho",
    policy: str = PRUNE,
    limit: Optional[int] = None,
) -> Iterator[Tuple[int, str]]:
    """Disseminate *query answers*: (position, XML fragment) pairs, lazily.

    Consumes the engine's streaming iterator — the compiled physical plan
    is pulled one answer at a time, so a subscriber that stops reading (or
    passes ``limit``) terminates evaluation early, with no further access
    checks or page reads. Each answer subtree is filtered for the subject
    under the given policy before serialization, exactly like
    :func:`filter_xml` filters a whole document:

    - ``PRUNE``: an inaccessible descendant disappears with its subtree;
    - ``HOIST``: an inaccessible descendant is dropped but its accessible
      children are spliced into the nearest retained ancestor.
    """
    if policy not in _POLICIES:
        raise AccessControlError(f"unknown dissemination policy {policy!r}")
    doc, labeling = engine.doc, engine.labeling
    if labeling is None:
        raise AccessControlError("dissemination requires access control data")
    for pos in engine.stream(query, subject=subject, semantics=semantics, limit=limit):
        yield pos, serialize_visible_subtree(doc, labeling, subject, pos, policy)


def serialize_visible_subtree(
    doc, labeling: AccessLabeling, subject: int, root: int, policy: str = PRUNE
) -> str:
    """Serialize the subtree at ``root``, filtered for one subject.

    The root itself must be accessible (under Cho semantics every answer
    position is). Returns a well-formed XML fragment.
    """
    if policy not in _POLICIES:
        raise AccessControlError(f"unknown dissemination policy {policy!r}")
    if not labeling.accessible(subject, root):
        raise AccessControlError(
            f"answer position {root} is not accessible to subject {subject}"
        )
    return serialize(_visible_node(doc, labeling, subject, root, policy))


def _visible_node(doc, labeling: AccessLabeling, subject: int, pos: int, policy: str) -> Node:
    """Rebuild the accessible portion of the subtree at ``pos`` as a tree."""
    node = Node(doc.tag_name(pos), text=doc.text(pos), attrs=doc.attrs_of(pos))
    for child_node in _visible_children(doc, labeling, subject, pos, policy):
        node.append(child_node)
    return node


def _visible_children(
    doc, labeling: AccessLabeling, subject: int, pos: int, policy: str
) -> List[Node]:
    out: List[Node] = []
    child = doc.first_child(pos)
    while child != NO_NODE:
        if labeling.accessible(subject, child):
            out.append(_visible_node(doc, labeling, subject, child, policy))
        elif policy == HOIST:
            # Drop the element, splice its accessible children upward.
            out.extend(_visible_children(doc, labeling, subject, child, policy))
        child = doc.following_sibling(child)
    return out
