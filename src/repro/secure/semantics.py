"""The two secure-evaluation semantics discussed in the paper (Section 4).

**Cho semantics** (Cho, Amer-Yahia, Lakshmanan, Srivastava [7]) — the
paper's primary semantics: secure evaluation of a twig query returns every
binding set of the unsecured evaluation in which *all bound data nodes are
accessible* to the subject. Nodes that are not bound by the query (e.g.
intermediate nodes skipped by a ``//`` axis) do not affect the answer, so
answers may come from inside a subtree whose root is inaccessible.

**View semantics** (Gabillon and Bruno [11]) — a subtree rooted at an
inaccessible node cannot contribute answers even if it contains accessible
nodes; equivalently, the query runs over the pruned view containing exactly
the nodes whose entire root path is accessible. This is the semantics that
requires the ε-STD secure structural join with path accessibility checks
(Section 4.2).
"""

from __future__ import annotations

CHO = "cho"
VIEW = "view"

#: All supported semantics identifiers.
SEMANTICS = (CHO, VIEW)
