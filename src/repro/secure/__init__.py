"""Secure query evaluation semantics and secure streaming dissemination."""

from repro.secure.dissemination import (
    HOIST,
    PRUNE,
    filter_xml,
    stream_answer_fragments,
)
from repro.secure.semantics import CHO, SEMANTICS, VIEW

__all__ = [
    "CHO",
    "HOIST",
    "PRUNE",
    "SEMANTICS",
    "VIEW",
    "filter_xml",
    "stream_answer_fragments",
]
