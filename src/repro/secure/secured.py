"""SecuredDocument: a document and its access labeling, updated in lockstep.

Section 3.4 describes two update families — accessibility updates and
structural updates (where "the nodes inserted have access controls
already"). This wrapper coordinates the two representations so neither
can drift: every structural edit rewrites the document arrays *and*
updates the labeling through the :class:`~repro.labeling.base.AccessLabeling`
hooks (the DOL backend splices locally, preserving Proposition 1; CAM and
naive rebuild — exactly the non-local cost the paper charges them), and
an optional block store is kept physically consistent as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nok.pattern import PatternTree

from repro.errors import AccessControlError
from repro.labeling.base import AccessLabeling
from repro.secure.semantics import CHO
from repro.storage.nokstore import NoKStore
from repro.xmltree import edit
from repro.xmltree.document import Document
from repro.xmltree.node import Node


@dataclass
class EditReport:
    """What one structural edit cost."""

    position: int
    size: int
    transition_delta: int
    pages_rewritten: int


class SecuredDocument:
    """A document + access labeling pair with coordinated updates.

    Works with any labeling backend; the ``.dol`` attribute remains as a
    historical alias for ``labeling``.
    """

    def __init__(
        self,
        doc: Document,
        labeling: AccessLabeling,
        store: Optional[NoKStore] = None,
    ):
        if labeling.n_nodes != len(doc):
            raise AccessControlError("document and labeling disagree on node count")
        if store is not None and store.labeling is not labeling:
            raise AccessControlError("store must share the SecuredDocument's labeling")
        self.doc = doc
        self.labeling = labeling
        self.store = store
        self._engine = None  # query engine cache, invalidated on structural edits

    @property
    def dol(self) -> AccessLabeling:
        """Historical alias for :attr:`labeling` (any backend, not only DOL)."""
        return self.labeling

    # -- accessibility updates ------------------------------------------------

    def set_subtree_accessibility(
        self, pos: int, subject: int, value: bool
    ) -> EditReport:
        """Grant/revoke one subject on the whole subtree at ``pos``."""
        end = self.doc.subtree_end(pos)
        if self.store is not None:
            cost = self.store.update_subject_range(pos, end, subject, value)
            return EditReport(pos, end - pos, cost.transition_delta, cost.pages_rewritten)
        delta = self.labeling.set_subject_accessibility(pos, end, subject, value)
        return EditReport(pos, end - pos, delta, 0)

    def set_node_mask(self, pos: int, mask: int) -> EditReport:
        """Replace one node's access control list."""
        if self.store is not None:
            cost = self.store.update_range_mask(pos, pos + 1, mask)
            return EditReport(pos, 1, cost.transition_delta, cost.pages_rewritten)
        delta = self.labeling.set_node_mask(pos, mask)
        return EditReport(pos, 1, delta, 0)

    # -- structural updates -------------------------------------------------------

    def insert_subtree(
        self,
        parent: int,
        child_index: int,
        subtree: Node,
        masks: Sequence[int],
    ) -> EditReport:
        """Insert a labeled subtree (Section 3.4: nodes arrive with their
        access controls)."""
        if len(masks) != subtree.size():
            raise AccessControlError(
                f"need one mask per inserted node "
                f"({subtree.size()} nodes, {len(masks)} masks)"
            )
        result = edit.insert_subtree(self.doc, parent, child_index, subtree)
        delta = self.labeling.insert_range(result.position, list(masks))
        self.doc = result.doc
        self.labeling.rebind_document(result.doc)
        pages = self._sync_store(result.position)
        return EditReport(result.position, result.size, delta, pages)

    def delete_subtree(self, pos: int) -> EditReport:
        """Delete the subtree at ``pos``."""
        end = self.doc.subtree_end(pos)
        new_doc = edit.delete_subtree(self.doc, pos)
        delta = self.labeling.delete_range(pos, end)
        self.doc = new_doc
        self.labeling.rebind_document(new_doc)
        pages = self._sync_store(pos)
        return EditReport(pos, end - pos, delta, pages)

    def move_subtree(
        self, pos: int, new_parent: int, child_index: Optional[int] = None
    ) -> EditReport:
        """Move the subtree at ``pos`` under ``new_parent``."""
        result = edit.move_subtree(self.doc, pos, new_parent, child_index)
        start, end = result.source
        delta = self.labeling.move_range(start, end, result.destination)
        self.doc = result.doc
        self.labeling.rebind_document(result.doc)
        pages = self._sync_store(min(start, result.destination))
        return EditReport(result.destination, end - start, delta, pages)

    # -- queries --------------------------------------------------------------------

    def query(
        self,
        query: Union[str, "PatternTree"],
        subject: Optional[Union[int, Sequence[int]]] = None,
        semantics: str = CHO,
        limit: Optional[int] = None,
    ):
        """Evaluate a twig query over the current document/labeling pair.

        Compiled through the physical-operator pipeline; the engine (and
        its tag index) is cached across calls and rebuilt only after a
        structural edit replaces the document. Accessibility updates
        mutate the shared labeling in place, so the cache survives them.
        """
        return self._query_engine().evaluate(
            query, subject=subject, semantics=semantics, limit=limit
        )

    def stream_query(
        self,
        query: Union[str, "PatternTree"],
        subject: Optional[Union[int, Sequence[int]]] = None,
        semantics: str = CHO,
        limit: Optional[int] = None,
    ) -> Iterator[int]:
        """Lazily yield answer positions as the compiled plan finds them.

        Abandoning the iterator terminates the operator pipeline early —
        no further candidates are matched or access-checked.
        """
        return self._query_engine().stream(
            query, subject=subject, semantics=semantics, limit=limit
        )

    def _query_engine(self):
        from repro.nok.engine import QueryEngine

        if self._engine is None or self._engine.doc is not self.doc:
            self._engine = QueryEngine(
                self.doc, labeling=self.labeling, store=self.store
            )
        return self._engine

    def accessible(self, subject: int, pos: int) -> bool:
        return self.labeling.accessible(subject, pos)

    def masks(self) -> List[int]:
        return self.labeling.to_masks()

    def validate(self) -> None:
        """Cross-check the two representations."""
        self.doc.validate()
        self.labeling.validate()
        if self.labeling.n_nodes != len(self.doc):
            raise AccessControlError("document/labeling node-count drift")

    def _sync_store(self, from_pos: int) -> int:
        if self.store is None:
            return 0
        return self.store.apply_structural_update(self.doc, from_pos)
