"""repro — reproduction of "Compact Access Control Labeling for Efficient
Secure XML Query Evaluation" (Zhang, Zhang, Salem, Zhuo; ICDE 2005).

Public API overview
-------------------

Documents
    :func:`repro.parse` / :func:`repro.serialize` — XML text ↔ trees;
    :class:`repro.Document` — flattened document-order arrays;
    :func:`repro.xmark.generate_document` — XMark-like synthetic data.

Access control
    :class:`repro.AccessMatrix` — the accessibility function;
    :class:`repro.Policy` — rule-based specification with propagation;
    :mod:`repro.acl.synthetic` / :mod:`repro.acl.surrogates` — workloads.

DOL (the paper's contribution)
    :class:`repro.DOL` — compact document-ordered labeling;
    :class:`repro.Codebook` — dictionary-compressed access control lists;
    :class:`repro.DOLUpdater` — accessibility and structural updates;
    :func:`repro.build_dol_streaming` — one-pass construction from XML text.

Baseline
    :class:`repro.CAM` — minimal Compressed Accessibility Map.

Labeling backends
    :class:`repro.AccessLabeling` — the pluggable backend interface;
    :func:`repro.build_labeling` — build a backend by name
    (``dol`` / ``cam`` / ``naive``);
    :class:`repro.CAMLabeling` / :class:`repro.NaiveLabeling` — the
    baseline engines behind the interface.

Storage & querying
    :class:`repro.NoKStore` — block storage with embedded access codes;
    :class:`repro.QueryEngine` — (secure) twig query evaluation;
    :class:`repro.Planner` / :class:`repro.PhysicalPlan` — the Volcano
    operator pipeline queries compile into;
    :data:`repro.CHO` / :data:`repro.VIEW` — secure semantics.

Concurrent serving
    :class:`repro.StoreSnapshot` — immutable epoch-stamped read views
    (``store.snapshot()``) giving queries snapshot isolation under a
    concurrent Section 3.4 update stream;
    :class:`repro.PlanCache` — shared compiled-plan artifacts;
    :class:`repro.ClassDirectory` / :func:`repro.normalize_subjects` —
    canonicalize subject sets to accessibility-equivalence classes, the
    key every subject-scoped cache uses;
    :class:`repro.ResultCache` — complete answers per (epoch, query,
    class), opt-in per call;
    :class:`repro.QueryService` / :class:`repro.ServiceConfig` — the
    bounded-pool serving layer behind ``repro-dol serve``.
"""

from repro.acl.model import AccessMatrix, SubjectRegistry
from repro.acl.policy import AccessRule, Policy
from repro.acl.synthetic import SyntheticACLConfig, generate_synthetic_acl
from repro.cam.cam import CAM
from repro.dol.codebook import Codebook
from repro.dol.labeling import DOL
from repro.dol.multimode import MultiModeDOL
from repro.dol.stream import build_dol_streaming
from repro.dol.updates import DOLUpdater
from repro.errors import ReproError
from repro.exec.plancache import PlanCache
from repro.exec.planner import PhysicalPlan, Planner
from repro.exec.resultcache import ResultCache
from repro.index.tagindex import TagIndex
from repro.labeling import (
    AccessLabeling,
    CAMLabeling,
    ClassDirectory,
    NaiveLabeling,
    build_labeling,
    normalize_subjects,
)
from repro.secure.dissemination import filter_xml
from repro.secure.secured import SecuredDocument
from repro.nok.engine import QueryEngine, QueryResult
from repro.nok.pattern import PatternTree, parse_query
from repro.secure.semantics import CHO, VIEW
from repro.server.service import QueryService, ServiceConfig
from repro.storage.nokstore import NoKStore
from repro.storage.snapshot import StoreSnapshot
from repro.xmltree.document import Document
from repro.xmltree.node import Node
from repro.xmltree.parser import parse
from repro.xmltree.serializer import serialize

__version__ = "1.0.0"

__all__ = [
    "CAM",
    "CHO",
    "VIEW",
    "AccessLabeling",
    "AccessMatrix",
    "AccessRule",
    "CAMLabeling",
    "ClassDirectory",
    "Codebook",
    "DOL",
    "DOLUpdater",
    "MultiModeDOL",
    "NaiveLabeling",
    "Document",
    "Node",
    "NoKStore",
    "PatternTree",
    "PhysicalPlan",
    "PlanCache",
    "Planner",
    "Policy",
    "QueryEngine",
    "QueryResult",
    "QueryService",
    "ResultCache",
    "SecuredDocument",
    "ReproError",
    "ServiceConfig",
    "StoreSnapshot",
    "SubjectRegistry",
    "SyntheticACLConfig",
    "TagIndex",
    "__version__",
    "build_dol_streaming",
    "build_labeling",
    "filter_xml",
    "generate_synthetic_acl",
    "normalize_subjects",
    "parse",
    "parse_query",
    "serialize",
]
