"""The XMark-like document generator.

Generates a ``site`` document with the substructure the paper's benchmark
queries (Table 1) traverse:

- ``site/regions/<region>/item`` with ``location``, ``quantity``, ``name``,
  ``payment``, ``description``, ``shipping``, ``incategory``, ``mailbox``
  children (Q1, Q6);
- ``site/categories/category`` with ``name`` and ``description`` (Q2, Q3);
- rich-text ``description`` content: either ``text`` (with nested ``bold``,
  ``keyword``, ``emph``) or a recursive ``parlist`` of ``listitem`` elements
  (Q4, Q5);
- ``site/people/person`` and ``site/open_auctions/open_auction`` filler so
  the document's tag mix resembles real XMark.

Sizes are controlled by :class:`XMarkConfig`; ``n_items`` is the main knob
(each item subtree averages roughly 20 nodes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ReproError
from repro.xmark import vocab
from repro.xmltree.document import Document
from repro.xmltree.node import Node


@dataclass(frozen=True)
class XMarkConfig:
    """Size and shape parameters for document generation."""

    n_items: int = 100
    n_categories: int = 20
    n_people: int = 25
    n_open_auctions: int = 25
    parlist_probability: float = 0.35
    parlist_decay: float = 0.45
    max_parlist_depth: int = 5
    seed: int = 42

    def __post_init__(self) -> None:
        if self.n_items < 1:
            raise ReproError("n_items must be positive")
        if not 0.0 <= self.parlist_probability <= 1.0:
            raise ReproError("parlist_probability must be in [0, 1]")
        if not 0.0 <= self.parlist_decay < 1.0:
            raise ReproError("parlist_decay must be in [0, 1)")


def generate(config: XMarkConfig = XMarkConfig()) -> Node:
    """Generate an XMark-like document tree."""
    rng = random.Random(config.seed)
    site = Node("site")
    site.append(_regions(rng, config))
    site.append(_categories(rng, config))
    site.append(_people(rng, config))
    site.append(_open_auctions(rng, config))
    return site


def generate_document(config: XMarkConfig = XMarkConfig()) -> Document:
    """Generate and flatten in one step."""
    return Document.from_tree(generate(config))


# -- sections -------------------------------------------------------------------


def _regions(rng: random.Random, config: XMarkConfig) -> Node:
    regions = Node("regions")
    buckets = {name: regions.append(Node(name)) for name in vocab.REGIONS}
    for item_id in range(config.n_items):
        region = rng.choice(vocab.REGIONS)
        buckets[region].append(_item(rng, config, item_id))
    return regions


def _item(rng: random.Random, config: XMarkConfig, item_id: int) -> Node:
    item = Node("item", attrs={"id": f"item{item_id}"})
    item.append(Node("location", rng.choice(vocab.CITIES)))
    item.append(Node("quantity", str(rng.randint(1, 10))))
    item.append(Node("name", vocab.words(rng, 2, 4)))
    payment = item.append(Node("payment"))
    payment.text = rng.choice(("Cash", "Creditcard", "Money order"))
    item.append(_description(rng, config))
    item.append(Node("shipping", rng.choice(("Will ship internationally", "Buyer pays"))))
    item.append(
        Node("incategory", attrs={"category": f"category{rng.randrange(max(1, config.n_categories))}"})
    )
    if rng.random() < 0.5:
        mailbox = item.append(Node("mailbox"))
        for _ in range(rng.randint(1, 3)):
            mail = mailbox.append(Node("mail"))
            mail.append(Node("from", vocab.person_name(rng)))
            mail.append(Node("date", f"0{rng.randint(1, 9)}/200{rng.randint(0, 4)}"))
            mail.append(_text_block(rng))
    return item


def _categories(rng: random.Random, config: XMarkConfig) -> Node:
    categories = Node("categories")
    for cat_id in range(config.n_categories):
        category = categories.append(
            Node("category", attrs={"id": f"category{cat_id}"})
        )
        category.append(Node("name", vocab.words(rng, 1, 3)))
        category.append(_description(rng, config))
    return categories


def _people(rng: random.Random, config: XMarkConfig) -> Node:
    people = Node("people")
    for person_id in range(config.n_people):
        person = people.append(Node("person", attrs={"id": f"person{person_id}"}))
        person.append(Node("name", vocab.person_name(rng)))
        person.append(Node("emailaddress", f"mailto:p{person_id}@example.org"))
        if rng.random() < 0.6:
            address = person.append(Node("address"))
            address.append(Node("street", f"{rng.randint(1, 99)} {rng.choice(vocab.WORDS)} st"))
            address.append(Node("city", rng.choice(vocab.CITIES)))
            address.append(Node("country", rng.choice(("Canada", "Germany", "Japan"))))
    return people


def _open_auctions(rng: random.Random, config: XMarkConfig) -> Node:
    auctions = Node("open_auctions")
    for auction_id in range(config.n_open_auctions):
        auction = auctions.append(
            Node("open_auction", attrs={"id": f"open_auction{auction_id}"})
        )
        auction.append(Node("initial", f"{rng.uniform(1, 300):.2f}"))
        auction.append(Node("reserve", f"{rng.uniform(1, 600):.2f}"))
        for _ in range(rng.randint(0, 3)):
            bidder = auction.append(Node("bidder"))
            bidder.append(Node("date", f"0{rng.randint(1, 9)}/2004"))
            bidder.append(Node("increase", f"{rng.uniform(1, 50):.2f}"))
        auction.append(Node("current", f"{rng.uniform(1, 900):.2f}"))
        annotation = auction.append(Node("annotation"))
        annotation.append(Node("author", vocab.person_name(rng)))
        annotation.append(_description(rng, config))
    return auctions


# -- rich text -----------------------------------------------------------------------


def _description(rng: random.Random, config: XMarkConfig) -> Node:
    """A description holds either a text block or a (recursive) parlist."""
    description = Node("description")
    if rng.random() < config.parlist_probability:
        description.append(_parlist(rng, config, depth=1))
    else:
        description.append(_text_block(rng))
    return description


def _parlist(rng: random.Random, config: XMarkConfig, depth: int) -> Node:
    parlist = Node("parlist")
    for _ in range(rng.randint(1, 3)):
        listitem = parlist.append(Node("listitem"))
        nest_probability = config.parlist_probability * (config.parlist_decay ** depth)
        if depth < config.max_parlist_depth and rng.random() < nest_probability:
            listitem.append(_parlist(rng, config, depth + 1))
        else:
            listitem.append(_text_block(rng))
    return parlist


def _text_block(rng: random.Random) -> Node:
    """A ``text`` element with optional bold/keyword/emph markup children."""
    text = Node("text", vocab.words(rng, 3, 8))
    for _ in range(rng.randint(0, 2)):
        markup_tag = rng.choice(("bold", "keyword", "emph"))
        markup = text.append(Node(markup_tag, vocab.words(rng, 1, 2)))
        if rng.random() < 0.2:
            inner_tag = rng.choice(("bold", "keyword", "emph"))
            markup.append(Node(inner_tag, vocab.words(rng, 1, 1)))
    return text
