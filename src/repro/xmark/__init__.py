"""XMark-like synthetic XML benchmark documents.

The paper's query experiments run on XMark [1] instances. This generator
reproduces the XMark element vocabulary and nesting that queries Q1–Q6
exercise — regional item listings, category descriptions, and the
recursively nested ``parlist``/``listitem`` markup — with seeded randomness
and a size parameter, so documents from a few hundred to hundreds of
thousands of nodes can be produced deterministically.
"""

from repro.xmark.generator import XMarkConfig, generate, generate_document

__all__ = ["XMarkConfig", "generate", "generate_document"]
