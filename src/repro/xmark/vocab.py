"""Word lists for XMark-like text content.

The real XMark generator draws its prose from *Hamlet*; we use a fixed
vocabulary of common words, which is equally adequate for value predicates
and keeps generated documents deterministic across platforms.
"""

from __future__ import annotations

import random
from typing import List

WORDS = (
    "against arms take sea troubles opposing end them die sleep more "
    "heart ache thousand natural shocks flesh heir consummation devoutly "
    "wish rub dream come when shuffled mortal coil pause respect calamity "
    "long life whips scorns time oppressor wrong proud man contumely pangs "
    "despised love law delay insolence office spurns patient merit unworthy "
    "quietus bare bodkin burden grunt sweat weary dread something after "
    "death undiscovered country bourn traveller returns puzzles will makes "
    "rather bear ills have fly others know conscience cowards native hue "
    "resolution sicklied pale cast thought enterprises great pith moment "
    "currents turn awry lose name action soft fair nymph orisons sins"
).split()

REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")

CITIES = (
    "Waterloo", "Toronto", "Zurich", "Amsterdam", "Leuven", "Singapore",
    "Kyoto", "Cape Town", "Lima", "Auckland", "Tampere", "Madison",
)

FIRST_NAMES = (
    "Huaxin", "Ning", "Kenneth", "Donghui", "Ada", "Edgar", "Grace",
    "Barbara", "Michael", "Jim", "Pat", "David",
)

LAST_NAMES = (
    "Zhang", "Salem", "Zhuo", "Codd", "Hopper", "Liskov", "Gray",
    "Stonebraker", "Selinger", "Bernstein", "Tompa", "Ozsu",
)


def words(rng: random.Random, low: int, high: int) -> str:
    """A phrase of ``low``..``high`` vocabulary words."""
    count = rng.randint(low, high)
    return " ".join(rng.choice(WORDS) for _ in range(count))


def keywords(rng: random.Random, count: int) -> List[str]:
    """Distinct keywords, useful for equality predicates."""
    return rng.sample(WORDS, count)


def person_name(rng: random.Random) -> str:
    return f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"
