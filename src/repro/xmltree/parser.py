"""A from-scratch, dependency-free XML parser.

Supports the subset of XML the paper's workloads need: elements with
attributes, text content, self-closing tags, comments, CDATA sections,
processing instructions, an optional XML declaration and DOCTYPE, and the
five predefined entities. Namespaces are treated as plain tag characters.

The parser is a single left-to-right scan (no backtracking), which also
serves as the "single pass over a labeled XML document" entry point for
streaming DOL construction (:mod:`repro.dol.stream`).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import XMLParseError
from repro.xmltree.node import Node

_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}

# Event kinds produced by iterparse().
START = "start"
END = "end"
TEXT = "text"


def _decode_entities(text: str, offset: int) -> str:
    """Replace XML entity references in ``text``."""
    if "&" not in text:
        return text
    out: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = text.find(";", i + 1)
        if end == -1:
            raise XMLParseError("unterminated entity reference", offset + i)
        name = text[i + 1 : end]
        if name.startswith("#x") or name.startswith("#X"):
            out.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            out.append(chr(int(name[1:])))
        elif name in _ENTITIES:
            out.append(_ENTITIES[name])
        else:
            raise XMLParseError(f"unknown entity &{name};", offset + i)
        i = end + 1
    return "".join(out)


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in "_:"


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_:.-"


class _Scanner:
    """Cursor over the input string with primitive token readers."""

    def __init__(self, data: str):
        self.data = data
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.data)

    def peek(self, n: int = 1) -> str:
        return self.data[self.pos : self.pos + n]

    def advance(self, n: int = 1) -> None:
        self.pos += n

    def skip_ws(self) -> None:
        while not self.eof() and self.data[self.pos].isspace():
            self.pos += 1

    def expect(self, literal: str) -> None:
        if not self.data.startswith(literal, self.pos):
            raise XMLParseError(f"expected {literal!r}", self.pos)
        self.pos += len(literal)

    def read_until(self, literal: str) -> str:
        end = self.data.find(literal, self.pos)
        if end == -1:
            raise XMLParseError(f"missing {literal!r}", self.pos)
        text = self.data[self.pos : end]
        self.pos = end + len(literal)
        return text

    def read_name(self) -> str:
        start = self.pos
        if self.eof() or not _is_name_start(self.data[self.pos]):
            raise XMLParseError("expected a name", self.pos)
        self.pos += 1
        while not self.eof() and _is_name_char(self.data[self.pos]):
            self.pos += 1
        return self.data[start : self.pos]

    def read_attrs(self) -> Dict[str, str]:
        attrs: Dict[str, str] = {}
        while True:
            self.skip_ws()
            if self.eof():
                raise XMLParseError("unterminated start tag", self.pos)
            if self.peek() in (">", "/"):
                return attrs
            name = self.read_name()
            self.skip_ws()
            self.expect("=")
            self.skip_ws()
            quote = self.peek()
            if quote not in ("'", '"'):
                raise XMLParseError("attribute value must be quoted", self.pos)
            self.advance()
            value_start = self.pos
            value = self.read_until(quote)
            attrs[name] = _decode_entities(value, value_start)


def iterparse(data: str) -> Iterator[Tuple[str, object]]:
    """Yield SAX-like events from an XML string.

    Events are ``(START, (tag, attrs))``, ``(TEXT, text)`` and
    ``(END, tag)``. This generator is the streaming entry point used for
    one-pass DOL construction.
    """
    sc = _Scanner(data)
    depth = 0
    seen_root = False

    # Prolog: XML declaration, comments, PIs, DOCTYPE.
    while True:
        sc.skip_ws()
        if sc.peek(2) == "<?":
            sc.advance(2)
            sc.read_until("?>")
        elif sc.peek(4) == "<!--":
            sc.advance(4)
            sc.read_until("-->")
        elif sc.peek(2) == "<!":
            sc.advance(2)
            sc.read_until(">")
        else:
            break

    while not sc.eof():
        if sc.peek() == "<":
            if sc.peek(4) == "<!--":
                sc.advance(4)
                sc.read_until("-->")
            elif sc.peek(9) == "<![CDATA[":
                sc.advance(9)
                if depth == 0:
                    raise XMLParseError("CDATA outside the root element", sc.pos)
                yield TEXT, sc.read_until("]]>")
            elif sc.peek(2) == "<?":
                sc.advance(2)
                sc.read_until("?>")
            elif sc.peek(2) == "</":
                sc.advance(2)
                tag = sc.read_name()
                sc.skip_ws()
                sc.expect(">")
                depth -= 1
                if depth < 0:
                    raise XMLParseError(f"unmatched </{tag}>", sc.pos)
                yield END, tag
            else:
                sc.advance(1)
                tag_pos = sc.pos
                tag = sc.read_name()
                attrs = sc.read_attrs()
                if depth == 0 and seen_root:
                    raise XMLParseError(
                        "multiple root elements", tag_pos
                    )
                seen_root = seen_root or depth == 0
                if sc.peek() == "/":
                    sc.expect("/>")
                    yield START, (tag, attrs)
                    yield END, tag
                else:
                    sc.expect(">")
                    depth += 1
                    yield START, (tag, attrs)
        else:
            start = sc.pos
            end = sc.data.find("<", sc.pos)
            if end == -1:  # trailing text after the root element
                raw = sc.data[sc.pos :]
                sc.pos = len(sc.data)
            else:
                raw = sc.data[sc.pos : end]
                sc.pos = end
            if depth > 0:
                text = _decode_entities(raw, start)
                if text.strip():
                    yield TEXT, text.strip()
            elif raw.strip():
                raise XMLParseError("text outside the root element", start)

    if depth != 0:
        raise XMLParseError("unexpected end of input: unclosed elements", sc.pos)
    if not seen_root:
        raise XMLParseError("document has no root element", 0)


def parse(data: str) -> Node:
    """Parse an XML string into a :class:`Node` tree."""
    root: Optional[Node] = None
    stack: List[Node] = []
    for kind, payload in iterparse(data):
        if kind == START:
            tag, attrs = payload  # type: ignore[misc]
            node = Node(tag, attrs=attrs)  # type: ignore[arg-type]
            if stack:
                stack[-1].append(node)
            elif root is None:
                root = node
            stack.append(node)
        elif kind == END:
            top = stack.pop()
            if top.tag != payload:
                raise XMLParseError(
                    f"mismatched end tag </{payload}> for <{top.tag}>"
                )
        else:  # TEXT
            if stack[-1].text:
                stack[-1].text += " " + str(payload)
            else:
                stack[-1].text = str(payload)
    assert root is not None  # iterparse guarantees a root or raises
    return root
