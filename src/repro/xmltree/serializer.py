"""Serialization of :class:`~repro.xmltree.node.Node` trees back to XML text."""

from __future__ import annotations

from typing import List, Union

from repro.xmltree.document import Document
from repro.xmltree.node import Node

_TEXT_ESCAPES = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;")]
_ATTR_ESCAPES = _TEXT_ESCAPES + [('"', "&quot;")]


def escape_text(text: str) -> str:
    """Escape characters that are special in XML text content."""
    for raw, escaped in _TEXT_ESCAPES:
        text = text.replace(raw, escaped)
    return text


def escape_attr(text: str) -> str:
    """Escape characters that are special in double-quoted attributes."""
    for raw, escaped in _ATTR_ESCAPES:
        text = text.replace(raw, escaped)
    return text


def serialize(
    root: Union[Node, Document],
    indent: int = 0,
    declaration: bool = False,
) -> str:
    """Serialize a tree (or flattened document) to an XML string.

    Parameters
    ----------
    root:
        A :class:`Node` or a :class:`Document` (which is first rebuilt
        into a tree).
    indent:
        Spaces per nesting level; ``0`` produces compact single-line output
        that round-trips exactly through :func:`~repro.xmltree.parser.parse`.
    declaration:
        Prefix the output with an XML declaration.
    """
    if isinstance(root, Document):
        root = root.to_tree()
    parts: List[str] = []
    if declaration:
        parts.append('<?xml version="1.0" encoding="UTF-8"?>')
        if indent:
            parts.append("\n")
    _emit(root, parts, indent, 0)
    return "".join(parts)


def _emit(node: Node, parts: List[str], indent: int, level: int) -> None:
    pad = " " * (indent * level) if indent else ""
    newline = "\n" if indent else ""
    attrs = "".join(
        f' {name}="{escape_attr(value)}"' for name, value in node.attrs.items()
    )
    if not node.children and not node.text:
        parts.append(f"{pad}<{node.tag}{attrs}/>{newline}")
        return
    parts.append(f"{pad}<{node.tag}{attrs}>")
    if node.text:
        parts.append(escape_text(node.text))
    if node.children:
        parts.append(newline)
        for child in node.children:
            _emit(child, parts, indent, level + 1)
        parts.append(pad)
    parts.append(f"</{node.tag}>{newline}")
