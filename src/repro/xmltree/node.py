"""Mutable XML element tree.

:class:`Node` is the builder-side representation of an XML element: it has a
tag, optional text content, attributes, and an ordered list of children.
Parsing and synthetic generation produce ``Node`` trees; algorithms then
flatten them into :class:`~repro.xmltree.document.Document` arrays.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.errors import TreeError


class Node:
    """One XML element.

    Attributes
    ----------
    tag:
        Element name, e.g. ``"item"``.
    text:
        Text content directly under this element (concatenated, mixed
        content is not order-preserved — sufficient for the paper's value
        predicates).
    attrs:
        Attribute name → value mapping.
    children:
        Ordered child elements.
    parent:
        Back-reference, maintained by :meth:`append` / :meth:`detach`.
    """

    __slots__ = ("tag", "text", "attrs", "children", "parent")

    def __init__(
        self,
        tag: str,
        text: str = "",
        attrs: Optional[Dict[str, str]] = None,
    ):
        if not tag:
            raise TreeError("element tag must be a non-empty string")
        self.tag = tag
        self.text = text
        self.attrs: Dict[str, str] = dict(attrs) if attrs else {}
        self.children: List["Node"] = []
        self.parent: Optional["Node"] = None

    def append(self, child: "Node") -> "Node":
        """Attach ``child`` as the last child of this node and return it."""
        if child.parent is not None:
            raise TreeError(
                f"node <{child.tag}> already has a parent <{child.parent.tag}>"
            )
        if child is self or child.is_ancestor_of(self):
            raise TreeError("appending would create a cycle")
        child.parent = self
        self.children.append(child)
        return child

    def insert(self, index: int, child: "Node") -> "Node":
        """Attach ``child`` at position ``index`` among the children."""
        if child.parent is not None:
            raise TreeError(
                f"node <{child.tag}> already has a parent <{child.parent.tag}>"
            )
        if child is self or child.is_ancestor_of(self):
            raise TreeError("inserting would create a cycle")
        child.parent = self
        self.children.insert(index, child)
        return child

    def detach(self) -> "Node":
        """Remove this node from its parent and return it."""
        if self.parent is None:
            raise TreeError("cannot detach a root node")
        self.parent.children.remove(self)
        self.parent = None
        return self

    def child(self, tag: str) -> "Node":
        """Return the first child with the given tag.

        Raises :class:`TreeError` if there is none.
        """
        for c in self.children:
            if c.tag == tag:
                return c
        raise TreeError(f"<{self.tag}> has no <{tag}> child")

    def find_all(self, tag: str) -> List["Node"]:
        """Return all descendants (preorder) with the given tag."""
        return [n for n in self.iter_preorder() if n.tag == tag]

    def is_ancestor_of(self, other: "Node") -> bool:
        """True if this node is a proper ancestor of ``other``."""
        cur = other.parent
        while cur is not None:
            if cur is self:
                return True
            cur = cur.parent
        return False

    def iter_preorder(self) -> Iterator["Node"]:
        """Yield this node and all descendants in document order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def size(self) -> int:
        """Number of nodes in the subtree rooted here (including self)."""
        return sum(1 for _ in self.iter_preorder())

    def depth(self) -> int:
        """Distance from the root (root depth is 0)."""
        d = 0
        cur = self.parent
        while cur is not None:
            d += 1
            cur = cur.parent
        return d

    def path(self) -> str:
        """Slash-separated tag path from the root, e.g. ``/site/regions``."""
        parts: List[str] = []
        cur: Optional[Node] = self
        while cur is not None:
            parts.append(cur.tag)
            cur = cur.parent
        return "/" + "/".join(reversed(parts))

    def structurally_equal(self, other: "Node") -> bool:
        """Deep comparison of tags, text, attributes, and child order."""
        if (
            self.tag != other.tag
            or self.text != other.text
            or self.attrs != other.attrs
            or len(self.children) != len(other.children)
        ):
            return False
        return all(
            a.structurally_equal(b) for a, b in zip(self.children, other.children)
        )

    def copy(self) -> "Node":
        """Deep copy of the subtree rooted here (detached)."""
        clone = Node(self.tag, self.text, self.attrs)
        for c in self.children:
            clone.append(c.copy())
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Node({self.tag!r}, children={len(self.children)})"
