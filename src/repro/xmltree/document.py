"""Flattened document-order representation of an XML tree.

A :class:`Document` stores the tree as parallel arrays indexed by *document
position* — the preorder (document-order) rank of each node, starting at 0
for the root. This mirrors the succinct storage scheme used by the NoK query
processor [Zhang et al., ICDE'04] and makes the DOL transition-node
computation a linear scan.

Arrays (all length ``n``):

- ``tags[i]``      — interned tag id of node ``i`` (see :class:`TagDictionary`)
- ``parent[i]``    — position of the parent, ``-1`` for the root
- ``subtree[i]``   — size of the subtree rooted at ``i`` (>= 1)
- ``depth[i]``     — root depth is 0
- ``texts[i]``     — text content (optional; empty string when absent)
- ``attrs[i]``     — attribute dict (optional; empty when absent)

Derived navigation (the *next-of-kin* primitives used by NoK matching):

- first child of ``i`` is ``i + 1`` iff ``subtree[i] > 1``
- following sibling of ``i`` is ``i + subtree[i]`` iff that position exists
  and has the same parent.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import TreeError
from repro.xmltree.node import Node

NO_NODE = -1


class TagDictionary:
    """Bidirectional mapping between tag names and small integer ids."""

    def __init__(self) -> None:
        self._name_to_id: Dict[str, int] = {}
        self._id_to_name: List[str] = []

    def intern(self, name: str) -> int:
        """Return the id for ``name``, assigning a new one if needed."""
        tag_id = self._name_to_id.get(name)
        if tag_id is None:
            tag_id = len(self._id_to_name)
            self._name_to_id[name] = tag_id
            self._id_to_name.append(name)
        return tag_id

    def id_of(self, name: str) -> int:
        """Return the id for ``name``; raises :class:`KeyError` if unknown."""
        return self._name_to_id[name]

    def get(self, name: str) -> Optional[int]:
        """Return the id for ``name`` or ``None`` if it was never interned."""
        return self._name_to_id.get(name)

    def name_of(self, tag_id: int) -> str:
        """Return the name for ``tag_id``."""
        return self._id_to_name[tag_id]

    def __len__(self) -> int:
        return len(self._id_to_name)

    def __contains__(self, name: str) -> bool:
        return name in self._name_to_id


class Document:
    """Immutable flattened XML document in document order."""

    def __init__(
        self,
        tags: List[int],
        parent: List[int],
        subtree: List[int],
        depth: List[int],
        texts: List[str],
        tag_dict: TagDictionary,
        attrs: Optional[List[Dict[str, str]]] = None,
    ):
        n = len(tags)
        if not (len(parent) == len(subtree) == len(depth) == len(texts) == n):
            raise TreeError("document arrays must have equal length")
        if attrs is not None and len(attrs) != n:
            raise TreeError("document arrays must have equal length")
        if n == 0:
            raise TreeError("a document must contain at least a root node")
        self.tags = tags
        self.parent = parent
        self.subtree = subtree
        self.depth = depth
        self.texts = texts
        self.attrs = attrs if attrs is not None else [{} for _ in range(n)]
        self.tag_dict = tag_dict

    # -- construction ------------------------------------------------------

    @classmethod
    def from_tree(
        cls, root: Node, tag_dict: Optional[TagDictionary] = None
    ) -> "Document":
        """Flatten a :class:`Node` tree into document-order arrays."""
        tag_dict = tag_dict if tag_dict is not None else TagDictionary()
        tags: List[int] = []
        parent: List[int] = []
        subtree: List[int] = []
        depth: List[int] = []
        texts: List[str] = []
        attrs: List[Dict[str, str]] = []

        # Iterative preorder carrying (node, parent position, depth); a
        # post-visit fixes subtree sizes once all descendants are numbered.
        stack: List[Tuple[Node, int, int]] = [(root, NO_NODE, 0)]
        order: List[Node] = []
        while stack:
            node, par, dep = stack.pop()
            pos = len(tags)
            order.append(node)
            tags.append(tag_dict.intern(node.tag))
            parent.append(par)
            subtree.append(1)
            depth.append(dep)
            texts.append(node.text)
            attrs.append(dict(node.attrs))
            for child in reversed(node.children):
                stack.append((child, pos, dep + 1))

        for pos in range(len(tags) - 1, 0, -1):
            subtree[parent[pos]] += subtree[pos]

        return cls(tags, parent, subtree, depth, texts, tag_dict, attrs)

    def to_tree(self) -> Node:
        """Rebuild a mutable :class:`Node` tree (inverse of from_tree)."""
        nodes = [
            Node(self.tag_dict.name_of(self.tags[i]), self.texts[i], self.attrs[i])
            for i in range(len(self))
        ]
        for i in range(1, len(self)):
            nodes[self.parent[i]].append(nodes[i])
        return nodes[0]

    # -- basic properties --------------------------------------------------

    def __len__(self) -> int:
        return len(self.tags)

    @property
    def n_nodes(self) -> int:
        """Number of element nodes in the document."""
        return len(self.tags)

    def tag_name(self, pos: int) -> str:
        """Tag name of the node at document position ``pos``."""
        return self.tag_dict.name_of(self.tags[pos])

    def text(self, pos: int) -> str:
        """Text content of the node at position ``pos``."""
        return self.texts[pos]

    def attrs_of(self, pos: int) -> Dict[str, str]:
        """Attributes of the node at position ``pos``."""
        return self.attrs[pos]

    # -- next-of-kin navigation -------------------------------------------

    def first_child(self, pos: int) -> int:
        """Position of the first child, or ``NO_NODE`` if ``pos`` is a leaf."""
        return pos + 1 if self.subtree[pos] > 1 else NO_NODE

    def following_sibling(self, pos: int) -> int:
        """Position of the next sibling, or ``NO_NODE`` if there is none."""
        nxt = pos + self.subtree[pos]
        if nxt < len(self.tags) and self.parent[nxt] == self.parent[pos]:
            return nxt
        return NO_NODE

    def children(self, pos: int) -> Iterator[int]:
        """Yield the positions of the children of ``pos`` in order."""
        child = self.first_child(pos)
        while child != NO_NODE:
            yield child
            child = self.following_sibling(child)

    def subtree_end(self, pos: int) -> int:
        """One past the last position of the subtree rooted at ``pos``."""
        return pos + self.subtree[pos]

    def is_ancestor(self, anc: int, desc: int) -> bool:
        """True iff ``anc`` is a proper ancestor of ``desc``.

        Uses the interval property of preorder numbering: descendants of a
        node occupy the contiguous range ``(anc, anc + subtree[anc])``.
        """
        return anc < desc < self.subtree_end(anc)

    def descendants(self, pos: int) -> range:
        """Positions of all proper descendants of ``pos`` (contiguous)."""
        return range(pos + 1, self.subtree_end(pos))

    def ancestors(self, pos: int) -> Iterator[int]:
        """Yield proper ancestors of ``pos``, nearest first."""
        cur = self.parent[pos]
        while cur != NO_NODE:
            yield cur
            cur = self.parent[cur]

    def positions_with_tag(self, name: str) -> List[int]:
        """All document positions whose tag equals ``name`` (linear scan).

        Query evaluation uses the B+-tree tag index instead; this is the
        straightforward reference implementation used by tests.
        """
        tag_id = self.tag_dict.get(name)
        if tag_id is None:
            return []
        return [i for i, t in enumerate(self.tags) if t == tag_id]

    def validate(self) -> None:
        """Check internal consistency; raises :class:`TreeError` on damage."""
        n = len(self)
        if self.parent[0] != NO_NODE or self.depth[0] != 0:
            raise TreeError("root must have no parent and depth 0")
        for i in range(1, n):
            par = self.parent[i]
            if not 0 <= par < i:
                raise TreeError(f"node {i} has invalid parent {par}")
            if self.depth[i] != self.depth[par] + 1:
                raise TreeError(f"node {i} has inconsistent depth")
            if not par < i < self.subtree_end(par):
                raise TreeError(f"node {i} lies outside its parent's subtree")
        for i in range(n):
            if not 1 <= self.subtree[i] <= n - i:
                raise TreeError(f"node {i} has invalid subtree size")
