"""Structural editing of flattened documents.

:class:`Document` is immutable by design (every algorithm indexes it by
document position), so structural updates — insert, delete, or move a
subtree (Section 3.4's second update family) — produce a *new* Document
plus the position information the DOL update needs. The
:class:`~repro.secure.secured.SecuredDocument` wrapper applies both halves
in lockstep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import TreeError
from repro.xmltree.document import Document
from repro.xmltree.node import Node


@dataclass(frozen=True)
class InsertResult:
    """Outcome of a subtree insertion."""

    doc: Document
    position: int  # document position of the inserted subtree root
    size: int  # number of inserted nodes


@dataclass(frozen=True)
class MoveResult:
    """Outcome of a subtree move."""

    doc: Document
    source: Tuple[int, int]  # [start, end) of the subtree before the move
    destination: int  # subtree root position after the move


def insert_position(doc: Document, parent: int, child_index: int) -> int:
    """Document position a subtree inserted at (parent, child_index) gets."""
    _check_pos(doc, parent)
    children = list(doc.children(parent))
    if not 0 <= child_index <= len(children):
        raise TreeError(
            f"child index {child_index} out of range for node {parent} "
            f"({len(children)} children)"
        )
    if child_index == len(children):
        return doc.subtree_end(parent)
    return children[child_index]


def insert_subtree(
    doc: Document, parent: int, child_index: int, subtree: Node
) -> InsertResult:
    """Insert a detached subtree as the child_index-th child of parent."""
    if subtree.parent is not None:
        raise TreeError("subtree to insert must be detached")
    position = insert_position(doc, parent, child_index)
    size = subtree.size()

    root = doc.to_tree()
    nodes = list(root.iter_preorder())
    nodes[parent].insert(child_index, subtree.copy())
    return InsertResult(
        Document.from_tree(root, doc.tag_dict), position, size
    )


def delete_subtree(doc: Document, pos: int) -> Document:
    """Delete the subtree rooted at ``pos`` (the root cannot be deleted)."""
    _check_pos(doc, pos)
    if pos == 0:
        raise TreeError("cannot delete the document root")
    root = doc.to_tree()
    nodes = list(root.iter_preorder())
    nodes[pos].detach()
    return Document.from_tree(root, doc.tag_dict)


def move_subtree(
    doc: Document, pos: int, new_parent: int, child_index: Optional[int] = None
) -> MoveResult:
    """Move the subtree at ``pos`` to become a child of ``new_parent``.

    ``child_index`` defaults to appending as the last child. The new
    parent must not lie inside the moved subtree.
    """
    _check_pos(doc, pos)
    _check_pos(doc, new_parent)
    if pos == 0:
        raise TreeError("cannot move the document root")
    if pos <= new_parent < doc.subtree_end(pos):
        raise TreeError("cannot move a subtree into itself")

    source = (pos, doc.subtree_end(pos))
    root = doc.to_tree()
    nodes = list(root.iter_preorder())
    moved = nodes[pos].detach()
    target = nodes[new_parent]
    if child_index is None:
        child_index = len(target.children)
    if not 0 <= child_index <= len(target.children):
        raise TreeError(f"child index {child_index} out of range")
    target.insert(child_index, moved)

    new_doc = Document.from_tree(root, doc.tag_dict)
    destination = next(
        rank
        for rank, node in enumerate(root.iter_preorder())
        if node is moved
    )
    return MoveResult(new_doc, source, destination)


def _check_pos(doc: Document, pos: int) -> None:
    if not 0 <= pos < len(doc):
        raise TreeError(f"position {pos} out of range")
