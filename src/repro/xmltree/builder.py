"""Concise programmatic construction of XML trees.

The :func:`tree` helper turns nested tuples into a :class:`Node` tree, which
keeps test fixtures readable::

    root = tree(("a", ("b",), ("c", ("d", "some text"))))

Each tuple is ``(tag, *children)`` where a child may be another tuple, a
ready-made :class:`Node`, or a string (text content of the parent).
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.errors import TreeError
from repro.xmltree.node import Node

Spec = Union[Tuple, Node, str]


def tree(spec: Spec) -> Node:
    """Build a :class:`Node` tree from a nested-tuple specification."""
    if isinstance(spec, Node):
        return spec
    if isinstance(spec, str):
        raise TreeError("the root of a tree spec must be a tuple or Node")
    if not spec or not isinstance(spec[0], str):
        raise TreeError("tree spec tuples must start with a tag name")
    node = Node(spec[0])
    for child in spec[1:]:
        if isinstance(child, str):
            node.text = child if not node.text else node.text + " " + child
        else:
            node.append(tree(child))
    return node
