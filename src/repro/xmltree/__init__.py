"""XML document substrate.

This subpackage provides everything the rest of the library needs to model
XML documents:

- :class:`~repro.xmltree.node.Node` — a mutable element tree used while
  building or parsing a document.
- :class:`~repro.xmltree.document.Document` — an immutable, flattened
  document-order representation (parallel arrays indexed by preorder rank)
  that the DOL, CAM, and NoK algorithms operate on.
- :func:`~repro.xmltree.parser.parse` — a from-scratch XML parser.
- :func:`~repro.xmltree.serializer.serialize` — the inverse.
- :mod:`~repro.xmltree.builder` — concise programmatic tree construction.
"""

from repro.xmltree.builder import tree
from repro.xmltree.document import Document, TagDictionary
from repro.xmltree.node import Node
from repro.xmltree.parser import parse
from repro.xmltree.serializer import serialize

__all__ = [
    "Document",
    "Node",
    "TagDictionary",
    "parse",
    "serialize",
    "tree",
]
