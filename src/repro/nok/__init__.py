"""NoK twig query processing (Sections 3.1 and 4).

- :mod:`~repro.nok.pattern` — pattern trees and the XPath-subset parser.
- :mod:`~repro.nok.decompose` — splitting a pattern tree into NoK subtrees
  connected by ancestor–descendant edges.
- :mod:`~repro.nok.matcher` — NPM, the recursive next-of-kin pattern
  matcher, in non-secure and ε-NoK (secure) variants.
- :mod:`~repro.nok.stdjoin` — Stack-Tree-Desc structural joins, plus the
  secure ε-STD variant with path accessibility for view semantics.
- :mod:`~repro.nok.engine` — the end-to-end query engine with statistics.
- :mod:`~repro.nok.reference` — a brute-force evaluator used as the test
  oracle.
"""

from repro.nok.engine import QueryEngine, QueryResult
from repro.nok.pattern import PatternNode, PatternTree, parse_query

__all__ = [
    "PatternNode",
    "PatternTree",
    "QueryEngine",
    "QueryResult",
    "parse_query",
]
