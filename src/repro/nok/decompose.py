"""Decomposition of pattern trees into NoK subtrees (Section 3.1).

The NoK query processor "first partitions the pattern tree into NoK
subtrees, each containing only parent-child ... relationships among its
nodes", then matches each subtree and combines the results with structural
joins on the ancestor–descendant edges that were cut.

:func:`decompose` performs the partition. Each :class:`NoKSubtree` records
its root pattern node and its *output nodes* — the pattern nodes whose data
bindings must survive matching because they participate in a join (they
have an outgoing AD edge), or because they are the returning node, or are
the subtree root (the join target from above).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.nok.pattern import CHILD, DESCENDANT, PatternNode, PatternTree


@dataclass
class NoKSubtree:
    """A maximal child-edge-connected fragment of the pattern tree."""

    index: int
    root: PatternNode
    #: pattern nodes (by identity) whose bindings must be enumerated
    output_nodes: List[PatternNode] = field(default_factory=list)

    def contains_returning(self) -> bool:
        return any(
            node.is_returning for node in self._own_nodes()
        )

    def _own_nodes(self) -> List[PatternNode]:
        """Nodes of this subtree only (descent stops at DESCENDANT edges)."""
        nodes = [self.root]
        frontier = [self.root]
        while frontier:
            node = frontier.pop()
            for child, axis in zip(node.children, node.axes):
                if axis == CHILD:
                    nodes.append(child)
                    frontier.append(child)
        return nodes


@dataclass(frozen=True)
class ADEdge:
    """An ancestor–descendant join edge produced by the decomposition."""

    parent_subtree: int
    #: the pattern node inside the parent subtree that the edge hangs off
    parent_node: PatternNode
    child_subtree: int


@dataclass
class Decomposition:
    """The full partition: subtrees (index 0 is the query root) and AD edges."""

    subtrees: List[NoKSubtree]
    edges: List[ADEdge]

    def children_of(self, subtree_index: int) -> List[ADEdge]:
        return [e for e in self.edges if e.parent_subtree == subtree_index]

    def join_order(self) -> List[int]:
        """Subtree indices bottom-up (children before parents)."""
        order: List[int] = []
        seen = set()

        def visit(index: int) -> None:
            for edge in self.children_of(index):
                visit(edge.child_subtree)
            if index not in seen:
                seen.add(index)
                order.append(index)

        visit(0)
        return order


def decompose(pattern: PatternTree) -> Decomposition:
    """Partition a pattern tree into NoK subtrees linked by AD edges."""
    subtrees: List[NoKSubtree] = []
    edges: List[ADEdge] = []

    def build(root: PatternNode) -> int:
        index = len(subtrees)
        subtree = NoKSubtree(index, root)
        subtrees.append(subtree)
        frontier = [root]
        while frontier:
            node = frontier.pop()
            for child, axis in zip(node.children, node.axes):
                if axis == CHILD:
                    frontier.append(child)
                else:
                    child_index = build(child)
                    edges.append(ADEdge(index, node, child_index))
        return index

    build(pattern.root)

    # Output nodes: subtree roots, AD-edge sources, and the returning node.
    edge_sources = {id(edge.parent_node) for edge in edges}
    for subtree in subtrees:
        outputs: List[PatternNode] = []
        for node in subtree._own_nodes():
            if (
                node is subtree.root
                or id(node) in edge_sources
                or node.is_returning
            ):
                outputs.append(node)
        subtree.output_nodes = outputs
    return Decomposition(subtrees, edges)
