"""Twig query pattern trees and the XPath-subset query parser.

A twig query is a tree of :class:`PatternNode` objects connected by
``child`` (``/``) or ``descendant`` (``//``) axes. One node is the
*returning node*: data nodes bound to it form the query answer
(Section 4.1). The supported syntax covers the paper's Table 1:

- steps: ``/tag``, ``//tag``, ``*`` wildcards;
- predicates: ``[relative/path]``, nestable, with ``//`` steps allowed;
- value constraints: ``[payment = "Cash"]`` (text equality);
- attribute tests: ``[@id]`` (existence) and ``[@id = "item3"]``.

The returning node defaults to the last step of the main path.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import QueryParseError

CHILD = "child"
DESCENDANT = "descendant"


class PatternNode:
    """One query node: a tag test, optional value test, and typed child edges."""

    __slots__ = ("tag", "value", "attr_tests", "children", "axes", "is_returning")

    def __init__(self, tag: str, value: Optional[str] = None):
        if not tag:
            raise QueryParseError("pattern node needs a tag (or '*')")
        self.tag = tag
        self.value = value
        #: attribute name -> required value (None = existence test)
        self.attr_tests: dict = {}
        self.children: List["PatternNode"] = []
        self.axes: List[str] = []  # parallel to children: CHILD / DESCENDANT
        self.is_returning = False

    def add_child(self, child: "PatternNode", axis: str) -> "PatternNode":
        if axis not in (CHILD, DESCENDANT):
            raise QueryParseError(f"invalid axis {axis!r}")
        self.children.append(child)
        self.axes.append(axis)
        return child

    def matches(self, tag: str, text: str) -> bool:
        """Tag and value test against a data node."""
        if self.tag != "*" and self.tag != tag:
            return False
        return self.value is None or self.value == text

    def matches_attrs(self, attrs: dict) -> bool:
        """Attribute tests against a data node's attribute dict."""
        for name, required in self.attr_tests.items():
            if name not in attrs:
                return False
            if required is not None and attrs[name] != required:
                return False
        return True

    def iter_nodes(self):
        """All pattern nodes in this subtree, preorder."""
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        marker = "*ret*" if self.is_returning else ""
        return f"PatternNode({self.tag!r}{marker}, children={len(self.children)})"


class PatternTree:
    """A parsed twig query."""

    def __init__(self, root: PatternNode, root_axis: str):
        if root_axis not in (CHILD, DESCENDANT):
            raise QueryParseError(f"invalid root axis {root_axis!r}")
        self.root = root
        self.root_axis = root_axis

    @property
    def returning_node(self) -> PatternNode:
        for node in self.root.iter_nodes():
            if node.is_returning:
                return node
        raise QueryParseError("pattern has no returning node")

    def size(self) -> int:
        return sum(1 for _ in self.root.iter_nodes())

    def to_string(self) -> str:
        """Serialize back to query syntax (canonical form)."""
        return _node_to_string(self.root, self.root_axis, top=True)


def _node_to_string(node: PatternNode, axis: str, top: bool = False) -> str:
    prefix = "/" if axis == CHILD else "//"
    out = prefix + node.tag
    if node.value is not None:
        out += f' = "{node.value}"'
    for name, required in node.attr_tests.items():
        if required is None:
            out += f"[@{name}]"
        else:
            out += f'[@{name} = "{required}"]'
    main_child: Optional[int] = None
    for index, child in enumerate(node.children):
        if _subtree_contains_returning(child):
            main_child = index
    for index, child in enumerate(node.children):
        if index != main_child:
            inner = _node_to_string(child, node.axes[index])
            out += f"[{inner.lstrip('/') if node.axes[index] == CHILD else inner}]"
    if main_child is not None:
        out += _node_to_string(node.children[main_child], node.axes[main_child])
    return out


def _subtree_contains_returning(node: PatternNode) -> bool:
    return any(n.is_returning for n in node.iter_nodes())


# -- parser --------------------------------------------------------------------------


class _Tokens:
    """Cursor over a query string."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def eof(self) -> bool:
        self._skip_ws()
        return self.pos >= len(self.text)

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self, n: int = 1) -> str:
        self._skip_ws()
        return self.text[self.pos : self.pos + n]

    def take(self, literal: str) -> bool:
        self._skip_ws()
        if self.text.startswith(literal, self.pos):
            self.pos += len(literal)
            return True
        return False

    def expect(self, literal: str) -> None:
        if not self.take(literal):
            raise QueryParseError(
                f"expected {literal!r} at offset {self.pos} in {self.text!r}"
            )

    def name(self) -> str:
        self._skip_ws()
        if self.pos < len(self.text) and self.text[self.pos] == "*":
            self.pos += 1
            return "*"
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_.-:"
        ):
            self.pos += 1
        if self.pos == start:
            raise QueryParseError(
                f"expected a tag name at offset {start} in {self.text!r}"
            )
        return self.text[start : self.pos]

    def quoted(self) -> str:
        self._skip_ws()
        if self.pos >= len(self.text) or self.text[self.pos] not in "'\"":
            raise QueryParseError(f"expected a quoted value at offset {self.pos}")
        quote = self.text[self.pos]
        end = self.text.find(quote, self.pos + 1)
        if end == -1:
            raise QueryParseError("unterminated quoted value")
        value = self.text[self.pos + 1 : end]
        self.pos = end + 1
        return value


def parse_query(query: str) -> PatternTree:
    """Parse a twig query string into a :class:`PatternTree`."""
    tokens = _Tokens(query)
    root_axis = _read_axis(tokens, required=True)
    root = _parse_step(tokens)
    current = root
    while not tokens.eof() and tokens.peek() == "/":
        axis = _read_axis(tokens, required=True)
        current = current.add_child(_parse_step(tokens), axis)
    if not tokens.eof():
        raise QueryParseError(
            f"trailing input at offset {tokens.pos} in {query!r}"
        )
    current.is_returning = True
    return PatternTree(root, root_axis)


def _read_axis(tokens: _Tokens, required: bool) -> str:
    if tokens.take("//"):
        return DESCENDANT
    if tokens.take("/"):
        return CHILD
    if required:
        raise QueryParseError(f"query must start with '/' or '//': {tokens.text!r}")
    return CHILD


def _parse_step(tokens: _Tokens) -> PatternNode:
    node = PatternNode(tokens.name())
    if tokens.take("="):
        node.value = tokens.quoted()
    while tokens.take("["):
        if tokens.take("@"):
            name = tokens.name()
            node.attr_tests[name] = tokens.quoted() if tokens.take("=") else None
        else:
            node.add_child(*_parse_predicate(tokens))
        tokens.expect("]")
    return node


def _parse_predicate(tokens: _Tokens) -> "tuple[PatternNode, str]":
    """Parse a relative path inside [...]; returns (subtree root, first axis)."""
    first_axis = DESCENDANT if tokens.take("//") else (CHILD, tokens.take("/"))[0]
    root = _parse_step(tokens)
    current = root
    while tokens.peek() == "/":
        axis = _read_axis(tokens, required=True)
        current = current.add_child(_parse_step(tokens), axis)
    return root, first_axis
