"""PathStack: holistic path joins (Bruno, Koudas, Srivastava, SIGMOD'02).

The structural-join family the paper builds on ([2], Section 4.2) has a
holistic cousin: instead of joining ancestor/descendant lists pairwise,
PathStack processes one sorted stream of candidates per query step and
maintains a chain of linked stacks, producing every root-to-leaf solution
of a *linear* path pattern in one pass.

This module implements PathStack over the flattened document (streams come
from the tag index; each element is its (start, end, level) region code —
``(pos, subtree_end(pos), depth)`` in preorder numbering) and plugs into
the query engine as an alternative strategy for path-shaped patterns,
including the paper's join queries Q4–Q6. Secure evaluation filters the
streams through the DOL before joining, mirroring ε-STD.

Child (``/``) edges are enforced during solution enumeration (level and
interval checks), the standard PathStack treatment.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.errors import ReproError
from repro.nok.pattern import CHILD, PatternNode, PatternTree
from repro.xmltree.document import Document

AccessFn = Optional[Callable[[int], bool]]


def linear_steps(pattern: PatternTree) -> Optional[List[Tuple[PatternNode, str]]]:
    """The (node, incoming axis) steps of a linear pattern, or None.

    A pattern is linear when every node has at most one child and carries
    no value/attribute constraints beyond what streams can pre-filter
    (tag, value, and attribute tests are all per-node, so any of them are
    fine — branching is what PathStack cannot express).
    """
    steps: List[Tuple[PatternNode, str]] = []
    node, axis = pattern.root, pattern.root_axis
    while True:
        steps.append((node, axis))
        if not node.children:
            break
        if len(node.children) > 1:
            return None
        axis = node.axes[0]
        node = node.children[0]
    return steps


class _StackEntry:
    __slots__ = ("start", "end", "level", "parent_index")

    def __init__(self, start: int, end: int, level: int, parent_index: int):
        self.start = start
        self.end = end
        self.level = level
        self.parent_index = parent_index  # index into the previous stack


def path_stack(
    doc: Document,
    streams: Sequence[Sequence[int]],
    axes: Sequence[str],
    returning_index: int,
) -> List[int]:
    """Run PathStack; returns distinct positions bound to one step.

    Parameters
    ----------
    streams:
        One sorted position list per path step (root step first).
    axes:
        ``axes[i]`` is the axis *into* step i (``axes[0]`` is the root
        axis and is not constrained here — callers pre-filter stream 0).
    returning_index:
        Which step's bindings form the answer.
    """
    answers: Set[int] = set()
    for solution in path_stack_solutions(doc, streams, axes):
        answers.add(solution[returning_index])
    return sorted(answers)


def path_stack_solutions(
    doc: Document,
    streams: Sequence[Sequence[int]],
    axes: Sequence[str],
) -> List[Tuple[int, ...]]:
    """Run PathStack; returns every distinct full path solution.

    Each solution is a tuple of data positions, one per step (root step
    first). Used both for answer projection and for the path-merge twig
    strategy.
    """
    n = len(streams)
    if n == 0:
        return []
    cursors = [0] * n
    stacks: List[List[_StackEntry]] = [[] for _ in range(n)]
    answers: Set[Tuple[int, ...]] = set()

    def current(i: int) -> Optional[int]:
        return streams[i][cursors[i]] if cursors[i] < len(streams[i]) else None

    while True:
        qmin = None
        min_start = None
        for i in range(n):
            start = current(i)
            if start is not None and (min_start is None or start < min_start):
                min_start = start
                qmin = i
        if qmin is None:
            break

        start = min_start
        end = doc.subtree_end(start)
        level = doc.depth[start]

        # Clean: pop entries that cannot be ancestors of anything >= start.
        for stack in stacks:
            while stack and stack[-1].end <= start:
                stack.pop()

        cursors[qmin] += 1
        if qmin > 0 and not stacks[qmin - 1]:
            # No potential ancestor chain: skip this candidate.
            continue
        parent_index = len(stacks[qmin - 1]) - 1 if qmin > 0 else -1
        stacks[qmin].append(_StackEntry(start, end, level, parent_index))

        if qmin == n - 1:
            _emit(stacks, axes, answers)
            stacks[qmin].pop()

    return sorted(answers)


def _emit(
    stacks: List[List[_StackEntry]],
    axes: Sequence[str],
    answers: Set[Tuple[int, ...]],
) -> None:
    """Enumerate solutions ending at the just-pushed leaf entry."""
    n = len(stacks)
    leaf = stacks[-1][-1]

    def expand(step: int, entry: _StackEntry, chain: List[_StackEntry]) -> None:
        chain.append(entry)
        if step == 0:
            answers.add(tuple(e.start for e in reversed(chain)))
            chain.pop()
            return
        # entry's ancestors live in stacks[step-1][0 .. parent_index];
        # pops since the entry was pushed can shorten the stack (recorded
        # pointers may dangle), so clamp and re-check containment.
        limit = min(entry.parent_index + 1, len(stacks[step - 1]))
        for index in range(limit):
            ancestor = stacks[step - 1][index]
            if not (ancestor.start < entry.start < ancestor.end):
                continue
            if axes[step] == CHILD and ancestor.level != entry.level - 1:
                continue
            expand(step - 1, ancestor, chain)
        chain.pop()

    expand(n - 1, leaf, [])


def _build_streams(
    doc: Document,
    steps: Sequence[Tuple[PatternNode, str]],
    index,
    access: AccessFn,
) -> Tuple[List[List[int]], List[str]]:
    """Sorted, pre-filtered candidate streams for a sequence of steps."""
    streams: List[List[int]] = []
    axes: List[str] = []
    for i, (node, axis) in enumerate(steps):
        if node.tag == "*":
            positions = list(range(len(doc)))
        elif node.value is not None:
            positions = index.positions_with_value(node.tag, node.value)
        else:
            positions = index.positions(node.tag)
        if node.value is not None:
            positions = [p for p in positions if doc.text(p) == node.value]
        if node.attr_tests:
            positions = [
                p for p in positions if node.matches_attrs(doc.attrs_of(p))
            ]
        if access is not None:
            positions = [p for p in positions if access(p)]
        if i == 0 and axis == CHILD:
            positions = [p for p in positions if p == 0]
        streams.append(positions)
        axes.append(axis)
    return streams, axes


def evaluate_pathstack(
    doc: Document,
    pattern: PatternTree,
    index,
    access: AccessFn = None,
) -> List[int]:
    """Evaluate a linear pattern with PathStack; returns answer positions.

    ``index`` is a tag index (``positions`` / ``positions_with_value``).
    ``access`` pre-filters every stream — the secure variant: only
    accessible nodes may participate in any binding (Cho semantics; pass a
    visibility predicate for view semantics).
    """
    steps = linear_steps(pattern)
    if steps is None:
        raise ReproError("PathStack requires a linear (non-branching) pattern")
    returning_index = next(
        i for i, (node, _axis) in enumerate(steps) if node.is_returning
    )
    streams, axes = _build_streams(doc, steps, index, access)
    return path_stack(doc, streams, axes, returning_index)


def root_to_leaf_paths(
    pattern: PatternTree,
) -> List[List[Tuple[PatternNode, str]]]:
    """Every root-to-leaf step sequence of a (possibly branching) pattern."""
    paths: List[List[Tuple[PatternNode, str]]] = []

    def walk(node: PatternNode, axis: str, prefix: List[Tuple[PatternNode, str]]):
        extended = prefix + [(node, axis)]
        if not node.children:
            paths.append(extended)
            return
        for child, child_axis in zip(node.children, node.axes):
            walk(child, child_axis, extended)

    walk(pattern.root, pattern.root_axis, [])
    return paths


def evaluate_twig_paths(
    doc: Document,
    pattern: PatternTree,
    index,
    access: AccessFn = None,
) -> List[int]:
    """Holistic evaluation of an arbitrary twig: PathStack per root-to-leaf
    path, then a hash-merge of path solutions on their shared bindings.

    Matches the PathStack paper's twig treatment (decompose into paths,
    merge path solutions); correct for any pattern the engine accepts,
    under unordered semantics.
    """
    paths = root_to_leaf_paths(pattern)
    merged: Optional[List[dict]] = None
    for steps in paths:
        streams, axes = _build_streams(doc, steps, index, access)
        solutions = path_stack_solutions(doc, streams, axes)
        dicts = [
            {id(node): pos for (node, _axis), pos in zip(steps, solution)}
            for solution in solutions
        ]
        if merged is None:
            merged = dicts
        else:
            merged = _merge_join(merged, dicts)
        if not merged:
            return []

    returning = id(pattern.returning_node)
    return sorted({binding[returning] for binding in merged})


def _merge_join(left: List[dict], right: List[dict]) -> List[dict]:
    """Join two path-solution sets on their shared pattern nodes."""
    if not left or not right:
        return []
    shared = sorted(set(left[0]) & set(right[0]))
    buckets: dict = {}
    for binding in right:
        buckets.setdefault(
            tuple(binding[key] for key in shared), []
        ).append(binding)
    out: List[dict] = []
    seen: Set[frozenset] = set()
    for binding in left:
        key = tuple(binding[k] for k in shared)
        for other in buckets.get(key, ()):
            combined = {**binding, **other}
            signature = frozenset(combined.items())
            if signature not in seen:
                seen.add(signature)
                out.append(combined)
    return out
