"""NPM — next-of-kin pattern matching (Algorithm 1), secure and not.

Two entry points:

- :func:`npm` — the literal ε-NoK Algorithm 1: existential matching of a
  NoK pattern tree below a data node, appending data nodes bound to the
  returning node to a result list. With ``access=None`` it degenerates to
  the non-secure NPM.
- :func:`match_nok_subtree` — the engine's workhorse: matches one NoK
  subtree and *enumerates bindings* for its output nodes (subtree root,
  AD-edge sources, returning node) so that structural joins can combine
  fragments. Non-output branches are matched existentially, which keeps
  the enumeration small.

Both support *ordered* pattern trees (``ordered=True``): the paper
presents the unordered variant "for ease of presentation only, though we
use ordered pattern tree in real experiments" — under ordered semantics
the children of a pattern node must bind to data siblings in pattern
order (the following-sibling relationships of the next-of-kin model).

Both operate over any store exposing the next-of-kin interface:
``first_child(pos)``, ``following_sibling(pos)``, ``tag_name(pos)``,
``text(pos)`` — i.e. :class:`~repro.xmltree.document.Document` or
:class:`~repro.storage.nokstore.NoKStore`.

Per the paper's semantics (Section 4.1), the *pre-condition* of the secure
variants is that the data root passed in is itself accessible; recursion
skips inaccessible children entirely.
"""

from __future__ import annotations

from itertools import product
from typing import Callable, Dict, List, Optional

from repro.nok.decompose import NoKSubtree
from repro.nok.pattern import CHILD, PatternNode
from repro.xmltree.document import NO_NODE

AccessFn = Optional[Callable[[int], bool]]
Binding = Dict[int, int]  # id(pattern node) -> document position


def _child_axis_pairs(pnode: PatternNode):
    """The pattern children connected by CHILD edges (NoK-internal)."""
    return [
        child
        for child, axis in zip(pnode.children, pnode.axes)
        if axis == CHILD
    ]


def _contains_returning(pnode: PatternNode) -> bool:
    return any(node.is_returning for node in pnode.iter_nodes())


def npm(store, proot: PatternNode, sroot: int, result: List[int], access: AccessFn = None) -> bool:
    """Algorithm 1 (ε-NoK Pattern Matching, NPM).

    Returns True iff the NoK pattern rooted at ``proot`` matches the data
    subtree rooted at ``sroot``; data nodes matching the returning node are
    appended to ``result`` in document order. Pre-condition: ``sroot`` has
    already passed the tag/value test and, in secure mode, the ACCESS test.

    As in the printed algorithm, a satisfied pattern child is removed from
    the working set S — except that a branch containing the returning node
    keeps being matched against later siblings so *all* answers are
    reported, not just the first (the behaviour the paper's result counts
    imply).
    """
    mark = len(result)
    if proot.is_returning:
        result.append(sroot)
    children = _child_axis_pairs(proot)
    if not children:
        return True
    satisfied = [False] * len(children)
    keep_scanning = [_contains_returning(s) for s in children]
    u = store.first_child(sroot)
    while u != NO_NODE:
        if all(satisfied) and not any(keep_scanning):
            break
        if access is None or access(u):
            tag, text = store.tag_name(u), store.text(u)
            for index, s in enumerate(children):
                if satisfied[index] and not keep_scanning[index]:
                    continue
                if not s.matches(tag, text):
                    continue
                if s.attr_tests and not s.matches_attrs(store.attrs_of(u)):
                    continue
                if npm(store, s, u, result, access):
                    satisfied[index] = True
        u = store.following_sibling(u)
    if not all(satisfied):
        # Algorithm 1 resets R on failure; bindings added below this call
        # are discarded so failed matches leak nothing.
        del result[mark:]
        return False
    return True


def match_nok_subtree(
    store,
    subtree: NoKSubtree,
    data_pos: int,
    access: AccessFn = None,
    ordered: bool = False,
) -> List[Binding]:
    """Match one NoK subtree at ``data_pos``, enumerating output bindings.

    Returns a list of binding dicts (empty list = no match). When the
    subtree matches but has no output nodes below the root, the list is
    ``[{root: data_pos}]``. The caller must have verified the tag/value
    test and accessibility of ``data_pos``. With ``ordered=True`` the
    pattern children must bind to data siblings in pattern order.
    """
    output_ids = {id(node) for node in subtree.output_nodes}
    bindings = _enumerate(store, subtree.root, data_pos, output_ids, access, ordered)
    return bindings if bindings is not None else []


def _enumerate(
    store,
    pnode: PatternNode,
    dpos: int,
    output_ids: set,
    access: AccessFn,
    ordered: bool = False,
) -> Optional[List[Binding]]:
    """Recursive binding enumeration; None means no match."""
    pattern_children = _child_axis_pairs(pnode)
    if not pattern_children:
        combined: List[Binding] = [{}]
    else:
        # Scan data children once, testing each against every pattern child.
        # candidates[i] holds (data position, bindings) pairs for child i.
        candidates: List[List] = [[] for _ in pattern_children]
        u = store.first_child(dpos)
        while u != NO_NODE:
            if access is None or access(u):
                tag, text = store.tag_name(u), store.text(u)
                for index, s in enumerate(pattern_children):
                    if not s.matches(tag, text):
                        continue
                    if s.attr_tests and not s.matches_attrs(store.attrs_of(u)):
                        continue
                    sub = _enumerate(store, s, u, output_ids, access, ordered)
                    if sub is not None:
                        candidates[index].append((u, sub))
            u = store.following_sibling(u)
        if any(not found for found in candidates):
            return None
        if ordered:
            combined = _combine_ordered(candidates)
            if not combined:
                return None
        else:
            combined = _combine_unordered(candidates)

    if id(pnode) in output_ids:
        for binding in combined:
            binding[id(pnode)] = dpos
    return combined


def _combine_unordered(candidates: List[List]) -> List[Binding]:
    """Cartesian combination, collapsing binding-free branches."""
    combined: List[Binding] = [{}]
    for found in candidates:
        flat = _dedupe([b for _u, subs in found for b in subs])
        if flat == [{}]:
            continue  # existential branch: contributes no bindings
        combined = [
            {**left, **right} for left, right in product(combined, flat)
        ]
    return combined


def _combine_ordered(candidates: List[List]) -> List[Binding]:
    """Combination requiring strictly increasing data-sibling positions.

    Pattern child i must bind to a sibling positioned after pattern child
    i-1's sibling — the following-sibling (next-of-kin) ordering.
    """
    memo = {}

    def combine(index: int, min_pos: int) -> List[Binding]:
        if index == len(candidates):
            return [{}]
        key = (index, min_pos)
        cached = memo.get(key)
        if cached is not None:
            return cached
        results: List[Binding] = []
        for u, subs in candidates[index]:
            if u <= min_pos:
                continue
            rest = combine(index + 1, u)
            if not rest:
                continue
            for binding in subs:
                for tail in rest:
                    results.append({**binding, **tail})
        results = _dedupe(results) if results else results
        memo[key] = results
        return results

    return combine(0, -1)


def _dedupe(bindings: List[Binding]) -> List[Binding]:
    if len(bindings) <= 1:
        return bindings
    seen = set()
    unique: List[Binding] = []
    for binding in bindings:
        key = frozenset(binding.items())
        if key not in seen:
            seen.add(key)
            unique.append(binding)
    return unique or [{}]
