"""Structural joins: Stack-Tree-Desc and the secure ε-STD variant.

STD (Al-Khalifa et al. [2]) joins a sorted list of potential ancestors with
a sorted list of potential descendants in one merge pass, using a stack of
nested ancestors. Both inputs are document positions; ancestorship is the
preorder interval test ``a < d < subtree_end(a)``.

For Cho et al. secure semantics nothing extra is needed here — every node
delivered by ε-NoK has already passed its ACCESS check. For the view
semantics of Gabillon–Bruno (Section 4.2), a pair additionally requires
*every node on the path* from ancestor to descendant to be accessible;
:class:`PathAccessIndex` precomputes, per subject, each node's deepest
inaccessible ancestor-or-self so the path test is O(1) per pair without
extra page reads.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.labeling.base import AccessLabeling
from repro.xmltree.document import NO_NODE, Document

EndFn = Callable[[int], int]


def stack_tree_desc(
    ancestors: Sequence[int],
    descendants: Sequence[int],
    subtree_end: EndFn,
    pair_filter: Optional[Callable[[int, int], bool]] = None,
) -> List[Tuple[int, int]]:
    """All (ancestor, descendant) pairs with a proper AD relationship.

    Inputs must be sorted in document order. Output is sorted by
    descendant, then by ancestor (inner to outer reversed to document
    order). ``pair_filter`` implements the ε-STD pruning hook.
    """
    pairs: List[Tuple[int, int]] = []
    stack: List[int] = []
    ai, di = 0, 0
    while ai < len(ancestors) or di < len(descendants):
        take_ancestor = ai < len(ancestors) and (
            di >= len(descendants) or ancestors[ai] < descendants[di]
        )
        if take_ancestor:
            a = ancestors[ai]
            while stack and subtree_end(stack[-1]) <= a:
                stack.pop()
            stack.append(a)
            ai += 1
        else:
            d = descendants[di]
            while stack and subtree_end(stack[-1]) <= d:
                stack.pop()
            for a in stack:
                if a < d:  # equal positions are not *proper* ancestors
                    if pair_filter is None or pair_filter(a, d):
                        pairs.append((a, d))
            di += 1
    return pairs


class PathAccessIndex:
    """Per-subject path-accessibility oracle for view-semantics joins.

    ``deepest_blocked[pos]`` is the document position of the deepest
    inaccessible node on the root-to-pos path (including ``pos`` itself),
    or ``NO_NODE`` if the whole path is accessible. Computed in one linear
    scan over the document using the access labeling (any backend — only
    per-node masks are consumed).
    """

    def __init__(self, doc: Document, labeling: AccessLabeling, subject):
        self.doc = doc
        n = len(doc)
        blocked = [NO_NODE] * n
        masks = labeling.to_masks()
        # `subject` may be a single subject id or a collection of ids (a
        # user's own subject plus her groups; union semantics).
        if isinstance(subject, int):
            bit = 1 << subject
        else:
            bit = 0
            for s in subject:
                bit |= 1 << s
        for pos in range(n):
            par = doc.parent[pos]
            inherited = blocked[par] if par != NO_NODE else NO_NODE
            blocked[pos] = pos if not masks[pos] & bit else inherited
        self.deepest_blocked = blocked

    def node_accessible(self, pos: int) -> bool:
        return self.deepest_blocked[pos] != pos

    def path_accessible(self, ancestor: int, descendant: int) -> bool:
        """True iff every node on [ancestor, descendant] is accessible.

        The deepest blocked node above ``descendant`` must be a proper
        ancestor of ``ancestor`` (i.e. outside the joined path) or absent.
        """
        blocked = self.deepest_blocked[descendant]
        if blocked == NO_NODE:
            return True
        # `blocked` lies on the root→descendant path; the path segment
        # [ancestor, descendant] avoids it iff it is a *proper ancestor*
        # of `ancestor`.
        return blocked < ancestor < self.doc.subtree_end(blocked)


def secure_stack_tree_desc(
    ancestors: Sequence[int],
    descendants: Sequence[int],
    subtree_end: EndFn,
    path_index: PathAccessIndex,
) -> List[Tuple[int, int]]:
    """ε-STD under view semantics: AD pairs whose whole path is accessible."""
    return stack_tree_desc(
        ancestors, descendants, subtree_end, pair_filter=path_index.path_accessible
    )
