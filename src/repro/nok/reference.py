"""Brute-force twig query evaluator — the correctness oracle for tests.

Enumerates *all* binding tuples of a pattern tree against an in-memory
document by exhaustive recursion, then applies the secure-semantics filter
directly from the definition:

- Cho semantics: keep a binding set iff every bound data node is accessible;
- view semantics: keep it iff every bound node's entire root path is
  accessible.

This is exponential in the worst case and meant only for small documents;
the engine's answers must always equal this evaluator's answers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.nok.pattern import CHILD, PatternNode, PatternTree
from repro.secure.semantics import CHO, VIEW
from repro.xmltree.document import NO_NODE, Document

Binding = Dict[int, int]


def evaluate_reference(
    doc: Document,
    pattern: PatternTree,
    masks: Optional[Sequence[int]] = None,
    subject: Optional[int] = None,
    semantics: str = CHO,
    ordered: bool = False,
) -> Set[int]:
    """Distinct returning-node positions under the given semantics."""
    bindings = enumerate_bindings(doc, pattern, masks, subject, semantics, ordered)
    returning = id(pattern.returning_node)
    return {binding[returning] for binding in bindings}


def enumerate_bindings(
    doc: Document,
    pattern: PatternTree,
    masks: Optional[Sequence[int]] = None,
    subject: Optional[int] = None,
    semantics: str = CHO,
    ordered: bool = False,
) -> List[Binding]:
    """All distinct full binding tuples (pattern node → data position).

    ``ordered=True`` additionally requires each pattern node's child-axis
    children to bind to data children in strictly increasing document
    order (ordered pattern trees; descendant-axis children are not
    order-constrained, matching the engine's join semantics).
    """
    accessible = _access_predicate(doc, masks, subject, semantics)
    if pattern.root_axis == CHILD:
        starts = [0]
    else:
        starts = list(range(len(doc)))
    results: List[Binding] = []
    seen = set()
    for pos in starts:
        for binding in _match_all(doc, pattern.root, pos, accessible, ordered):
            key = frozenset(binding.items())
            if key not in seen:
                seen.add(key)
                results.append(binding)
    return results


def _access_predicate(doc, masks, subject, semantics):
    if subject is None or masks is None:
        return None
    bit = 1 << subject
    if semantics == CHO:
        return lambda pos: bool(masks[pos] & bit)
    if semantics == VIEW:
        visible = [False] * len(doc)
        for pos in range(len(doc)):
            par = doc.parent[pos]
            above = visible[par] if par != NO_NODE else True
            visible[pos] = above and bool(masks[pos] & bit)
        return lambda pos: visible[pos]
    raise ValueError(f"unknown semantics {semantics!r}")


def _match_all(
    doc: Document,
    pnode: PatternNode,
    pos: int,
    accessible,
    ordered: bool = False,
) -> List[Binding]:
    if not pnode.matches(doc.tag_name(pos), doc.text(pos)):
        return []
    if pnode.attr_tests and not pnode.matches_attrs(doc.attrs_of(pos)):
        return []
    if accessible is not None and not accessible(pos):
        return []
    # (axis, child pattern node, [(candidate position, bindings)])
    per_child: List[tuple] = []
    for child, axis in zip(pnode.children, pnode.axes):
        if axis == CHILD:
            candidates = list(doc.children(pos))
        else:
            candidates = list(doc.descendants(pos))
        found = []
        for candidate in candidates:
            subs = _match_all(doc, child, candidate, accessible, ordered)
            if subs:
                found.append((candidate, subs))
        if not found:
            return []
        per_child.append((axis, child, found))

    combined: List[tuple] = [({id(pnode): pos}, -1)]  # (binding, last child pos)
    for axis, child, found in per_child:
        next_combined: List[tuple] = []
        for binding, last_pos in combined:
            for candidate, subs in found:
                if ordered and axis == CHILD and candidate <= last_pos:
                    continue
                new_last = candidate if axis == CHILD else last_pos
                for sub in subs:
                    next_combined.append(({**binding, **sub}, new_last))
        combined = next_combined
        if not combined:
            return []
    return [binding for binding, _last in combined]
