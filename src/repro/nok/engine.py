"""The end-to-end secure NoK query engine (Section 4).

Pipeline: parse → decompose into NoK subtrees → find candidate roots via
the tag index → NPM each candidate (ε-NoK when a subject is given) →
structural joins over the ancestor–descendant edges (ε-STD with path
checks under view semantics) → returning-node bindings.

The engine runs over an in-memory :class:`~repro.xmltree.document.Document`
or, when constructed with ``use_store=True``, over the block-oriented
:class:`~repro.storage.nokstore.NoKStore` — in which case every navigation
and access check goes through the buffer pool and the result carries full
I/O statistics, including pages *skipped* via the in-memory header table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.acl.model import READ, AccessMatrix
from repro.dol.labeling import DOL
from repro.errors import QueryParseError, ReproError
from repro.index.tagindex import TagIndex
from repro.nok.decompose import Decomposition, decompose
from repro.nok.matcher import Binding, match_nok_subtree
from repro.nok.pattern import CHILD, PatternTree, parse_query
from repro.nok.stdjoin import PathAccessIndex, stack_tree_desc
from repro.secure.semantics import CHO, SEMANTICS, VIEW
from repro.storage.nokstore import NoKStore
from repro.xmltree.document import Document


@dataclass
class EvalStats:
    """Measurements for one query evaluation."""

    wall_time: float = 0.0
    access_checks: int = 0
    candidates: int = 0
    candidates_skipped_by_header: int = 0
    logical_page_reads: int = 0
    physical_page_reads: int = 0

    def as_dict(self) -> Dict[str, float]:
        return dict(self.__dict__)


@dataclass
class QueryResult:
    """Answer of one evaluation: returning-node positions + statistics."""

    positions: List[int] = field(default_factory=list)
    n_bindings: int = 0
    stats: EvalStats = field(default_factory=EvalStats)

    @property
    def n_answers(self) -> int:
        """Distinct data nodes bound to the returning node."""
        return len(self.positions)


class QueryEngine:
    """Twig query evaluator with optional DOL-based access control."""

    def __init__(
        self,
        doc: Document,
        dol: Optional[DOL] = None,
        store: Optional[NoKStore] = None,
        index: Optional[TagIndex] = None,
    ):
        if store is not None and dol is not None and store.dol is not dol:
            raise ReproError("store and engine must share one DOL")
        self.doc = doc
        self.dol = dol if dol is not None else (store.dol if store else None)
        self.store = store
        self.index = index if index is not None else TagIndex(doc)

    @classmethod
    def build(
        cls,
        doc: Document,
        matrix: Optional[AccessMatrix] = None,
        mode: str = READ,
        use_store: bool = False,
        page_size: int = 4096,
        buffer_capacity: int = 64,
        store_path: Optional[str] = None,
    ) -> "QueryEngine":
        """Construct an engine, optionally with DOL and block storage."""
        dol = DOL.from_matrix(matrix, mode) if matrix is not None else None
        store = None
        if use_store:
            if dol is None:
                raise ReproError("a store requires access control data")
            store = NoKStore(
                doc, dol, path=store_path, page_size=page_size,
                buffer_capacity=buffer_capacity,
            )
        return cls(doc, dol=dol, store=store)

    # -- evaluation -------------------------------------------------------------

    def evaluate(
        self,
        query: Union[str, PatternTree],
        subject: Optional[Union[int, Sequence[int]]] = None,
        semantics: str = CHO,
        ordered: bool = False,
    ) -> QueryResult:
        """Evaluate a twig query, securely when ``subject`` is given.

        ``subject`` may be a single subject id, or a sequence of ids for
        user-level evaluation (the user's own subject plus her groups —
        rights are the union, per Section 4's footnote). ``ordered=True``
        switches to ordered pattern trees: a pattern node's child-axis
        children must bind to data siblings in pattern order (the
        following-sibling next-of-kin constraint the paper's experiments
        used).
        """
        if semantics not in SEMANTICS:
            raise ReproError(f"unknown semantics {semantics!r}")
        if subject is not None and self.dol is None:
            raise ReproError("secure evaluation requires a DOL")
        if subject is not None and not isinstance(subject, int):
            subject = tuple(subject)
            if not subject:
                raise ReproError("user-level evaluation needs >= 1 subject")
        pattern = parse_query(query) if isinstance(query, str) else query
        dec = decompose(pattern)

        stats = EvalStats()
        source = self.store if self.store is not None else self.doc
        io_before = self._io_snapshot()
        started = time.perf_counter()

        access = self._make_access_fn(subject, semantics, stats)
        fragment_matches = {
            subtree.index: self._match_subtree(
                dec, subtree.index, pattern, source, access, subject, stats,
                ordered,
            )
            for subtree in dec.subtrees
        }
        matches = self._join(dec, fragment_matches, subject, semantics)

        returning_id = id(pattern.returning_node)
        positions = sorted({m[returning_id] for m in matches})
        stats.wall_time = time.perf_counter() - started
        io_after = self._io_snapshot()
        stats.logical_page_reads = io_after[0] - io_before[0]
        stats.physical_page_reads = io_after[1] - io_before[1]
        return QueryResult(positions=positions, n_bindings=len(matches), stats=stats)

    def evaluate_path(
        self,
        query: Union[str, PatternTree],
        subject: Optional[Union[int, Sequence[int]]] = None,
        semantics: str = CHO,
    ) -> QueryResult:
        """Evaluate a query with the holistic PathStack strategy.

        An alternative to NoK decomposition: linear paths (the Q4–Q6
        class) run plain PathStack — one sorted candidate stream per step,
        linked stacks, a single pass; branching twigs run PathStack per
        root-to-leaf path and hash-merge the path solutions on their
        shared bindings. Secure evaluation pre-filters the streams through
        the DOL. Unordered semantics only.
        """
        from repro.nok.pathstack import (
            evaluate_pathstack,
            evaluate_twig_paths,
            linear_steps,
        )

        if semantics not in SEMANTICS:
            raise ReproError(f"unknown semantics {semantics!r}")
        if subject is not None and self.dol is None:
            raise ReproError("secure evaluation requires a DOL")
        if subject is not None and not isinstance(subject, int):
            subject = tuple(subject)
            if not subject:
                raise ReproError("user-level evaluation needs >= 1 subject")
        pattern = parse_query(query) if isinstance(query, str) else query

        stats = EvalStats()
        started = time.perf_counter()
        access = self._make_access_fn(subject, semantics, stats)
        if linear_steps(pattern) is not None:
            positions = evaluate_pathstack(self.doc, pattern, self.index, access)
        else:
            positions = evaluate_twig_paths(self.doc, pattern, self.index, access)
        stats.wall_time = time.perf_counter() - started
        return QueryResult(
            positions=positions, n_bindings=len(positions), stats=stats
        )

    def explain(self, query: Union[str, PatternTree]) -> str:
        """Describe how a query would be evaluated (the NoK plan).

        Returns a human-readable plan: the canonical query form, the NoK
        subtree decomposition with candidate counts from the tag index,
        and the bottom-up structural-join order.
        """
        pattern = parse_query(query) if isinstance(query, str) else query
        dec = decompose(pattern)
        lines = [f"query: {pattern.to_string()}"]
        lines.append(
            f"pattern nodes: {pattern.size()}, NoK subtrees: "
            f"{len(dec.subtrees)}, AD joins: {len(dec.edges)}"
        )
        for subtree in dec.subtrees:
            candidates = len(self._candidates(dec, subtree.index, pattern))
            marker = " (query root)" if subtree.index == 0 else ""
            returning = " [returning]" if subtree.contains_returning() else ""
            lines.append(
                f"  NoK subtree {subtree.index}: root <{subtree.root.tag}>, "
                f"{candidates} index candidates{marker}{returning}"
            )
        for edge in dec.edges:
            lines.append(
                f"  AD join: subtree {edge.parent_subtree} "
                f"node <{edge.parent_node.tag}> // subtree {edge.child_subtree}"
            )
        order = dec.join_order()
        if len(order) > 1:
            lines.append("join order (bottom-up): " + " -> ".join(map(str, order)))
        return "\n".join(lines)

    # -- internals ------------------------------------------------------------------

    def _io_snapshot(self) -> Tuple[int, int]:
        if self.store is None:
            return (0, 0)
        return (
            self.store.buffer.stats.logical_reads,
            self.store.pager.stats.reads,
        )

    def _make_access_fn(
        self, subject: Optional[int], semantics: str, stats: EvalStats
    ):
        if subject is None:
            return None
        if semantics == VIEW:
            # View semantics: a node is usable iff its whole root path is
            # accessible (the pruned-view model).
            path_index = PathAccessIndex(self.doc, self.dol, subject)

            def view_access(pos: int) -> bool:
                stats.access_checks += 1
                return path_index.deepest_blocked[pos] == -1

            self._path_index = path_index
            return view_access

        subjects = (subject,) if isinstance(subject, int) else subject
        if self.store is not None:
            store = self.store

            def store_access(pos: int) -> bool:
                stats.access_checks += 1
                return store.accessible_any(subjects, pos)

            return store_access

        dol = self.dol

        def dol_access(pos: int) -> bool:
            stats.access_checks += 1
            return dol.accessible_any(subjects, pos)

        return dol_access

    def _candidates(
        self, dec: Decomposition, subtree_index: int, pattern: PatternTree
    ) -> List[int]:
        subtree = dec.subtrees[subtree_index]
        root = subtree.root
        if subtree_index == 0 and pattern.root_axis == CHILD:
            if root.matches(self.doc.tag_name(0), self.doc.text(0)):
                return [0]
            return []
        if root.tag == "*":
            return list(range(len(self.doc)))
        if root.value is not None:
            return self.index.positions_with_value(root.tag, root.value)
        return self.index.positions(root.tag)

    def _match_subtree(
        self,
        dec: Decomposition,
        subtree_index: int,
        pattern: PatternTree,
        source,
        access,
        subject,
        stats: EvalStats,
        ordered: bool = False,
    ) -> List[Binding]:
        subtree = dec.subtrees[subtree_index]
        matches: List[Binding] = []
        for candidate in self._candidates(dec, subtree_index, pattern):
            stats.candidates += 1
            if access is not None:
                # Page-skip optimization (Section 3.3): if the candidate's
                # page header denies the subject and has no transitions, the
                # candidate is inaccessible without reading the page.
                subjects = (subject,) if isinstance(subject, int) else subject
                if self.store is not None and self.store.page_fully_inaccessible_any(
                    self.store.page_of(candidate), subjects
                ):
                    stats.candidates_skipped_by_header += 1
                    continue
            # Verify the root match against the data source itself — this
            # loads the candidate's page (the index only supplied a
            # position), exactly the read a NoK evaluator performs before
            # matching can start.
            if not subtree.root.matches(
                source.tag_name(candidate), source.text(candidate)
            ):
                continue
            if subtree.root.attr_tests and not subtree.root.matches_attrs(
                source.attrs_of(candidate)
            ):
                continue
            if access is not None and not access(candidate):
                continue  # pre-condition of Algorithm 1
            matches.extend(
                match_nok_subtree(source, subtree, candidate, access, ordered)
            )
        return matches

    def _join(
        self,
        dec: Decomposition,
        fragment_matches: Dict[int, List[Binding]],
        subject: Optional[int],
        semantics: str,
    ) -> List[Binding]:
        subtree_end = self.doc.subtree_end
        pair_filter = None
        if subject is not None and semantics == VIEW:
            pair_filter = self._path_index.path_accessible

        joined = dict(fragment_matches)
        for subtree_index in dec.join_order():
            current = joined[subtree_index]
            for edge in dec.children_of(subtree_index):
                child = joined[edge.child_subtree]
                if not current or not child:
                    current = []
                    break
                parent_key = id(edge.parent_node)
                child_key = id(dec.subtrees[edge.child_subtree].root)
                ancestors = sorted({m[parent_key] for m in current})
                descendants = sorted({m[child_key] for m in child})
                pairs = stack_tree_desc(
                    ancestors, descendants, subtree_end, pair_filter=pair_filter
                )
                pair_set: Set[Tuple[int, int]] = set(pairs)
                descendants_of: Dict[int, List[Binding]] = {}
                for m in child:
                    descendants_of.setdefault(m[child_key], []).append(m)
                merged: List[Binding] = []
                seen: Set[frozenset] = set()
                for m in current:
                    anchor = m[parent_key]
                    for d_pos, d_matches in descendants_of.items():
                        if (anchor, d_pos) not in pair_set:
                            continue
                        for dm in d_matches:
                            combined = {**m, **dm}
                            key = frozenset(combined.items())
                            if key not in seen:
                                seen.add(key)
                                merged.append(combined)
                current = merged
            joined[subtree_index] = current
        return joined[0]
