"""The end-to-end secure NoK query engine (Section 4) — a facade.

Evaluation is compiled, not interpreted: a query is parsed, decomposed
into NoK subtrees, and handed to the :class:`~repro.exec.planner.Planner`,
which emits an explicit physical plan of Volcano-style operators
(``TagIndexScan → RootVerify → NPMMatch``, folded together by ``STDJoin``
edges, with the secure semantics applied as plan rewrites — the ε-NoK
ACCESS pre-condition, header-driven page skipping over a
:class:`~repro.storage.nokstore.NoKStore`, and ε-STD path checks under
view semantics). Operators pull bindings lazily from their children, so
results stream out incrementally; :meth:`QueryEngine.stream` exposes the
raw iterator and :meth:`QueryEngine.evaluate` drains it into the
historical :class:`QueryResult`.

The engine runs over an in-memory :class:`~repro.xmltree.document.Document`
or, when constructed with ``use_store=True``, over the block-oriented
:class:`~repro.storage.nokstore.NoKStore` — in which case every navigation
and access check goes through the buffer pool and the result carries full
I/O statistics, including pages *skipped* via the in-memory header table.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Union

from repro.acl.model import READ, AccessMatrix
from repro.errors import ReproError
from repro.exec.context import EvalStats, ExecutionContext, QueryResult
from repro.exec.plancache import PlanCache, plan_key
from repro.exec.resultcache import ResultCache
from repro.labeling.base import AccessLabeling
from repro.labeling.classes import ClassDirectory, normalize_subjects
from repro.labeling.runs import RunCache
from repro.labeling.registry import DEFAULT_BACKEND, build_labeling
from repro.index.tagindex import TagIndex
from repro.nok.decompose import Decomposition, decompose
from repro.nok.pattern import CHILD, PatternTree, parse_query
from repro.secure.semantics import CHO, SEMANTICS
from repro.storage.nokstore import NoKStore
from repro.storage.snapshot import StoreSnapshot
from repro.xmltree.document import Document

__all__ = ["EvalStats", "QueryEngine", "QueryResult"]


class QueryEngine:
    """Twig query evaluator with optional labeling-based access control.

    The labeling may be any :class:`~repro.labeling.base.AccessLabeling`
    backend (DOL, CAM, naive); the ``dol=`` keyword and ``.dol``
    attribute remain as historical aliases for ``labeling``.
    """

    def __init__(
        self,
        doc: Document,
        labeling: Optional[AccessLabeling] = None,
        store: Optional[NoKStore] = None,
        index: Optional[TagIndex] = None,
        dol: Optional[AccessLabeling] = None,
        plan_cache_size: int = 128,
        exec_mode: str = "batch",
        run_cache_size: int = 64,
        result_cache_size: int = 256,
    ):
        if labeling is None:
            labeling = dol
        elif dol is not None and dol is not labeling:
            raise ReproError("pass either labeling= or its alias dol=, not both")
        if store is not None and labeling is not None and store.labeling is not labeling:
            raise ReproError("store and engine must share one labeling")
        if exec_mode not in ("batch", "tuple"):
            raise ReproError(f"unknown exec_mode {exec_mode!r}")
        self.doc = doc
        self.labeling = (
            labeling if labeling is not None else (store.labeling if store else None)
        )
        self.store = store
        self.index = index if index is not None else TagIndex(doc)
        self.exec_mode = exec_mode
        #: compiled (pattern, decomposition) artifacts, shared by every
        #: execution — immutable once built, so cache hits are thread-safe
        self.plan_cache = PlanCache(plan_cache_size)
        #: decoded accessibility run lists, shared across queries and
        #: threads; keys carry the epoch, so commits invalidate by key
        self.run_cache = RunCache(run_cache_size)
        #: canonicalizes subject sets to accessibility-equivalence class
        #: ids; every subject-keyed cache below keys on the class instead
        self.class_directory = ClassDirectory()
        #: complete answers per (epoch, query, class, knobs); consulted
        #: only when a caller opts in (``use_result_cache=True``) —
        #: repeat-evaluation benchmarks and tests rely on re-execution
        self.result_cache = ResultCache(result_cache_size)

    @property
    def dol(self) -> Optional[AccessLabeling]:
        """Historical alias for :attr:`labeling` (any backend, not only DOL)."""
        return self.labeling

    @classmethod
    def build(
        cls,
        doc: Document,
        matrix: Optional[AccessMatrix] = None,
        mode: str = READ,
        use_store: bool = False,
        page_size: int = 4096,
        buffer_capacity: int = 64,
        store_path: Optional[str] = None,
        labeling: str = DEFAULT_BACKEND,
        exec_mode: str = "batch",
        codec=None,
    ) -> "QueryEngine":
        """Construct an engine, optionally with labeling and block storage.

        ``labeling`` names the access-labeling backend (``"dol"``,
        ``"cam"``, or ``"naive"``) built from ``matrix``; ``exec_mode``
        the default operator set (``"batch"`` or ``"tuple"``); ``codec``
        the page codec for the block store (``use_store=True`` only).
        """
        built = (
            build_labeling(labeling, doc, matrix, mode)
            if matrix is not None
            else None
        )
        store = None
        if use_store:
            if built is None:
                raise ReproError("a store requires access control data")
            store = NoKStore(
                doc, built, path=store_path, page_size=page_size,
                buffer_capacity=buffer_capacity, codec=codec,
            )
        return cls(doc, labeling=built, store=store, exec_mode=exec_mode)

    # -- compilation & evaluation ---------------------------------------------

    def compile(
        self,
        query: Union[str, PatternTree],
        subject: Optional[Union[int, Sequence[int]]] = None,
        semantics: str = CHO,
        ordered: bool = False,
        limit: Optional[int] = None,
        strict: bool = True,
        snapshot: Optional[StoreSnapshot] = None,
        exec_mode: Optional[str] = None,
        use_run_cache: bool = True,
    ):
        """Compile a query into a :class:`~repro.exec.planner.PhysicalPlan`.

        The plan carries a fresh :class:`~repro.exec.context.ExecutionContext`
        (and so fresh statistics); execute it once via ``plan.execute()``
        (streaming) or ``plan.run()`` (drained :class:`QueryResult`).

        Over a block store the context binds to a
        :class:`~repro.storage.snapshot.StoreSnapshot` — by default the
        store's current one, or an explicitly pinned ``snapshot=`` — so
        the whole execution reads one consistent epoch even while updates
        commit concurrently. The data-independent compile artifacts
        (pattern parse + NoK decomposition) come from the engine's
        :class:`~repro.exec.plancache.PlanCache` for string queries,
        making compile/evaluate/stream safe and cheap to call from many
        threads at once.

        ``use_run_cache=False`` sheds the engine's *shared* run cache
        for this compilation (the context falls back to a private one):
        the serving layer's brownout tiers use it so a browning-out or
        possibly-corrupt service stops touching cross-request caches.
        """
        from repro.exec.planner import Planner

        if snapshot is None and self.store is not None:
            snapshot = self.store.snapshot()
        if snapshot is not None:
            doc, labeling, source = snapshot.doc, snapshot.labeling, snapshot
        else:
            doc, labeling, source = self.doc, self.labeling, None
        subjects = normalize_subjects(subject)
        class_id = None
        if subjects is not None and labeling is not None:
            class_id = self.class_directory.class_of(
                labeling, self._epoch_key(labeling, source), subjects
            )
        ctx = ExecutionContext(
            doc,
            labeling=labeling,
            store=source,
            index=self.index,
            subject=subject if isinstance(subject, int) else subjects,
            semantics=semantics,
            strict=strict,
            run_cache=self.run_cache if use_run_cache else None,
            class_id=class_id,
        )
        if isinstance(query, str):
            key = plan_key(query, semantics, subjects, ordered, class_id=class_id)
            cached = self.plan_cache.get(key)
            if cached is None:
                pattern = parse_query(query)
                dec = decompose(pattern)
                self.plan_cache.put(key, pattern, dec)
            else:
                pattern, dec = cached
        else:
            pattern = query
            dec = decompose(pattern)
        mode = self.exec_mode if exec_mode is None else exec_mode
        return Planner(ctx, exec_mode=mode).plan_from(
            pattern, dec, ordered=ordered, limit=limit
        )

    def _epoch_key(self, labeling, source):
        """The data-version key class and result caches partition by.

        Store-backed evaluation keys on the snapshot's store epoch (the
        snapshot labeling is a frozen clone whose ``id`` changes per
        snapshot — useless as identity); in-memory evaluation keys on
        the labeling object and its monotone ``runs_epoch``.
        """
        if source is not None:
            return ("store", source.epoch)
        return ("mem", id(labeling), labeling.runs_epoch)

    def access_class_of(
        self,
        subject: Union[int, Sequence[int]],
        snapshot: Optional[StoreSnapshot] = None,
    ) -> int:
        """Canonicalize a subject set to its current access-class id.

        The same resolution :meth:`compile` performs — exposed for the
        CLI's ``label --classes`` report, the class-collapse bench, and
        tests. Requires a labeling.
        """
        if snapshot is None and self.store is not None:
            snapshot = self.store.snapshot()
        labeling = snapshot.labeling if snapshot is not None else self.labeling
        if labeling is None:
            raise ReproError("access classes require an access labeling")
        return self.class_directory.class_of(
            labeling, self._epoch_key(labeling, snapshot), subject
        )

    def evaluate(
        self,
        query: Union[str, PatternTree],
        subject: Optional[Union[int, Sequence[int]]] = None,
        semantics: str = CHO,
        ordered: bool = False,
        limit: Optional[int] = None,
        strict: bool = True,
        snapshot: Optional[StoreSnapshot] = None,
        exec_mode: Optional[str] = None,
        use_result_cache: bool = False,
        use_run_cache: bool = True,
    ) -> QueryResult:
        """Evaluate a twig query, securely when ``subject`` is given.

        ``subject`` may be a single subject id, or a sequence of ids for
        user-level evaluation (the user's own subject plus her groups —
        rights are the union, per Section 4's footnote). ``ordered=True``
        switches to ordered pattern trees: a pattern node's child-axis
        children must bind to data siblings in pattern order (the
        following-sibling next-of-kin constraint the paper's experiments
        used). ``limit`` caps the number of distinct answers via a
        streaming ``Limit`` operator — the pipeline stops pulling (and
        checking, and reading pages) as soon as the cap is reached.
        ``strict=False`` degrades gracefully on storage corruption: a
        page that fails its checksum is quarantined and skipped, and the
        result's ``stats.corrupted_pages`` lists what was lost; the
        default raises :class:`~repro.errors.PageCorruptionError`.
        ``exec_mode`` overrides the engine's default operator set
        (``"batch"``/``"tuple"``) for this evaluation.
        ``use_result_cache=True`` additionally consults the engine's
        :class:`~repro.exec.resultcache.ResultCache` after compiling:
        when a class-equivalent user already asked this exact question
        of this exact epoch, the answer is returned without executing
        the plan (``stats.result_cache_hits`` records it). Off by
        default — benchmarks and cache-accounting tests rely on
        re-execution; the serving layer opts in.
        """
        if snapshot is None and self.store is not None:
            snapshot = self.store.snapshot()
        plan = self.compile(
            query, subject=subject, semantics=semantics, ordered=ordered,
            limit=limit, strict=strict, snapshot=snapshot, exec_mode=exec_mode,
            use_run_cache=use_run_cache,
        )
        ctx = plan.ctx
        result_key = None
        if use_result_cache and strict and isinstance(query, str):
            epoch_key = (
                self._epoch_key(ctx.labeling, ctx.store)
                if ctx.labeling is not None or ctx.store is not None
                else None
            )
            if epoch_key is not None:
                access = ctx.class_id if ctx.class_id is not None else ctx.subjects
                result_key = (
                    epoch_key, query, access, semantics, ordered, limit,
                )
                hit = self.result_cache.get(result_key)
                if hit is not None:
                    positions, n_bindings = hit
                    ctx.stats.result_cache_hits = 1
                    return QueryResult(
                        positions=positions,
                        n_bindings=n_bindings,
                        stats=ctx.stats,
                    )
        result = plan.run()
        if result_key is not None and not result.stats.corrupted_pages:
            self.result_cache.put(
                result_key, result.positions, result.n_bindings
            )
        return result

    def stream(
        self,
        query: Union[str, PatternTree],
        subject: Optional[Union[int, Sequence[int]]] = None,
        semantics: str = CHO,
        ordered: bool = False,
        limit: Optional[int] = None,
        strict: bool = True,
        snapshot: Optional[StoreSnapshot] = None,
        exec_mode: Optional[str] = None,
        use_run_cache: bool = True,
    ) -> Iterator[int]:
        """Lazily yield distinct returning-node positions as found.

        The streaming face of :meth:`evaluate`: positions arrive in
        discovery order (not sorted), and abandoning the iterator stops
        the pipeline early — no further candidates are matched, checked,
        or paged in. The serving layer's wire streams hand off here, so
        the brownout knob (``use_run_cache=False``) applies to streams
        exactly as it does to drained evaluations.
        """
        return self.compile(
            query, subject=subject, semantics=semantics, ordered=ordered,
            limit=limit, strict=strict, snapshot=snapshot, exec_mode=exec_mode,
            use_run_cache=use_run_cache,
        ).execute()

    def evaluate_path(
        self,
        query: Union[str, PatternTree],
        subject: Optional[Union[int, Sequence[int]]] = None,
        semantics: str = CHO,
    ) -> QueryResult:
        """Evaluate a query with the holistic PathStack strategy.

        An alternative to NoK decomposition: linear paths (the Q4–Q6
        class) run plain PathStack — one sorted candidate stream per step,
        linked stacks, a single pass; branching twigs run PathStack per
        root-to-leaf path and hash-merge the path solutions on their
        shared bindings. Secure evaluation pre-filters the streams through
        the access labeling. Unordered semantics only.
        """
        import time

        from repro.nok.pathstack import (
            evaluate_pathstack,
            evaluate_twig_paths,
            linear_steps,
        )

        if semantics not in SEMANTICS:
            raise ReproError(f"unknown semantics {semantics!r}")
        if subject is not None and self.labeling is None:
            raise ReproError("secure evaluation requires an access labeling")
        pattern = parse_query(query) if isinstance(query, str) else query

        ctx = ExecutionContext(
            self.doc, labeling=self.labeling, store=None, index=self.index,
            subject=subject, semantics=semantics,
        )
        stats = ctx.stats
        started = time.perf_counter()
        access = ctx.access
        if linear_steps(pattern) is not None:
            positions = evaluate_pathstack(self.doc, pattern, self.index, access)
        else:
            positions = evaluate_twig_paths(self.doc, pattern, self.index, access)
        stats.wall_time = time.perf_counter() - started
        return QueryResult(
            positions=positions, n_bindings=len(positions), stats=stats
        )

    # -- plan inspection ------------------------------------------------------

    def explain(self, query: Union[str, PatternTree]) -> str:
        """Describe how a query would be evaluated.

        Returns a human-readable report in two parts: the logical NoK
        plan (canonical query form, subtree decomposition with candidate
        counts from the tag index, bottom-up structural-join order) and
        the compiled physical operator tree.
        """
        pattern = parse_query(query) if isinstance(query, str) else query
        dec = decompose(pattern)
        lines = [f"query: {pattern.to_string()}"]
        lines.append(
            f"pattern nodes: {pattern.size()}, NoK subtrees: "
            f"{len(dec.subtrees)}, AD joins: {len(dec.edges)}"
        )
        for subtree in dec.subtrees:
            candidates = len(self._candidates(dec, subtree.index, pattern))
            marker = " (query root)" if subtree.index == 0 else ""
            returning = " [returning]" if subtree.contains_returning() else ""
            lines.append(
                f"  NoK subtree {subtree.index}: root <{subtree.root.tag}>, "
                f"{candidates} index candidates{marker}{returning}"
            )
        for edge in dec.edges:
            lines.append(
                f"  AD join: subtree {edge.parent_subtree} "
                f"node <{edge.parent_node.tag}> // subtree {edge.child_subtree}"
            )
        order = dec.join_order()
        if len(order) > 1:
            lines.append("join order (bottom-up): " + " -> ".join(map(str, order)))
        lines.append("physical plan:")
        lines.append(self.compile(pattern).explain())
        return "\n".join(lines)

    def explain_analyze(
        self,
        query: Union[str, PatternTree],
        subject: Optional[Union[int, Sequence[int]]] = None,
        semantics: str = CHO,
        ordered: bool = False,
        limit: Optional[int] = None,
        strict: bool = True,
        snapshot: Optional[StoreSnapshot] = None,
        exec_mode: Optional[str] = None,
    ) -> "tuple[QueryResult, str]":
        """Execute a query and return (result, annotated physical plan).

        The plan text carries per-operator output row counts, inclusive
        timings, and operator-specific counters (pages skipped, candidates
        denied, join pairs pruned; batch operators additionally report
        batch counts and rows per batch) — EXPLAIN ANALYZE for secure
        twig queries.
        """
        plan = self.compile(
            query, subject=subject, semantics=semantics, ordered=ordered,
            limit=limit, strict=strict, snapshot=snapshot, exec_mode=exec_mode,
        )
        result = plan.run()
        return result, plan.explain(analyze=True)

    # -- internals ------------------------------------------------------------

    def _candidates(
        self, dec: Decomposition, subtree_index: int, pattern: PatternTree
    ) -> List[int]:
        """Index candidates for one NoK subtree root (logical explain)."""
        subtree = dec.subtrees[subtree_index]
        root = subtree.root
        if subtree_index == 0 and pattern.root_axis == CHILD:
            if root.matches(self.doc.tag_name(0), self.doc.text(0)):
                return [0]
            return []
        if root.tag == "*":
            return list(range(len(self.doc)))
        if root.value is not None:
            return self.index.positions_with_value(root.tag, root.value)
        return self.index.positions(root.tag)
