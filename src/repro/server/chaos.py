"""One seed, faults at every layer: the chaos plan of the serving stack.

PR 2's :class:`~repro.storage.faults.FaultPlan` modeled storage failure
precisely but stopped at the pager. A served system can fail in more
places: the service can stall or shed, snapshot acquisition can fail, a
response can be torn mid-frame or the connection dropped, a client can
trickle its request bytes. :class:`ChaosPlan` extends the model across
those layers behind a single seed:

- **storage** — a nested :class:`FaultPlan` in chaos mode
  (``read_flip_rate``: seeded transient bit rot on the read path, caught
  by the page CRC downstream);
- **service** — latency spikes, forced
  :class:`~repro.errors.ServiceOverloaded`, snapshot-acquire failures
  (surfacing as retriable :class:`~repro.errors.ServiceUnavailable`),
  and a cache-poisoning guard mode that disables the result/run cache
  opt-ins for every request;
- **network** — the wire server consults :meth:`net_action` before each
  response: drop the connection without answering, tear the frame (write
  a prefix, then drop), or write slowly in small chunks.

All decisions come from one seeded RNG consumed under a lock, so a
scenario is reproducible from its seed: rerunning the same seed yields
the same fault *distribution* (under concurrency the interleaving — and
therefore which exact request eats which fault — follows the thread
schedule, which is why the chaos suite asserts invariants, not traces).

:meth:`disable` pauses every layer at once (the storage plan included),
letting a harness open a store cleanly, start the faults, and later
stop them to assert the service heals.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Dict

from repro.storage.faults import FaultPlan

#: what the wire server does with one response
NET_OK, NET_DROP, NET_TEAR, NET_SLOW = "ok", "drop", "tear", "slow"


@dataclass
class ChaosSpec:
    """Per-layer fault rates; all default to "no chaos".

    Rates are probabilities per consulted operation. A spec plus a seed
    fully determines a :class:`ChaosPlan`.
    """

    seed: int = 0
    # -- storage ----------------------------------------------------------
    #: probability a raw page/WAL read comes back with one flipped bit
    read_flip_rate: float = 0.0
    # -- service ----------------------------------------------------------
    #: probability a request sleeps ``latency_s`` before executing
    latency_rate: float = 0.0
    latency_s: float = 0.02
    #: probability admission rejects a request as ServiceOverloaded
    overload_rate: float = 0.0
    #: probability snapshot acquisition fails (ServiceUnavailable)
    snapshot_fail_rate: float = 0.0
    #: cache-poisoning guard: serve every request with the result/run
    #: cache opt-ins shed (exercises the uncached path under load)
    disable_caches: bool = False
    # -- network ----------------------------------------------------------
    #: probability a response connection is dropped before any byte
    drop_rate: float = 0.0
    #: probability a response frame is torn (prefix written, then drop)
    tear_rate: float = 0.0
    #: probability a response is written slowly in small chunks
    slow_write_rate: float = 0.0
    slow_write_delay_s: float = 0.002


class ChaosPlan:
    """Seeded, thread-safe fault injection spanning the serving stack."""

    def __init__(self, spec: ChaosSpec):
        self.spec = spec
        self._lock = threading.Lock()
        self._rng = random.Random(spec.seed)
        self._enabled = True
        self._injected: Dict[str, int] = {}
        #: shared by the pager and the WAL of the store under test; a
        #: distinct derived seed keeps its stream independent of the
        #: service/network decisions
        self.storage = FaultPlan(
            seed=spec.seed ^ 0x5EED_CA05, read_flip_rate=spec.read_flip_rate
        )

    # -- lifecycle ---------------------------------------------------------

    def enable(self) -> None:
        """Start (or resume) injecting faults at every layer."""
        with self._lock:
            self._enabled = True
        self.storage.enable()

    def disable(self) -> None:
        """Stop injecting everywhere; in-flight decisions already made
        (a sleep mid-request, a torn frame mid-write) still play out."""
        with self._lock:
            self._enabled = False
        self.storage.disable()

    @property
    def enabled(self) -> bool:
        with self._lock:
            return self._enabled

    # -- decision core -----------------------------------------------------

    def _roll(self, rate: float, kind: str) -> bool:
        if rate <= 0.0:
            return False
        with self._lock:
            if not self._enabled:
                return False
            hit = self._rng.random() < rate
            if hit:
                self._injected[kind] = self._injected.get(kind, 0) + 1
            return hit

    # -- service faults ----------------------------------------------------

    def service_latency(self) -> float:
        """Seconds a request should stall before running (0.0 = none)."""
        if self._roll(self.spec.latency_rate, "latency_spike"):
            return self.spec.latency_s
        return 0.0

    def should_overload(self) -> bool:
        """True when admission must shed this request as overloaded."""
        return self._roll(self.spec.overload_rate, "forced_overload")

    def should_fail_snapshot(self) -> bool:
        """True when snapshot acquisition must fail for this request."""
        return self._roll(self.spec.snapshot_fail_rate, "snapshot_fail")

    def caches_disabled(self) -> bool:
        """True while the cache-poisoning guard mode is active."""
        with self._lock:
            return self._enabled and self.spec.disable_caches

    # -- network faults ----------------------------------------------------

    def net_action(self) -> str:
        """What the wire server does with the next response frame."""
        if self._roll(self.spec.tear_rate, "torn_frame"):
            return NET_TEAR
        if self._roll(self.spec.drop_rate, "dropped_connection"):
            return NET_DROP
        if self._roll(self.spec.slow_write_rate, "slow_write"):
            return NET_SLOW
        return NET_OK

    # -- reporting ---------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Counts of injected faults so far, storage flips included."""
        with self._lock:
            report = dict(self._injected)
        report["storage_bit_flips"] = self.storage.flips_injected
        return report


def default_chaos(seed: int) -> ChaosPlan:
    """The stock mixed-fault plan behind ``serve --chaos-seed``.

    Moderate rates at every layer — enough that a few-minute session
    exercises degraded serving, shedding, retries, and reconnects
    without drowning the service.
    """
    return ChaosPlan(
        ChaosSpec(
            seed=seed,
            read_flip_rate=0.02,
            latency_rate=0.05,
            latency_s=0.05,
            overload_rate=0.05,
            snapshot_fail_rate=0.02,
            drop_rate=0.03,
            tear_rate=0.02,
            slow_write_rate=0.05,
        )
    )
