"""The asyncio front end: multiplexed NDJSON serving for 10k connections.

The threading server (:mod:`repro.server.netserver`) spends one OS
thread per connection and buffers every answer fully before its first
byte hits the wire. This server replaces both costs:

- **one event loop, any number of sockets** — connections are coroutine
  state, so ten thousand idle clients cost file descriptors, not
  threads;
- **wire-level fragment streaming** — a protocol v2 query with
  ``"stream": true`` is answered ``begin`` → ``fragment``* → ``end``,
  each fragment written as the executor produces it, so a huge answer
  never materializes server-side;
- **multiplexing** — a v2 connection runs many requests concurrently;
  every frame names its request ``id`` and responses interleave in
  completion order;
- **flow control** — every frame write awaits ``writer.drain()``, so a
  client that stops reading pauses *its own* streams at the transport's
  high-water mark instead of growing server memory. The service-side
  deadline only meters queue wait and fragment production time, so a
  slow reader is paused, not killed;
- **the same resilience contract** — admission, deadlines, brownout,
  and the corruption breaker all live in the shared
  :class:`~repro.server.service.QueryService`; a
  :class:`~repro.server.chaos.ChaosPlan` injects the identical
  drop/tear/slow network faults on the async write path, so the chaos
  matrix runs unchanged against either server.

Evaluation stays synchronous engine code: drained requests run on a
dispatch executor sized so every admissible request can block on the
service pool without starving the loop, and stream pulls run on the
*service pool itself* (``next()`` on the frame iterator never submits
pool work, so pulls cannot deadlock it) — the pool that bounds drained
evaluations bounds fragment production too.

Protocol v1 clients are served exactly as before: requests answered in
order, one frame per request, no ``hello`` needed.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple

from repro.errors import ReproError, ServiceError
from repro.server.chaos import NET_DROP, NET_SLOW, NET_TEAR, ChaosPlan
from repro.server.protocol import (
    PROTOCOL_V1,
    bad_request_response,
    decode_request,
    encode_error,
    encode_response,
    error_frame,
    hello_response,
    negotiate_version,
    reply_frame,
    request_id,
)
from repro.server.service import QueryService

#: chunk size for chaos-injected slow writes (matches the sync server)
_SLOW_CHUNK = 64

#: marks an oversized request line (drained through its newline)
_OVERSIZED = object()

#: marks frame-iterator exhaustion across the executor boundary
_DONE = object()


class AsyncQueryServer:
    """One listening socket, one event loop, one :class:`QueryService`.

    Use as an async context manager or via :func:`serve_async` (which
    adds a background thread + sync facade for tests and the CLI)::

        server = AsyncQueryServer(service)
        await server.start("127.0.0.1", 0)
        ...
        await server.aclose()
    """

    def __init__(
        self,
        service: QueryService,
        chaos: Optional[ChaosPlan] = None,
        max_request_bytes: Optional[int] = None,
    ):
        self.service = service
        self.chaos = chaos if chaos is not None else service.chaos
        #: frame cap: explicit argument > service config > module default
        self.max_request_bytes = (
            max_request_bytes
            if max_request_bytes is not None
            else service.config.max_request_bytes
        )
        # handle() blocks on the service pool (admission + future.result),
        # so it must never run *on* that pool; this executor is sized to
        # let every admissible request block concurrently with room for
        # shed requests to fail fast.
        self._dispatch = ThreadPoolExecutor(
            max_workers=service.config.workers + service.config.queue_depth + 4,
            thread_name_prefix="repro-adispatch",
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections = 0
        self._connections_peak = 0
        self._conn_lock = threading.Lock()
        self._conn_tasks: set = set()
        self.address: Optional[Tuple[str, int]] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start accepting; resolves ``port=0`` into ``address``."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            host,
            port,
            limit=self.max_request_bytes + 2,
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting, end live connections, close the listener
        (the service stays open — its owner closes it)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # wait_closed() does not end in-flight connection handlers
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._dispatch.shutdown(wait=False)

    @property
    def connections(self) -> int:
        with self._conn_lock:
            return self._connections

    @property
    def connections_peak(self) -> int:
        with self._conn_lock:
            return self._connections_peak

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        with self._conn_lock:
            self._connections += 1
            self._connections_peak = max(
                self._connections_peak, self._connections
            )
        current = asyncio.current_task()
        if current is not None:
            self._conn_tasks.add(current)
            current.add_done_callback(self._conn_tasks.discard)
        version = PROTOCOL_V1
        write_lock = asyncio.Lock()
        tasks: set = set()
        loop = asyncio.get_running_loop()
        try:
            while True:
                line = await self._read_line(reader)
                if line is None:
                    return
                if line is _OVERSIZED:
                    sent = await self._send(
                        writer,
                        write_lock,
                        bad_request_response(
                            f"request frame exceeds "
                            f"{self.max_request_bytes} bytes"
                        ),
                    )
                    if not sent:
                        return
                    continue
                if not line.strip():
                    continue
                try:
                    request = decode_request(line, self.max_request_bytes)
                except ServiceError as exc:
                    if not await self._send(
                        writer, write_lock, encode_error(exc)
                    ):
                        return
                    continue
                if request.get("op") == "hello":
                    try:
                        version = negotiate_version(request)
                        response = hello_response(version)
                    except ServiceError as exc:
                        response = encode_error(exc)
                    if not await self._send(writer, write_lock, response):
                        return
                    continue
                if version == PROTOCOL_V1:
                    # v1: strictly sequential request/response, in order.
                    response = await loop.run_in_executor(
                        self._dispatch, self.service.handle, request
                    )
                    if not await self._send(writer, write_lock, response):
                        return
                    continue
                # v2: every request needs an id; frames may interleave.
                try:
                    rid = request_id(request)
                except ServiceError as exc:
                    if not await self._send(
                        writer, write_lock, encode_error(exc)
                    ):
                        return
                    continue
                task = loop.create_task(
                    self._serve_v2(request, rid, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancels live handlers; finishing cleanly
            # here keeps the streams protocol callback from re-raising.
            pass
        finally:
            for task in list(tasks):
                task.cancel()
            try:
                if tasks:
                    await asyncio.gather(*tasks, return_exceptions=True)
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # a shutdown cancel landing inside this teardown must not
                # escape the handler — the connection is closing anyway
                writer.close()
            with self._conn_lock:
                self._connections -= 1

    async def _read_line(self, reader: asyncio.StreamReader):
        """One request line; ``None`` at EOF, ``_OVERSIZED`` for a frame
        past the cap (drained through its terminating newline so the
        connection can keep serving)."""
        try:
            return await reader.readuntil(b"\n")
        except asyncio.IncompleteReadError as exc:
            # EOF: a non-empty partial line without its newline is still
            # a request (mirrors readline() on the sync server).
            return exc.partial if exc.partial else None
        except asyncio.LimitOverrunError:
            while True:
                chunk = await reader.read(1 << 16)
                if not chunk:
                    return None
                newline = chunk.find(b"\n")
                if newline >= 0:
                    return _OVERSIZED

    # -- v2 request tasks ----------------------------------------------------

    async def _serve_v2(
        self,
        request: Dict[str, Any],
        rid: Any,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            if request.get("op") == "query" and request.get("stream"):
                await self._serve_stream(request, rid, writer, write_lock)
                return
            response = await loop.run_in_executor(
                self._dispatch, self.service.handle, request
            )
            await self._send(writer, write_lock, reply_frame(rid, response))
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError):
            pass

    async def _serve_stream(
        self,
        request: Dict[str, Any],
        rid: Any,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        """Drive one framed response stream over the wire.

        Frames are pulled from the service iterator on the service pool
        and written one at a time under the connection's write lock;
        ``drain()`` inside :meth:`_send` is the flow control. A typed
        failure — before ``begin`` or mid-stream — becomes one terminal
        ``error`` frame.
        """
        loop = asyncio.get_running_loop()
        frames = None
        try:
            frames = self.service.handle_stream(request)
        except ReproError as exc:
            await self._send(writer, write_lock, error_frame(rid, exc))
            return
        try:
            while True:
                pull = loop.run_in_executor(
                    self.service.executor, next, frames, _DONE
                )
                try:
                    frame = await pull
                except asyncio.CancelledError:
                    # The pull keeps running on its pool thread; close
                    # the iterator only once it lands (a generator can
                    # only be finalized between resumptions).
                    pull.add_done_callback(
                        lambda _f, it=frames: _close_quietly(it)
                    )
                    frames = None
                    raise
                if frame is _DONE:
                    return
                if not await self._send(
                    writer, write_lock, {"id": rid, **frame}
                ):
                    return
        except ReproError as exc:
            await self._send(writer, write_lock, error_frame(rid, exc))
        finally:
            if frames is not None:
                await loop.run_in_executor(None, _close_quietly, frames)

    # -- the write path ------------------------------------------------------

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        payload: Dict[str, Any],
    ) -> bool:
        """Write one frame; False means the connection is unusable.

        The chaos plan injects the same network faults as the threaded
        server — connection dropped before any byte, frame torn halfway,
        or written slowly in tiny chunks — against the asyncio transport.
        ``await drain()`` after every write is the backpressure point:
        when the peer's receive window is full this coroutine (and only
        the streams sharing its connection) pauses.
        """
        data = encode_response(payload)
        action = self.chaos.net_action() if self.chaos is not None else None
        async with write_lock:
            try:
                if action == NET_DROP:
                    writer.close()
                    return False
                if action == NET_TEAR:
                    writer.write(data[: max(1, len(data) // 2)])
                    await writer.drain()
                    writer.close()
                    return False
                if action == NET_SLOW:
                    delay = (
                        self.chaos.spec.slow_write_delay_s
                        if self.chaos is not None
                        else 0.0
                    )
                    for i in range(0, len(data), _SLOW_CHUNK):
                        writer.write(data[i : i + _SLOW_CHUNK])
                        await writer.drain()
                        if delay > 0.0:
                            await asyncio.sleep(delay)
                    return True
                writer.write(data)
                await writer.drain()
                return True
            except (ConnectionError, OSError):
                return False


def _close_quietly(frames) -> None:
    try:
        frames.close()
    except Exception:
        pass


class AsyncServing:
    """Sync facade over :class:`AsyncQueryServer` (and optionally the
    HTTP front end): owns a background thread running the event loop.

    Entering the context manager yields the running server; exiting
    deterministically tears everything down *including the service and
    its store* — the shutdown contract the CLI relies on.
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        chaos: Optional[ChaosPlan] = None,
        http_port: Optional[int] = None,
        max_request_bytes: Optional[int] = None,
    ):
        self.service = service
        self.server = AsyncQueryServer(
            service, chaos=chaos, max_request_bytes=max_request_bytes
        )
        self._http = None
        self._http_port = http_port
        self._host = host
        self._port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-aserve", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            loop.close()

    async def _main(self) -> None:
        self._stop = asyncio.Event()
        try:
            await self.server.start(self._host, self._port)
            if self._http_port is not None:
                from repro.server.http import HttpFrontEnd

                self._http = HttpFrontEnd(
                    self.server.service,
                    dispatch=self.server._dispatch,
                    max_request_bytes=self.server.max_request_bytes,
                )
                await self._http.start(self._host, self._http_port)
        except BaseException as exc:  # surface bind errors to the caller
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        await self._stop.wait()
        await self.server.aclose()
        if self._http is not None:
            await self._http.aclose()

    # -- sync surface --------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        assert self.server.address is not None
        return self.server.address

    @property
    def http_address(self) -> Optional[Tuple[str, int]]:
        return self._http.address if self._http is not None else None

    def shutdown(self) -> None:
        """Stop the listeners and join the loop thread (idempotent)."""
        if self._loop is not None and self._stop is not None:
            if not self._loop.is_closed():
                try:
                    self._loop.call_soon_threadsafe(self._stop.set)
                except RuntimeError:
                    pass
        self._thread.join(timeout=10.0)

    def close(self) -> None:
        """Full teardown: listeners, loop thread, service, store."""
        self.shutdown()
        self.service.close()
        store = self.service.engine.store
        if store is not None:
            store.close()

    def __enter__(self) -> "AsyncServing":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def serve_async(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    chaos: Optional[ChaosPlan] = None,
    http_port: Optional[int] = None,
    max_request_bytes: Optional[int] = None,
) -> AsyncServing:
    """Start the asyncio server on a background thread; returns the
    running :class:`AsyncServing` facade (context manager owns full
    teardown, service and store included)."""
    return AsyncServing(
        service,
        host=host,
        port=port,
        chaos=chaos,
        http_port=http_port,
        max_request_bytes=max_request_bytes,
    )


__all__ = ["AsyncQueryServer", "AsyncServing", "serve_async"]
