"""Concurrent, self-healing query serving on top of the secure NoK engine.

The package splits the serving layer into small pieces:

- :mod:`repro.server.service` — :class:`QueryService`, the embeddable
  core: a bounded worker pool executing engine calls with admission
  control, deadlines that cover queue wait, degraded serving behind a
  corruption circuit breaker, brownout cache shedding, and service
  metrics. Fully testable without any socket.
- :mod:`repro.server.health` — the health state machine: the
  :class:`CircuitBreaker`, brownout tiers, and the ``healthy`` /
  ``degraded`` / ``unavailable`` report.
- :mod:`repro.server.protocol` — the newline-delimited JSON request and
  response format, including the typed error registry both sides use.
- :mod:`repro.server.netserver` — a threading TCP server binding the
  protocol to a :class:`QueryService` (the ``repro-dol serve`` command).
- :mod:`repro.server.client` — :class:`ResilientClient`: deadline
  propagation, typed retries with full-jitter backoff, a retry budget,
  and reconnects.
- :mod:`repro.server.chaos` — :class:`ChaosPlan`, one seed injecting
  faults across storage, service, and network for resilience testing.
"""

from repro.server.chaos import ChaosPlan, ChaosSpec, default_chaos
from repro.server.client import ResilientClient, RetryPolicy
from repro.server.health import CircuitBreaker, HealthConfig, HealthModel
from repro.server.protocol import (
    ERROR_REGISTRY,
    decode_error,
    decode_request,
    encode_error,
    encode_response,
    is_retriable,
)
from repro.server.service import QueryService, ServiceConfig

__all__ = [
    "ERROR_REGISTRY",
    "ChaosPlan",
    "ChaosSpec",
    "CircuitBreaker",
    "HealthConfig",
    "HealthModel",
    "QueryService",
    "ResilientClient",
    "RetryPolicy",
    "ServiceConfig",
    "decode_error",
    "decode_request",
    "default_chaos",
    "encode_error",
    "encode_response",
    "is_retriable",
]
