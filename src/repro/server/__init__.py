"""Concurrent query serving on top of the secure NoK engine.

The package splits the serving layer into three small pieces:

- :mod:`repro.server.service` — :class:`QueryService`, the embeddable
  core: a bounded worker pool executing engine calls with admission
  control, per-request timeouts and service metrics. Fully testable
  without any socket.
- :mod:`repro.server.protocol` — the newline-delimited JSON request and
  response format the wire server speaks.
- :mod:`repro.server.netserver` — a threading TCP server binding the
  protocol to a :class:`QueryService` (the ``repro-dol serve`` command).
"""

from repro.server.protocol import decode_request, encode_response
from repro.server.service import QueryService, ServiceConfig

__all__ = [
    "QueryService",
    "ServiceConfig",
    "decode_request",
    "encode_response",
]
