"""A retrying NDJSON client that assumes the network and server misbehave.

:class:`ResilientClient` is the client half of the resilience contract.
It speaks the same one-JSON-object-per-line protocol as
:mod:`repro.server.netserver` but wraps every request in:

- **deadline propagation** — the caller's deadline bounds the whole
  exchange, retries included; the remaining time rides along in the
  request's ``timeout`` field so the server sheds work the client has
  already given up on (queue wait counts there too). When the deadline
  expires the client raises :class:`~repro.errors.ServiceTimeout` —
  terminal by definition: retrying past a deadline helps nobody.

- **an error taxonomy** — a structured ``{"ok": false}`` response is
  decoded back into its :class:`~repro.errors.ReproError` subclass via
  the protocol registry, and its ``retriable`` class attribute decides
  the next move: :class:`~repro.errors.ServiceOverloaded` and
  :class:`~repro.errors.ServiceUnavailable` back off and retry;
  :class:`~repro.errors.BadRequest` or a query error raise immediately
  (the request will never succeed). Connection-level failures — refused,
  reset, closed mid-response, torn frames that fail to parse — become
  retriable :class:`~repro.errors.ConnectionFailed` and force a
  reconnect.

- **exponential backoff with full jitter** — sleep ``U(0, min(cap,
  base·2^attempt))`` between attempts, so a thundering herd of clients
  retrying a recovering server decorrelates instead of stampeding.

- **a retry budget** — retries spend from a token budget that successes
  slowly refill; when the budget is dry the client fails fast with
  :class:`~repro.errors.RetryBudgetExhausted` rather than amplifying an
  outage with retry traffic.

Idempotency matters at this layer: a connection that dies *after* the
request was sent may have executed it server-side. Queries are safe to
resend; updates are not, so :meth:`update` marks its request
non-idempotent and the client refuses to retry it across a connection
failure (structured pre-execution errors like overload still retry).

:meth:`stream` extends the same rules to protocol v2 fragment streams:
a stream is a query, so a mid-stream connection failure is retried *from
scratch* on a fresh connection — the client re-issues the request,
verifies the new ``begin`` frame reports the same snapshot epoch (a
changed epoch means the retry would see different data, which is
terminal), and skips fragments whose ``seq`` it already delivered, so
the caller observes each fragment exactly once, in order. Updates are
never streamed and never retried past the wire.
"""

from __future__ import annotations

import json
import random
import socket
import threading
from dataclasses import dataclass
from time import monotonic, sleep
from typing import Any, Dict, Optional

from repro.errors import (
    ClientError,
    ConnectionFailed,
    ReproError,
    RetryBudgetExhausted,
    ServiceTimeout,
)
from repro.server.protocol import decode_error, encode_response


@dataclass
class RetryPolicy:
    """Backoff, budget, and deadline knobs of a :class:`ResilientClient`."""

    #: total attempts per request (first try included)
    max_attempts: int = 6
    #: first backoff ceiling; doubles each retry up to ``max_delay_s``
    base_delay_s: float = 0.02
    max_delay_s: float = 1.0
    #: default per-request deadline when the caller names none
    deadline_s: float = 10.0
    #: retry tokens shared across the client; each retry spends one
    retry_budget: float = 20.0
    #: tokens refunded per successful request (capped at the budget)
    budget_refund: float = 0.1
    #: TCP connect timeout (also bounded by the remaining deadline)
    connect_timeout_s: float = 2.0


class ResilientClient:
    """Deadline-propagating, reconnecting client for the NDJSON server.

    Thread-safe; all state (socket, budget, stats) is lock-guarded, and
    the socket serializes request/response exchanges, so one client can
    be shared — though the chaos harness gives each worker its own to
    exercise many connections.
    """

    def __init__(
        self,
        host: str,
        port: int,
        policy: Optional[RetryPolicy] = None,
        seed: int = 0,
    ):
        self.host = host
        self.port = port
        self.policy = policy or RetryPolicy()
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._budget = float(self.policy.retry_budget)
        #: observable behavior for tests and the chaos report
        self.stats: Dict[str, int] = {
            "requests": 0,
            "attempts": 0,
            "retries": 0,
            "reconnects": 0,
            "successes": 0,
            "failures": 0,
        }

    # -- connection management --------------------------------------------

    def _connect(self, remaining: float) -> None:
        timeout = max(0.01, min(self.policy.connect_timeout_s, remaining))
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=timeout
            )
        except OSError as exc:
            raise ConnectionFailed(
                f"connect to {self.host}:{self.port} failed: {exc}"
            ) from exc
        self._sock = sock
        self._reader = sock.makefile("rb")
        self.stats["reconnects"] += 1

    def _drop_connection(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        with self._lock:
            self._drop_connection()

    def __enter__(self) -> "ResilientClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the retry loop ----------------------------------------------------

    def request(
        self,
        request: Dict[str, Any],
        deadline_s: Optional[float] = None,
        idempotent: bool = True,
    ) -> Dict[str, Any]:
        """Send one request, retrying per policy; returns the ok-response.

        Raises the decoded server error when it is terminal, the last
        retriable error when attempts run out,
        :class:`~repro.errors.ServiceTimeout` at the deadline, and
        :class:`~repro.errors.RetryBudgetExhausted` when the budget is
        dry. ``idempotent=False`` additionally refuses to retry across
        a connection failure, where the request may already have
        executed server-side.
        """
        budget = deadline_s if deadline_s is not None else self.policy.deadline_s
        deadline = monotonic() + budget
        with self._lock:
            self.stats["requests"] += 1
        last_error: Optional[ReproError] = None
        for attempt in range(self.policy.max_attempts):
            remaining = deadline - monotonic()
            if remaining <= 0:
                self._count_failure()
                raise ServiceTimeout(budget) from last_error
            with self._lock:
                self.stats["attempts"] += 1
            sent = False
            try:
                payload = self._exchange(request, remaining)
            except ConnectionFailed as exc:
                sent = exc.request_sent
                last_error = exc
            else:
                if payload.get("ok"):
                    self._count_success()
                    return payload
                last_error = decode_error(payload)
            # -- decide whether this attempt's failure retries ------------
            if not getattr(last_error, "retriable", False):
                self._count_failure()
                raise last_error
            if sent and not idempotent:
                # The request reached the wire and may have executed; a
                # non-idempotent caller must not risk applying it twice.
                self._count_failure()
                raise last_error
            if attempt + 1 >= self.policy.max_attempts:
                break
            with self._lock:
                if self._budget < 1.0:
                    self._count_failure_locked()
                    raise RetryBudgetExhausted(
                        self.policy.retry_budget
                    ) from last_error
                self._budget -= 1.0
                self.stats["retries"] += 1
            delay = self._backoff(attempt)
            remaining = deadline - monotonic()
            if remaining <= 0:
                self._count_failure()
                raise ServiceTimeout(budget) from last_error
            sleep(min(delay, remaining))
        self._count_failure()
        assert last_error is not None
        raise last_error

    def _exchange(self, request: Dict[str, Any], remaining: float) -> Dict:
        """One send/receive on the (re)connected socket."""
        wire = dict(request)
        wire["timeout"] = round(remaining, 3)
        with self._lock:
            if self._sock is None:
                self._connect(remaining)
            sock, reader = self._sock, self._reader
            sent = False
            try:
                sock.settimeout(max(0.01, remaining))
                sock.sendall(encode_response(wire))
                sent = True
                line = reader.readline()
            except OSError as exc:
                self._drop_connection()
                raise ConnectionFailed(
                    f"exchange failed: {exc}", request_sent=sent
                ) from exc
            if not line:
                self._drop_connection()
                raise ConnectionFailed(
                    "connection closed before a response", request_sent=True
                )
            try:
                payload = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                # A torn frame is indistinguishable from garbage; the
                # stream offset is unknown, so the connection is dead.
                self._drop_connection()
                raise ConnectionFailed(
                    "torn or undecodable response frame", request_sent=True
                ) from exc
            if not isinstance(payload, dict):
                self._drop_connection()
                raise ConnectionFailed(
                    "response was not a JSON object", request_sent=True
                )
            return payload

    def _backoff(self, attempt: int) -> float:
        """Full-jitter exponential backoff (AWS-style)."""
        cap = min(
            self.policy.max_delay_s, self.policy.base_delay_s * (2.0**attempt)
        )
        with self._lock:
            return self._rng.random() * cap

    # -- bookkeeping -------------------------------------------------------

    def _count_success(self) -> None:
        with self._lock:
            self.stats["successes"] += 1
            self._budget = min(
                float(self.policy.retry_budget),
                self._budget + self.policy.budget_refund,
            )

    def _count_failure(self) -> None:
        with self._lock:
            self._count_failure_locked()

    def _count_failure_locked(self) -> None:
        self.stats["failures"] += 1

    @property
    def retry_budget_left(self) -> float:
        with self._lock:
            return self._budget

    # -- convenience verbs -------------------------------------------------

    def ping(self, deadline_s: Optional[float] = None) -> bool:
        return bool(self.request({"op": "ping"}, deadline_s).get("pong"))

    def query(
        self,
        query: str,
        subject: Optional[int] = None,
        deadline_s: Optional[float] = None,
        **extra: Any,
    ) -> Dict[str, Any]:
        request = {"op": "query", "query": query, **extra}
        if subject is not None:
            request["subject"] = subject
        return self.request(request, deadline_s)

    def update(
        self,
        kind: str,
        start: int,
        end: int,
        deadline_s: Optional[float] = None,
        **extra: Any,
    ) -> Dict[str, Any]:
        """Apply an update; never retried across a connection failure."""
        request = {"op": "update", "kind": kind, "start": start, "end": end}
        request.update(extra)
        return self.request(request, deadline_s, idempotent=False)

    def health(self, deadline_s: Optional[float] = None) -> Dict[str, Any]:
        return self.request({"op": "health"}, deadline_s)["health"]

    def metrics(self, deadline_s: Optional[float] = None) -> Dict[str, Any]:
        return self.request({"op": "metrics"}, deadline_s)["metrics"]

    # -- protocol v2 fragment streaming -------------------------------------

    def stream(
        self,
        query: str,
        subject: Optional[int] = None,
        deadline_s: Optional[float] = None,
        **extra: Any,
    ):
        """Stream one query's answer frames over protocol v2.

        Yields the response frames (``begin``, ``fragment``*, ``end``)
        as dictionaries, pulling each off the wire as the server writes
        it. Retries follow :meth:`request`'s rules extended to
        mid-stream failure: a fresh connection re-issues the query, the
        resumed stream must report the same epoch, and already-delivered
        fragments are skipped by ``seq`` — so across any number of
        retries every fragment is yielded exactly once. A typed terminal
        error raises; the deadline bounds the whole stream, retries
        included.

        The stream uses its own ephemeral v2 connection, so it never
        interleaves with (or holds locks against) this client's regular
        request/response traffic.
        """
        budget = deadline_s if deadline_s is not None else self.policy.deadline_s
        deadline = monotonic() + budget
        request: Dict[str, Any] = {
            "op": "query",
            "query": query,
            "stream": True,
        }
        if subject is not None:
            request["subject"] = subject
        request.update(extra)
        with self._lock:
            self.stats["requests"] += 1

        delivered = 0  # fragments already yielded to the caller
        epoch: Optional[int] = None
        begin_seen = False
        last_error: Optional[ReproError] = None
        for attempt in range(self.policy.max_attempts):
            remaining = deadline - monotonic()
            if remaining <= 0:
                self._count_failure()
                raise ServiceTimeout(budget) from last_error
            with self._lock:
                self.stats["attempts"] += 1
            try:
                for frame in self._stream_once(request, deadline):
                    kind = frame.get("frame")
                    if kind == "begin":
                        if epoch is None:
                            epoch = frame.get("epoch")
                        elif frame.get("epoch") != epoch:
                            # The store moved on between attempts: a
                            # resumed stream would mix epochs. Terminal.
                            raise ClientError(
                                f"stream epoch changed across retry "
                                f"({epoch} -> {frame.get('epoch')}); "
                                f"re-issue the query"
                            )
                        if begin_seen:
                            continue
                        begin_seen = True
                        yield frame
                    elif kind == "fragment":
                        if frame.get("seq", delivered) < delivered:
                            continue  # replayed by the retry; already out
                        delivered += 1
                        yield frame
                    elif kind == "end":
                        self._count_success()
                        yield frame
                        return
                    elif kind == "error":
                        raise decode_error(frame)
                # Server closed the stream without end: torn mid-stream.
                raise ConnectionFailed(
                    "stream ended without an end frame", request_sent=True
                )
            except ReproError as exc:
                last_error = exc
            if not getattr(last_error, "retriable", False):
                self._count_failure()
                raise last_error
            if attempt + 1 >= self.policy.max_attempts:
                break
            with self._lock:
                if self._budget < 1.0:
                    self._count_failure_locked()
                    raise RetryBudgetExhausted(
                        self.policy.retry_budget
                    ) from last_error
                self._budget -= 1.0
                self.stats["retries"] += 1
            delay = self._backoff(attempt)
            remaining = deadline - monotonic()
            if remaining <= 0:
                self._count_failure()
                raise ServiceTimeout(budget) from last_error
            sleep(min(delay, remaining))
        self._count_failure()
        assert last_error is not None
        raise last_error

    def _stream_once(self, request: Dict[str, Any], deadline: float):
        """One streaming attempt on a fresh v2 connection.

        Yields raw frames; raises :class:`ConnectionFailed` on transport
        failure and :class:`ServiceTimeout` when the deadline passes
        mid-stream. The connection is closed either way — streams never
        share a socket with anything.
        """
        remaining = deadline - monotonic()
        if remaining <= 0:
            raise ServiceTimeout(remaining)
        timeout = max(0.01, min(self.policy.connect_timeout_s, remaining))
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=timeout
            )
        except OSError as exc:
            raise ConnectionFailed(
                f"connect to {self.host}:{self.port} failed: {exc}"
            ) from exc
        with self._lock:
            self.stats["reconnects"] += 1
        reader = sock.makefile("rb")
        try:
            wire = dict(request)
            wire["timeout"] = round(max(0.01, deadline - monotonic()), 3)
            wire["id"] = 1
            try:
                sock.settimeout(max(0.01, deadline - monotonic()))
                sock.sendall(
                    encode_response({"op": "hello", "version": 2})
                    + encode_response(wire)
                )
                hello = reader.readline()
            except OSError as exc:
                raise ConnectionFailed(
                    f"stream exchange failed: {exc}", request_sent=True
                ) from exc
            if not hello:
                raise ConnectionFailed(
                    "connection closed during hello", request_sent=True
                )
            while True:
                remaining = deadline - monotonic()
                if remaining <= 0:
                    raise ServiceTimeout(remaining)
                try:
                    sock.settimeout(max(0.01, remaining))
                    line = reader.readline()
                except socket.timeout as exc:
                    raise ServiceTimeout(remaining) from exc
                except OSError as exc:
                    raise ConnectionFailed(
                        f"stream read failed: {exc}", request_sent=True
                    ) from exc
                if not line:
                    return  # server closed; caller decides if that is torn
                try:
                    frame = json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise ConnectionFailed(
                        "torn or undecodable stream frame", request_sent=True
                    ) from exc
                if not isinstance(frame, dict):
                    raise ConnectionFailed(
                        "stream frame was not a JSON object", request_sent=True
                    )
                yield frame
                if frame.get("frame") in ("end", "error"):
                    return
        finally:
            try:
                reader.close()
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


__all__ = ["ClientError", "ResilientClient", "RetryPolicy"]
