"""TCP front end: newline-delimited JSON over a threading socket server.

Each connection gets its own handler thread reading request lines;
evaluation itself happens on the :class:`~repro.server.service.QueryService`
pool, so the *service* — not the number of open sockets — bounds the
concurrent work. Connection threads merely block on their request's
future, and a shed request is answered in-band without occupying a
worker.
"""

from __future__ import annotations

import socketserver
import threading
from typing import Tuple

from repro.errors import ServiceError
from repro.server.protocol import decode_request, encode_response, error_response
from repro.server.service import QueryService


class _RequestHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        service: QueryService = self.server.service  # type: ignore[attr-defined]
        while True:
            line = self.rfile.readline()
            if not line:
                return
            if not line.strip():
                continue
            try:
                request = decode_request(line)
            except ServiceError as exc:
                self.wfile.write(encode_response(error_response(exc)))
                continue
            response = service.handle(request)
            try:
                self.wfile.write(encode_response(response))
            except (BrokenPipeError, ConnectionResetError):
                return


class QueryServer(socketserver.ThreadingTCPServer):
    """One listening socket bound to one :class:`QueryService`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: QueryService):
        super().__init__(address, _RequestHandler)
        self.service = service

    @property
    def address(self) -> Tuple[str, int]:
        """The actually bound (host, port) — port 0 resolves here."""
        return self.server_address[:2]


def serve(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 8787,
    background: bool = False,
) -> QueryServer:
    """Start serving; blocks unless ``background`` (tests use that).

    Returns the server either way — callers own ``shutdown()`` /
    ``server_close()``.
    """
    server = QueryServer((host, port), service)
    if background:
        thread = threading.Thread(
            target=server.serve_forever, name="repro-serve", daemon=True
        )
        thread.start()
        return server
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.server_close()
    return server
