"""TCP front end: newline-delimited JSON over a threading socket server.

Each connection gets its own handler thread reading request lines;
evaluation itself happens on the :class:`~repro.server.service.QueryService`
pool, so the *service* — not the number of open sockets — bounds the
concurrent work. Connection threads merely block on their request's
future, and a shed request is answered in-band without occupying a
worker.

The handler is written to survive hostile input: request lines are read
with a hard length cap (an oversized frame is drained and answered with
a structured ``BadRequest`` instead of buffering without bound),
malformed JSON is answered in-band on the same connection, and a client
disconnecting mid-anything only ends *its* handler thread. With a
:class:`~repro.server.chaos.ChaosPlan` attached, the server also
injects network-level faults on the response path — dropped
connections, torn frames, slow chunked writes — which is how the chaos
suite exercises the client's reconnect and retry logic.
"""

from __future__ import annotations

import socketserver
import threading
import time
from typing import Optional, Tuple

from repro.errors import ServiceError
from repro.server.chaos import NET_DROP, NET_SLOW, NET_TEAR, ChaosPlan
from repro.server.protocol import (
    bad_request_response,
    decode_request,
    encode_error,
    encode_response,
)
from repro.server.service import QueryService

#: chunk size for chaos-injected slow writes
_SLOW_CHUNK = 64


class _RequestHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        service: QueryService = self.server.service  # type: ignore[attr-defined]
        chaos: Optional[ChaosPlan] = self.server.chaos  # type: ignore[attr-defined]
        cap: int = self.server.max_request_bytes  # type: ignore[attr-defined]
        while True:
            # +2 leaves room for the newline (and detecting "too long"):
            # a line longer than the cap comes back without a trailing
            # newline and is handled as oversized below.
            line = self.rfile.readline(cap + 2)
            if not line:
                return
            if len(line) > cap:
                if not self._drain_oversized(line, cap):
                    return
                if not self._send(
                    bad_request_response(
                        f"request frame exceeds {cap} bytes"
                    ),
                    chaos,
                ):
                    return
                continue
            if not line.strip():
                continue
            try:
                request = decode_request(line, cap)
            except ServiceError as exc:
                # Malformed frame: answer in-band, keep the connection —
                # one bad request must not tear down a pipelined client.
                if not self._send(encode_error(exc), chaos):
                    return
                continue
            response = service.handle(request)
            if not self._send(response, chaos):
                return

    def _drain_oversized(self, line: bytes, cap: int) -> bool:
        """Discard the rest of an over-long frame up to its newline.

        Returns False when the connection ended mid-frame.
        """
        while not line.endswith(b"\n"):
            line = self.rfile.readline(cap + 2)
            if not line:
                return False
        return True

    def _send(self, response: dict, chaos: Optional[ChaosPlan]) -> bool:
        """Write one response frame; returns False to close the connection.

        The chaos plan may order the frame dropped (connection closed
        before any byte), torn (a prefix written, then closed), or
        written slowly in small chunks — the client-visible failure
        modes of a flaky network, produced deterministically.
        """
        payload = encode_response(response)
        action = chaos.net_action() if chaos is not None else None
        try:
            if action == NET_DROP:
                return False
            if action == NET_TEAR:
                self.wfile.write(payload[: max(1, len(payload) // 2)])
                self.wfile.flush()
                return False
            if action == NET_SLOW:
                delay = chaos.spec.slow_write_delay_s if chaos else 0.0
                for i in range(0, len(payload), _SLOW_CHUNK):
                    self.wfile.write(payload[i : i + _SLOW_CHUNK])
                    self.wfile.flush()
                    if delay > 0.0:
                        time.sleep(delay)
                return True
            self.wfile.write(payload)
            return True
        except (BrokenPipeError, ConnectionResetError, OSError):
            return False


class QueryServer(socketserver.ThreadingTCPServer):
    """One listening socket bound to one :class:`QueryService`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: QueryService,
        chaos: Optional[ChaosPlan] = None,
        max_request_bytes: Optional[int] = None,
    ):
        super().__init__(address, _RequestHandler)
        self.service = service
        #: defaults to the service's plan so `serve --chaos-seed` wires
        #: every layer from one object
        self.chaos = chaos if chaos is not None else service.chaos
        #: frame cap: explicit argument > service config > module default
        self.max_request_bytes = (
            max_request_bytes
            if max_request_bytes is not None
            else service.config.max_request_bytes
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The actually bound (host, port) — port 0 resolves here."""
        return self.server_address[:2]

    # -- deterministic teardown -------------------------------------------

    def close_all(self) -> None:
        """Stop serving and close the service *and its store*.

        ``server_close()`` alone (what Ctrl-C used to run) closes the
        listening socket but leaks the service pool and leaves the store
        without a clean shutdown; this is the full chain, idempotent at
        every link.
        """
        self.shutdown()
        self.server_close()
        self.service.close()
        store = self.service.engine.store
        if store is not None:
            store.close()

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close_all()


def serve(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 8787,
    background: bool = False,
    chaos: Optional[ChaosPlan] = None,
) -> QueryServer:
    """Start serving; blocks unless ``background`` (tests use that).

    Returns the server either way — callers own ``shutdown()`` /
    ``server_close()``.
    """
    server = QueryServer((host, port), service, chaos=chaos)
    if background:
        thread = threading.Thread(
            target=server.serve_forever, name="repro-serve", daemon=True
        )
        thread.start()
        return server
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        # full teardown: socket, service pool, store — not just the socket
        server.server_close()
        server.service.close()
        store = server.service.engine.store
        if store is not None:
            store.close()
    return server
