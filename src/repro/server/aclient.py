"""The asyncio variant of :class:`~repro.server.client.ResilientClient`.

Same protocol, same resilience contract — deadline propagation, the
typed-error taxonomy, full-jitter exponential backoff, the shared retry
budget, idempotency rules (queries retry, updates never retry past the
wire) — driven by coroutines instead of blocking sockets, so a load
generator or async application can run thousands of concurrent clients
on one event loop.

Two things differ from the sync client by design:

- the connection speaks **protocol v2** after an initial ``hello``:
  every request carries an ``id`` and plain requests are answered with
  ``reply`` frames, which is what lets one connection multiplex many
  in-flight coroutines' requests;
- :meth:`stream` is an async generator over ``begin``/``fragment``/
  ``end`` frames with the same retry-from-scratch + epoch-check +
  seq-dedup rules as the sync :meth:`ResilientClient.stream`.

Not thread-safe — an instance belongs to one event loop, like every
asyncio object.
"""

from __future__ import annotations

import asyncio
import json
import random
from time import monotonic
from typing import Any, AsyncIterator, Dict, Optional

from repro.errors import (
    ClientError,
    ConnectionFailed,
    ReproError,
    RetryBudgetExhausted,
    ServiceTimeout,
)
from repro.server.client import RetryPolicy
from repro.server.protocol import decode_error, encode_response

#: stream-reader line limit for response frames (fragments can be big)
_RESPONSE_LIMIT = 16 << 20


class AsyncResilientClient:
    """Multiplexing, deadline-propagating async client for protocol v2."""

    def __init__(
        self,
        host: str,
        port: int,
        policy: Optional[RetryPolicy] = None,
        seed: int = 0,
    ):
        self.host = host
        self.port = port
        self.policy = policy or RetryPolicy()
        self._rng = random.Random(seed)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._budget = float(self.policy.retry_budget)
        self._next_id = 0
        #: request id -> future resolving to its reply frame
        self._pending: Dict[Any, asyncio.Future] = {}
        self._reader_task: Optional[asyncio.Task] = None
        self._conn_lock = asyncio.Lock()
        self.stats: Dict[str, int] = {
            "requests": 0,
            "attempts": 0,
            "retries": 0,
            "reconnects": 0,
            "successes": 0,
            "failures": 0,
        }

    # -- connection management ----------------------------------------------

    async def _connect(self, remaining: float) -> None:
        timeout = max(0.01, min(self.policy.connect_timeout_s, remaining))
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(
                    self.host, self.port, limit=_RESPONSE_LIMIT
                ),
                timeout,
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise ConnectionFailed(
                f"connect to {self.host}:{self.port} failed: {exc}"
            ) from exc
        writer.write(encode_response({"op": "hello", "version": 2}))
        try:
            await writer.drain()
            hello = await asyncio.wait_for(
                reader.readline(), max(0.01, remaining)
            )
        except (OSError, asyncio.TimeoutError) as exc:
            writer.close()
            raise ConnectionFailed(f"hello failed: {exc}") from exc
        if not hello:
            writer.close()
            raise ConnectionFailed("connection closed during hello")
        self._reader, self._writer = reader, writer
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop(reader)
        )
        self.stats["reconnects"] += 1

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        """Demultiplex response frames to their waiting requests."""
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    frame = json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    break  # torn frame: offset unknown, connection dead
                if not isinstance(frame, dict):
                    break
                waiter = self._pending.get(frame.get("id"))
                if waiter is not None and not waiter.done():
                    waiter.set_result(frame)
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            return
        # Connection is gone: fail everything still in flight.
        self._drop_connection(
            ConnectionFailed("connection lost", request_sent=True)
        )

    def _drop_connection(self, exc: Optional[ConnectionFailed] = None) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        self._reader = None
        if self._reader_task is not None and not self._reader_task.done():
            self._reader_task.cancel()
        self._reader_task = None
        if exc is not None:
            for waiter in list(self._pending.values()):
                if not waiter.done():
                    waiter.set_exception(exc)
        self._pending.clear()

    async def aclose(self) -> None:
        task = self._reader_task
        self._drop_connection()
        if task is not None:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass

    async def __aenter__(self) -> "AsyncResilientClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    # -- the retry loop -------------------------------------------------------

    async def request(
        self,
        request: Dict[str, Any],
        deadline_s: Optional[float] = None,
        idempotent: bool = True,
    ) -> Dict[str, Any]:
        """Send one request, retrying per policy; returns the ok-reply.

        Mirrors the sync client's :meth:`request` contract exactly; many
        coroutines may call it concurrently — their requests multiplex
        over the one connection and complete in any order.
        """
        budget = deadline_s if deadline_s is not None else self.policy.deadline_s
        deadline = monotonic() + budget
        self.stats["requests"] += 1
        last_error: Optional[ReproError] = None
        for attempt in range(self.policy.max_attempts):
            remaining = deadline - monotonic()
            if remaining <= 0:
                self.stats["failures"] += 1
                raise ServiceTimeout(budget) from last_error
            self.stats["attempts"] += 1
            sent = False
            try:
                payload = await self._exchange(request, remaining)
            except ConnectionFailed as exc:
                sent = exc.request_sent
                last_error = exc
            else:
                if payload.get("ok"):
                    self.stats["successes"] += 1
                    self._budget = min(
                        float(self.policy.retry_budget),
                        self._budget + self.policy.budget_refund,
                    )
                    return payload
                last_error = decode_error(payload)
            if not getattr(last_error, "retriable", False):
                self.stats["failures"] += 1
                raise last_error
            if sent and not idempotent:
                self.stats["failures"] += 1
                raise last_error
            if attempt + 1 >= self.policy.max_attempts:
                break
            if self._budget < 1.0:
                self.stats["failures"] += 1
                raise RetryBudgetExhausted(
                    self.policy.retry_budget
                ) from last_error
            self._budget -= 1.0
            self.stats["retries"] += 1
            delay = self._rng.random() * min(
                self.policy.max_delay_s, self.policy.base_delay_s * 2.0**attempt
            )
            remaining = deadline - monotonic()
            if remaining <= 0:
                self.stats["failures"] += 1
                raise ServiceTimeout(budget) from last_error
            await asyncio.sleep(min(delay, remaining))
        self.stats["failures"] += 1
        assert last_error is not None
        raise last_error

    async def _exchange(
        self, request: Dict[str, Any], remaining: float
    ) -> Dict[str, Any]:
        """One multiplexed send/await-reply on the shared connection."""
        async with self._conn_lock:
            if self._writer is None:
                await self._connect(remaining)
        assert self._writer is not None
        self._next_id += 1
        rid = self._next_id
        wire = dict(request)
        wire["timeout"] = round(remaining, 3)
        wire["id"] = rid
        waiter: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rid] = waiter
        sent = False
        try:
            try:
                self._writer.write(encode_response(wire))
                await self._writer.drain()
                sent = True
            except (ConnectionError, OSError) as exc:
                self._drop_connection()
                raise ConnectionFailed(
                    f"exchange failed: {exc}", request_sent=sent
                ) from exc
            try:
                frame = await asyncio.wait_for(waiter, max(0.01, remaining))
            except asyncio.TimeoutError as exc:
                raise ServiceTimeout(remaining) from exc
            return frame
        finally:
            self._pending.pop(rid, None)

    # -- fragment streaming ---------------------------------------------------

    async def stream(
        self,
        query: str,
        subject: Optional[int] = None,
        deadline_s: Optional[float] = None,
        **extra: Any,
    ) -> AsyncIterator[Dict[str, Any]]:
        """Async stream of one query's frames, with mid-stream retry.

        Yields ``begin``, ``fragment``*, ``end`` exactly once each (per
        seq) across any number of retries; the same epoch-consistency
        and never-resume-a-changed-stream rules as the sync client.
        Runs on its own ephemeral connection.
        """
        budget = deadline_s if deadline_s is not None else self.policy.deadline_s
        deadline = monotonic() + budget
        request: Dict[str, Any] = {
            "op": "query",
            "query": query,
            "stream": True,
        }
        if subject is not None:
            request["subject"] = subject
        request.update(extra)
        self.stats["requests"] += 1

        delivered = 0
        epoch: Optional[int] = None
        begin_seen = False
        last_error: Optional[ReproError] = None
        for attempt in range(self.policy.max_attempts):
            remaining = deadline - monotonic()
            if remaining <= 0:
                self.stats["failures"] += 1
                raise ServiceTimeout(budget) from last_error
            self.stats["attempts"] += 1
            try:
                async for frame in self._stream_once(request, deadline):
                    kind = frame.get("frame")
                    if kind == "begin":
                        if epoch is None:
                            epoch = frame.get("epoch")
                        elif frame.get("epoch") != epoch:
                            raise ClientError(
                                f"stream epoch changed across retry "
                                f"({epoch} -> {frame.get('epoch')}); "
                                f"re-issue the query"
                            )
                        if begin_seen:
                            continue
                        begin_seen = True
                        yield frame
                    elif kind == "fragment":
                        if frame.get("seq", delivered) < delivered:
                            continue
                        delivered += 1
                        yield frame
                    elif kind == "end":
                        self.stats["successes"] += 1
                        yield frame
                        return
                    elif kind == "error":
                        raise decode_error(frame)
                raise ConnectionFailed(
                    "stream ended without an end frame", request_sent=True
                )
            except ReproError as exc:
                last_error = exc
            if not getattr(last_error, "retriable", False):
                self.stats["failures"] += 1
                raise last_error
            if attempt + 1 >= self.policy.max_attempts:
                break
            if self._budget < 1.0:
                self.stats["failures"] += 1
                raise RetryBudgetExhausted(
                    self.policy.retry_budget
                ) from last_error
            self._budget -= 1.0
            self.stats["retries"] += 1
            delay = self._rng.random() * min(
                self.policy.max_delay_s, self.policy.base_delay_s * 2.0**attempt
            )
            remaining = deadline - monotonic()
            if remaining <= 0:
                self.stats["failures"] += 1
                raise ServiceTimeout(budget) from last_error
            await asyncio.sleep(min(delay, remaining))
        self.stats["failures"] += 1
        assert last_error is not None
        raise last_error

    async def _stream_once(
        self, request: Dict[str, Any], deadline: float
    ) -> AsyncIterator[Dict[str, Any]]:
        """One attempt on a fresh connection; closed on every exit."""
        remaining = deadline - monotonic()
        if remaining <= 0:
            raise ServiceTimeout(remaining)
        timeout = max(0.01, min(self.policy.connect_timeout_s, remaining))
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(
                    self.host, self.port, limit=_RESPONSE_LIMIT
                ),
                timeout,
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise ConnectionFailed(
                f"connect to {self.host}:{self.port} failed: {exc}"
            ) from exc
        self.stats["reconnects"] += 1
        try:
            wire = dict(request)
            wire["timeout"] = round(max(0.01, deadline - monotonic()), 3)
            wire["id"] = 1
            try:
                writer.write(
                    encode_response({"op": "hello", "version": 2})
                    + encode_response(wire)
                )
                await writer.drain()
                hello = await asyncio.wait_for(
                    reader.readline(), max(0.01, deadline - monotonic())
                )
            except (OSError, asyncio.TimeoutError) as exc:
                raise ConnectionFailed(
                    f"stream exchange failed: {exc}", request_sent=True
                ) from exc
            if not hello:
                raise ConnectionFailed(
                    "connection closed during hello", request_sent=True
                )
            while True:
                remaining = deadline - monotonic()
                if remaining <= 0:
                    raise ServiceTimeout(remaining)
                try:
                    line = await asyncio.wait_for(
                        reader.readline(), max(0.01, remaining)
                    )
                except asyncio.TimeoutError as exc:
                    raise ServiceTimeout(remaining) from exc
                except (ConnectionError, OSError) as exc:
                    raise ConnectionFailed(
                        f"stream read failed: {exc}", request_sent=True
                    ) from exc
                if not line:
                    return
                try:
                    frame = json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise ConnectionFailed(
                        "torn or undecodable stream frame", request_sent=True
                    ) from exc
                if not isinstance(frame, dict):
                    raise ConnectionFailed(
                        "stream frame was not a JSON object", request_sent=True
                    )
                yield frame
                if frame.get("frame") in ("end", "error"):
                    return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- convenience verbs ----------------------------------------------------

    async def ping(self, deadline_s: Optional[float] = None) -> bool:
        reply = await self.request({"op": "ping"}, deadline_s)
        return bool(reply.get("pong"))

    async def query(
        self,
        query: str,
        subject: Optional[int] = None,
        deadline_s: Optional[float] = None,
        **extra: Any,
    ) -> Dict[str, Any]:
        request = {"op": "query", "query": query, **extra}
        if subject is not None:
            request["subject"] = subject
        return await self.request(request, deadline_s)

    async def update(
        self,
        kind: str,
        start: int,
        end: int,
        deadline_s: Optional[float] = None,
        **extra: Any,
    ) -> Dict[str, Any]:
        """Apply an update; never retried across a connection failure."""
        request = {"op": "update", "kind": kind, "start": start, "end": end}
        request.update(extra)
        return await self.request(request, deadline_s, idempotent=False)

    async def health(self, deadline_s: Optional[float] = None) -> Dict[str, Any]:
        reply = await self.request({"op": "health"}, deadline_s)
        return reply["health"]

    async def metrics(self, deadline_s: Optional[float] = None) -> Dict[str, Any]:
        reply = await self.request({"op": "metrics"}, deadline_s)
        return reply["metrics"]

    @property
    def retry_budget_left(self) -> float:
        return self._budget


__all__ = ["AsyncResilientClient"]
