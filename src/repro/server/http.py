"""A thin HTTP/1.1 JSON front end over the same :class:`QueryService`.

Three routes, no framework, no new dependencies:

- ``POST /query`` — body is the query request JSON (same fields as the
  NDJSON protocol's ``query`` op, minus ``op``). A plain request is
  answered with one JSON document; with ``"stream": true`` the answer
  is chunked NDJSON — one ``begin``/``fragment``/``end`` (or terminal
  ``error``) frame per line, written as the executor produces them, so
  the response streams with the same bounded-memory property as
  protocol v2.
- ``GET /health`` — the service health report (``503`` while the
  service is closed, ``200`` otherwise, state in the body either way).
- ``GET /metrics`` — the full service metrics dictionary.

Typed errors map onto status codes (overload → 503, deadline → 504,
bad request → 400, access control → 403, everything else → 500) while
the body keeps the full wire error shape, so HTTP clients get both the
transport-level signal and the taxonomy.

The implementation reads one request per connection (``Connection:
close``) — the front end targets dashboards, load generators, and
`curl`, not high-fan-in serving; that is protocol v2's job.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple

from repro.errors import (
    AccessControlError,
    BadRequest,
    QueryParseError,
    ReproError,
    ServiceOverloaded,
    ServiceTimeout,
    ServiceUnavailable,
)
from repro.server.protocol import MAX_REQUEST_BYTES, encode_error
from repro.server.service import QueryService

#: request-line/header section cap (separate from the JSON body cap)
_MAX_HEAD_BYTES = 16 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def status_for(exc: BaseException) -> int:
    """The HTTP status a typed service error maps onto."""
    if isinstance(exc, (ServiceOverloaded, ServiceUnavailable)):
        return 503
    if isinstance(exc, ServiceTimeout):
        return 504
    if isinstance(exc, AccessControlError):
        return 403
    if isinstance(exc, (BadRequest, QueryParseError)):
        return 400
    return 500


class HttpFrontEnd:
    """asyncio HTTP listener bound to one service (and, usually, sharing
    the :class:`AsyncQueryServer`'s dispatch executor)."""

    def __init__(
        self,
        service: QueryService,
        dispatch: Optional[ThreadPoolExecutor] = None,
        max_request_bytes: Optional[int] = None,
    ):
        self.service = service
        self.max_request_bytes = (
            max_request_bytes
            if max_request_bytes is not None
            else service.config.max_request_bytes
        )
        self._own_dispatch = dispatch is None
        self._dispatch = dispatch or ThreadPoolExecutor(
            max_workers=service.config.workers + service.config.queue_depth + 4,
            thread_name_prefix="repro-http",
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_tasks: set = set()
        self.address: Optional[Tuple[str, int]] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection,
            host,
            port,
            limit=max(_MAX_HEAD_BYTES, self.max_request_bytes) + 2,
        )
        self.address = self._server.sockets[0].getsockname()[:2]

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._own_dispatch:
            self._dispatch.shutdown(wait=False)

    # -- request handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        current = asyncio.current_task()
        if current is not None:
            self._conn_tasks.add(current)
            current.add_done_callback(self._conn_tasks.discard)
        try:
            await self._handle_request(reader, writer)
        except (ConnectionError, OSError, asyncio.LimitOverrunError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readuntil(b"\r\n")
        except asyncio.IncompleteReadError:
            return
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            await self._respond_error(writer, 400, BadRequest("bad request line"))
            return
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        head_bytes = len(request_line)
        while True:
            line = await reader.readuntil(b"\r\n")
            head_bytes += len(line)
            if head_bytes > _MAX_HEAD_BYTES:
                await self._respond_error(
                    writer, 413, BadRequest("header section too large")
                )
                return
            if line == b"\r\n":
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

        if method == "GET" and path == "/health":
            report = self.service.health_report()
            status = 503 if report.get("closed") else 200
            await self._respond_json(writer, status, report)
            return
        if method == "GET" and path == "/metrics":
            loop = asyncio.get_running_loop()
            metrics = await loop.run_in_executor(
                self._dispatch, self.service.metrics
            )
            await self._respond_json(writer, 200, metrics)
            return
        if path == "/query":
            if method != "POST":
                await self._respond_error(
                    writer, 405, BadRequest("POST /query")
                )
                return
            await self._serve_query(reader, writer, headers)
            return
        await self._respond_error(writer, 404, BadRequest(f"no route {path}"))

    async def _serve_query(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        headers: Dict[str, str],
    ) -> None:
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            await self._respond_error(
                writer, 400, BadRequest("bad Content-Length")
            )
            return
        if length > self.max_request_bytes:
            await self._respond_error(
                writer,
                413,
                BadRequest(
                    f"request body exceeds {self.max_request_bytes} bytes"
                ),
            )
            return
        body = await reader.readexactly(length) if length else b""
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
            if not isinstance(payload, dict):
                raise ValueError("body must be a JSON object")
        except (ValueError, UnicodeDecodeError) as exc:
            await self._respond_error(writer, 400, BadRequest(str(exc)))
            return

        request = {"op": "query", **payload}
        if payload.get("stream"):
            await self._stream_query(writer, request)
            return
        loop = asyncio.get_running_loop()
        response = await loop.run_in_executor(
            self._dispatch, self.service.handle, request
        )
        if response.get("ok"):
            await self._respond_json(writer, 200, response)
        else:
            status = status_for_name(str(response.get("error")))
            await self._respond_json(writer, status, response)

    async def _stream_query(
        self, writer: asyncio.StreamWriter, request: Dict[str, Any]
    ) -> None:
        """Chunked NDJSON: one frame per line, flow-controlled by drain()."""
        loop = asyncio.get_running_loop()
        frames = None
        head_sent = False
        try:
            frames = self.service.handle_stream(request)
        except ReproError as exc:
            await self._respond_error(writer, status_for(exc), exc)
            return
        done = object()
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/x-ndjson\r\n"
                b"Transfer-Encoding: chunked\r\n"
                b"Connection: close\r\n\r\n"
            )
            head_sent = True
            while True:
                pull = loop.run_in_executor(
                    self.service.executor, next, frames, done
                )
                try:
                    frame = await pull
                except asyncio.CancelledError:
                    pull.add_done_callback(
                        lambda _f, it=frames: _close_quietly(it)
                    )
                    frames = None
                    raise
                if frame is done:
                    break
                await self._write_chunk(writer, frame)
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except ReproError as exc:
            # Mid-stream failure: the status line is gone; emit the typed
            # error as the terminal frame, exactly like protocol v2.
            if head_sent:
                try:
                    await self._write_chunk(
                        writer, {"frame": "error", **encode_error(exc)}
                    )
                    writer.write(b"0\r\n\r\n")
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass
            else:
                await self._respond_error(writer, status_for(exc), exc)
        finally:
            if frames is not None:
                await loop.run_in_executor(None, _close_quietly, frames)

    async def _write_chunk(
        self, writer: asyncio.StreamWriter, frame: Dict[str, Any]
    ) -> None:
        line = (json.dumps(frame, separators=(",", ":")) + "\n").encode("utf-8")
        writer.write(f"{len(line):x}\r\n".encode("ascii"))
        writer.write(line)
        writer.write(b"\r\n")
        await writer.drain()

    # -- responses ----------------------------------------------------------

    async def _respond_json(
        self, writer: asyncio.StreamWriter, status: int, body: Dict[str, Any]
    ) -> None:
        data = json.dumps(body, separators=(",", ":")).encode("utf-8")
        reason = _REASONS.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("ascii")
        writer.write(head + data)
        await writer.drain()

    async def _respond_error(
        self, writer: asyncio.StreamWriter, status: int, exc: BaseException
    ) -> None:
        await self._respond_json(writer, status, encode_error(exc))


def status_for_name(name: str) -> int:
    """Map a wire error *name* (from an in-band response) to a status."""
    from repro.server.protocol import ERROR_REGISTRY

    cls = ERROR_REGISTRY.get(name)
    if cls is None:
        return 500
    exc = cls.__new__(cls)
    return status_for(exc)


def _close_quietly(frames) -> None:
    try:
        frames.close()
    except Exception:
        pass


__all__ = ["HttpFrontEnd", "status_for", "status_for_name"]
