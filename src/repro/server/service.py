"""The embeddable query service: a bounded pool over one engine.

:class:`QueryService` is the concurrency contract of the serving layer
made concrete:

- a fixed pool of worker threads executes engine calls; each call binds
  to the store's current :class:`~repro.storage.snapshot.StoreSnapshot`,
  so a request reads one consistent epoch end to end;
- admission control bounds *total* in-flight work at ``workers +
  queue_depth``; a request beyond that is shed immediately with
  :class:`~repro.errors.ServiceOverloaded` rather than queued without
  bound (fail fast beats unbounded latency);
- every request carries a deadline: a result not produced within the
  timeout raises :class:`~repro.errors.ServiceTimeout` to the caller.
  The worker itself cannot be killed mid-iterator — it finishes and its
  result is discarded — so the in-flight gauge stays honest: the slot
  counts as occupied until the worker actually returns;
- metrics aggregate request counts and latency with the engine's three
  cache layers (plan, run, result — all keyed on the access class, so
  their populations are bounded by #classes, not #users), the class
  directory's canonicalization counters, the store's buffer/latch
  counters and the current snapshot epoch, giving the serving picture
  in one dictionary.

:meth:`QueryService.handle` additionally speaks the wire protocol's
request dictionaries directly (``ping`` / ``query`` / ``update`` /
``metrics``), so the whole service is testable without opening a socket.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Dict, Optional

from repro.errors import ReproError, ServiceError, ServiceOverloaded, ServiceTimeout
from repro.nok.engine import QueryEngine
from repro.secure.semantics import CHO, SEMANTICS


@dataclass
class ServiceConfig:
    """Sizing knobs for a :class:`QueryService`."""

    workers: int = 4
    #: extra requests admitted beyond the busy workers before shedding
    queue_depth: int = 16
    #: per-request deadline in seconds (``None`` disables)
    timeout: Optional[float] = 30.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServiceError("service needs at least one worker")
        if self.queue_depth < 0:
            raise ServiceError("queue depth cannot be negative")
        if self.timeout is not None and self.timeout <= 0:
            raise ServiceError("timeout must be positive (or None)")


class QueryService:
    """Thread-safe query/update serving over one :class:`QueryEngine`."""

    def __init__(self, engine: QueryEngine, config: Optional[ServiceConfig] = None):
        self.engine = engine
        self.config = config or ServiceConfig()
        self._limit = self.config.workers + self.config.queue_depth
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-query"
        )
        self._lock = threading.Lock()
        self._inflight = 0
        self._closed = False
        # -- counters (all guarded by _lock) --
        self._requests = 0
        self._completed = 0
        self._failed = 0
        self._shed = 0
        self._timeouts = 0
        self._latency_total = 0.0
        self._latency_max = 0.0

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Stop accepting work and wait for in-flight requests."""
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution core ----------------------------------------------------

    def _submit(self, fn: Callable[[], Any], timeout: Optional[float]) -> Any:
        """Run ``fn`` on the pool under admission control + deadline."""
        with self._lock:
            if self._closed:
                raise ServiceError("service is closed")
            if self._inflight >= self._limit:
                self._shed += 1
                raise ServiceOverloaded(self._inflight, self._limit)
            self._inflight += 1
            self._requests += 1

        started = perf_counter()

        def run() -> Any:
            try:
                return fn()
            finally:
                elapsed = perf_counter() - started
                with self._lock:
                    self._inflight -= 1
                    self._latency_total += elapsed
                    self._latency_max = max(self._latency_max, elapsed)

        try:
            future = self._pool.submit(run)
        except BaseException:
            with self._lock:
                self._inflight -= 1
            raise
        deadline = timeout if timeout is not None else self.config.timeout
        try:
            result = future.result(timeout=deadline)
        except FutureTimeout:
            # The worker thread cannot be interrupted; it will finish and
            # release its slot on its own. The caller just stops waiting.
            with self._lock:
                self._timeouts += 1
                self._failed += 1
            raise ServiceTimeout(deadline) from None
        except BaseException:
            with self._lock:
                self._failed += 1
            raise
        with self._lock:
            self._completed += 1
        return result

    # -- public request API ------------------------------------------------

    def evaluate(
        self,
        query: str,
        subject=None,
        semantics: str = CHO,
        ordered: bool = False,
        limit: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Evaluate one query on the pool; returns a plain-data response.

        The worker pins the store's current snapshot first, so the
        response can name the epoch the answer is consistent with.
        """
        if semantics not in SEMANTICS:
            raise ServiceError(f"unknown semantics {semantics!r}")

        def work() -> Dict[str, Any]:
            store = self.engine.store
            snapshot = store.snapshot() if store is not None else None
            result = self.engine.evaluate(
                query,
                subject=subject,
                semantics=semantics,
                ordered=ordered,
                limit=limit,
                snapshot=snapshot,
                use_result_cache=True,
            )
            return {
                "positions": result.positions,
                "n_answers": result.n_answers,
                "epoch": snapshot.epoch if snapshot is not None else 0,
                "stats": {
                    "access_checks": result.stats.access_checks,
                    "probes_saved": result.stats.probes_saved,
                    "run_cache_hits": result.stats.run_cache_hits,
                    "run_cache_misses": result.stats.run_cache_misses,
                    "result_cache_hits": result.stats.result_cache_hits,
                    "logical_page_reads": result.stats.logical_page_reads,
                    "physical_page_reads": result.stats.physical_page_reads,
                    "access_class": result.stats.access_class,
                    "static_allow": result.stats.static_allow,
                    "static_deny": result.stats.static_deny,
                    "wall_time": result.stats.wall_time,
                },
            }

        return self._submit(work, timeout)

    def update(
        self,
        kind: str,
        start: int,
        end: int,
        subject: Optional[int] = None,
        value: Optional[bool] = None,
        mask: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Apply one Section 3.4 accessibility update through the pool.

        Updates serialize on the store's writer lock; running them on the
        same pool keeps the admission limit a bound on *all* service
        work, and gives updates the same deadline discipline as queries.
        """
        store = self.engine.store
        if store is None:
            raise ServiceError("service engine has no store to update")

        def work() -> Dict[str, Any]:
            if kind == "subject_range":
                if subject is None or value is None:
                    raise ServiceError(
                        "subject_range update needs subject= and value="
                    )
                cost = store.update_subject_range(start, end, subject, value)
            elif kind == "range_mask":
                if mask is None:
                    raise ServiceError("range_mask update needs mask=")
                cost = store.update_range_mask(start, end, mask)
            else:
                raise ServiceError(f"unknown update kind {kind!r}")
            return {
                "epoch": store.epoch,
                "pages_rewritten": cost.pages_rewritten,
                "transition_delta": cost.transition_delta,
            }

        return self._submit(work, timeout)

    def metrics(self) -> Dict[str, Any]:
        """One dictionary covering the whole serving stack."""
        with self._lock:
            served = self._completed
            report: Dict[str, Any] = {
                "requests": self._requests,
                "completed": served,
                "failed": self._failed,
                "shed": self._shed,
                "timeouts": self._timeouts,
                "inflight": self._inflight,
                "workers": self.config.workers,
                "admission_limit": self._limit,
                "latency_mean": (self._latency_total / served) if served else 0.0,
                "latency_max": self._latency_max,
            }
        report["plan_cache"] = self.engine.plan_cache.stats()
        report["run_cache"] = self.engine.run_cache.stats()
        report["result_cache"] = self.engine.result_cache.stats()
        report["classes"] = self.engine.class_directory.stats()
        store = self.engine.store
        if store is not None:
            report["epoch"] = store.epoch
            snap = store._snapshot
            report["snapshot_frozen_pages"] = (
                snap.frozen_page_count() if snap is not None else 0
            )
            report["buffer"] = store.buffer.stats.snapshot()
        return report

    # -- wire-protocol dispatch -------------------------------------------

    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Serve one protocol request dictionary; never raises.

        Errors come back as ``{"ok": false, "error": <class>, "message":
        ...}`` so one malformed or shed request cannot tear down a
        connection serving others.
        """
        try:
            if not isinstance(request, dict):
                raise ServiceError("request must be a JSON object")
            op = request.get("op")
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "metrics":
                return {"ok": True, "metrics": self.metrics()}
            if op == "query":
                query = request.get("query")
                if not isinstance(query, str) or not query:
                    raise ServiceError("query request needs a query string")
                body = self.evaluate(
                    query,
                    subject=request.get("subject"),
                    semantics=request.get("semantics", CHO),
                    ordered=bool(request.get("ordered", False)),
                    limit=request.get("limit"),
                    timeout=request.get("timeout"),
                )
                return {"ok": True, **body}
            if op == "update":
                body = self.update(
                    request.get("kind", ""),
                    int(request.get("start", -1)),
                    int(request.get("end", -1)),
                    subject=request.get("subject"),
                    value=request.get("value"),
                    mask=request.get("mask"),
                    timeout=request.get("timeout"),
                )
                return {"ok": True, **body}
            raise ServiceError(f"unknown op {op!r}")
        except ReproError as exc:
            return {
                "ok": False,
                "error": type(exc).__name__,
                "message": str(exc),
            }
        except (TypeError, ValueError) as exc:
            return {"ok": False, "error": "BadRequest", "message": str(exc)}
